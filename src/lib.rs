//! Facade crate for the EASE reproduction workspace.
//!
//! Re-exports the individual crates so examples and integration tests can
//! use one coherent namespace:
//!
//! ```
//! use ease_repro::graph::Graph;
//! use ease_repro::partition::PartitionerId;
//!
//! let g = Graph::from_pairs([(0, 1), (1, 2), (2, 0)]);
//! assert_eq!(g.num_edges(), 3);
//! assert_eq!(PartitionerId::ALL.len(), 11);
//! ```

pub use ease as core;
pub use ease_graph as graph;
pub use ease_graphgen as graphgen;
pub use ease_ml as ml;
pub use ease_partition as partition;
pub use ease_procsim as procsim;
