//! Facade crate for the EASE reproduction workspace.
//!
//! The primary entry point is [`EaseService`] — *train once, query
//! cheaply*: [`EaseServiceBuilder`] trains a persistable selection service,
//! `recommend`/`recommend_batch` answer queries with typed [`EaseError`]s,
//! and `save`/`load` round-trip the trained models bit-exactly. The `ease`
//! CLI binary (`cargo run --release --bin ease -- --help`) drives the same
//! lifecycle from the shell.
//!
//! The member crates stay reachable under one coherent namespace:
//!
//! ```
//! use ease_repro::graph::Graph;
//! use ease_repro::partition::PartitionerId;
//!
//! let g = Graph::from_pairs([(0, 1), (1, 2), (2, 0)]);
//! assert_eq!(g.num_edges(), 3);
//! assert_eq!(PartitionerId::ALL.len(), 11);
//! ```
//!
//! Train a tiny service, persist it, reload it, and get identical answers —
//! the full lifecycle in one doctest:
//!
//! ```
//! use ease_repro::{EaseServiceBuilder, EaseService, OptGoal, Query, RecommendQuery};
//! use ease_repro::core::profiling::TimingMode;
//! use ease_repro::graph::GraphProperties;
//! use ease_repro::graphgen::Scale;
//! use ease_repro::partition::PartitionerId;
//! use ease_repro::procsim::Workload;
//!
//! // deliberately minimal so the doctest runs in seconds
//! let service = EaseServiceBuilder::at_scale(Scale::Tiny)
//!     .quick_grid()
//!     .max_small_graphs(Some(6))
//!     .max_large_graphs(Some(4))
//!     .partition_counts(vec![2, 4])
//!     .partitioners(vec![PartitionerId::OneDD, PartitionerId::Dbh, PartitionerId::Ne])
//!     .workloads(vec![Workload::PageRank { iterations: 3 }])
//!     .folds(2)
//!     .timing(TimingMode::Deterministic)
//!     .train()?;
//!
//! let graph = ease_repro::graphgen::realworld::socfb_analogue(Scale::Tiny, 7).graph;
//! let props = GraphProperties::compute_advanced(&graph);
//! // one Query value works against every input kind and every service;
//! // unset fields (here: k) resolve to the service's trained defaults
//! let query = Query::new(Workload::PageRank { iterations: 3 }).goal(OptGoal::EndToEnd);
//! let pick = service.recommend_query(&props, query)?;
//! assert!(service.catalog().contains(&pick.best));
//!
//! // save → load → identical selection
//! let path = std::env::temp_dir().join(format!("ease_doctest_{}.model", std::process::id()));
//! service.save(&path)?;
//! let restored = EaseService::load(&path)?;
//! std::fs::remove_file(&path).ok();
//! let again = restored.recommend_query(&props, query)?;
//! assert_eq!(pick.best, again.best);
//!
//! // concurrent queries fan out over std::thread
//! let answers = restored.recommend_batch(&[RecommendQuery {
//!     props,
//!     workload: Workload::PageRank { iterations: 3 },
//!     k: 4,
//!     goal: OptGoal::EndToEnd,
//! }]);
//! assert_eq!(answers[0].as_ref().unwrap().best, pick.best);
//! # Ok::<(), ease_repro::EaseError>(())
//! ```

pub use ease as core;
pub use ease_graph as graph;
pub use ease_graphgen as graphgen;
pub use ease_ml as ml;
pub use ease_partition as partition;
pub use ease_procsim as procsim;

pub use ease::serve;
pub use ease::{
    EaseError, EaseService, EaseServiceBuilder, OptGoal, PropertyCacheStats, Query, RecommendQuery,
    Selection, ServeError, ServiceInfo, ServiceMeta,
};
pub use ease_graph::{BelSource, GraphSource, PreparedGraph, TextStreamSource};
