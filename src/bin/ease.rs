//! `ease` — the partitioner-selection service CLI.
//!
//! Drives the full *train once, query cheaply* lifecycle from the shell:
//!
//! ```sh
//! ease gen --out graph.bel --kind rmat --vertices 1048576 --edges 8000000
//! ease convert --in graph.bel --out graph.txt
//! ease train --out ease.model --scale tiny --quick --deterministic
//! ease inspect --model ease.model
//! ease recommend --model ease.model --graph graph.bel --workload pr --goal e2e
//! ease features graph.bel --tier advanced
//!
//! # serve the trained model from a resident daemon (warm property cache)
//! ease serve --model ease.model --socket /tmp/ease.sock --tcp 127.0.0.1:7654 &
//! ease client recommend --endpoint unix:/tmp/ease.sock --graph graph.bel --workload pr
//! ease client recommend --endpoint tcp:127.0.0.1:7654 --graph graph.bel --workload pr
//! ease recommend --endpoint http:127.0.0.1:7654 --graph graph.bel --workload pr
//! curl 'http://127.0.0.1:7654/recommend?graph=graph.bel&workload=pr'
//! ease client shutdown --endpoint unix:/tmp/ease.sock
//! ```
//!
//! Graph inputs are format-dispatched by extension: `.bel` files are
//! memory-mapped (zero-copy, no owned edge list), everything else is read
//! as a whitespace-separated text edge list. Every failure path is a typed
//! [`EaseError`] rendered as a one-line message with exit code 1 (2 for
//! usage errors) — no panics on user input.

use ease_repro::core::profiling::TimingMode;
use ease_repro::graph::bel::{BelSource, BelWriter};
use ease_repro::graph::io::TextEdgeListWriter;
use ease_repro::graph::source::TextStreamSource;
use ease_repro::graph::{is_bel_path, open_path, Edge, GraphSource, MemoryBudget, PropertyTier};
use ease_repro::graphgen::realworld::{generate_typed, GraphType};
use ease_repro::graphgen::rmat::{Rmat, RMAT_COMBOS};
use ease_repro::graphgen::Scale;
use ease_repro::procsim::Workload;
use ease_repro::serve::{self, Endpoint, Request, RouterConfig, ServeConfig};
use ease_repro::{EaseError, EaseService, EaseServiceBuilder, OptGoal};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "ease — partitioner selection with EASE (Merkel et al., ICDE 2023)

USAGE:
    ease <SUBCOMMAND> [OPTIONS]

SUBCOMMANDS:
    train        Train a selection service and save it to disk
    recommend    Query a saved service for the best partitioner for a graph
    features     Extract a graph's feature vector (with extraction timings)
    inspect      Print a saved service's provenance and chosen models
    gen          Generate a synthetic graph file to experiment with
    convert      Convert between text and binary (.bel) edge lists
    serve        Run a resident recommendation daemon (unix socket, TCP,
                 or both)
    route        Front a fleet of daemons with a consistent-hash router
    client       Talk to a running daemon (recommend, features, cache-stats,
                 ping, shutdown)

Graph files ending in `.bel` are memory-mapped binary edge lists (header +
little-endian u64 pairs); anything else is a whitespace-separated text edge
list. `.bel` inputs are analyzed zero-copy — no owned edge list is ever
materialized.

TRAIN OPTIONS:
    --out <path>          Where to save the trained service (required)
    --scale <s>           tiny | small | medium           [default: tiny]
    --quick               Use the reduced quick model grid
    --folds <n>           Cross-validation folds          [default: per scale]
    --seed <n>            Training seed                   [default: 0xEA5E]
    --deterministic       Analytical timing proxy instead of wall clock
    --k <n>               Default partition count for recommendations
    --max-small <n>       Cap the quality-training corpus
    --max-large <n>       Cap the time-training corpus

RECOMMEND OPTIONS:
    --model <path>        Saved service (required unless --daemon)
    --graph <path>        Edge list, text or .bel (required)
    --workload <w>        pr | cc | sssp | kcores | lp | synthetic-low |
                          synthetic-high                  [default: pr]
    --k <n>               Partition count                 [default: service]
    --goal <g>            e2e | processing                [default: e2e]
    --top <n>             How many candidates to print    [default: 5]
    --endpoint <ep>       Proxy the query to a running `ease serve` daemon
                          (or `ease route` fleet) instead of loading a
                          model: unix:<path>, tcp:<host:port> (binary v2),
                          or http:<host:port> (the JSON facade). The
                          answer is bit-identical to the one-shot output
    --memory-budget <sz>  Cap derived analysis state (CSRs) at <sz> bytes
                          (accepts 64k/512MiB/2gb suffixes, 0, unlimited);
                          over-budget builds spill to temp files — same
                          answer bytes, bounded heap

FEATURES OPTIONS:
    <edge-list>           Edge-list file, text or .bel (positional;
                          --graph <path> also accepted)
    --tier <t>            simple | basic | advanced       [default: advanced]
    --endpoint <ep>       Proxy the extraction to a running daemon:
                          unix:<path>, tcp:<host:port>, or http:<host:port>
    --memory-budget <sz>  As for recommend: spill over-budget CSRs to disk

SERVE OPTIONS:
    --model <path>        Saved service to load and keep warm (required)
    --socket <path>       Unix socket path to bind
    --tcp <addr>          TCP listen address (host:port; port 0 picks an
                          ephemeral port and prints it); may be combined
                          with --socket — at least one is required
    --workers <n>         Request worker threads     [default: cores, 2..8]
    --in-flight <n>       Pipelining window per TCP connection [default: 32]
    --memory-budget <sz>  One shared cap on derived analysis state across
                          all workers; over-budget CSR builds spill to disk
    The daemon loads the model once and keeps the fingerprint-keyed
    property cache warm across requests and clients. Every listener sniffs
    the format per connection: binary v2 framing (many requests per
    connection, answered out of order as they complete) or plain HTTP/1.1
    with JSON bodies — `curl 'http://host:port/recommend?graph=g.bel&
    workload=pr'` works against the same port, no extra listener. Stop the
    daemon with `ease client shutdown` (graceful: drains in-flight
    requests, removes the socket file, exits 0).

ROUTE OPTIONS:
    --backend <ep>        A backend daemon to front; repeatable (at least
                          one). `unix:<path>`, `tcp:<host:port>`, or a
                          bare `host:port` (TCP). `http:` backends are
                          rejected: the router multiplexes binary v2
                          sessions. (Clients may still speak HTTP *to*
                          the router — its listener sniffs like serve's.)
    --listen <addr>       TCP listen address for clients (host:port; port 0
                          picks an ephemeral port and prints it)
    --socket <path>       Unix socket to listen on; may be combined with
                          --listen — at least one is required
    --workers <n>         Forwarding worker threads  [default: cores, 2..8]
    --in-flight <n>       Pipelining window per TCP connection [default: 32]
    --health-interval-ms <n>  Backend probe cadence        [default: 500]
    --no-forward-shutdown Client shutdown stops only the router, not the
                          backends (default forwards it fleet-wide)
    Requests route by consistent hash of the graph's file identity, so
    repeat queries for a graph hit the same warm backend. Down backends are
    probed with jittered backoff and requests fail over to the next ring
    node. Oversized queries steer to the backend with memory-budget
    headroom; a saturated fleet answers a typed overload error instead of
    spilling. `cache-stats` through the router aggregates the whole fleet.

CLIENT OPTIONS:
    ease client <action> --endpoint <ep> [query options]
    Actions: recommend | features | cache-stats | ping | shutdown
    Endpoints: unix:<path> | tcp:<host:port> | http:<host:port>
    recommend and features take the same query options as the one-shot
    subcommands and print byte-identical answers over every transport.

INSPECT OPTIONS:
    --model <path>        Saved service (required)

GEN OPTIONS:
    --out <path>          Where to write the graph (required)
    --kind <k>            rmat | soc | web | wiki | citation |
                          collaboration | interaction | internet |
                          affiliation | product_network   [default: soc]
    --format <f>          bel | txt            [default: by .bel extension]
    --scale <s>           tiny | small | medium           [default: tiny]
    --seed <n>            Generator seed                  [default: 42]
    --vertices <n>        rmat only: vertex count         [default: 65536]
    --edges <n>           rmat only: edge count           [default: 524288]
    --combo <c>           rmat only: Table II combo 0..8  [default: 5]
    Edges stream to the output file as they are generated; `--kind rmat`
    never materializes the graph at all (constant memory at any size).

CONVERT OPTIONS:
    --in <path>           Input edge list (format by extension, required)
    --out <path>          Output edge list (format by extension, required)
    Conversion streams in both directions and never holds the whole graph.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "train" => cmd_train(&args[1..]),
        "recommend" => cmd_recommend(&args[1..]),
        "features" => cmd_features(&args[1..]),
        "inspect" => cmd_inspect(&args[1..]),
        "gen" => cmd_gen(&args[1..]),
        "convert" => cmd_convert(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "route" => cmd_route(&args[1..]),
        "client" => cmd_client(&args[1..]),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("unknown subcommand `{other}`\n");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("usage error: {msg} (see `ease --help`)");
            ExitCode::from(2)
        }
        Err(CliError::Ease(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

enum CliError {
    Usage(String),
    Ease(EaseError),
}

impl From<EaseError> for CliError {
    fn from(e: EaseError) -> Self {
        CliError::Ease(e)
    }
}

impl From<ease_repro::graph::GraphIoError> for CliError {
    fn from(e: ease_repro::graph::GraphIoError) -> Self {
        CliError::Ease(e.into())
    }
}

/// Minimal flag parser: `--flag value` pairs plus boolean switches.
struct Flags {
    pairs: Vec<(String, Option<String>)>,
}

impl Flags {
    fn parse(args: &[String], switches: &[&str]) -> Result<Flags, CliError> {
        let mut pairs = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(CliError::Usage(format!("unexpected argument `{arg}`")));
            };
            if switches.contains(&name) {
                pairs.push((name.to_string(), None));
            } else {
                let value =
                    it.next().ok_or_else(|| CliError::Usage(format!("--{name} needs a value")))?;
                pairs.push((name.to_string(), Some(value.clone())));
            }
        }
        Ok(Flags { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs.iter().rev().find(|(n, _)| n == name).and_then(|(_, v)| v.as_deref())
    }

    /// Every value given for a repeatable flag, in argument order
    /// (`--backend a --backend b` → `["a", "b"]`).
    fn get_all(&self, name: &str) -> Vec<&str> {
        self.pairs.iter().filter(|(n, _)| n == name).filter_map(|(_, v)| v.as_deref()).collect()
    }

    fn has(&self, name: &str) -> bool {
        self.pairs.iter().any(|(n, _)| n == name)
    }

    fn require(&self, name: &str) -> Result<&str, CliError> {
        self.get(name).ok_or_else(|| CliError::Usage(format!("--{name} is required")))
    }

    fn parse_num<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, CliError> {
        match self.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| CliError::Usage(format!("--{name} `{v}` is not a number"))),
        }
    }
}

fn parse_scale(flags: &Flags) -> Result<Scale, CliError> {
    match flags.get("scale") {
        None => Ok(Scale::Tiny),
        Some(s) => Scale::parse(s).ok_or_else(|| CliError::Usage(format!("unknown scale `{s}`"))),
    }
}

fn parse_workload(name: &str) -> Result<Workload, CliError> {
    Workload::from_name(name).ok_or_else(|| CliError::Usage(format!("unknown workload `{name}`")))
}

fn parse_goal(flags: &Flags) -> Result<OptGoal, CliError> {
    Ok(match flags.get("goal") {
        None | Some("e2e") => OptGoal::EndToEnd,
        Some("processing") | Some("proc") => OptGoal::ProcessingOnly,
        Some(other) => return Err(CliError::Usage(format!("unknown goal `{other}`"))),
    })
}

fn parse_tier(flags: &Flags) -> Result<PropertyTier, CliError> {
    Ok(match flags.get("tier") {
        None | Some("advanced") => PropertyTier::Advanced,
        Some("basic") => PropertyTier::Basic,
        Some("simple") => PropertyTier::Simple,
        Some(other) => return Err(CliError::Usage(format!("unknown tier `{other}`"))),
    })
}

/// A streaming edge writer, format-dispatched like [`open_graph`].
enum EdgeOut {
    Text(TextEdgeListWriter),
    Bel(BelWriter),
}

impl EdgeOut {
    fn create(path: &Path, format: Option<&str>) -> Result<EdgeOut, CliError> {
        let bel = match format {
            Some("bel") => true,
            Some("txt") | Some("text") => false,
            Some(other) => return Err(CliError::Usage(format!("unknown format `{other}`"))),
            None => is_bel_path(path),
        };
        let out = if bel {
            EdgeOut::Bel(BelWriter::create(path).map_err(EaseError::Io)?)
        } else {
            EdgeOut::Text(TextEdgeListWriter::create(path).map_err(EaseError::Io)?)
        };
        Ok(out)
    }

    fn push(&mut self, e: Edge) -> std::io::Result<()> {
        match self {
            EdgeOut::Text(w) => w.push(e),
            EdgeOut::Bel(w) => w.push(e),
        }
    }

    /// Finish the file. `num_vertices` preserves an explicit vertex
    /// universe in both formats (`.bel` carries it in the header, text in
    /// the summary comment readers honour), so isolated trailing vertices
    /// survive every conversion direction.
    fn finish(self, num_vertices: Option<usize>) -> std::io::Result<()> {
        match (self, num_vertices) {
            (EdgeOut::Text(w), Some(n)) => w.finish_with_vertices(n),
            (EdgeOut::Text(w), None) => w.finish(),
            (EdgeOut::Bel(w), Some(n)) => w.finish_with_vertices(n),
            (EdgeOut::Bel(w), None) => w.finish(),
        }
    }

    fn format_name(&self) -> &'static str {
        match self {
            EdgeOut::Text(_) => "txt",
            EdgeOut::Bel(_) => "bel",
        }
    }
}

/// Stream edges from `emit` into `sink`, surfacing the first write error
/// (the emitter drains regardless — generator callbacks cannot be aborted
/// mid-stream, so errors are captured and rethrown after the pass).
fn drain_edges(
    emit: impl FnOnce(&mut dyn FnMut(Edge)),
    sink: &mut EdgeOut,
) -> Result<(), CliError> {
    let mut write_error: Option<std::io::Error> = None;
    emit(&mut |e| {
        if write_error.is_none() {
            if let Err(err) = sink.push(e) {
                write_error = Some(err);
            }
        }
    });
    match write_error {
        Some(err) => Err(CliError::Ease(EaseError::Io(err))),
        None => Ok(()),
    }
}

/// True when two paths refer to the same file. Canonicalization catches
/// symlinks and relative spellings; on unix the `(dev, ino)` pair also
/// catches hard links — truncating the output while the input's inode is
/// mapped or streamed would crash mid-read.
fn same_file(a: &Path, b: &Path) -> bool {
    #[cfg(unix)]
    {
        use std::os::unix::fs::MetadataExt;
        if let (Ok(ma), Ok(mb)) = (std::fs::metadata(a), std::fs::metadata(b)) {
            return ma.dev() == mb.dev() && ma.ino() == mb.ino();
        }
    }
    match (a.canonicalize(), b.canonicalize()) {
        (Ok(ca), Ok(cb)) => ca == cb,
        _ => false,
    }
}

fn cmd_train(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["quick", "deterministic"])?;
    let out = PathBuf::from(flags.require("out")?);
    let scale = parse_scale(&flags)?;
    let mut builder = EaseServiceBuilder::at_scale(scale);
    if flags.has("quick") {
        builder = builder.quick_grid();
    }
    if flags.has("deterministic") {
        builder = builder.timing(TimingMode::Deterministic);
    }
    if let Some(folds) = flags.parse_num::<usize>("folds")? {
        builder = builder.folds(folds);
    }
    if let Some(seed) = flags.parse_num::<u64>("seed")? {
        builder = builder.seed(seed);
    }
    if let Some(k) = flags.parse_num::<usize>("k")? {
        builder = builder.processing_k(k);
    }
    if let Some(cap) = flags.parse_num::<usize>("max-small")? {
        builder = builder.max_small_graphs(Some(cap));
    }
    if let Some(cap) = flags.parse_num::<usize>("max-large")? {
        builder = builder.max_large_graphs(Some(cap));
    }
    let cfg = builder.config();
    eprintln!(
        "training EASE: scale={} grid={} folds={} timing={} ({} + {} graphs)...",
        cfg.scale.name(),
        cfg.grid.len(),
        cfg.folds,
        cfg.timing.name(),
        cfg.small_inputs().len(),
        cfg.large_inputs().len(),
    );
    let start = std::time::Instant::now();
    let service = builder.train()?;
    service.save(&out)?;
    let size = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    eprintln!(
        "trained in {:.1}s, saved {} ({:.1} KiB)",
        start.elapsed().as_secs_f64(),
        out.display(),
        size as f64 / 1024.0
    );
    Ok(())
}

/// The recommend query shared by the one-shot path, the `--daemon` proxy
/// and `ease client recommend` — all three parse the same flags.
struct RecommendArgs {
    graph: String,
    workload_name: String,
    k: Option<usize>,
    goal: OptGoal,
    top: usize,
}

impl RecommendArgs {
    fn from_flags(flags: &Flags) -> Result<RecommendArgs, CliError> {
        let workload_name = flags.get("workload").unwrap_or("pr").to_string();
        // validate client-side so a typo is a usage error (exit 2) before
        // any socket or model is touched — identical to one-shot behaviour
        parse_workload(&workload_name)?;
        Ok(RecommendArgs {
            graph: flags.require("graph")?.to_string(),
            workload_name,
            k: flags.parse_num::<usize>("k")?,
            goal: parse_goal(flags)?,
            top: flags.parse_num::<usize>("top")?.unwrap_or(serve::DEFAULT_TOP),
        })
    }

    fn into_request(self) -> Request {
        Request::Recommend {
            graph: self.graph,
            workload: self.workload_name,
            k: self.k,
            goal: self.goal,
            top: self.top,
            cwd: client_cwd(),
        }
    }
}

/// The client's working directory, sent with daemon-bound requests so the
/// server resolves relative graph paths against *this* process's cwd, not
/// the daemon's.
fn client_cwd() -> Option<String> {
    std::env::current_dir().ok().and_then(|d| d.to_str().map(String::from))
}

/// `--memory-budget <size>`: cap for derived analysis state (CSRs); builds
/// that would exceed it spill to disk. Sizes accept `0`, plain bytes, or
/// `64k` / `512MiB` / `2gb` suffixes; `unlimited` disables the cap.
fn memory_budget_flag(flags: &Flags) -> Result<Option<Arc<MemoryBudget>>, CliError> {
    match flags.get("memory-budget") {
        None => Ok(None),
        Some(spec) => {
            let limit = MemoryBudget::parse_limit(spec)
                .map_err(|e| CliError::Usage(format!("--memory-budget: {e}")))?;
            Ok(Some(Arc::new(MemoryBudget::bytes(limit))))
        }
    }
}

/// Answer a recommend query locally from a saved model — the one-shot path.
/// Rendering and extraction go through [`serve::render_recommendation`],
/// the same function the daemon answers with, so both paths emit identical
/// bytes for identical queries.
fn recommend_one_shot(
    model: &Path,
    q: RecommendArgs,
    budget: Option<Arc<MemoryBudget>>,
) -> Result<(), CliError> {
    let service = EaseService::load(model)?;
    let workload = parse_workload(&q.workload_name)?;
    // format-dispatched ingestion: `.bel` mmaps, text materializes
    let source = open_path(Path::new(&q.graph)).map_err(EaseError::from)?;
    let k = q.k.unwrap_or(service.meta().default_k);
    let text = serve::render_recommendation(
        &service,
        &q.graph,
        source.as_ref(),
        workload,
        k,
        q.goal,
        q.top,
        budget.as_ref(),
    )?;
    print!("{text}");
    Ok(())
}

/// Send one request to a daemon and print the rendered answer verbatim.
fn proxy_to_daemon(endpoint: &Endpoint, request: Request) -> Result<(), CliError> {
    let response = serve::call_endpoint(endpoint, &request)?;
    print!("{}", serve::expect_answer(response)?);
    Ok(())
}

/// Render an [`Endpoint::parse`] failure for `flag` as a usage error
/// (exit 2) naming the accepted forms.
fn endpoint_usage(flag: &str, spec: &str) -> CliError {
    CliError::Usage(format!(
        "{flag} `{spec}` is not an endpoint \
         (expected unix:<path>, tcp:<host:port>, or http:<host:port>)"
    ))
}

/// One stderr line steering callers of a pre-endpoint flag spelling to
/// the `--endpoint` form; the old flag keeps working.
fn warn_deprecated_flag(old: &str, new: &str) {
    eprintln!("warning: {old} is deprecated; use {new}");
}

/// Where to proxy a one-shot query instead of loading a model:
/// `--endpoint unix:<path>|tcp:<addr>|http:<addr>`. The pre-endpoint
/// spellings `--daemon <socket>` and `--daemon-tcp <addr>` still work as
/// deprecated aliases (one warning line on stderr).
fn daemon_endpoint(flags: &Flags) -> Result<Option<Endpoint>, CliError> {
    let mut chosen: Vec<Endpoint> = Vec::new();
    if let Some(spec) = flags.get("endpoint") {
        chosen.push(Endpoint::parse(spec).map_err(|_| endpoint_usage("--endpoint", spec))?);
    }
    if let Some(socket) = flags.get("daemon") {
        warn_deprecated_flag("--daemon <socket>", "--endpoint unix:<path>");
        chosen.push(Endpoint::unix(socket));
    }
    if let Some(addr) = flags.get("daemon-tcp") {
        warn_deprecated_flag("--daemon-tcp <addr>", "--endpoint tcp:<host:port>");
        chosen.push(Endpoint::tcp(addr));
    }
    if chosen.len() > 1 {
        return Err(CliError::Usage(
            "give one endpoint: --endpoint (or one deprecated --daemon / --daemon-tcp)".into(),
        ));
    }
    Ok(chosen.pop())
}

fn cmd_recommend(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &[])?;
    let q = RecommendArgs::from_flags(&flags)?;
    let budget = memory_budget_flag(&flags)?;
    match daemon_endpoint(&flags)? {
        // proxy: the daemon's warm service answers; no model load here
        // (budgeting is the daemon's own --memory-budget, not the client's)
        Some(endpoint) => proxy_to_daemon(&endpoint, q.into_request()),
        None => recommend_one_shot(Path::new(flags.require("model")?), q, budget),
    }
}

/// Parse the `features` argument shape: a positional edge-list path or
/// `--graph`, plus flags.
fn features_args(args: &[String]) -> Result<(String, Flags), CliError> {
    let (positional, rest) = match args.first() {
        Some(first) if !first.starts_with("--") => (Some(first.clone()), &args[1..]),
        _ => (None, args),
    };
    let flags = Flags::parse(rest, &[])?;
    let graph = match (positional, flags.get("graph")) {
        (Some(p), _) => p,
        (None, Some(p)) => p.to_string(),
        (None, None) => return Err(CliError::Usage("features needs an edge-list path".into())),
    };
    Ok((graph, flags))
}

fn cmd_features(args: &[String]) -> Result<(), CliError> {
    let (graph, flags) = features_args(args)?;
    let tier = parse_tier(&flags)?;
    if let Some(endpoint) = daemon_endpoint(&flags)? {
        return proxy_to_daemon(&endpoint, Request::Features { graph, tier, cwd: client_cwd() });
    }
    let budget = memory_budget_flag(&flags)?;
    let source = open_path(Path::new(&graph)).map_err(EaseError::from)?;
    print!("{}", serve::render_features(&graph, source.as_ref(), tier, budget.as_ref())?);
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &[])?;
    let model = PathBuf::from(flags.require("model")?);
    let socket = flags.get("socket").map(PathBuf::from);
    let tcp = flags.get("tcp").map(String::from);
    if socket.is_none() && tcp.is_none() {
        return Err(CliError::Usage("serve needs --socket and/or --tcp".into()));
    }
    let workers = flags.parse_num::<usize>("workers")?.unwrap_or_else(ServeConfig::default_workers);
    if workers == 0 {
        return Err(CliError::Usage("--workers must be >= 1".into()));
    }
    let mut config = match &socket {
        Some(path) => ServeConfig::at(path),
        None => ServeConfig::tcp_at(tcp.clone().expect("tcp or socket is set")),
    };
    if socket.is_some() {
        if let Some(addr) = tcp {
            config = config.tcp(addr);
        }
    }
    config = config.workers(workers);
    if let Some(in_flight) = flags.parse_num::<usize>("in-flight")? {
        if in_flight == 0 {
            return Err(CliError::Usage("--in-flight must be >= 1".into()));
        }
        config = config.pipeline_in_flight(in_flight);
    }
    if let Some(budget) = memory_budget_flag(&flags)? {
        config = config.memory_budget(budget);
    }
    let service = Arc::new(EaseService::load(&model)?);
    let cache = service.property_cache_stats();
    let handle = serve::serve(service, config)?;
    let mut endpoints = Vec::new();
    if let Some(path) = handle.socket_path() {
        endpoints.push(format!("unix:{}", path.display()));
    }
    if let Some(addr) = handle.tcp_addr() {
        // the *resolved* address: with `--tcp host:0` this is where the
        // kernel actually put us, and the only place a client can learn it
        endpoints.push(format!("tcp:{addr}"));
    }
    eprintln!(
        "ease serve: model {} on {} ({workers} workers, property cache {} warm / {} capacity)",
        model.display(),
        endpoints.join(" + "),
        cache.len,
        cache.capacity,
    );
    let stop = match handle.socket_path() {
        Some(path) => format!("unix:{}", path.display()),
        None => format!("tcp:{}", handle.tcp_addr().expect("no socket implies tcp")),
    };
    eprintln!("ease serve: stop with `ease client shutdown --endpoint {stop}`");
    let summary = handle.join()?;
    eprintln!("ease serve: drained after {} requests", summary.requests_served);
    Ok(())
}

/// A `--backend` endpoint spec, parsed with the shared [`Endpoint::parse`]
/// grammar (`unix:/path`, `tcp:host:port`, or a bare `host:port` for
/// TCP). `http:` backends are a usage error: the router multiplexes
/// pipelined binary v2 sessions to its backends, which the JSON facade
/// by design does not speak.
fn parse_backend(spec: &str) -> Result<Endpoint, CliError> {
    let endpoint = Endpoint::parse(spec).map_err(|_| endpoint_usage("--backend", spec))?;
    if matches!(endpoint, Endpoint::Http(_)) {
        return Err(CliError::Usage(format!(
            "--backend `{spec}`: the router needs binary v2 backends \
             (unix:<path> or tcp:<host:port>), not http:"
        )));
    }
    Ok(endpoint)
}

fn cmd_route(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["no-forward-shutdown"])?;
    let backends: Vec<Endpoint> =
        flags.get_all("backend").into_iter().map(parse_backend).collect::<Result<_, _>>()?;
    if backends.is_empty() {
        return Err(CliError::Usage("route needs at least one --backend".into()));
    }
    let socket = flags.get("socket").map(PathBuf::from);
    let listen = flags.get("listen").map(String::from);
    if socket.is_none() && listen.is_none() {
        return Err(CliError::Usage("route needs --listen and/or --socket".into()));
    }
    let workers = flags.parse_num::<usize>("workers")?.unwrap_or_else(ServeConfig::default_workers);
    if workers == 0 {
        return Err(CliError::Usage("--workers must be >= 1".into()));
    }
    let mut listen_config = match &socket {
        Some(path) => ServeConfig::at(path),
        None => ServeConfig::tcp_at(listen.clone().expect("listen or socket is set")),
    };
    if socket.is_some() {
        if let Some(addr) = listen {
            listen_config = listen_config.tcp(addr);
        }
    }
    listen_config = listen_config.workers(workers);
    if let Some(in_flight) = flags.parse_num::<usize>("in-flight")? {
        if in_flight == 0 {
            return Err(CliError::Usage("--in-flight must be >= 1".into()));
        }
        listen_config = listen_config.pipeline_in_flight(in_flight);
    }
    let n = backends.len();
    let mut config = RouterConfig::new(listen_config, backends)
        .forward_shutdown(!flags.has("no-forward-shutdown"));
    if let Some(ms) = flags.parse_num::<u64>("health-interval-ms")? {
        if ms == 0 {
            return Err(CliError::Usage("--health-interval-ms must be >= 1".into()));
        }
        config = config.health_interval(std::time::Duration::from_millis(ms));
    }
    let handle = serve::route(config)?;
    let mut endpoints = Vec::new();
    if let Some(path) = handle.socket_path() {
        endpoints.push(format!("unix:{}", path.display()));
    }
    if let Some(addr) = handle.tcp_addr() {
        endpoints.push(format!("tcp:{addr}"));
    }
    eprintln!(
        "ease route: fronting {n} backend(s) on {} ({workers} workers)",
        endpoints.join(" + ")
    );
    let stop = match handle.socket_path() {
        Some(path) => format!("unix:{}", path.display()),
        None => format!("tcp:{}", handle.tcp_addr().expect("no socket implies tcp")),
    };
    eprintln!("ease route: stop with `ease client shutdown --endpoint {stop}`");
    let summary = handle.join()?;
    eprintln!("ease route: drained after {} requests", summary.requests_served);
    Ok(())
}

fn cmd_client(args: &[String]) -> Result<(), CliError> {
    let Some(action) = args.first() else {
        return Err(CliError::Usage(
            "client needs an action: recommend | features | cache-stats | ping | shutdown".into(),
        ));
    };
    let rest = &args[1..];
    match action.as_str() {
        "recommend" => {
            let flags = Flags::parse(rest, &[])?;
            let endpoint = client_endpoint(&flags)?;
            let q = RecommendArgs::from_flags(&flags)?;
            proxy_to_daemon(&endpoint, q.into_request())
        }
        "features" => {
            let (graph, flags) = features_args(rest)?;
            let endpoint = client_endpoint(&flags)?;
            let tier = parse_tier(&flags)?;
            proxy_to_daemon(&endpoint, Request::Features { graph, tier, cwd: client_cwd() })
        }
        "cache-stats" => {
            let endpoint = client_endpoint(&Flags::parse(rest, &[])?)?;
            match serve::call_endpoint(&endpoint, &Request::CacheStats)? {
                serve::Response::CacheStats(stats) => {
                    print!("{}", stats.render());
                    Ok(())
                }
                other => Err(unexpected_response(other)),
            }
        }
        "ping" => {
            let endpoint = client_endpoint(&Flags::parse(rest, &[])?)?;
            match serve::call_endpoint(&endpoint, &Request::Ping)? {
                serve::Response::Pong { version } => {
                    println!("pong (protocol v{version})");
                    Ok(())
                }
                other => Err(unexpected_response(other)),
            }
        }
        "shutdown" => {
            let endpoint = client_endpoint(&Flags::parse(rest, &[])?)?;
            match serve::call_endpoint(&endpoint, &Request::Shutdown)? {
                serve::Response::ShuttingDown => {
                    eprintln!("daemon on {endpoint} is shutting down");
                    Ok(())
                }
                other => Err(unexpected_response(other)),
            }
        }
        other => Err(CliError::Usage(format!(
            "unknown client action `{other}` (recommend | features | cache-stats | ping | shutdown)"
        ))),
    }
}

/// `--endpoint <ep>` on `ease client` — exactly one endpoint. The
/// pre-endpoint `--socket <path>` / `--tcp <addr>` spellings still work
/// as deprecated aliases (one warning line on stderr).
fn client_endpoint(flags: &Flags) -> Result<Endpoint, CliError> {
    let mut chosen: Vec<Endpoint> = Vec::new();
    if let Some(spec) = flags.get("endpoint") {
        chosen.push(Endpoint::parse(spec).map_err(|_| endpoint_usage("--endpoint", spec))?);
    }
    if let Some(socket) = flags.get("socket") {
        warn_deprecated_flag("--socket <path>", "--endpoint unix:<path>");
        chosen.push(Endpoint::unix(socket));
    }
    if let Some(addr) = flags.get("tcp") {
        warn_deprecated_flag("--tcp <addr>", "--endpoint tcp:<host:port>");
        chosen.push(Endpoint::tcp(addr));
    }
    match chosen.len() {
        0 => Err(CliError::Usage("--endpoint is required".into())),
        1 => Ok(chosen.pop().expect("len checked")),
        _ => Err(CliError::Usage(
            "give one endpoint: --endpoint (or one deprecated --socket / --tcp)".into(),
        )),
    }
}

fn unexpected_response(response: serve::Response) -> CliError {
    CliError::Ease(
        ease_repro::ServeError::Protocol(format!("unexpected response {response:?}")).into(),
    )
}

fn cmd_inspect(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &[])?;
    let model = PathBuf::from(flags.require("model")?);
    let service = EaseService::load(&model)?;
    let info = service.info();
    println!("EASE service {}", model.display());
    println!("  scale:       {}", info.meta.scale.name());
    println!("  seed:        {:#x}", info.meta.seed);
    println!("  cv folds:    {}", info.meta.folds);
    println!("  timing:      {}", info.meta.timing.name());
    println!("  default k:   {}", info.meta.default_k);
    println!("  goal:        {}", info.meta.default_goal.name());
    println!("  feature tier: {}", info.tier.name());
    println!(
        "  catalog:     {}",
        info.catalog.iter().map(|p| p.name()).collect::<Vec<_>>().join(", ")
    );
    println!("  workloads:   {}", info.workloads.join(", "));
    println!("  models:");
    for (component, config, cv_mape) in &info.chosen {
        if cv_mape.is_nan() {
            println!("    {component:<28} {config}");
        } else {
            println!("    {component:<28} {config}  (cv MAPE {cv_mape:.3})");
        }
    }
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &[])?;
    let out = PathBuf::from(flags.require("out")?);
    let scale = parse_scale(&flags)?;
    let seed = flags.parse_num::<u64>("seed")?.unwrap_or(42);
    let kind_name = flags.get("kind").unwrap_or("soc");
    let io_err = |e: std::io::Error| CliError::Ease(EaseError::Io(e));

    if kind_name == "rmat" {
        // pure streaming: edges go from the generator straight into the
        // file writer — the graph is never materialized, so the size is
        // bounded by disk, not RAM. Validate every argument *before*
        // creating the output file, so usage errors leave nothing behind.
        let num_vertices = flags.parse_num::<usize>("vertices")?.unwrap_or(1 << 16);
        let num_edges = flags.parse_num::<usize>("edges")?.unwrap_or(1 << 19);
        let combo = flags.parse_num::<usize>("combo")?.unwrap_or(5);
        if combo >= RMAT_COMBOS.len() {
            return Err(CliError::Usage(format!("--combo must be 0..{}", RMAT_COMBOS.len() - 1)));
        }
        if num_vertices < 2 {
            return Err(CliError::Usage("--vertices must be >= 2".into()));
        }
        if num_vertices as u64 > u64::from(u32::MAX) + 1 {
            return Err(CliError::Usage(
                "--vertices exceeds the u32 vertex id space (max 4294967296)".into(),
            ));
        }
        let rmat = Rmat::new(RMAT_COMBOS[combo], num_vertices, num_edges, seed);
        let mut sink = EdgeOut::create(&out, flags.get("format"))?;
        let format = sink.format_name();
        drain_edges(|f| rmat.generate_into(f), &mut sink)?;
        sink.finish(Some(num_vertices)).map_err(io_err)?;
        eprintln!(
            "wrote {} (rmat C{}: |V|={num_vertices} |E|={num_edges}, {format}, streamed)",
            out.display(),
            combo + 1,
        );
        return Ok(());
    }

    let kind = GraphType::ALL
        .into_iter()
        .find(|t| t.name() == kind_name)
        .ok_or_else(|| CliError::Usage(format!("unknown graph kind `{kind_name}`")))?;
    let mut sink = EdgeOut::create(&out, flags.get("format"))?;
    let format = sink.format_name();
    // library generators materialize internally (multi-pass models); the
    // edges still stream into the writer rather than through a second copy
    let tg = generate_typed(kind, 0, scale, seed);
    for &e in tg.graph.edges() {
        sink.push(e).map_err(io_err)?;
    }
    sink.finish(Some(tg.graph.num_vertices())).map_err(io_err)?;
    eprintln!(
        "wrote {} ({}: |V|={} |E|={}, {format})",
        out.display(),
        tg.name,
        tg.graph.num_vertices(),
        tg.graph.num_edges(),
    );
    Ok(())
}

fn cmd_convert(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &[])?;
    let input = PathBuf::from(flags.require("in")?);
    let output = PathBuf::from(flags.require("out")?);
    let io_err = |e: std::io::Error| CliError::Ease(EaseError::Io(e));
    // Creating the output truncates it — converting a file onto itself
    // (same path, symlink, or hard link) would pull the mapped/streamed
    // input out from under the reader mid-pass.
    if same_file(&input, &output) {
        return Err(CliError::Usage("--in and --out must be different files".into()));
    }
    // Streaming in both directions: text input goes through the validating
    // stream reader (never holds the file), `.bel` input through the mmap.
    let source: Box<dyn GraphSource> = if is_bel_path(&input) {
        Box::new(BelSource::open(&input)?)
    } else {
        Box::new(TextStreamSource::open(&input)?)
    };
    let mut sink = EdgeOut::create(&output, flags.get("format"))?;
    let format = sink.format_name();
    drain_edges(|f| source.for_each_edge(f), &mut sink)?;
    sink.finish(Some(source.num_vertices())).map_err(io_err)?;
    eprintln!(
        "converted {} -> {} (|V|={} |E|={}, {format})",
        input.display(),
        output.display(),
        source.num_vertices(),
        source.edge_count(),
    );
    Ok(())
}
