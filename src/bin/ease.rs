//! `ease` — the partitioner-selection service CLI.
//!
//! Drives the full *train once, query cheaply* lifecycle from the shell:
//!
//! ```sh
//! ease gen --out graph.txt --kind soc --scale tiny --seed 7
//! ease train --out ease.model --scale tiny --quick --deterministic
//! ease inspect --model ease.model
//! ease recommend --model ease.model --graph graph.txt --workload pr --goal e2e
//! ease features graph.txt --tier advanced
//! ```
//!
//! Every failure path is a typed [`EaseError`] rendered as a one-line
//! message with exit code 1 (2 for usage errors) — no panics on user input.

use ease_repro::core::profiling::TimingMode;
use ease_repro::graph::{GraphProperties, PropertyTier};
use ease_repro::graphgen::realworld::{generate_typed, GraphType};
use ease_repro::graphgen::Scale;
use ease_repro::procsim::Workload;
use ease_repro::{EaseError, EaseService, EaseServiceBuilder, OptGoal, PreparedGraph};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "ease — partitioner selection with EASE (Merkel et al., ICDE 2023)

USAGE:
    ease <SUBCOMMAND> [OPTIONS]

SUBCOMMANDS:
    train        Train a selection service and save it to disk
    recommend    Query a saved service for the best partitioner for a graph
    features     Extract a graph's feature vector (with extraction timings)
    inspect      Print a saved service's provenance and chosen models
    gen          Generate a synthetic edge-list file to experiment with

TRAIN OPTIONS:
    --out <path>          Where to save the trained service (required)
    --scale <s>           tiny | small | medium           [default: tiny]
    --quick               Use the reduced quick model grid
    --folds <n>           Cross-validation folds          [default: per scale]
    --seed <n>            Training seed                   [default: 0xEA5E]
    --deterministic       Analytical timing proxy instead of wall clock
    --k <n>               Default partition count for recommendations
    --max-small <n>       Cap the quality-training corpus
    --max-large <n>       Cap the time-training corpus

RECOMMEND OPTIONS:
    --model <path>        Saved service (required)
    --graph <path>        Whitespace-separated edge list (required)
    --workload <w>        pr | cc | sssp | kcores | lp | synthetic-low |
                          synthetic-high                  [default: pr]
    --k <n>               Partition count                 [default: service]
    --goal <g>            e2e | processing                [default: e2e]
    --top <n>             How many candidates to print    [default: 5]

FEATURES OPTIONS:
    <edge-list>           Whitespace-separated edge-list file (positional;
                          --graph <path> also accepted)
    --tier <t>            simple | basic | advanced       [default: advanced]

INSPECT OPTIONS:
    --model <path>        Saved service (required)

GEN OPTIONS:
    --out <path>          Where to write the edge list (required)
    --kind <k>            soc | web | wiki | citation | collaboration |
                          interaction | internet | affiliation |
                          product_network                 [default: soc]
    --scale <s>           tiny | small | medium           [default: tiny]
    --seed <n>            Generator seed                  [default: 42]
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "train" => cmd_train(&args[1..]),
        "recommend" => cmd_recommend(&args[1..]),
        "features" => cmd_features(&args[1..]),
        "inspect" => cmd_inspect(&args[1..]),
        "gen" => cmd_gen(&args[1..]),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("unknown subcommand `{other}`\n");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("usage error: {msg} (see `ease --help`)");
            ExitCode::from(2)
        }
        Err(CliError::Ease(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

enum CliError {
    Usage(String),
    Ease(EaseError),
}

impl From<EaseError> for CliError {
    fn from(e: EaseError) -> Self {
        CliError::Ease(e)
    }
}

impl From<ease_repro::graph::GraphIoError> for CliError {
    fn from(e: ease_repro::graph::GraphIoError) -> Self {
        CliError::Ease(e.into())
    }
}

/// Minimal flag parser: `--flag value` pairs plus boolean switches.
struct Flags {
    pairs: Vec<(String, Option<String>)>,
}

impl Flags {
    fn parse(args: &[String], switches: &[&str]) -> Result<Flags, CliError> {
        let mut pairs = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(CliError::Usage(format!("unexpected argument `{arg}`")));
            };
            if switches.contains(&name) {
                pairs.push((name.to_string(), None));
            } else {
                let value =
                    it.next().ok_or_else(|| CliError::Usage(format!("--{name} needs a value")))?;
                pairs.push((name.to_string(), Some(value.clone())));
            }
        }
        Ok(Flags { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs.iter().rev().find(|(n, _)| n == name).and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.pairs.iter().any(|(n, _)| n == name)
    }

    fn require(&self, name: &str) -> Result<&str, CliError> {
        self.get(name).ok_or_else(|| CliError::Usage(format!("--{name} is required")))
    }

    fn parse_num<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, CliError> {
        match self.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| CliError::Usage(format!("--{name} `{v}` is not a number"))),
        }
    }
}

fn parse_scale(flags: &Flags) -> Result<Scale, CliError> {
    match flags.get("scale") {
        None => Ok(Scale::Tiny),
        Some(s) => Scale::parse(s).ok_or_else(|| CliError::Usage(format!("unknown scale `{s}`"))),
    }
}

fn parse_workload(name: &str) -> Result<Workload, CliError> {
    Workload::from_name(name).ok_or_else(|| CliError::Usage(format!("unknown workload `{name}`")))
}

fn parse_goal(flags: &Flags) -> Result<OptGoal, CliError> {
    Ok(match flags.get("goal") {
        None | Some("e2e") => OptGoal::EndToEnd,
        Some("processing") | Some("proc") => OptGoal::ProcessingOnly,
        Some(other) => return Err(CliError::Usage(format!("unknown goal `{other}`"))),
    })
}

fn cmd_train(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["quick", "deterministic"])?;
    let out = PathBuf::from(flags.require("out")?);
    let scale = parse_scale(&flags)?;
    let mut builder = EaseServiceBuilder::at_scale(scale);
    if flags.has("quick") {
        builder = builder.quick_grid();
    }
    if flags.has("deterministic") {
        builder = builder.timing(TimingMode::Deterministic);
    }
    if let Some(folds) = flags.parse_num::<usize>("folds")? {
        builder = builder.folds(folds);
    }
    if let Some(seed) = flags.parse_num::<u64>("seed")? {
        builder = builder.seed(seed);
    }
    if let Some(k) = flags.parse_num::<usize>("k")? {
        builder = builder.processing_k(k);
    }
    if let Some(cap) = flags.parse_num::<usize>("max-small")? {
        builder = builder.max_small_graphs(Some(cap));
    }
    if let Some(cap) = flags.parse_num::<usize>("max-large")? {
        builder = builder.max_large_graphs(Some(cap));
    }
    let cfg = builder.config();
    eprintln!(
        "training EASE: scale={} grid={} folds={} timing={} ({} + {} graphs)...",
        cfg.scale.name(),
        cfg.grid.len(),
        cfg.folds,
        cfg.timing.name(),
        cfg.small_inputs().len(),
        cfg.large_inputs().len(),
    );
    let start = std::time::Instant::now();
    let service = builder.train()?;
    service.save(&out)?;
    let size = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    eprintln!(
        "trained in {:.1}s, saved {} ({:.1} KiB)",
        start.elapsed().as_secs_f64(),
        out.display(),
        size as f64 / 1024.0
    );
    Ok(())
}

fn cmd_recommend(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &[])?;
    let model = PathBuf::from(flags.require("model")?);
    let graph_path = PathBuf::from(flags.require("graph")?);
    let workload = parse_workload(flags.get("workload").unwrap_or("pr"))?;
    let goal = parse_goal(&flags)?;
    let top = flags.parse_num::<usize>("top")?.unwrap_or(5);

    let service = EaseService::load(&model)?;
    let graph = ease_repro::graph::io::read_edge_list(&graph_path)?;
    let n = graph.num_vertices();
    println!(
        "graph {}: |V|={} |E|={} mean-degree {:.2}",
        graph_path.display(),
        n,
        graph.num_edges(),
        if n > 0 { 2.0 * graph.num_edges() as f64 / n as f64 } else { 0.0 }
    );
    let k = flags.parse_num::<usize>("k")?.unwrap_or(service.meta().default_k);
    // graph-in query: extraction goes through the service's
    // fingerprint-keyed property cache
    let selection = service.recommend_graph_with_k(&graph, workload, k, goal)?;
    println!(
        "recommended partitioner for {} (k={k}, goal {}): {}",
        workload.label(),
        selection.goal.name(),
        selection.best.name()
    );
    let mut ranked = selection.candidates.clone();
    ranked.sort_by(|a, b| {
        let cost = |c: &ease_repro::core::selector::PredictedCosts| match goal {
            OptGoal::EndToEnd => c.end_to_end_secs,
            OptGoal::ProcessingOnly => c.processing_secs,
        };
        cost(a).partial_cmp(&cost(b)).expect("finite predictions")
    });
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>8}",
        "candidate", "pred-part", "pred-proc", "pred-e2e", "rf"
    );
    for c in ranked.iter().take(top) {
        println!(
            "{:<10} {:>11.4}s {:>11.4}s {:>11.4}s {:>8.2}",
            c.partitioner.name(),
            c.partitioning_secs,
            c.processing_secs,
            c.end_to_end_secs,
            c.quality.replication_factor
        );
    }
    Ok(())
}

fn cmd_features(args: &[String]) -> Result<(), CliError> {
    // accept the edge list as a positional first argument or via --graph
    let (positional, rest) = match args.first() {
        Some(first) if !first.starts_with("--") => (Some(first.clone()), &args[1..]),
        _ => (None, args),
    };
    let flags = Flags::parse(rest, &[])?;
    let graph_path = match (&positional, flags.get("graph")) {
        (Some(p), _) => PathBuf::from(p),
        (None, Some(p)) => PathBuf::from(p),
        (None, None) => return Err(CliError::Usage("features needs an edge-list path".into())),
    };
    let tier = match flags.get("tier") {
        None | Some("advanced") => PropertyTier::Advanced,
        Some("basic") => PropertyTier::Basic,
        Some("simple") => PropertyTier::Simple,
        Some(other) => return Err(CliError::Usage(format!("unknown tier `{other}`"))),
    };
    let graph = ease_repro::graph::io::read_edge_list(&graph_path)?;

    // cold: throwaway context per extraction (what a naive caller pays)
    let t = std::time::Instant::now();
    let cold = GraphProperties::compute(&graph, tier);
    let cold_secs = t.elapsed().as_secs_f64();
    // prepared: one shared context; the first extraction builds the caches,
    // the second shows the steady-state cost of a warmed context
    let prepared = PreparedGraph::of(&graph);
    let t = std::time::Instant::now();
    let first = GraphProperties::compute_prepared(&prepared, tier);
    let first_secs = t.elapsed().as_secs_f64();
    let t = std::time::Instant::now();
    let warm = GraphProperties::compute_prepared(&prepared, tier);
    let warm_secs = t.elapsed().as_secs_f64();
    assert_eq!(cold, first, "prepared extraction must match the cold path");
    assert_eq!(first, warm);

    println!(
        "graph {} (|V|={} |E|={}): {} tier",
        graph_path.display(),
        graph.num_vertices(),
        graph.num_edges(),
        tier.name()
    );
    println!("{:<20} {:>18}", "feature", "value");
    for (name, value) in GraphProperties::feature_names(tier).iter().zip(cold.feature_vector(tier))
    {
        println!("{name:<20} {value:>18.6}");
    }
    println!("fingerprint          0x{:016x}", prepared.fingerprint());
    let speedup = if warm_secs > 0.0 { cold_secs / warm_secs } else { f64::INFINITY };
    println!(
        "extraction: cold {:.3} ms | prepared first {:.3} ms | prepared warm {:.3} ms ({speedup:.0}x)",
        cold_secs * 1e3,
        first_secs * 1e3,
        warm_secs * 1e3,
    );
    Ok(())
}

fn cmd_inspect(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &[])?;
    let model = PathBuf::from(flags.require("model")?);
    let service = EaseService::load(&model)?;
    let info = service.info();
    println!("EASE service {}", model.display());
    println!("  scale:       {}", info.meta.scale.name());
    println!("  seed:        {:#x}", info.meta.seed);
    println!("  cv folds:    {}", info.meta.folds);
    println!("  timing:      {}", info.meta.timing.name());
    println!("  default k:   {}", info.meta.default_k);
    println!("  goal:        {}", info.meta.default_goal.name());
    println!("  feature tier: {}", info.tier.name());
    println!(
        "  catalog:     {}",
        info.catalog.iter().map(|p| p.name()).collect::<Vec<_>>().join(", ")
    );
    println!("  workloads:   {}", info.workloads.join(", "));
    println!("  models:");
    for (component, config, cv_mape) in &info.chosen {
        if cv_mape.is_nan() {
            println!("    {component:<28} {config}");
        } else {
            println!("    {component:<28} {config}  (cv MAPE {cv_mape:.3})");
        }
    }
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &[])?;
    let out = PathBuf::from(flags.require("out")?);
    let scale = parse_scale(&flags)?;
    let seed = flags.parse_num::<u64>("seed")?.unwrap_or(42);
    let kind_name = flags.get("kind").unwrap_or("soc");
    let kind = GraphType::ALL
        .into_iter()
        .find(|t| t.name() == kind_name)
        .ok_or_else(|| CliError::Usage(format!("unknown graph kind `{kind_name}`")))?;
    let tg = generate_typed(kind, 0, scale, seed);
    write_graph(&tg.graph, &out)?;
    eprintln!(
        "wrote {} ({}: |V|={} |E|={})",
        out.display(),
        tg.name,
        tg.graph.num_vertices(),
        tg.graph.num_edges()
    );
    Ok(())
}

fn write_graph(graph: &ease_repro::graph::Graph, path: &Path) -> Result<(), CliError> {
    ease_repro::graph::io::write_edge_list(graph, path)
        .map_err(|e| CliError::Ease(EaseError::Io(e)))
}
