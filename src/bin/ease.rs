//! `ease` — the partitioner-selection service CLI.
//!
//! Drives the full *train once, query cheaply* lifecycle from the shell:
//!
//! ```sh
//! ease gen --out graph.bel --kind rmat --vertices 1048576 --edges 8000000
//! ease convert --in graph.bel --out graph.txt
//! ease train --out ease.model --scale tiny --quick --deterministic
//! ease inspect --model ease.model
//! ease recommend --model ease.model --graph graph.bel --workload pr --goal e2e
//! ease features graph.bel --tier advanced
//! ```
//!
//! Graph inputs are format-dispatched by extension: `.bel` files are
//! memory-mapped (zero-copy, no owned edge list), everything else is read
//! as a whitespace-separated text edge list. Every failure path is a typed
//! [`EaseError`] rendered as a one-line message with exit code 1 (2 for
//! usage errors) — no panics on user input.

use ease_repro::core::profiling::TimingMode;
use ease_repro::graph::bel::{BelSource, BelWriter};
use ease_repro::graph::io::TextEdgeListWriter;
use ease_repro::graph::source::TextStreamSource;
use ease_repro::graph::{Edge, GraphProperties, GraphSource, PropertyTier};
use ease_repro::graphgen::realworld::{generate_typed, GraphType};
use ease_repro::graphgen::rmat::{Rmat, RMAT_COMBOS};
use ease_repro::graphgen::Scale;
use ease_repro::procsim::Workload;
use ease_repro::{EaseError, EaseService, EaseServiceBuilder, OptGoal, PreparedGraph};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "ease — partitioner selection with EASE (Merkel et al., ICDE 2023)

USAGE:
    ease <SUBCOMMAND> [OPTIONS]

SUBCOMMANDS:
    train        Train a selection service and save it to disk
    recommend    Query a saved service for the best partitioner for a graph
    features     Extract a graph's feature vector (with extraction timings)
    inspect      Print a saved service's provenance and chosen models
    gen          Generate a synthetic graph file to experiment with
    convert      Convert between text and binary (.bel) edge lists

Graph files ending in `.bel` are memory-mapped binary edge lists (header +
little-endian u64 pairs); anything else is a whitespace-separated text edge
list. `.bel` inputs are analyzed zero-copy — no owned edge list is ever
materialized.

TRAIN OPTIONS:
    --out <path>          Where to save the trained service (required)
    --scale <s>           tiny | small | medium           [default: tiny]
    --quick               Use the reduced quick model grid
    --folds <n>           Cross-validation folds          [default: per scale]
    --seed <n>            Training seed                   [default: 0xEA5E]
    --deterministic       Analytical timing proxy instead of wall clock
    --k <n>               Default partition count for recommendations
    --max-small <n>       Cap the quality-training corpus
    --max-large <n>       Cap the time-training corpus

RECOMMEND OPTIONS:
    --model <path>        Saved service (required)
    --graph <path>        Edge list, text or .bel (required)
    --workload <w>        pr | cc | sssp | kcores | lp | synthetic-low |
                          synthetic-high                  [default: pr]
    --k <n>               Partition count                 [default: service]
    --goal <g>            e2e | processing                [default: e2e]
    --top <n>             How many candidates to print    [default: 5]

FEATURES OPTIONS:
    <edge-list>           Edge-list file, text or .bel (positional;
                          --graph <path> also accepted)
    --tier <t>            simple | basic | advanced       [default: advanced]

INSPECT OPTIONS:
    --model <path>        Saved service (required)

GEN OPTIONS:
    --out <path>          Where to write the graph (required)
    --kind <k>            rmat | soc | web | wiki | citation |
                          collaboration | interaction | internet |
                          affiliation | product_network   [default: soc]
    --format <f>          bel | txt            [default: by .bel extension]
    --scale <s>           tiny | small | medium           [default: tiny]
    --seed <n>            Generator seed                  [default: 42]
    --vertices <n>        rmat only: vertex count         [default: 65536]
    --edges <n>           rmat only: edge count           [default: 524288]
    --combo <c>           rmat only: Table II combo 0..8  [default: 5]
    Edges stream to the output file as they are generated; `--kind rmat`
    never materializes the graph at all (constant memory at any size).

CONVERT OPTIONS:
    --in <path>           Input edge list (format by extension, required)
    --out <path>          Output edge list (format by extension, required)
    Conversion streams in both directions and never holds the whole graph.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "train" => cmd_train(&args[1..]),
        "recommend" => cmd_recommend(&args[1..]),
        "features" => cmd_features(&args[1..]),
        "inspect" => cmd_inspect(&args[1..]),
        "gen" => cmd_gen(&args[1..]),
        "convert" => cmd_convert(&args[1..]),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("unknown subcommand `{other}`\n");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("usage error: {msg} (see `ease --help`)");
            ExitCode::from(2)
        }
        Err(CliError::Ease(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

enum CliError {
    Usage(String),
    Ease(EaseError),
}

impl From<EaseError> for CliError {
    fn from(e: EaseError) -> Self {
        CliError::Ease(e)
    }
}

impl From<ease_repro::graph::GraphIoError> for CliError {
    fn from(e: ease_repro::graph::GraphIoError) -> Self {
        CliError::Ease(e.into())
    }
}

/// Minimal flag parser: `--flag value` pairs plus boolean switches.
struct Flags {
    pairs: Vec<(String, Option<String>)>,
}

impl Flags {
    fn parse(args: &[String], switches: &[&str]) -> Result<Flags, CliError> {
        let mut pairs = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(CliError::Usage(format!("unexpected argument `{arg}`")));
            };
            if switches.contains(&name) {
                pairs.push((name.to_string(), None));
            } else {
                let value =
                    it.next().ok_or_else(|| CliError::Usage(format!("--{name} needs a value")))?;
                pairs.push((name.to_string(), Some(value.clone())));
            }
        }
        Ok(Flags { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs.iter().rev().find(|(n, _)| n == name).and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.pairs.iter().any(|(n, _)| n == name)
    }

    fn require(&self, name: &str) -> Result<&str, CliError> {
        self.get(name).ok_or_else(|| CliError::Usage(format!("--{name} is required")))
    }

    fn parse_num<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, CliError> {
        match self.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| CliError::Usage(format!("--{name} `{v}` is not a number"))),
        }
    }
}

fn parse_scale(flags: &Flags) -> Result<Scale, CliError> {
    match flags.get("scale") {
        None => Ok(Scale::Tiny),
        Some(s) => Scale::parse(s).ok_or_else(|| CliError::Usage(format!("unknown scale `{s}`"))),
    }
}

fn parse_workload(name: &str) -> Result<Workload, CliError> {
    Workload::from_name(name).ok_or_else(|| CliError::Usage(format!("unknown workload `{name}`")))
}

fn parse_goal(flags: &Flags) -> Result<OptGoal, CliError> {
    Ok(match flags.get("goal") {
        None | Some("e2e") => OptGoal::EndToEnd,
        Some("processing") | Some("proc") => OptGoal::ProcessingOnly,
        Some(other) => return Err(CliError::Usage(format!("unknown goal `{other}`"))),
    })
}

fn is_bel(path: &Path) -> bool {
    path.extension().is_some_and(|e| e.eq_ignore_ascii_case("bel"))
}

/// Open a graph for analysis, format-dispatched by extension: `.bel` files
/// are memory-mapped zero-copy (no owned edge list); text edge lists are
/// materialized (analysis makes several passes — re-parsing text per pass
/// would dominate every timing).
fn open_graph(path: &Path) -> Result<Box<dyn GraphSource>, CliError> {
    if is_bel(path) {
        Ok(Box::new(BelSource::open(path)?))
    } else {
        Ok(Box::new(ease_repro::graph::io::read_edge_list(path)?))
    }
}

/// A streaming edge writer, format-dispatched like [`open_graph`].
enum EdgeOut {
    Text(TextEdgeListWriter),
    Bel(BelWriter),
}

impl EdgeOut {
    fn create(path: &Path, format: Option<&str>) -> Result<EdgeOut, CliError> {
        let bel = match format {
            Some("bel") => true,
            Some("txt") | Some("text") => false,
            Some(other) => return Err(CliError::Usage(format!("unknown format `{other}`"))),
            None => is_bel(path),
        };
        let out = if bel {
            EdgeOut::Bel(BelWriter::create(path).map_err(EaseError::Io)?)
        } else {
            EdgeOut::Text(TextEdgeListWriter::create(path).map_err(EaseError::Io)?)
        };
        Ok(out)
    }

    fn push(&mut self, e: Edge) -> std::io::Result<()> {
        match self {
            EdgeOut::Text(w) => w.push(e),
            EdgeOut::Bel(w) => w.push(e),
        }
    }

    /// Finish the file. `num_vertices` preserves an explicit vertex
    /// universe in both formats (`.bel` carries it in the header, text in
    /// the summary comment readers honour), so isolated trailing vertices
    /// survive every conversion direction.
    fn finish(self, num_vertices: Option<usize>) -> std::io::Result<()> {
        match (self, num_vertices) {
            (EdgeOut::Text(w), Some(n)) => w.finish_with_vertices(n),
            (EdgeOut::Text(w), None) => w.finish(),
            (EdgeOut::Bel(w), Some(n)) => w.finish_with_vertices(n),
            (EdgeOut::Bel(w), None) => w.finish(),
        }
    }

    fn format_name(&self) -> &'static str {
        match self {
            EdgeOut::Text(_) => "txt",
            EdgeOut::Bel(_) => "bel",
        }
    }
}

/// Stream edges from `emit` into `sink`, surfacing the first write error
/// (the emitter drains regardless — generator callbacks cannot be aborted
/// mid-stream, so errors are captured and rethrown after the pass).
fn drain_edges(
    emit: impl FnOnce(&mut dyn FnMut(Edge)),
    sink: &mut EdgeOut,
) -> Result<(), CliError> {
    let mut write_error: Option<std::io::Error> = None;
    emit(&mut |e| {
        if write_error.is_none() {
            if let Err(err) = sink.push(e) {
                write_error = Some(err);
            }
        }
    });
    match write_error {
        Some(err) => Err(CliError::Ease(EaseError::Io(err))),
        None => Ok(()),
    }
}

/// True when two paths refer to the same file. Canonicalization catches
/// symlinks and relative spellings; on unix the `(dev, ino)` pair also
/// catches hard links — truncating the output while the input's inode is
/// mapped or streamed would crash mid-read.
fn same_file(a: &Path, b: &Path) -> bool {
    #[cfg(unix)]
    {
        use std::os::unix::fs::MetadataExt;
        if let (Ok(ma), Ok(mb)) = (std::fs::metadata(a), std::fs::metadata(b)) {
            return ma.dev() == mb.dev() && ma.ino() == mb.ino();
        }
    }
    match (a.canonicalize(), b.canonicalize()) {
        (Ok(ca), Ok(cb)) => ca == cb,
        _ => false,
    }
}

fn cmd_train(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["quick", "deterministic"])?;
    let out = PathBuf::from(flags.require("out")?);
    let scale = parse_scale(&flags)?;
    let mut builder = EaseServiceBuilder::at_scale(scale);
    if flags.has("quick") {
        builder = builder.quick_grid();
    }
    if flags.has("deterministic") {
        builder = builder.timing(TimingMode::Deterministic);
    }
    if let Some(folds) = flags.parse_num::<usize>("folds")? {
        builder = builder.folds(folds);
    }
    if let Some(seed) = flags.parse_num::<u64>("seed")? {
        builder = builder.seed(seed);
    }
    if let Some(k) = flags.parse_num::<usize>("k")? {
        builder = builder.processing_k(k);
    }
    if let Some(cap) = flags.parse_num::<usize>("max-small")? {
        builder = builder.max_small_graphs(Some(cap));
    }
    if let Some(cap) = flags.parse_num::<usize>("max-large")? {
        builder = builder.max_large_graphs(Some(cap));
    }
    let cfg = builder.config();
    eprintln!(
        "training EASE: scale={} grid={} folds={} timing={} ({} + {} graphs)...",
        cfg.scale.name(),
        cfg.grid.len(),
        cfg.folds,
        cfg.timing.name(),
        cfg.small_inputs().len(),
        cfg.large_inputs().len(),
    );
    let start = std::time::Instant::now();
    let service = builder.train()?;
    service.save(&out)?;
    let size = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    eprintln!(
        "trained in {:.1}s, saved {} ({:.1} KiB)",
        start.elapsed().as_secs_f64(),
        out.display(),
        size as f64 / 1024.0
    );
    Ok(())
}

fn cmd_recommend(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &[])?;
    let model = PathBuf::from(flags.require("model")?);
    let graph_path = PathBuf::from(flags.require("graph")?);
    let workload = parse_workload(flags.get("workload").unwrap_or("pr"))?;
    let goal = parse_goal(&flags)?;
    let top = flags.parse_num::<usize>("top")?.unwrap_or(5);

    let service = EaseService::load(&model)?;
    // format-dispatched ingestion: `.bel` mmaps, text materializes
    let source = open_graph(&graph_path)?;
    let n = source.num_vertices();
    let m = source.edge_count();
    println!(
        "graph {}: |V|={} |E|={} mean-degree {:.2}",
        graph_path.display(),
        n,
        m,
        if n > 0 { 2.0 * m as f64 / n as f64 } else { 0.0 }
    );
    let k = flags.parse_num::<usize>("k")?.unwrap_or(service.meta().default_k);
    // graph-in query: extraction goes through the service's
    // fingerprint-keyed property cache; `.bel` inputs are analyzed
    // straight off the mapping (no owned edge list)
    let prepared = PreparedGraph::of_source(source.as_ref());
    let selection = service.recommend_prepared_with_k(&prepared, workload, k, goal)?;
    println!(
        "recommended partitioner for {} (k={k}, goal {}): {}",
        workload.label(),
        selection.goal.name(),
        selection.best.name()
    );
    let mut ranked = selection.candidates.clone();
    ranked.sort_by(|a, b| {
        let cost = |c: &ease_repro::core::selector::PredictedCosts| match goal {
            OptGoal::EndToEnd => c.end_to_end_secs,
            OptGoal::ProcessingOnly => c.processing_secs,
        };
        cost(a).partial_cmp(&cost(b)).expect("finite predictions")
    });
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>8}",
        "candidate", "pred-part", "pred-proc", "pred-e2e", "rf"
    );
    for c in ranked.iter().take(top) {
        println!(
            "{:<10} {:>11.4}s {:>11.4}s {:>11.4}s {:>8.2}",
            c.partitioner.name(),
            c.partitioning_secs,
            c.processing_secs,
            c.end_to_end_secs,
            c.quality.replication_factor
        );
    }
    Ok(())
}

fn cmd_features(args: &[String]) -> Result<(), CliError> {
    // accept the edge list as a positional first argument or via --graph
    let (positional, rest) = match args.first() {
        Some(first) if !first.starts_with("--") => (Some(first.clone()), &args[1..]),
        _ => (None, args),
    };
    let flags = Flags::parse(rest, &[])?;
    let graph_path = match (&positional, flags.get("graph")) {
        (Some(p), _) => PathBuf::from(p),
        (None, Some(p)) => PathBuf::from(p),
        (None, None) => return Err(CliError::Usage("features needs an edge-list path".into())),
    };
    let tier = match flags.get("tier") {
        None | Some("advanced") => PropertyTier::Advanced,
        Some("basic") => PropertyTier::Basic,
        Some("simple") => PropertyTier::Simple,
        Some(other) => return Err(CliError::Usage(format!("unknown tier `{other}`"))),
    };
    let source = open_graph(&graph_path)?;

    // cold: throwaway context per extraction (what a naive caller pays)
    let t = std::time::Instant::now();
    let cold = PreparedGraph::of_source(source.as_ref()).properties(tier);
    let cold_secs = t.elapsed().as_secs_f64();
    // prepared: one shared context; the first extraction builds the caches,
    // the second shows the steady-state cost of a warmed context
    let prepared = PreparedGraph::of_source(source.as_ref());
    let t = std::time::Instant::now();
    let first = GraphProperties::compute_prepared(&prepared, tier);
    let first_secs = t.elapsed().as_secs_f64();
    let t = std::time::Instant::now();
    let warm = GraphProperties::compute_prepared(&prepared, tier);
    let warm_secs = t.elapsed().as_secs_f64();
    assert_eq!(cold, first, "prepared extraction must match the cold path");
    assert_eq!(first, warm);

    println!(
        "graph {} (|V|={} |E|={}): {} tier",
        graph_path.display(),
        source.num_vertices(),
        source.edge_count(),
        tier.name()
    );
    println!("{:<20} {:>18}", "feature", "value");
    for (name, value) in GraphProperties::feature_names(tier).iter().zip(cold.feature_vector(tier))
    {
        println!("{name:<20} {value:>18.6}");
    }
    println!("fingerprint          0x{:016x}", prepared.fingerprint());
    let speedup = if warm_secs > 0.0 { cold_secs / warm_secs } else { f64::INFINITY };
    println!(
        "extraction: cold {:.3} ms | prepared first {:.3} ms | prepared warm {:.3} ms ({speedup:.0}x)",
        cold_secs * 1e3,
        first_secs * 1e3,
        warm_secs * 1e3,
    );
    Ok(())
}

fn cmd_inspect(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &[])?;
    let model = PathBuf::from(flags.require("model")?);
    let service = EaseService::load(&model)?;
    let info = service.info();
    println!("EASE service {}", model.display());
    println!("  scale:       {}", info.meta.scale.name());
    println!("  seed:        {:#x}", info.meta.seed);
    println!("  cv folds:    {}", info.meta.folds);
    println!("  timing:      {}", info.meta.timing.name());
    println!("  default k:   {}", info.meta.default_k);
    println!("  goal:        {}", info.meta.default_goal.name());
    println!("  feature tier: {}", info.tier.name());
    println!(
        "  catalog:     {}",
        info.catalog.iter().map(|p| p.name()).collect::<Vec<_>>().join(", ")
    );
    println!("  workloads:   {}", info.workloads.join(", "));
    println!("  models:");
    for (component, config, cv_mape) in &info.chosen {
        if cv_mape.is_nan() {
            println!("    {component:<28} {config}");
        } else {
            println!("    {component:<28} {config}  (cv MAPE {cv_mape:.3})");
        }
    }
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &[])?;
    let out = PathBuf::from(flags.require("out")?);
    let scale = parse_scale(&flags)?;
    let seed = flags.parse_num::<u64>("seed")?.unwrap_or(42);
    let kind_name = flags.get("kind").unwrap_or("soc");
    let io_err = |e: std::io::Error| CliError::Ease(EaseError::Io(e));

    if kind_name == "rmat" {
        // pure streaming: edges go from the generator straight into the
        // file writer — the graph is never materialized, so the size is
        // bounded by disk, not RAM. Validate every argument *before*
        // creating the output file, so usage errors leave nothing behind.
        let num_vertices = flags.parse_num::<usize>("vertices")?.unwrap_or(1 << 16);
        let num_edges = flags.parse_num::<usize>("edges")?.unwrap_or(1 << 19);
        let combo = flags.parse_num::<usize>("combo")?.unwrap_or(5);
        if combo >= RMAT_COMBOS.len() {
            return Err(CliError::Usage(format!("--combo must be 0..{}", RMAT_COMBOS.len() - 1)));
        }
        if num_vertices < 2 {
            return Err(CliError::Usage("--vertices must be >= 2".into()));
        }
        if num_vertices as u64 > u64::from(u32::MAX) + 1 {
            return Err(CliError::Usage(
                "--vertices exceeds the u32 vertex id space (max 4294967296)".into(),
            ));
        }
        let rmat = Rmat::new(RMAT_COMBOS[combo], num_vertices, num_edges, seed);
        let mut sink = EdgeOut::create(&out, flags.get("format"))?;
        let format = sink.format_name();
        drain_edges(|f| rmat.generate_into(f), &mut sink)?;
        sink.finish(Some(num_vertices)).map_err(io_err)?;
        eprintln!(
            "wrote {} (rmat C{}: |V|={num_vertices} |E|={num_edges}, {format}, streamed)",
            out.display(),
            combo + 1,
        );
        return Ok(());
    }

    let kind = GraphType::ALL
        .into_iter()
        .find(|t| t.name() == kind_name)
        .ok_or_else(|| CliError::Usage(format!("unknown graph kind `{kind_name}`")))?;
    let mut sink = EdgeOut::create(&out, flags.get("format"))?;
    let format = sink.format_name();
    // library generators materialize internally (multi-pass models); the
    // edges still stream into the writer rather than through a second copy
    let tg = generate_typed(kind, 0, scale, seed);
    for &e in tg.graph.edges() {
        sink.push(e).map_err(io_err)?;
    }
    sink.finish(Some(tg.graph.num_vertices())).map_err(io_err)?;
    eprintln!(
        "wrote {} ({}: |V|={} |E|={}, {format})",
        out.display(),
        tg.name,
        tg.graph.num_vertices(),
        tg.graph.num_edges(),
    );
    Ok(())
}

fn cmd_convert(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &[])?;
    let input = PathBuf::from(flags.require("in")?);
    let output = PathBuf::from(flags.require("out")?);
    let io_err = |e: std::io::Error| CliError::Ease(EaseError::Io(e));
    // Creating the output truncates it — converting a file onto itself
    // (same path, symlink, or hard link) would pull the mapped/streamed
    // input out from under the reader mid-pass.
    if same_file(&input, &output) {
        return Err(CliError::Usage("--in and --out must be different files".into()));
    }
    // Streaming in both directions: text input goes through the validating
    // stream reader (never holds the file), `.bel` input through the mmap.
    let source: Box<dyn GraphSource> = if is_bel(&input) {
        Box::new(BelSource::open(&input)?)
    } else {
        Box::new(TextStreamSource::open(&input)?)
    };
    let mut sink = EdgeOut::create(&output, flags.get("format"))?;
    let format = sink.format_name();
    drain_edges(|f| source.for_each_edge(f), &mut sink)?;
    sink.finish(Some(source.num_vertices())).map_err(io_err)?;
    eprintln!(
        "converted {} -> {} (|V|={} |E|={}, {format})",
        input.display(),
        output.display(),
        source.num_vertices(),
        source.edge_count(),
    );
    Ok(())
}
