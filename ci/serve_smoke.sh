#!/usr/bin/env bash
# `ease serve` smoke — start the daemon in the background on BOTH its unix
# socket and a TCP listener, hammer it with concurrent
# `ease client recommend` calls split across the two transports (the TCP
# clients speak the pipelined v2 framing), plus proxied recommends over
# every `--endpoint` scheme (unix:, tcp:, http:), diff every answer
# against the one-shot CLI output, drive the HTTP/JSON facade with raw
# HTTP (curl, or bash /dev/tcp where curl is absent) — recommend, stats,
# a 503 shed from a saturated budgeted fleet, and an HTTP shutdown — then
# exercise graceful shutdown and a zero exit.
#
# Usage: ci/serve_smoke.sh [path-to-ease-binary] [num-concurrent-clients]
# TCP ports default to 38471..38473; override the base with
# EASE_SMOKE_PORT. Runs locally and in CI (shellcheck-clean).
set -euo pipefail

EASE_BIN="${1:-target/release/ease}"
CLIENTS="${2:-8}"
PORT="${EASE_SMOKE_PORT:-38471}"
TCP_ADDR="127.0.0.1:$PORT"
ROUTER_ADDR="127.0.0.1:$((PORT + 1))"
SHED_ADDR="127.0.0.1:$((PORT + 2))"
if [[ ! -x "$EASE_BIN" ]]; then
    echo "ease binary not found at $EASE_BIN (build with: cargo build --release)" >&2
    exit 1
fi

smoke="$(mktemp -d)"
serve_pid=""
fleet_pids=()
cleanup() {
    if [[ -n "$serve_pid" ]] && kill -0 "$serve_pid" 2>/dev/null; then
        kill "$serve_pid" 2>/dev/null || true
    fi
    for pid in ${fleet_pids[@]+"${fleet_pids[@]}"}; do
        if kill -0 "$pid" 2>/dev/null; then
            kill "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$smoke"
}
trap cleanup EXIT

# One raw HTTP exchange: curl when present, bash /dev/tcp otherwise.
# Prints the response body, then the status code alone on the last line.
http_req() {
    local method="$1" addr="$2" target="$3"
    if command -v curl >/dev/null 2>&1; then
        curl -s -X "$method" -w '\n%{http_code}' "http://$addr$target"
    else
        local wire
        exec 3<>"/dev/tcp/${addr%:*}/${addr##*:}"
        printf '%s %s HTTP/1.1\r\nHost: %s\r\nContent-Length: 0\r\nConnection: close\r\n\r\n' \
            "$method" "$target" "$addr" >&3
        wire="$(tr -d '\r' <&3)"
        exec 3<&- 3>&-
        printf '%s\n%s' "$(sed '1,/^$/d' <<<"$wire")" \
            "$(head -n 1 <<<"$wire" | cut -d' ' -f2)"
    fi
}

# http_expect <method> <addr> <target> <status> <body-pattern>
http_expect() {
    local out status
    out="$(http_req "$1" "$2" "$3")"
    status="$(tail -n 1 <<<"$out")"
    if [[ "$status" != "$4" ]]; then
        echo "HTTP $1 $3 on $2: expected status $4, got $status" >&2
        echo "$out" >&2
        exit 1
    fi
    if ! head -n -1 <<<"$out" | grep -q "$5"; then
        echo "HTTP $1 $3 on $2: body missing \`$5\`:" >&2
        echo "$out" >&2
        exit 1
    fi
}

# fixtures: one graph in both ingestion formats, one trained model
"$EASE_BIN" gen --out "$smoke/graph.txt" --kind soc --scale tiny --seed 11
"$EASE_BIN" convert --in "$smoke/graph.txt" --out "$smoke/graph.bel"
"$EASE_BIN" train --out "$smoke/ease.model" --scale tiny --quick --deterministic \
    --folds 2 --max-small 8 --max-large 4

# one-shot reference answers (fresh process per query — the cold path)
"$EASE_BIN" recommend --model "$smoke/ease.model" --graph "$smoke/graph.txt" \
    --workload pr --goal e2e > "$smoke/oneshot_txt.out"
"$EASE_BIN" recommend --model "$smoke/ease.model" --graph "$smoke/graph.bel" \
    --workload pr --goal e2e > "$smoke/oneshot_bel.out"

sock="$smoke/ease.sock"
"$EASE_BIN" serve --model "$smoke/ease.model" --socket "$sock" --tcp "$TCP_ADDR" &
serve_pid=$!

# wait for the daemon to accept on both transports
ready=0
for _ in $(seq 1 100); do
    if "$EASE_BIN" client ping --socket "$sock" >/dev/null 2>&1 &&
        "$EASE_BIN" client ping --tcp "$TCP_ADDR" >/dev/null 2>&1; then
        ready=1
        break
    fi
    sleep 0.1
done
if [[ "$ready" -ne 1 ]]; then
    echo "daemon did not become ready on $sock + $TCP_ADDR" >&2
    exit 1
fi

# N concurrent clients, alternating text and mmap'd .bel ingestion AND
# alternating transports — the --tcp clients drive the v2 pipelined path
pids=()
for i in $(seq 1 "$CLIENTS"); do
    if (( i % 2 == 0 )); then
        graph="$smoke/graph.txt"
        ref="txt"
    else
        graph="$smoke/graph.bel"
        ref="bel"
    fi
    if (( (i / 2) % 2 == 0 )); then
        endpoint=(--endpoint "unix:$sock")
    else
        endpoint=(--endpoint "tcp:$TCP_ADDR")
    fi
    printf '%s' "$ref" > "$smoke/client_$i.ref"
    "$EASE_BIN" client recommend "${endpoint[@]}" --graph "$graph" \
        --workload pr --goal e2e > "$smoke/client_$i.out" &
    pids+=("$!")
done
for pid in "${pids[@]}"; do
    wait "$pid"
done
# every concurrent answer must be bit-identical to the one-shot CLI
for i in $(seq 1 "$CLIENTS"); do
    diff "$smoke/oneshot_$(cat "$smoke/client_$i.ref").out" "$smoke/client_$i.out"
done
echo "all $CLIENTS concurrent client answers (unix + tcp) are bit-identical to the one-shot CLI"

# the deprecated --daemon alias still answers (proxying via unix), with a
# one-line warning on stderr
"$EASE_BIN" recommend --daemon "$sock" --graph "$smoke/graph.txt" \
    --workload pr --goal e2e > "$smoke/proxy.out" 2> "$smoke/proxy.err"
diff "$smoke/oneshot_txt.out" "$smoke/proxy.out"
grep -q "deprecated" "$smoke/proxy.err"

# the --endpoint flag reaches the same daemon over pipelined v2 TCP...
"$EASE_BIN" recommend --endpoint "tcp:$TCP_ADDR" --graph "$smoke/graph.txt" \
    --workload pr --goal e2e > "$smoke/proxy_tcp.out"
diff "$smoke/oneshot_txt.out" "$smoke/proxy_tcp.out"

# ...and over HTTP/1.1 + JSON on the very same listener, still bit-identical
"$EASE_BIN" recommend --endpoint "http:$TCP_ADDR" --graph "$smoke/graph.bel" \
    --workload pr --goal e2e > "$smoke/proxy_http.out"
diff "$smoke/oneshot_bel.out" "$smoke/proxy_http.out"

# proxied feature extraction matches one-shot (wall-clock timing line stripped)
"$EASE_BIN" features "$smoke/graph.bel" --tier advanced \
    | head -n -1 > "$smoke/features_oneshot.out"
"$EASE_BIN" features "$smoke/graph.bel" --tier advanced --endpoint "unix:$sock" \
    | head -n -1 > "$smoke/features_proxy.out"
diff "$smoke/features_oneshot.out" "$smoke/features_proxy.out"

# warm-cache observability over both transports
"$EASE_BIN" client cache-stats --endpoint "unix:$sock"
"$EASE_BIN" client cache-stats --endpoint "tcp:$TCP_ADDR"

# raw HTTP (curl) against the very same port the v2 clients use
http_expect GET "$TCP_ADDR" /healthz 200 '"type":"pong"'
http_expect GET "$TCP_ADDR" \
    "/recommend?graph=$smoke/graph.bel&workload=pr&goal=e2e" 200 '"type":"answer"'
http_expect GET "$TCP_ADDR" /stats 200 '"type":"stats"'
http_expect GET "$TCP_ADDR" /nope 404 '"type":"error"'
echo "HTTP facade answers curl on the same listener as binary v2"

# graceful shutdown: daemon drains, removes its socket and exits 0
"$EASE_BIN" client shutdown --endpoint "unix:$sock"
wait "$serve_pid"
serve_pid=""
if [[ -e "$sock" ]]; then
    echo "socket file still present after shutdown" >&2
    exit 1
fi

# ---- router smoke: `ease route` fronting a 2-backend fleet -------------
# two fresh backends on unix sockets, one router fronting them; answers
# through the router must be bit-identical to the one-shot CLI, and one
# shutdown through the router must stop the whole fleet.
b1="$smoke/backend1.sock"
b2="$smoke/backend2.sock"
front="$smoke/router.sock"
"$EASE_BIN" serve --model "$smoke/ease.model" --socket "$b1" &
fleet_pids+=("$!")
"$EASE_BIN" serve --model "$smoke/ease.model" --socket "$b2" &
fleet_pids+=("$!")
for backend in "$b1" "$b2"; do
    ready=0
    for _ in $(seq 1 100); do
        if "$EASE_BIN" client ping --socket "$backend" >/dev/null 2>&1; then
            ready=1
            break
        fi
        sleep 0.1
    done
    if [[ "$ready" -ne 1 ]]; then
        echo "backend did not become ready on $backend" >&2
        exit 1
    fi
done
"$EASE_BIN" route --backend "unix:$b1" --backend "unix:$b2" --socket "$front" \
    --listen "$ROUTER_ADDR" &
fleet_pids+=("$!")
ready=0
for _ in $(seq 1 100); do
    if "$EASE_BIN" client ping --socket "$front" >/dev/null 2>&1; then
        ready=1
        break
    fi
    sleep 0.1
done
if [[ "$ready" -ne 1 ]]; then
    echo "router did not become ready on $front" >&2
    exit 1
fi

# routed answers, cold then warm, byte-diffed against the one-shot CLI
for pass in cold warm; do
    for ref in txt bel; do
        "$EASE_BIN" client recommend --endpoint "unix:$front" \
            --graph "$smoke/graph.$ref" \
            --workload pr --goal e2e > "$smoke/routed_${pass}_$ref.out"
        diff "$smoke/oneshot_$ref.out" "$smoke/routed_${pass}_$ref.out"
    done
done
echo "routed answers (cold + warm, both graphs) are bit-identical to the one-shot CLI"

# HTTP through the router front: the one sniffing listener serves curl too,
# bit-identically (the CLI decodes the JSON envelope), and /stats folds the
# whole fleet
"$EASE_BIN" recommend --endpoint "http:$ROUTER_ADDR" --graph "$smoke/graph.bel" \
    --workload pr --goal e2e > "$smoke/routed_http.out"
diff "$smoke/oneshot_bel.out" "$smoke/routed_http.out"
http_expect GET "$ROUTER_ADDR" /stats 200 '"type":"stats"'
echo "HTTP facade answers through the router fleet"

# fleet-wide cache stats through the router (folds both backends)
"$EASE_BIN" client cache-stats --endpoint "unix:$front"

# graceful fleet shutdown: one shutdown through the router stops the
# router AND both backends (forward-shutdown defaults on)
"$EASE_BIN" client shutdown --endpoint "unix:$front"
for pid in "${fleet_pids[@]}"; do
    wait "$pid"
done
fleet_pids=()
for s in "$front" "$b1" "$b2"; do
    if [[ -e "$s" ]]; then
        echo "socket file $s still present after fleet shutdown" >&2
        exit 1
    fi
done
echo "router smoke passed: fleet answered identically and stopped as one"

# ---- HTTP 503: a saturated budgeted fleet sheds over HTTP --------------
# one backend whose analysis budget is far below the query's estimated
# derived-CSR footprint: the router sheds with a typed overload answer,
# which the facade maps to 503 Service Unavailable; then an HTTP POST
# /shutdown drains the whole fleet.
b3="$smoke/budgeted.sock"
"$EASE_BIN" serve --model "$smoke/ease.model" --socket "$b3" --memory-budget 4096 &
fleet_pids+=("$!")
ready=0
for _ in $(seq 1 100); do
    if "$EASE_BIN" client ping --endpoint "unix:$b3" >/dev/null 2>&1; then
        ready=1
        break
    fi
    sleep 0.1
done
if [[ "$ready" -ne 1 ]]; then
    echo "budgeted backend did not become ready on $b3" >&2
    exit 1
fi
"$EASE_BIN" route --backend "unix:$b3" --listen "$SHED_ADDR" &
fleet_pids+=("$!")
ready=0
for _ in $(seq 1 100); do
    if "$EASE_BIN" client ping --endpoint "tcp:$SHED_ADDR" >/dev/null 2>&1; then
        ready=1
        break
    fi
    sleep 0.1
done
if [[ "$ready" -ne 1 ]]; then
    echo "shed router did not become ready on $SHED_ADDR" >&2
    exit 1
fi
http_expect GET "$SHED_ADDR" \
    "/recommend?graph=$smoke/graph.bel&workload=pr" 503 '"type":"overloaded"'
http_expect POST "$SHED_ADDR" /shutdown 200 '"type":"shutting-down"'
for pid in "${fleet_pids[@]}"; do
    wait "$pid"
done
fleet_pids=()
echo "saturated fleet shed over HTTP with 503 and drained on HTTP shutdown"
echo "serve smoke passed"
