#!/usr/bin/env bash
# Workspace static analysis: run the ease-lint policy checks as a gate.
#
# Clippy knows Rust; ease-lint knows this workspace — the atomic-ordering
# policy, panic-free daemon paths, SAFETY-comment hygiene, locks held
# across socket I/O, and single-definition protocol magics. Any
# unannotated finding exits nonzero.
#
# Usage: ci/lint.sh [extra ease-lint args, e.g. --only atomic-ordering]
# Runs locally and in CI (shellcheck-clean). `cargo run -p ease-lint -- --list`
# enumerates the checks; `--explain <check>` prints the full rule.
set -euo pipefail

cd "$(dirname "$0")/.."
cargo run --quiet -p ease-lint -- --root . "$@"
