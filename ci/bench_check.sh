#!/usr/bin/env bash
# Gate benchmark artifacts — every `*_speedup` field in each produced
# BENCH_pr*.json must meet the `<field>_min` bound recorded in the same
# file, and every `*_ratio` field must stay at or below its `<field>_max`
# bound (ratios measure consumption against an allowance, e.g. peak RSS
# over a memory budget, so smaller is better). The bench bins self-assert
# at run time; this re-checks the JSON that actually lands in the repo
# (and fails on bounds that were never recorded), so a stale or
# hand-edited artifact cannot sneak past CI.
#
# Usage: ci/bench_check.sh [BENCH files...]   (default: BENCH_pr*.json)
set -euo pipefail

if [[ $# -eq 0 ]]; then
    set -- BENCH_pr*.json
fi

python3 - "$@" <<'PY'
import json
import sys

failed = False
for path in sys.argv[1:]:
    with open(path) as f:
        data = json.load(f)
    checked = 0
    for key in sorted(data):
        if key == "speedup" or key.endswith("_speedup"):
            value = data[key]
            bound = data.get(f"{key}_min")
            if bound is None:
                print(f"FAIL {path}: {key}={value} has no recorded {key}_min bound")
                failed = True
            elif float(value) < float(bound):
                print(f"FAIL {path}: {key}={value} fell below its recorded bound {bound}")
                failed = True
            else:
                print(f"ok   {path}: {key}={value} >= {bound}")
                checked += 1
        elif key == "ratio" or key.endswith("_ratio"):
            value = data[key]
            bound = data.get(f"{key}_max")
            if bound is None:
                print(f"FAIL {path}: {key}={value} has no recorded {key}_max bound")
                failed = True
            elif float(value) > float(bound):
                print(f"FAIL {path}: {key}={value} exceeded its recorded bound {bound}")
                failed = True
            else:
                print(f"ok   {path}: {key}={value} <= {bound}")
                checked += 1
    if checked == 0 and not failed:
        print(f"note {path}: no *_speedup or *_ratio fields to check")
sys.exit(1 if failed else 0)
PY
