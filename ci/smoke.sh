#!/usr/bin/env bash
# Service lifecycle smoke — train in one process, persist, reload in fresh
# processes, answer identically; exercise zero-copy .bel ingestion, format
# round trips, streaming generation and typed error paths, all through the
# `ease` CLI.
#
# Usage: ci/smoke.sh [path-to-ease-binary]
# Runs locally and in CI (shellcheck-clean).
set -euo pipefail

EASE_BIN="${1:-target/release/ease}"
if [[ ! -x "$EASE_BIN" ]]; then
    echo "ease binary not found at $EASE_BIN (build with: cargo build --release)" >&2
    exit 1
fi

smoke="$(mktemp -d)"
trap 'rm -rf "$smoke"' EXIT

"$EASE_BIN" gen --out "$smoke/graph.txt" --kind soc --scale tiny --seed 7
"$EASE_BIN" train --out "$smoke/ease.model" --scale tiny --quick --deterministic \
    --folds 2 --max-small 8 --max-large 4
"$EASE_BIN" inspect --model "$smoke/ease.model"
"$EASE_BIN" recommend --model "$smoke/ease.model" --graph "$smoke/graph.txt" \
    --workload pr --goal e2e | tee "$smoke/first.out"
"$EASE_BIN" recommend --model "$smoke/ease.model" --graph "$smoke/graph.txt" \
    --workload pr --goal e2e | tee "$smoke/second.out"
# a reloaded service must answer identically across processes
diff "$smoke/first.out" "$smoke/second.out"

# feature extraction with cold-vs-prepared timings
"$EASE_BIN" features "$smoke/graph.txt" --tier advanced

# zero-copy ingestion: convert to the binary format, mmap it, and require
# bit-identical answers to the text path (PR 4 acceptance)
"$EASE_BIN" convert --in "$smoke/graph.txt" --out "$smoke/graph.bel"
"$EASE_BIN" recommend --model "$smoke/ease.model" --graph "$smoke/graph.bel" \
    --workload pr --goal e2e | tee "$smoke/bel.out"
diff <(tail -n +2 "$smoke/first.out") <(tail -n +2 "$smoke/bel.out")
"$EASE_BIN" features "$smoke/graph.bel" --tier advanced | head -n -1 > "$smoke/f_bel.out"
"$EASE_BIN" features "$smoke/graph.txt" --tier advanced | head -n -1 > "$smoke/f_txt.out"
diff <(tail -n +2 "$smoke/f_txt.out") <(tail -n +2 "$smoke/f_bel.out")

# out-of-core mode: a zero budget forces every CSR build to spill to disk
# (PR 8); answers must be byte-identical to the in-heap path apart from
# the trailing timing line
"$EASE_BIN" features "$smoke/graph.bel" --tier advanced --memory-budget 0 \
    | head -n -1 > "$smoke/f_spill.out"
diff <(tail -n +2 "$smoke/f_bel.out") <(tail -n +2 "$smoke/f_spill.out")
"$EASE_BIN" recommend --model "$smoke/ease.model" --graph "$smoke/graph.bel" \
    --workload pr --goal e2e --memory-budget 64k | tee "$smoke/spill.out"
diff "$smoke/bel.out" "$smoke/spill.out"

# binary round trip preserves the stream
"$EASE_BIN" convert --in "$smoke/graph.bel" --out "$smoke/back.txt"
diff <(grep -v '^#' "$smoke/graph.txt") <(grep -v '^#' "$smoke/back.txt")

# streaming generation straight to .bel (never materializes)
"$EASE_BIN" gen --out "$smoke/big.bel" --kind rmat --vertices 65536 --edges 500000 --seed 9
"$EASE_BIN" features "$smoke/big.bel" --tier basic

# typed errors, not panics: malformed graph input reports the line
printf '0 1\nbroken token\n' > "$smoke/bad.txt"
if "$EASE_BIN" recommend --model "$smoke/ease.model" --graph "$smoke/bad.txt"; then
    echo "expected a parse failure" >&2
    exit 1
fi
# ...and corrupt binary input is a typed format error
printf 'NOTABEL!' > "$smoke/bad.bel"
if "$EASE_BIN" features "$smoke/bad.bel"; then
    echo "expected a format failure" >&2
    exit 1
fi

echo "lifecycle smoke passed"
