//! Cross-crate correctness of the distributed engine: algorithm outputs
//! must be independent of the partitioning (placement changes cost, never
//! results).

use ease_repro::graph::Graph;
use ease_repro::graphgen::rmat::{Rmat, RMAT_COMBOS};
use ease_repro::partition::PartitionerId;
use ease_repro::procsim::algorithms::{ConnectedComponents, PageRank, Sssp};
use ease_repro::procsim::engine::run;
use ease_repro::procsim::{ClusterSpec, DistributedGraph};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (0usize..9, 150usize..900, 0u64..30)
        .prop_map(|(combo, edges, seed)| Rmat::new(RMAT_COMBOS[combo], 256, edges, seed).generate())
}

fn arb_partitioner() -> impl Strategy<Value = PartitionerId> {
    prop::sample::select(PartitionerId::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// PageRank results are identical regardless of the partitioner.
    #[test]
    fn pagerank_is_placement_independent(
        g in arb_graph(),
        p1 in arb_partitioner(),
        p2 in arb_partitioner(),
        k in 2usize..9,
    ) {
        let prog = PageRank::new(5);
        let dg1 = DistributedGraph::build(&g, &p1.build(1).partition(&g, k));
        let dg2 = DistributedGraph::build(&g, &p2.build(2).partition(&g, k));
        let (_, r1) = run(&prog, &dg1, &ClusterSpec::new(k));
        let (_, r2) = run(&prog, &dg2, &ClusterSpec::new(k));
        for v in 0..g.num_vertices() {
            prop_assert!((r1[v] - r2[v]).abs() < 1e-9, "vertex {v}: {} vs {}", r1[v], r2[v]);
        }
    }

    /// Connected-component labels form a valid partition: endpoints of
    /// every edge share a label, and the label is the component minimum.
    #[test]
    fn cc_labels_consistent(g in arb_graph(), p in arb_partitioner(), k in 2usize..9) {
        let dg = DistributedGraph::build(&g, &p.build(3).partition(&g, k));
        let (_, labels) = run(&ConnectedComponents, &dg, &ClusterSpec::new(k));
        for e in g.edges() {
            prop_assert_eq!(labels[e.src as usize], labels[e.dst as usize]);
        }
        // a label must point at a vertex inside the component
        for v in 0..g.num_vertices() {
            if g.total_degrees()[v] > 0 {
                prop_assert!(labels[v] as usize <= v);
            }
        }
    }

    /// SSSP distances satisfy the triangle inequality along edges:
    /// dist(dst) ≤ dist(src) + 1 for every reached source.
    #[test]
    fn sssp_relaxation_holds(g in arb_graph(), p in arb_partitioner(), k in 2usize..9) {
        let dg = DistributedGraph::build(&g, &p.build(4).partition(&g, k));
        let prog = Sssp::with_random_source(&dg, 7);
        let (_, dist) = run(&prog, &dg, &ClusterSpec::new(k));
        prop_assert_eq!(dist[prog.source as usize], 0);
        for e in g.edges() {
            let ds = dist[e.src as usize];
            let dd = dist[e.dst as usize];
            if ds != u32::MAX {
                prop_assert!(dd <= ds + 1, "edge {}->{}: {} vs {}", e.src, e.dst, ds, dd);
            }
        }
    }

    /// The simulated time is always positive and grows with more machines'
    /// traffic under heavier replication.
    #[test]
    fn sim_time_positive(g in arb_graph(), p in arb_partitioner(), k in 2usize..9) {
        let dg = DistributedGraph::build(&g, &p.build(5).partition(&g, k));
        let report = ease_repro::procsim::Workload::PageRank { iterations: 3 }
            .execute(&dg, &ClusterSpec::new(k));
        prop_assert!(report.total_secs > 0.0);
        prop_assert_eq!(report.supersteps, 3);
    }
}
