//! Integration suite for the HTTP/JSON facade (PR 10 tentpole).
//!
//! The acceptance bar: raw-socket HTTP requests against the daemon's
//! sniffing listener get answers whose JSON-envelope payload is
//! *bit-identical* to the one-shot CLI, for text and `.bel` inputs,
//! through a single daemon and through a 2-backend router fleet; the
//! JSON codec round-trips arbitrary values and protocol envelopes
//! (property tests); and malformed or oversized HTTP never kills a
//! worker — the same daemon keeps answering binary v2 afterwards.
#![cfg(unix)]

use ease_repro::core::profiling::TimingMode;
use ease_repro::graph::io::TextEdgeListWriter;
use ease_repro::graph::{bel, open_path, PropertyTier};
use ease_repro::graphgen::realworld::socfb_analogue;
use ease_repro::graphgen::Scale;
use ease_repro::partition::PartitionerId;
use ease_repro::procsim::Workload;
use ease_repro::serve::json::Value;
use ease_repro::serve::{
    self, Endpoint, PipelinedClient, Request, Response, RouterConfig, ServeConfig,
};
use ease_repro::{EaseService, EaseServiceBuilder, OptGoal};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::{Arc, OnceLock};

// ---------------------------------------------------------------------
// Fixtures and raw-socket helpers
// ---------------------------------------------------------------------

struct Fixtures {
    dir: PathBuf,
    model: PathBuf,
    /// The same graph content in both ingestion formats.
    txt: PathBuf,
    bel: PathBuf,
}

fn fixtures() -> &'static Fixtures {
    static FIXTURES: OnceLock<Fixtures> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        let dir = std::env::temp_dir().join("ease_serve_http_suite");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("create fixture dir");
        let g = socfb_analogue(Scale::Tiny, 7).graph;
        let txt = dir.join("graph.txt");
        let mut w = TextEdgeListWriter::create(&txt).expect("create txt");
        for &e in g.edges() {
            w.push(e).expect("write edge");
        }
        w.finish_with_vertices(g.num_vertices()).expect("finish txt");
        let bel_path = dir.join("graph.bel");
        bel::write_bel(&g, &bel_path).expect("write bel");
        let model = dir.join("ease.model");
        let service = EaseServiceBuilder::at_scale(Scale::Tiny)
            .quick_grid()
            .max_small_graphs(Some(6))
            .max_large_graphs(Some(4))
            .partition_counts(vec![2, 4])
            .partitioners(vec![PartitionerId::OneDD, PartitionerId::Dbh, PartitionerId::Ne])
            .workloads(vec![Workload::PageRank { iterations: 10 }, Workload::ConnectedComponents])
            .folds(2)
            .timing(TimingMode::Deterministic)
            .train()
            .expect("train fixture service");
        service.save(&model).expect("save fixture model");
        Fixtures { dir, model, txt, bel: bel_path }
    })
}

/// An in-process daemon on an ephemeral TCP port — the listener every
/// HTTP test speaks to (the same one binary v2 clients use).
fn start_daemon(workers: usize) -> (serve::ServerHandle, String) {
    let fx = fixtures();
    let service = Arc::new(EaseService::load(&fx.model).expect("load fixture model"));
    let handle = serve::serve(service, ServeConfig::tcp_at("127.0.0.1:0").workers(workers))
        .expect("bind daemon");
    let addr = handle.tcp_addr().expect("tcp listener bound").to_string();
    (handle, addr)
}

/// A 2-backend fleet behind a router, all on ephemeral TCP ports.
fn start_fleet(tag: &str) -> (Vec<serve::ServerHandle>, serve::ServerHandle, String) {
    let (backend_a, addr_a) = start_daemon(2);
    let (backend_b, addr_b) = start_daemon(2);
    let config = RouterConfig::new(
        ServeConfig::tcp_at("127.0.0.1:0").workers(2),
        vec![Endpoint::tcp(addr_a), Endpoint::tcp(addr_b)],
    )
    .health_interval(std::time::Duration::from_secs(60))
    .forward_shutdown(false);
    let router = serve::route(config).expect("bind router");
    let front = router.tcp_addr().unwrap_or_else(|| panic!("{tag}: router tcp bound")).to_string();
    (vec![backend_a, backend_b], router, front)
}

/// One raw-socket HTTP exchange with `Connection: close`: exactly what
/// `curl` puts on the wire, minus nothing. Returns (status line, body).
fn http_get(addr: &str, target: &str) -> (String, String) {
    http_raw(addr, &format!("GET {target} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"))
}

fn http_post(addr: &str, target: &str, body: &str) -> (String, String) {
    http_raw(
        addr,
        &format!(
            "POST {target} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn http_raw(addr: &str, raw: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("send request");
    let mut wire = Vec::new();
    stream.read_to_end(&mut wire).expect("read response");
    let text = String::from_utf8(wire).expect("utf8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("head/body split");
    let status = head.lines().next().expect("status line").to_string();
    (status, body.to_string())
}

/// Pull a field out of a JSON envelope, panicking with the whole body on
/// any shape surprise — test failures should show what came back.
fn envelope_field<'a>(body: &'a Value, key: &str) -> &'a Value {
    match body {
        Value::Obj(_) => body.get(key).unwrap_or_else(|| panic!("no `{key}` in {body:?}")),
        other => panic!("expected a JSON object envelope, got {other:?}"),
    }
}

fn parse_envelope(body: &str, expected_type: &str) -> Value {
    let value = serve::json::parse(body).expect("valid JSON body");
    assert_eq!(
        envelope_field(&value, "type").as_str(),
        Some(expected_type),
        "envelope type in {body}"
    );
    value
}

/// What a one-shot `ease recommend` prints — the bit-identity reference.
fn one_shot_answer(graph: &Path, workload: &str) -> String {
    let fx = fixtures();
    let service = EaseService::load(&fx.model).expect("load model");
    let source = open_path(graph).expect("open graph");
    let wl = Workload::from_name(workload).expect("known workload");
    serve::render_recommendation(
        &service,
        graph.to_str().expect("utf8 path"),
        source.as_ref(),
        wl,
        service.meta().default_k,
        OptGoal::EndToEnd,
        serve::DEFAULT_TOP,
        None,
    )
    .expect("render one-shot answer")
}

fn run_cli(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_ease")).args(args).output().expect("run ease CLI");
    (
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        String::from_utf8(out.stderr).expect("utf8 stderr"),
        out.status.success(),
    )
}

// ---------------------------------------------------------------------
// Bit-identity through the daemon
// ---------------------------------------------------------------------

#[test]
fn http_answers_are_bit_identical_to_one_shot_for_text_and_bel() {
    let fx = fixtures();
    let (daemon, addr) = start_daemon(2);
    for graph in [&fx.txt, &fx.bel] {
        let expected = one_shot_answer(graph, "pr");
        let target = format!("/recommend?graph={}&workload=pr", graph.display());
        let (status, body) = http_get(&addr, &target);
        assert_eq!(status, "HTTP/1.1 200 OK");
        let envelope = parse_envelope(&body, "answer");
        assert_eq!(
            envelope_field(&envelope, "answer").as_str(),
            Some(expected.as_str()),
            "the JSON envelope carries the one-shot bytes verbatim"
        );
    }
    // GET /healthz answers the protocol ping
    let (status, body) = http_get(&addr, "/healthz");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let pong = parse_envelope(&body, "pong");
    assert_eq!(envelope_field(&pong, "version").as_u64(), Some(2));
    daemon.trigger_shutdown();
    daemon.join().expect("daemon join");
}

#[test]
fn http_features_match_the_renderer_modulo_the_timing_line() {
    let fx = fixtures();
    let (daemon, addr) = start_daemon(2);
    let source = open_path(&fx.bel).expect("open graph");
    let reference = serve::render_features(
        fx.bel.to_str().expect("utf8 path"),
        source.as_ref(),
        PropertyTier::Basic,
        None,
    )
    .expect("render features");
    let (status, body) =
        http_get(&addr, &format!("/features?graph={}&tier=basic", fx.bel.display()));
    assert_eq!(status, "HTTP/1.1 200 OK");
    let envelope = parse_envelope(&body, "answer");
    let got = envelope_field(&envelope, "answer").as_str().expect("answer text");
    // the trailing line carries wall-clock extraction timings; everything
    // above it is deterministic and must match bit-for-bit
    let strip_last = |text: &str| {
        let mut lines: Vec<&str> = text.lines().collect();
        lines.pop();
        lines.join("\n")
    };
    assert_eq!(strip_last(got), strip_last(&reference));
    daemon.trigger_shutdown();
    daemon.join().expect("daemon join");
}

#[test]
fn the_cli_http_endpoint_matches_the_one_shot_cli_bit_for_bit() {
    let fx = fixtures();
    let (daemon, addr) = start_daemon(2);
    let model = fx.model.to_str().expect("utf8 model");
    for graph in [&fx.txt, &fx.bel] {
        let graph = graph.to_str().expect("utf8 graph");
        let (expected, _, ok) =
            run_cli(&["recommend", "--model", model, "--graph", graph, "--workload", "pr"]);
        assert!(ok, "one-shot CLI succeeds");
        let (got, _, ok) = run_cli(&[
            "recommend",
            "--endpoint",
            &format!("http:{addr}"),
            "--graph",
            graph,
            "--workload",
            "pr",
        ]);
        assert!(ok, "HTTP-proxied CLI succeeds");
        assert_eq!(got, expected, "`--endpoint http:` output is bit-identical to one-shot");
    }
    // the deprecated alias spelling still works, with a warning line
    let graph = fx.txt.to_str().expect("utf8 graph");
    let (_, stderr, ok) =
        run_cli(&["recommend", "--daemon-tcp", &addr, "--graph", graph, "--workload", "pr"]);
    assert!(ok, "deprecated --daemon-tcp still answers");
    assert!(stderr.contains("deprecated"), "alias warns once: {stderr}");
    daemon.trigger_shutdown();
    daemon.join().expect("daemon join");
}

// ---------------------------------------------------------------------
// Bit-identity and stats through the router fleet
// ---------------------------------------------------------------------

#[test]
fn http_through_a_router_fleet_is_bit_identical_and_folds_stats() {
    let fx = fixtures();
    let (backends, router, front) = start_fleet("http-fleet");
    for graph in [&fx.txt, &fx.bel] {
        let expected = one_shot_answer(graph, "pr");
        let (status, body) =
            http_get(&front, &format!("/recommend?graph={}&workload=pr", graph.display()));
        assert_eq!(status, "HTTP/1.1 200 OK");
        let envelope = parse_envelope(&body, "answer");
        assert_eq!(envelope_field(&envelope, "answer").as_str(), Some(expected.as_str()));
    }
    // GET /stats through the router folds every healthy backend
    let (status, body) = http_get(&front, "/stats");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let stats = parse_envelope(&body, "stats");
    // the .txt and .bel twins share a content fingerprint: one analysis
    // per backend they hash to, so 1 miss (same backend, second query
    // hits the cache) or 2 (split across the fleet)
    let misses = envelope_field(&stats, "misses").as_u64().expect("misses");
    assert!((1..=2).contains(&misses), "fleet analyzed the graph: {stats:?}");
    assert!(envelope_field(&stats, "memory_budget_remaining").is_null(), "unbudgeted fleet");
    assert_eq!(envelope_field(&stats, "spilled_csr_builds").as_u64(), Some(0));
    router.trigger_shutdown();
    router.join().expect("router join");
    for handle in backends {
        handle.trigger_shutdown();
        handle.join().expect("backend join");
    }
}

// ---------------------------------------------------------------------
// Error statuses, keep-alive, and robustness
// ---------------------------------------------------------------------

#[test]
fn http_errors_carry_typed_statuses_and_json_bodies() {
    let fx = fixtures();
    let (daemon, addr) = start_daemon(2);
    // a graph path that does not open → 404 with the typed error body
    let (status, body) =
        http_get(&addr, &format!("/recommend?graph={}/nope.bel&workload=pr", fx.dir.display()));
    assert_eq!(status, "HTTP/1.1 404 Not Found");
    let error = parse_envelope(&body, "error");
    let message = envelope_field(&error, "error").as_str().expect("error text");
    assert!(message.contains("I/O error:"), "got: {message}");
    // an unknown workload → 400, same body shape
    let (status, body) =
        http_get(&addr, &format!("/recommend?graph={}&workload=nope", fx.txt.display()));
    assert_eq!(status, "HTTP/1.1 400 Bad Request");
    parse_envelope(&body, "error");
    // an unknown endpoint → 404 without ever reaching the executor
    let (status, _) = http_get(&addr, "/api/v1/recommend");
    assert_eq!(status, "HTTP/1.1 404 Not Found");
    daemon.trigger_shutdown();
    daemon.join().expect("daemon join");
}

#[test]
fn http_keep_alive_pipelines_requests_on_one_connection() {
    let (daemon, addr) = start_daemon(2);
    let mut stream = TcpStream::connect(&addr).expect("connect");
    let read_one = |stream: &mut TcpStream| -> (String, String) {
        let mut head = Vec::new();
        let mut byte = [0u8; 1];
        while !head.ends_with(b"\r\n\r\n") {
            stream.read_exact(&mut byte).expect("head byte");
            head.push(byte[0]);
        }
        let head = String::from_utf8(head).expect("utf8 head");
        let length: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("content-length")
            .trim()
            .parse()
            .expect("numeric length");
        let mut body = vec![0u8; length];
        stream.read_exact(&mut body).expect("body");
        (head.lines().next().expect("status").to_string(), String::from_utf8(body).expect("utf8"))
    };
    for _ in 0..3 {
        stream
            .write_all(format!("GET /healthz HTTP/1.1\r\nHost: {addr}\r\n\r\n").as_bytes())
            .expect("send");
        let (status, body) = read_one(&mut stream);
        assert_eq!(status, "HTTP/1.1 200 OK");
        parse_envelope(&body, "pong");
    }
    // the daemon counted every request on the shared connection
    let (_, body) = http_get(&addr, "/stats");
    let stats = parse_envelope(&body, "stats");
    assert_eq!(envelope_field(&stats, "requests_served").as_u64(), Some(4));
    daemon.trigger_shutdown();
    daemon.join().expect("daemon join");
}

#[test]
fn malformed_and_oversized_http_never_kill_the_daemon() {
    let (daemon, addr) = start_daemon(2);
    // a malformed request line: answered 400, connection closed
    let (status, _) = http_raw(&addr, "GET gibberish\r\n\r\n");
    assert_eq!(status, "HTTP/1.1 400 Bad Request");
    // an oversized head: rejected before buffering it all
    let (status, body) =
        http_raw(&addr, &format!("GET /x?pad={} HTTP/1.1\r\n\r\n", "a".repeat(10 << 10)));
    assert_eq!(status, "HTTP/1.1 400 Bad Request");
    assert!(body.contains("head exceeds"), "got: {body}");
    // a peer that vanishes mid-head: nothing to answer, nothing to kill
    {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream.write_all(b"GET /healthz HTT").expect("partial head");
    }
    // the same daemon still answers HTTP...
    let (status, _) = http_get(&addr, "/healthz");
    assert_eq!(status, "HTTP/1.1 200 OK");
    // ...and still answers binary v2 on the very same listener
    let mut v2 = PipelinedClient::connect(&Endpoint::tcp(addr)).expect("v2 connect");
    match v2.call(&Request::Ping).expect("v2 ping") {
        Response::Pong { version } => assert_eq!(version, 2),
        other => panic!("expected Pong, got {other:?}"),
    }
    daemon.trigger_shutdown();
    daemon.join().expect("daemon join");
}

#[test]
fn http_shutdown_drains_the_daemon() {
    let (daemon, addr) = start_daemon(2);
    let (status, body) = http_post(&addr, "/shutdown", "");
    assert_eq!(status, "HTTP/1.1 200 OK");
    parse_envelope(&body, "shutting-down");
    let summary = daemon.join().expect("daemon drains after HTTP shutdown");
    assert_eq!(summary.requests_served, 1);
}

// ---------------------------------------------------------------------
// JSON codec property tests
// ---------------------------------------------------------------------

/// Characters chosen to stress every escaping path: quotes, backslashes,
/// control bytes, multi-byte UTF-8, and astral-plane (surrogate pair)
/// code points.
const TRICKY_CHARS: &[char] =
    &['a', 'Z', '"', '\\', '\n', '\r', '\t', '\u{0}', '\u{1f}', '/', 'é', '語', '\u{1F600}', ' '];

fn string_from(seed: u64) -> String {
    let len = (seed % 9) as usize;
    (0..len)
        .map(|i| {
            TRICKY_CHARS[(seed.rotate_left(7 * i as u32) % TRICKY_CHARS.len() as u64) as usize]
        })
        .collect()
}

/// Deterministically fold a seed stream into a JSON value tree, depth-
/// bounded so nesting never approaches the parser's cap.
fn value_from(seeds: &mut std::vec::IntoIter<u64>, depth: usize) -> Value {
    let Some(seed) = seeds.next() else { return Value::Null };
    match seed % if depth >= 3 { 5 } else { 7 } {
        0 => Value::Null,
        1 => Value::Bool(seed % 2 == 0),
        2 => Value::UInt(seed),
        // always fractional, so rendering never collapses it to an integer
        3 => Value::Num((seed % 100_000) as f64 + 0.5),
        4 => Value::str(string_from(seed)),
        5 => {
            let len = (seed % 4) as usize;
            Value::Arr((0..len).map(|_| value_from(seeds, depth + 1)).collect())
        }
        _ => {
            let len = (seed % 4) as usize;
            Value::Obj(
                (0..len)
                    .map(|i| {
                        (
                            format!("k{i}-{}", string_from(seed ^ i as u64)),
                            value_from(seeds, depth + 1),
                        )
                    })
                    .collect(),
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// render → parse is the identity on every value tree the codec can
    /// produce, including tricky strings and nested containers.
    #[test]
    fn json_values_round_trip_through_render_and_parse(
        seeds in prop::collection::vec(0u64..u64::MAX, 1..48),
    ) {
        let value = value_from(&mut seeds.into_iter(), 0);
        let rendered = value.render();
        let parsed = serve::json::parse(&rendered)
            .unwrap_or_else(|e| panic!("rendered JSON must parse: {e} in {rendered}"));
        prop_assert_eq!(&parsed, &value);
        // and rendering is deterministic: a second trip is bit-identical
        prop_assert_eq!(parsed.render(), rendered);
    }

    /// The protocol's request envelope round-trips arbitrary path and
    /// workload spellings — what `POST /rpc` (the `--endpoint http:`
    /// client) depends on.
    #[test]
    fn request_envelopes_round_trip(
        graph_seed in 0u64..u64::MAX,
        workload_seed in 0u64..u64::MAX,
        k in 0usize..64,
        with_k in 0u8..2,
        goal_is_e2e in 0u8..2,
        top in 1usize..12,
    ) {
        let request = Request::Recommend {
            graph: format!("graphs/{}.bel", string_from(graph_seed)),
            workload: string_from(workload_seed),
            k: (with_k == 1).then_some(k),
            goal: if goal_is_e2e == 1 { OptGoal::EndToEnd } else { OptGoal::ProcessingOnly },
            top,
            cwd: Some(string_from(graph_seed ^ workload_seed)),
        };
        let round_tripped = Request::from_json(&request.to_json())
            .unwrap_or_else(|e| panic!("request envelope must parse: {e}"));
        prop_assert_eq!(round_tripped, request);
    }

    /// The response envelope round-trips arbitrary answer payloads —
    /// the exact bytes HTTP clients diff against the one-shot CLI.
    #[test]
    fn response_envelopes_round_trip(
        answer_seed in 0u64..u64::MAX,
        needed in 0u64..u64::MAX,
        headroom in 0u64..u64::MAX,
    ) {
        for response in [
            Response::Answer(format!("{}\n", string_from(answer_seed))),
            Response::Error(string_from(answer_seed.rotate_left(13))),
            Response::Overloaded { needed, headroom },
        ] {
            let round_tripped = Response::from_json(&response.to_json())
                .unwrap_or_else(|e| panic!("response envelope must parse: {e}"));
            prop_assert_eq!(round_tripped, response);
        }
    }
}
