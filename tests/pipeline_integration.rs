//! Full-system integration: train EASE end-to-end at tiny scale and verify
//! the selector's statistical behaviour on unseen graphs — the miniature
//! version of the paper's Table VIII experiment.

use ease_repro::core::evaluation::{evaluate_selection, group_truth};
use ease_repro::core::pipeline::{train_ease, EaseConfig};
use ease_repro::core::profiling::{profile_processing_with, GraphInput, TimingMode};
use ease_repro::core::selector::OptGoal;
use ease_repro::graph::GraphProperties;
use ease_repro::graphgen::Scale;
use ease_repro::partition::PartitionerId;
use ease_repro::procsim::Workload;

fn tiny_config() -> EaseConfig {
    let mut cfg = EaseConfig::at_scale(Scale::Tiny);
    cfg.max_small_graphs = Some(20);
    cfg.max_large_graphs = Some(10);
    cfg.ks = vec![2, 4, 8];
    cfg.partitioners = vec![
        PartitionerId::OneDD,
        PartitionerId::TwoD,
        PartitionerId::Dbh,
        PartitionerId::Hdrf,
        PartitionerId::TwoPs,
        PartitionerId::Ne,
    ];
    cfg.workloads = vec![
        Workload::PageRank { iterations: 5 },
        Workload::ConnectedComponents,
        Workload::Synthetic { s: 10, iterations: 3 },
    ];
    cfg
}

#[test]
fn selector_beats_worst_and_tracks_random() {
    // A *statistical* assertion needs reproducible inputs: at tiny scale
    // partitioning times are microsecond measurements, so under the default
    // `Measured` mode scheduler noise leaks into the training data and this
    // test would be flaky. The deterministic proxy keeps the property
    // strict AND reproducible; `Measured` stays the default everywhere else.
    let mut cfg = tiny_config();
    cfg.timing = TimingMode::Deterministic;
    let (ease, artifacts) = train_ease(&cfg);
    assert!(!artifacts.quality_records.is_empty());
    assert!(!artifacts.processing_records.is_empty());

    // unseen test graphs from the real-world library (distribution shift)
    let test_inputs = GraphInput::from_tests(
        ease_repro::graphgen::realworld::standard_test_set(Scale::Tiny, 1234)
            .into_iter()
            .step_by(8)
            .take(8)
            .collect(),
    );
    let records = profile_processing_with(
        &test_inputs,
        &cfg.partitioners,
        cfg.processing_k,
        &cfg.workloads,
        99,
        cfg.timing,
    );
    let groups = group_truth(&records);
    assert_eq!(groups.len(), 8 * cfg.workloads.len());

    for goal in [OptGoal::EndToEnd, OptGoal::ProcessingOnly] {
        let (rows, stats) = evaluate_selection(&ease, &groups, cfg.processing_k, goal);
        assert_eq!(rows.len(), cfg.workloads.len());
        // bracketing: S_O ≤ S_PS ≤ S_W on every averaged row
        for row in &rows {
            assert!(row.vs_optimal >= 1.0 - 1e-9, "{goal:?} {row:?}");
            assert!(row.vs_worst <= 1.0 + 1e-9, "{goal:?} {row:?}");
        }
        // the headline property of the paper: on average the learned
        // selector is no worse than uniform random selection
        assert!(
            stats.avg_vs_random <= 1.05,
            "{goal:?}: S_PS averaged {} of random",
            stats.avg_vs_random
        );
        assert!(stats.optimal_pick_rate >= 0.0 && stats.optimal_pick_rate <= 1.0);
    }
}

#[test]
fn predictions_are_physically_consistent() {
    let cfg = tiny_config();
    let (ease, _) = train_ease(&cfg);
    let tg = ease_repro::graphgen::realworld::socfb_analogue(Scale::Tiny, 5);
    let props = GraphProperties::compute_advanced(&tg.graph);
    for &p in &cfg.partitioners {
        let costs = ease.predict_costs(&props, Workload::PageRank { iterations: 5 }, 4, p);
        assert!(costs.quality.replication_factor >= 1.0);
        assert!(costs.partitioning_secs >= 0.0);
        assert!(costs.processing_secs > 0.0);
        assert!(
            (costs.end_to_end_secs - costs.partitioning_secs - costs.processing_secs).abs() < 1e-9
        );
    }
}

/// With `TimingMode::Deterministic`, the FULL pipeline is a pure function
/// of its config: two `train_ease` runs with the same `EaseConfig` and RNG
/// seed must produce bit-identical predicted costs and identical
/// selections. This is the regression guard for future parallelism PRs —
/// any scheduling-order dependence in profiling or training breaks it.
#[test]
fn same_config_same_seed_same_selection() {
    let mut cfg = tiny_config();
    cfg.max_small_graphs = Some(8);
    cfg.max_large_graphs = Some(6);
    cfg.timing = TimingMode::Deterministic;
    cfg.seed = 0xD5EED;

    let (sys_a, art_a) = train_ease(&cfg);
    let (sys_b, art_b) = train_ease(&cfg);

    // the profiled training records themselves are bit-identical
    assert_eq!(art_a.quality_records.len(), art_b.quality_records.len());
    for (ra, rb) in art_a.quality_records.iter().zip(&art_b.quality_records) {
        assert_eq!(ra.graph_name, rb.graph_name);
        assert_eq!(ra.partitioner, rb.partitioner);
        assert_eq!(ra.k, rb.k);
        assert_eq!(ra.metrics.replication_factor, rb.metrics.replication_factor);
        assert_eq!(ra.partitioning_secs, rb.partitioning_secs);
    }
    assert_eq!(art_a.processing_records.len(), art_b.processing_records.len());
    for (ra, rb) in art_a.processing_records.iter().zip(&art_b.processing_records) {
        assert_eq!(ra.graph_name, rb.graph_name);
        assert_eq!(ra.partitioning_secs, rb.partitioning_secs);
        assert_eq!(ra.target_secs, rb.target_secs);
    }

    // ... and so are the trained systems' predictions and selections
    for graph_seed in [5u64, 9, 21] {
        let tg = ease_repro::graphgen::realworld::socfb_analogue(Scale::Tiny, graph_seed);
        let props = GraphProperties::compute_advanced(&tg.graph);
        for &w in &cfg.workloads {
            for goal in [OptGoal::EndToEnd, OptGoal::ProcessingOnly] {
                let sa = sys_a.select(&props, w, cfg.processing_k, goal);
                let sb = sys_b.select(&props, w, cfg.processing_k, goal);
                assert_eq!(sa.best, sb.best, "{w:?} {goal:?} graph_seed={graph_seed}");
                assert_eq!(sa.candidates.len(), sb.candidates.len());
                for (ca, cb) in sa.candidates.iter().zip(&sb.candidates) {
                    assert_eq!(ca.end_to_end_secs, cb.end_to_end_secs);
                    assert_eq!(ca.partitioning_secs, cb.partitioning_secs);
                    assert_eq!(ca.processing_secs, cb.processing_secs);
                    assert_eq!(ca.quality.replication_factor, cb.quality.replication_factor);
                }
            }
        }
    }
}

/// Full-pipeline retraining under the default `TimingMode::Measured` is NOT
/// bit-identical because partitioning run-times are *measured wall-clock
/// values* (by design — the paper's step 2 measures real partitioners).
/// Determinism is promised one level down: identical training records yield
/// identical models, and a trained system is a pure function of its inputs.
#[test]
fn trained_system_is_deterministic_given_records() {
    let cfg = {
        let mut c = tiny_config();
        c.max_small_graphs = Some(6);
        c.max_large_graphs = Some(4);
        c.partitioners = vec![PartitionerId::Dbh, PartitionerId::Ne];
        c.workloads = vec![Workload::PageRank { iterations: 3 }];
        c
    };
    let (ease_sys, artifacts) = train_ease(&cfg);
    // retrain the quality predictor from the SAME records: predictions match
    let qp2 = ease_repro::core::predictors::QualityPredictor::train(
        &artifacts.quality_records,
        cfg.tier,
        &cfg.grid,
        cfg.folds,
        cfg.seed,
    );
    let tg = ease_repro::graphgen::realworld::socfb_analogue(Scale::Tiny, 9);
    let props = GraphProperties::compute_advanced(&tg.graph);
    for &p in &cfg.partitioners {
        let a = ease_sys.quality.predict(&props, p, 4);
        let b = qp2.predict(&props, p, 4);
        assert!((a.replication_factor - b.replication_factor).abs() < 1e-12);
        assert!((a.vertex_balance - b.vertex_balance).abs() < 1e-12);
    }
    // selection on a fixed trained system is a pure function
    let s1 = ease_sys.select(&props, Workload::PageRank { iterations: 3 }, 4, OptGoal::EndToEnd);
    let s2 = ease_sys.select(&props, Workload::PageRank { iterations: 3 }, 4, OptGoal::EndToEnd);
    assert_eq!(s1.best, s2.best);
    for (ca, cb) in s1.candidates.iter().zip(&s2.candidates) {
        assert!((ca.end_to_end_secs - cb.end_to_end_secs).abs() < 1e-12);
    }
}
