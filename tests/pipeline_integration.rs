//! Full-system integration: train EASE end-to-end at tiny scale and verify
//! the selector's statistical behaviour on unseen graphs — the miniature
//! version of the paper's Table VIII experiment.

use ease_repro::core::evaluation::{evaluate_selection, group_truth};
use ease_repro::core::pipeline::{train_ease, EaseConfig};
use ease_repro::core::profiling::{profile_processing, GraphInput};
use ease_repro::core::selector::OptGoal;
use ease_repro::graph::GraphProperties;
use ease_repro::graphgen::Scale;
use ease_repro::partition::PartitionerId;
use ease_repro::procsim::Workload;

fn tiny_config() -> EaseConfig {
    let mut cfg = EaseConfig::at_scale(Scale::Tiny);
    cfg.max_small_graphs = Some(20);
    cfg.max_large_graphs = Some(10);
    cfg.ks = vec![2, 4, 8];
    cfg.partitioners = vec![
        PartitionerId::OneDD,
        PartitionerId::TwoD,
        PartitionerId::Dbh,
        PartitionerId::Hdrf,
        PartitionerId::TwoPs,
        PartitionerId::Ne,
    ];
    cfg.workloads = vec![
        Workload::PageRank { iterations: 5 },
        Workload::ConnectedComponents,
        Workload::Synthetic { s: 10, iterations: 3 },
    ];
    cfg
}

#[test]
fn selector_beats_worst_and_tracks_random() {
    let cfg = tiny_config();
    let (ease, artifacts) = train_ease(&cfg);
    assert!(!artifacts.quality_records.is_empty());
    assert!(!artifacts.processing_records.is_empty());

    // unseen test graphs from the real-world library (distribution shift)
    let test_inputs = GraphInput::from_tests(
        ease_repro::graphgen::realworld::standard_test_set(Scale::Tiny, 1234)
            .into_iter()
            .step_by(8)
            .take(8)
            .collect(),
    );
    let records = profile_processing(
        &test_inputs,
        &cfg.partitioners,
        cfg.processing_k,
        &cfg.workloads,
        99,
    );
    let groups = group_truth(&records);
    assert_eq!(groups.len(), 8 * cfg.workloads.len());

    for goal in [OptGoal::EndToEnd, OptGoal::ProcessingOnly] {
        let (rows, stats) = evaluate_selection(&ease, &groups, cfg.processing_k, goal);
        assert_eq!(rows.len(), cfg.workloads.len());
        // bracketing: S_O ≤ S_PS ≤ S_W on every averaged row
        for row in &rows {
            assert!(row.vs_optimal >= 1.0 - 1e-9, "{goal:?} {row:?}");
            assert!(row.vs_worst <= 1.0 + 1e-9, "{goal:?} {row:?}");
        }
        // the headline property of the paper: on average the learned
        // selector is no worse than uniform random selection
        assert!(
            stats.avg_vs_random <= 1.05,
            "{goal:?}: S_PS averaged {} of random",
            stats.avg_vs_random
        );
        assert!(stats.optimal_pick_rate >= 0.0 && stats.optimal_pick_rate <= 1.0);
    }
}

#[test]
fn predictions_are_physically_consistent() {
    let cfg = tiny_config();
    let (ease, _) = train_ease(&cfg);
    let tg = ease_repro::graphgen::realworld::socfb_analogue(Scale::Tiny, 5);
    let props = GraphProperties::compute_advanced(&tg.graph);
    for &p in &cfg.partitioners {
        let costs = ease.predict_costs(&props, Workload::PageRank { iterations: 5 }, 4, p);
        assert!(costs.quality.replication_factor >= 1.0);
        assert!(costs.partitioning_secs >= 0.0);
        assert!(costs.processing_secs > 0.0);
        assert!(
            (costs.end_to_end_secs - costs.partitioning_secs - costs.processing_secs).abs()
                < 1e-9
        );
    }
}

/// Full-pipeline retraining is NOT bit-identical because partitioning
/// run-times are *measured wall-clock values* (by design — the paper's
/// step 2 measures real partitioners). Determinism is promised one level
/// down: identical training records yield identical models, and a trained
/// system is a pure function of its inputs.
#[test]
fn trained_system_is_deterministic_given_records() {
    let cfg = {
        let mut c = tiny_config();
        c.max_small_graphs = Some(6);
        c.max_large_graphs = Some(4);
        c.partitioners = vec![PartitionerId::Dbh, PartitionerId::Ne];
        c.workloads = vec![Workload::PageRank { iterations: 3 }];
        c
    };
    let (ease_sys, artifacts) = train_ease(&cfg);
    // retrain the quality predictor from the SAME records: predictions match
    let qp2 = ease_repro::core::predictors::QualityPredictor::train(
        &artifacts.quality_records,
        cfg.tier,
        &cfg.grid,
        cfg.folds,
        cfg.seed,
    );
    let tg = ease_repro::graphgen::realworld::socfb_analogue(Scale::Tiny, 9);
    let props = GraphProperties::compute_advanced(&tg.graph);
    for &p in &cfg.partitioners {
        let a = ease_sys.quality.predict(&props, p, 4);
        let b = qp2.predict(&props, p, 4);
        assert!((a.replication_factor - b.replication_factor).abs() < 1e-12);
        assert!((a.vertex_balance - b.vertex_balance).abs() < 1e-12);
    }
    // selection on a fixed trained system is a pure function
    let s1 = ease_sys.select(&props, Workload::PageRank { iterations: 3 }, 4, OptGoal::EndToEnd);
    let s2 = ease_sys.select(&props, Workload::PageRank { iterations: 3 }, 4, OptGoal::EndToEnd);
    assert_eq!(s1.best, s2.best);
    for (ca, cb) in s1.candidates.iter().zip(&s2.candidates) {
        assert!((ca.end_to_end_secs - cb.end_to_end_secs).abs() < 1e-12);
    }
}
