//! Out-of-core derived state acceptance locks (PR 8 tentpole).
//!
//! The memory budget promises that *where* a derived CSR lives — heap or a
//! memory-mapped temp spill — never changes *what* any consumer computes:
//! neighbors, degrees, triangle stats, properties, fingerprints and every
//! partitioner's assignment must be bit-identical between the in-heap and
//! spilled builds, for every shard count, and both must match a plain
//! sequential sort/dedup reference. The spill files themselves must never
//! outlive their CSR (unlink-after-mmap), and the in-place sharded
//! simplify must not regress to the pre-refactor second full-size targets
//! buffer — locked with a thread-local allocation counter.
#![cfg(unix)]

use ease_repro::core::profiling::TimingMode;
use ease_repro::graph::csr::Direction;
use ease_repro::graph::{Csr, Graph, MemoryBudget, VertexId};
use ease_repro::graphgen::rmat::{Rmat, RMAT_COMBOS};
use ease_repro::graphgen::Scale;
use ease_repro::partition::PartitionerId;
use ease_repro::procsim::Workload;
use ease_repro::serve::{self, Request, ServeConfig};
use ease_repro::{EaseServiceBuilder, PreparedGraph};
use proptest::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------
// Thread-local allocation counter (same pattern as tests/graph_source.rs:
// only the calling thread is charged, so the lock is immune to the test
// harness's other threads).
// ---------------------------------------------------------------------

thread_local! {
    static TRACKING: Cell<bool> = const { Cell::new(false) };
    static ALLOCATED: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: pure pass-through to `System`; the thread-local counter taps use
// `Cell`s, never allocate, and cannot re-enter the allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.with(|t| t.get()) {
            ALLOCATED.with(|a| a.set(a.get() + layout.size() as u64));
        }
        // SAFETY: caller upholds GlobalAlloc's contract for `layout`.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` come from the paired `alloc` call above.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Run `f`, returning its result and the bytes allocated *by this thread*.
fn tracked<T>(f: impl FnOnce() -> T) -> (T, u64) {
    ALLOCATED.with(|a| a.set(0));
    TRACKING.with(|t| t.set(true));
    let out = f();
    TRACKING.with(|t| t.set(false));
    (out, ALLOCATED.with(|a| a.get()))
}

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

static DIR_TAG: AtomicU64 = AtomicU64::new(0);

/// A fresh, empty spill directory unique to this test + process.
fn spill_dir(tag: &str) -> PathBuf {
    let n = DIR_TAG.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok(unique-name counter)
    let dir = std::env::temp_dir().join(format!("ease_ooc_{tag}_{}_{n}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create spill dir");
    dir
}

fn dir_entries(dir: &std::path::Path) -> Vec<String> {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .collect()
        })
        .unwrap_or_default()
}

/// A zero-budget [`MemoryBudget`] spilling into `dir` — every memoized CSR
/// build is forced out of core.
fn zero_budget(dir: &std::path::Path) -> Arc<MemoryBudget> {
    Arc::new(MemoryBudget::bytes(0).with_spill_dir(dir))
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (0usize..9, 40usize..600, 0u64..50)
        .prop_map(|(combo, edges, seed)| Rmat::new(RMAT_COMBOS[combo], 128, edges, seed).generate())
}

/// Storage-independent dump of a CSR: `(per-vertex degree, all targets in
/// vertex order)`. Equal dumps mean bit-identical adjacency regardless of
/// whether the CSR lives on the heap or in a mapped spill.
fn dump(csr: &Csr) -> (Vec<usize>, Vec<VertexId>) {
    let n = csr.num_vertices();
    let mut degrees = Vec::with_capacity(n);
    let mut targets = Vec::with_capacity(csr.num_entries());
    for v in 0..n as VertexId {
        degrees.push(csr.degree(v));
        targets.extend_from_slice(csr.neighbors(v));
    }
    (degrees, targets)
}

/// The pre-refactor sequential simplify, reconstructed as an obviously
/// correct reference: take the raw undirected CSR, then per vertex sort,
/// drop self-loops and deduplicate into fresh buffers.
fn reference_simplified(g: &Graph) -> (Vec<usize>, Vec<VertexId>) {
    let raw = Csr::build(g, Direction::Undirected);
    let n = raw.num_vertices();
    let mut degrees = Vec::with_capacity(n);
    let mut targets = Vec::new();
    for v in 0..n as VertexId {
        let mut list: Vec<VertexId> = raw.neighbors(v).to_vec();
        list.sort_unstable();
        list.dedup();
        list.retain(|&t| t != v);
        degrees.push(list.len());
        targets.extend_from_slice(&list);
    }
    (degrees, targets)
}

// ---------------------------------------------------------------------
// Proptests: heap, spilled and reference builds are indistinguishable
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The sharded in-place simplify and the budget-0 spilled build both
    /// match the sequential sort/dedup reference bit-for-bit, for every
    /// shard count.
    #[test]
    fn sharded_and_spilled_simplify_match_the_sequential_reference(g in arb_graph()) {
        let reference = reference_simplified(&g);
        for shards in [1usize, 2, 3, 5, 8] {
            let heap = Csr::build_undirected_simple_source(&g, shards);
            prop_assert!(!heap.is_spilled());
            prop_assert_eq!(&dump(&heap), &reference, "heap shards={}", shards);
            let dir = spill_dir("prop");
            let chunk = 1 << 12; // tiny chunks: many spill passes per graph
            let spilled = Csr::build_spilled(&g, Direction::Undirected, shards, true, chunk, &dir)
                .expect("spilled build");
            prop_assert!(spilled.is_spilled());
            prop_assert_eq!(&dump(&spilled), &reference, "spilled shards={}", shards);
            // unlink-after-mmap: nothing on disk even while the CSR lives
            prop_assert_eq!(dir_entries(&dir), Vec::<String>::new());
            drop(spilled);
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    /// A zero budget (everything spills) and an unlimited budget (nothing
    /// spills) agree bit-for-bit on every analysis output and on every
    /// partitioner's assignment, across shard counts.
    #[test]
    fn spilled_analysis_is_bit_identical_for_every_partitioner(g in arb_graph()) {
        for shards in [1usize, 4] {
            let dir = spill_dir("analysis");
            let spilled_ctx = PreparedGraph::of(&g)
                .with_shards(shards)
                .with_memory_budget(zero_budget(&dir));
            let heap_ctx = PreparedGraph::of(&g).with_shards(shards);
            // adjacency served through the budgeted context is spilled
            spilled_ctx.undirected_simple();
            prop_assert!(spilled_ctx.spilled_csr_builds() >= 1);
            prop_assert_eq!(dump(spilled_ctx.undirected_simple()), dump(heap_ctx.undirected_simple()));
            prop_assert_eq!(dump(spilled_ctx.out_csr()), dump(heap_ctx.out_csr()));
            prop_assert_eq!(dump(spilled_ctx.in_csr()), dump(heap_ctx.in_csr()));
            // every derived analysis quantity is bit-identical
            prop_assert_eq!(spilled_ctx.fingerprint(), heap_ctx.fingerprint());
            prop_assert_eq!(spilled_ctx.triangle_counts(), heap_ctx.triangle_counts());
            let (s, h) = (spilled_ctx.triangle_stats(), heap_ctx.triangle_stats());
            prop_assert_eq!(s.avg_triangles.to_bits(), h.avg_triangles.to_bits());
            prop_assert_eq!(s.avg_lcc.to_bits(), h.avg_lcc.to_bits());
            let tier = ease_repro::graph::PropertyTier::Advanced;
            prop_assert_eq!(spilled_ctx.properties(tier), heap_ctx.properties(tier));
            // every partitioner in the registry assigns identically
            for id in PartitionerId::ALL {
                let p = id.build(17);
                let a = p.partition_prepared(&spilled_ctx, 4);
                let b = p.partition_prepared(&heap_ctx, 4);
                prop_assert_eq!(a, b, "partitioner {} diverged on spilled adjacency", id.name());
            }
            drop(spilled_ctx);
            prop_assert_eq!(dir_entries(&dir), Vec::<String>::new());
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

// ---------------------------------------------------------------------
// Budget regression locks
// ---------------------------------------------------------------------

#[test]
fn zero_budget_forces_spill_and_unlimited_never_spills() {
    let g = Rmat::new(RMAT_COMBOS[5], 256, 4_000, 11).generate();
    let dir = spill_dir("force");
    let zero = zero_budget(&dir);
    let spilled_ctx = PreparedGraph::of(&g).with_memory_budget(Arc::clone(&zero));
    assert!(spilled_ctx.undirected_simple().is_spilled());
    assert!(spilled_ctx.out_csr().is_spilled());
    assert!(spilled_ctx.in_csr().is_spilled());
    assert_eq!(spilled_ctx.spilled_csr_builds(), 3);
    assert_eq!(zero.charged(), 0, "a zero budget never grants heap charges");

    let unlimited = Arc::new(MemoryBudget::unlimited());
    let heap_ctx = PreparedGraph::of(&g).with_memory_budget(Arc::clone(&unlimited));
    assert!(!heap_ctx.undirected_simple().is_spilled());
    assert!(!heap_ctx.out_csr().is_spilled());
    assert!(!heap_ctx.in_csr().is_spilled());
    assert_eq!(heap_ctx.spilled_csr_builds(), 0);
    assert_eq!(dump(spilled_ctx.undirected_simple()), dump(heap_ctx.undirected_simple()));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn spill_files_never_outlive_the_prepared_graph() {
    let g = Rmat::new(RMAT_COMBOS[2], 200, 3_000, 3).generate();
    let dir = spill_dir("hygiene");
    {
        let ctx = PreparedGraph::of(&g).with_memory_budget(zero_budget(&dir));
        let csr = ctx.undirected_simple();
        assert!(csr.is_spilled());
        assert!(csr.num_entries() > 0);
        // unlink-after-mmap: the directory is already empty while the
        // mapped CSR is still alive and serving neighbor queries
        assert_eq!(dir_entries(&dir), Vec::<String>::new(), "spill visible during life");
        let _ = ctx.in_csr();
        let _ = ctx.out_csr();
        assert_eq!(dir_entries(&dir), Vec::<String>::new());
    }
    assert_eq!(dir_entries(&dir), Vec::<String>::new(), "spill left behind after drop");
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// In-place simplify allocation lock
// ---------------------------------------------------------------------

/// The simplify pass compacts in place: it must NOT allocate a second
/// full-size targets buffer (the pre-refactor implementation built the
/// deduplicated adjacency into a fresh `Vec` nearly as large as the raw
/// one). Dense graph, so the `2|E|` targets dominate every `O(|V|)` table.
#[test]
fn undirected_simplify_compacts_in_place_without_a_second_targets_buffer() {
    let g = Rmat::new(RMAT_COMBOS[5], 256, 20_000, 13).generate();
    let n = g.num_vertices();
    let entries = g.num_edges() * 2;
    let raw_bytes = Csr::heap_bytes(n, entries) as u64;
    let (csr, allocated) = tracked(|| Csr::build_undirected_simple(&g));
    assert!(csr.num_entries() < entries, "simplify removed duplicates/self-loops");
    // raw build (offsets + targets + count table) plus slack; a second
    // full-size targets vector (+8 bytes x |E|) would blow this bound
    let bound = raw_bytes + raw_bytes / 2;
    assert!(
        allocated < bound,
        "simplify allocated {allocated} bytes (raw CSR is {raw_bytes}; bound {bound}) — \
         did the in-place compaction regress to a copy?"
    );
}

// ---------------------------------------------------------------------
// Daemon spill hygiene: budgeted answers are bit-identical (modulo the
// timing line) and shutdown leaves the spill directory empty
// ---------------------------------------------------------------------

/// Strip the run-dependent trailing extraction-timing line (the CI diff
/// idiom for features output).
fn strip_timing(answer: &str) -> String {
    let mut lines: Vec<&str> = answer.lines().collect();
    assert!(lines.last().is_some_and(|l| l.starts_with("extraction:")), "timing line present");
    lines.pop();
    lines.join("\n")
}

#[test]
fn budgeted_daemon_spills_serves_identical_answers_and_cleans_up_on_shutdown() {
    let dir = spill_dir("daemon");
    let fixture_dir = spill_dir("daemon_fixtures");
    // a tiny trained service: the daemon needs one to serve at all, even
    // though features answers never touch the model
    let service = EaseServiceBuilder::at_scale(Scale::Tiny)
        .quick_grid()
        .max_small_graphs(Some(4))
        .max_large_graphs(Some(2))
        .partition_counts(vec![2])
        .partitioners(vec![PartitionerId::OneDD, PartitionerId::Dbh])
        .workloads(vec![Workload::PageRank { iterations: 5 }])
        .folds(2)
        .timing(TimingMode::Deterministic)
        .train()
        .expect("train tiny service");
    let graph = fixture_dir.join("graph.txt");
    let g = Rmat::new(RMAT_COMBOS[5], 512, 6_000, 21).generate();
    ease_repro::graph::io::write_edge_list(&g, &graph).expect("write graph");

    // reference: the unbudgeted one-shot features answer
    let source = ease_repro::graph::open_path(&graph).expect("open graph");
    let graph_str = graph.to_str().expect("utf8").to_string();
    let tier = ease_repro::graph::PropertyTier::Advanced;
    let expected =
        serve::render_features(&graph_str, source.as_ref(), tier, None).expect("one-shot features");

    let socket = fixture_dir.join("daemon.sock");
    let budget = zero_budget(&dir);
    let config = ServeConfig::at(&socket).workers(2).memory_budget(Arc::clone(&budget));
    let handle = serve::serve(Arc::new(service), config).expect("bind daemon");
    let request = Request::Features { graph: graph_str, tier, cwd: None };
    let answer = serve::expect_answer(serve::call(&socket, &request).expect("daemon call"))
        .expect("features answer");
    assert_eq!(
        strip_timing(&answer),
        strip_timing(&expected),
        "budgeted daemon answer must match the unbudgeted one-shot answer"
    );
    // the request's analysis really went out of core...
    assert_eq!(budget.charged(), 0, "zero budget: nothing on the heap ledger");
    // ...and the daemon never leaves a spill behind, even mid-flight
    assert_eq!(dir_entries(&dir), Vec::<String>::new(), "spills visible while serving");
    handle.trigger_shutdown();
    handle.join().expect("clean join");
    assert_eq!(dir_entries(&dir), Vec::<String>::new(), "spills left behind after shutdown");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&fixture_dir).ok();
}
