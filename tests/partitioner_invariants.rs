//! Property-based invariants that every partitioner must satisfy,
//! exercised across crates on generated graphs.

use ease_repro::graph::Graph;
use ease_repro::graphgen::rmat::{Rmat, RmatParams};
use ease_repro::partition::{metrics::QualityMetrics, PartitionerId};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (6u32..10, 200usize..1_500, 0u64..50, 0usize..9).prop_map(|(vexp, edges, seed, combo)| {
        let params = ease_repro::graphgen::rmat::RMAT_COMBOS[combo];
        Rmat::new(params, 1usize << vexp, edges, seed).generate()
    })
}

fn arb_partitioner() -> impl Strategy<Value = PartitionerId> {
    prop::sample::select(PartitionerId::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every edge is assigned exactly once to a valid partition.
    #[test]
    fn assignment_is_total_and_in_range(
        g in arb_graph(),
        p in arb_partitioner(),
        k in 1usize..33,
        seed in 0u64..10,
    ) {
        let part = p.build(seed).partition(&g, k);
        prop_assert_eq!(part.num_edges(), g.num_edges());
        prop_assert!(part.assignment().iter().all(|&x| (x as usize) < k));
    }

    /// Quality metrics live in their mathematical domains:
    /// RF ∈ [1, k], balances ≥ 1 and ≤ k.
    #[test]
    fn metric_domains(
        g in arb_graph(),
        p in arb_partitioner(),
        k in 2usize..17,
        seed in 0u64..5,
    ) {
        let part = p.build(seed).partition(&g, k);
        let m = QualityMetrics::compute(&g, &part);
        prop_assert!(m.replication_factor >= 1.0 - 1e-9);
        prop_assert!(m.replication_factor <= k as f64 + 1e-9);
        for b in [m.edge_balance, m.vertex_balance, m.source_balance, m.dest_balance] {
            prop_assert!(b >= 1.0 - 1e-9, "balance {b}");
            prop_assert!(b <= k as f64 + 1e-9, "balance {b}");
        }
    }

    /// k = 1 is always the perfect partitioning.
    #[test]
    fn single_partition_is_ideal(g in arb_graph(), p in arb_partitioner()) {
        let part = p.build(1).partition(&g, 1);
        let m = QualityMetrics::compute(&g, &part);
        prop_assert!((m.replication_factor - 1.0).abs() < 1e-12);
        prop_assert!((m.edge_balance - 1.0).abs() < 1e-12);
    }

    /// Determinism: same seed -> identical partitioning.
    #[test]
    fn determinism(g in arb_graph(), p in arb_partitioner(), k in 2usize..9) {
        let a = p.build(77).partition(&g, k);
        let b = p.build(77).partition(&g, k);
        prop_assert_eq!(a.assignment(), b.assignment());
    }

    /// CRVC keeps reciprocal edge pairs together.
    #[test]
    fn crvc_reciprocal_colocation(edges in prop::collection::vec((0u32..64, 0u32..64), 10..100)) {
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for (a, b) in edges {
            if a != b {
                pairs.push((a, b));
                pairs.push((b, a));
            }
        }
        prop_assume!(!pairs.is_empty());
        let g = Graph::from_pairs(pairs.clone());
        let part = PartitionerId::Crvc.build(5).partition(&g, 8);
        for i in (0..pairs.len()).step_by(2) {
            prop_assert_eq!(part.partition_of(i), part.partition_of(i + 1));
        }
    }

    /// 2D never exceeds the grid replication bound 2·⌈√k⌉ − 1.
    #[test]
    fn two_d_replication_bound(g in arb_graph(), k in 2usize..65) {
        let part = PartitionerId::TwoD.build(3).partition(&g, k);
        let bound = 2 * (k as f64).sqrt().ceil() as usize - 1;
        let n = g.num_vertices();
        let mut masks = vec![0u128; n];
        for (i, e) in g.edges().iter().enumerate() {
            let p = part.partition_of(i);
            masks[e.src as usize] |= 1 << p;
            masks[e.dst as usize] |= 1 << p;
        }
        for m in masks {
            prop_assert!(m.count_ones() as usize <= bound);
        }
    }

    /// Stream-quality sanity: stateful HDRF never does (meaningfully) worse
    /// than the worst stateless hash on replication factor.
    #[test]
    fn hdrf_not_worse_than_crvc(g in arb_graph(), k in 4usize..17) {
        prop_assume!(g.num_edges() >= 500);
        let hdrf = QualityMetrics::compute(&g, &PartitionerId::Hdrf.build(1).partition(&g, k));
        let crvc = QualityMetrics::compute(&g, &PartitionerId::Crvc.build(1).partition(&g, k));
        prop_assert!(hdrf.replication_factor <= crvc.replication_factor * 1.05,
            "hdrf {} vs crvc {}", hdrf.replication_factor, crvc.replication_factor);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Exhaustive sweep the sampled properties above can miss: for EVERY
    /// partitioner and EVERY k ∈ {2, 4, 8}, all edges are assigned, every
    /// partition id is < k, and the replication factor is ≥ 1.
    #[test]
    fn every_partitioner_every_small_k_total_in_range_rf(
        g in arb_graph(),
        seed in 0u64..8,
    ) {
        for p in PartitionerId::ALL {
            for k in [2usize, 4, 8] {
                let part = p.build(seed).partition(&g, k);
                prop_assert_eq!(
                    part.num_edges(), g.num_edges(),
                    "{:?} k={} dropped edges", p, k
                );
                prop_assert_eq!(
                    part.assignment().len(), g.num_edges(),
                    "{:?} k={} assignment length", p, k
                );
                prop_assert!(
                    part.assignment().iter().all(|&x| (x as usize) < k),
                    "{:?} k={} produced an out-of-range partition id", p, k
                );
                let m = QualityMetrics::compute(&g, &part);
                prop_assert!(
                    m.replication_factor >= 1.0 - 1e-12,
                    "{:?} k={} rf={}", p, k, m.replication_factor
                );
            }
        }
    }
}

/// The same sweep on fixed corner-case graphs (self-loops, duplicate edges,
/// isolated vertices, stars) that random R-MAT sampling rarely hits.
#[test]
fn every_partitioner_handles_corner_graphs() {
    let corner_graphs: Vec<(&str, Graph)> = vec![
        ("single_edge", Graph::from_pairs([(0, 1)])),
        ("self_loop", Graph::from_pairs([(0, 0), (0, 1), (1, 1)])),
        ("duplicates", Graph::from_pairs([(0, 1), (0, 1), (0, 1), (1, 0)])),
        ("star", Graph::from_pairs((1u32..40).map(|v| (0, v)).collect::<Vec<_>>())),
        ("two_components", Graph::from_pairs([(0, 1), (1, 2), (2, 0), (10, 11), (11, 12)])),
    ];
    for (name, g) in &corner_graphs {
        for p in PartitionerId::ALL {
            for k in [2usize, 4, 8] {
                let part = p.build(3).partition(g, k);
                assert_eq!(part.num_edges(), g.num_edges(), "{name} {p:?} k={k}");
                assert!(part.assignment().iter().all(|&x| (x as usize) < k), "{name} {p:?} k={k}");
                let m = QualityMetrics::compute(g, &part);
                assert!(m.replication_factor >= 1.0 - 1e-12, "{name} {p:?} k={k}");
            }
        }
    }
}

/// R-MAT parameter validation is outside proptest (constructor contract).
#[test]
fn rmat_params_must_sum_to_one() {
    let ok = RmatParams::new(0.25, 0.25, 0.25, 0.25);
    assert_eq!(ok.a, 0.25);
    assert!(std::panic::catch_unwind(|| RmatParams::new(0.9, 0.2, 0.2, 0.2)).is_err());
}
