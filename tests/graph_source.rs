//! Ingestion-backend equivalence tests (PR 4 acceptance locks).
//!
//! The `GraphSource` seam promises that *where* a graph comes from — an
//! in-memory edge list, a memory-mapped `.bel` file, or a streamed text
//! file — never changes *what* the system computes: properties,
//! fingerprints and partition assignments must be bit-identical across all
//! three backends and every shard count. The mmap backend must additionally
//! never materialize an owned `Vec<Edge>`, which is locked here with a
//! thread-local allocation counter around the zero-copy analysis path.

use ease_repro::graph::bel::{write_bel, BelSource};
use ease_repro::graph::io::write_edge_list;
use ease_repro::graph::source::{collect_source, fingerprint_source};
use ease_repro::graph::{Graph, GraphSource, PropertyTier, TextStreamSource};
use ease_repro::graphgen::rmat::{Rmat, RMAT_COMBOS};
use ease_repro::partition::{PartitionerId, QualityMetrics};
use ease_repro::PreparedGraph;
use proptest::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

// ---------------------------------------------------------------------
// Thread-local allocation counter (only the calling thread is charged, so
// the lock is immune to the test harness's other threads).
// ---------------------------------------------------------------------

thread_local! {
    static TRACKING: Cell<bool> = const { Cell::new(false) };
    static ALLOCATED: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: pure pass-through to `System`; the thread-local counter taps use
// `Cell`s, never allocate, and cannot re-enter the allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.with(|t| t.get()) {
            ALLOCATED.with(|a| a.set(a.get() + layout.size() as u64));
        }
        // SAFETY: caller upholds GlobalAlloc's contract for `layout`.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` come from the paired `alloc` call above.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Run `f`, returning its result and the bytes allocated *by this thread*.
fn tracked<T>(f: impl FnOnce() -> T) -> (T, u64) {
    ALLOCATED.with(|a| a.set(0));
    TRACKING.with(|t| t.set(true));
    let out = f();
    TRACKING.with(|t| t.set(false));
    (out, ALLOCATED.with(|a| a.get()))
}

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

static FILE_TAG: AtomicU64 = AtomicU64::new(0);

fn temp_pair(graph: &Graph) -> (PathBuf, PathBuf) {
    let tag = FILE_TAG.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok(unique-name counter)
    let dir = std::env::temp_dir();
    let txt = dir.join(format!("ease_gs_{}_{tag}.txt", std::process::id()));
    let bel = dir.join(format!("ease_gs_{}_{tag}.bel", std::process::id()));
    write_edge_list(graph, &txt).unwrap();
    write_bel(graph, &bel).unwrap();
    (txt, bel)
}

/// Arbitrary R-MAT graph. The universe is fixed at 128 vertices and often
/// larger than `max endpoint + 1`, which deliberately exercises explicit
/// universe preservation: `.bel` carries it in the header, text in the
/// `# vertices N` summary comment both readers honour.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (0usize..9, 40usize..600, 0u64..50)
        .prop_map(|(combo, edges, seed)| Rmat::new(RMAT_COMBOS[combo], 128, edges, seed).generate())
}

fn assert_props_bit_identical(
    a: &ease_repro::graph::GraphProperties,
    b: &ease_repro::graph::GraphProperties,
    what: &str,
) {
    assert_eq!(a.num_vertices, b.num_vertices, "{what}");
    assert_eq!(a.num_edges, b.num_edges, "{what}");
    assert_eq!(a.density.to_bits(), b.density.to_bits(), "{what}");
    assert_eq!(a.mean_degree.to_bits(), b.mean_degree.to_bits(), "{what}");
    assert_eq!(a.in_degree_skew.to_bits(), b.in_degree_skew.to_bits(), "{what}");
    assert_eq!(a.out_degree_skew.to_bits(), b.out_degree_skew.to_bits(), "{what}");
    assert_eq!(a.avg_triangles.map(f64::to_bits), b.avg_triangles.map(f64::to_bits), "{what}");
    assert_eq!(a.avg_lcc.map(f64::to_bits), b.avg_lcc.map(f64::to_bits), "{what}");
}

// ---------------------------------------------------------------------
// Proptests: the three backends are indistinguishable
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Properties, fingerprints and the raw edge stream agree bit-for-bit
    /// across in-memory, mmap `.bel` and streamed text — for several shard
    /// counts.
    #[test]
    fn backends_agree_on_properties_and_fingerprints(g in arb_graph()) {
        let (txt, bel) = temp_pair(&g);
        let bel_src = BelSource::open(&bel).unwrap();
        let txt_src = TextStreamSource::open(&txt).unwrap();
        // identical streams
        prop_assert_eq!(&collect_source(&bel_src), &g);
        prop_assert_eq!(&collect_source(&txt_src), &g);
        // identical fingerprints (raw source pass)
        let fp = fingerprint_source(&g);
        prop_assert_eq!(fingerprint_source(&bel_src), fp);
        prop_assert_eq!(fingerprint_source(&txt_src), fp);
        // identical extracted features, at every tier and shard count
        for shards in [1usize, 4] {
            let reference = PreparedGraph::of(&g).with_shards(shards);
            let via_bel = PreparedGraph::of_source(&bel_src).with_shards(shards);
            let via_txt = PreparedGraph::of_source(&txt_src).with_shards(shards);
            prop_assert_eq!(via_bel.fingerprint(), reference.fingerprint());
            prop_assert_eq!(via_txt.fingerprint(), reference.fingerprint());
            for tier in PropertyTier::ALL {
                let want = reference.properties(tier);
                assert_props_bit_identical(&via_bel.properties(tier), &want, "bel");
                assert_props_bit_identical(&via_txt.properties(tier), &want, "txt");
            }
        }
        std::fs::remove_file(&txt).ok();
        std::fs::remove_file(&bel).ok();
    }

    /// Every partitioner family produces identical assignments (and hence
    /// identical quality metrics) no matter which backend feeds it.
    #[test]
    fn backends_agree_on_partition_assignments(g in arb_graph(), k in 2usize..9) {
        let (txt, bel) = temp_pair(&g);
        let bel_src = BelSource::open(&bel).unwrap();
        let txt_src = TextStreamSource::open(&txt).unwrap();
        // one partitioner per category: stateless, stateful, hybrid, in-memory
        for id in [PartitionerId::Dbh, PartitionerId::Hdrf, PartitionerId::Hep10, PartitionerId::Ne] {
            let p = id.build(17);
            let reference = p.partition(&g, k);
            let via_bel = p.partition_source(&bel_src, k);
            let via_txt = p.partition_source(&txt_src, k);
            prop_assert_eq!(&via_bel, &reference, "{:?} via bel", id);
            prop_assert_eq!(&via_txt, &reference, "{:?} via txt", id);
            // metrics over a source-backed context match the in-memory path
            let m_ref = QualityMetrics::compute(&g, &reference);
            let m_bel = QualityMetrics::compute_prepared(
                &PreparedGraph::of_source(&bel_src), &via_bel);
            prop_assert_eq!(
                m_ref.replication_factor.to_bits(),
                m_bel.replication_factor.to_bits()
            );
            prop_assert_eq!(m_ref.edge_balance.to_bits(), m_bel.edge_balance.to_bits());
        }
        std::fs::remove_file(&txt).ok();
        std::fs::remove_file(&bel).ok();
    }

    /// `convert`-style round trips (txt -> bel -> txt) preserve the graph.
    #[test]
    fn format_round_trips_preserve_the_stream(g in arb_graph()) {
        let (txt, bel) = temp_pair(&g);
        // txt -> bel (stream the text reader into a bel writer)
        let tag = FILE_TAG.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok(unique-name counter)
        let rebel = std::env::temp_dir()
            .join(format!("ease_gs_rt_{}_{tag}.bel", std::process::id()));
        let txt_src = TextStreamSource::open(&txt).unwrap();
        let mut w = ease_repro::graph::bel::BelWriter::create(&rebel).unwrap();
        txt_src.for_each_edge(&mut |e| w.push(e).unwrap());
        w.finish_with_vertices(txt_src.num_vertices()).unwrap();
        // bel -> graph: same content, same fingerprint
        let reread = BelSource::open(&rebel).unwrap();
        prop_assert_eq!(&collect_source(&reread), &g);
        prop_assert_eq!(fingerprint_source(&reread), fingerprint_source(&g));
        std::fs::remove_file(&txt).ok();
        std::fs::remove_file(&bel).ok();
        std::fs::remove_file(&rebel).ok();
    }
}

// ---------------------------------------------------------------------
// The zero-copy lock: mmap ingestion allocates nothing proportional to |E|
// ---------------------------------------------------------------------

/// Analyzing a `.bel` file (open + full replay + fingerprint + basic-tier
/// properties) must never materialize the edge list: an owned `Vec<Edge>`
/// would cost `8 bytes × |E|`; the whole zero-copy path is held under
/// `1 byte × |E|` of allocation on a graph whose edge count dwarfs its
/// vertex count.
#[test]
fn mmap_ingestion_never_materializes_an_edge_list() {
    let m = 200_000usize;
    let n = 2_048usize;
    let g = Rmat::new(RMAT_COMBOS[6], n, m, 99).generate();
    let tag = FILE_TAG.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok(unique-name counter)
    let bel = std::env::temp_dir().join(format!("ease_gs_zc_{}_{tag}.bel", std::process::id()));
    write_bel(&g, &bel).unwrap();

    let edge_list_bytes = (m * std::mem::size_of::<ease_repro::graph::Edge>()) as u64;
    let ((fingerprint, props, streamed), allocated) = tracked(|| {
        let src = BelSource::open(&bel).expect("open bel");
        // force the sequential path so every allocation lands on this thread
        let prepared = PreparedGraph::of_source(&src).with_shards(1);
        let fingerprint = prepared.fingerprint();
        let props = prepared.properties(PropertyTier::Basic);
        let mut streamed = 0usize;
        prepared.for_each_edge(|_| streamed += 1);
        (fingerprint, props, streamed)
    });
    assert_eq!(streamed, m);
    assert_eq!(fingerprint, PreparedGraph::of(&g).fingerprint());
    assert_props_bit_identical(
        &props,
        &PreparedGraph::of(&g).properties(PropertyTier::Basic),
        "zero-copy",
    );
    // degree table + moments are O(|V|) ≈ 24 KiB here; an owned edge list
    // would add 1.6 MiB on top. Lock the whole path at 1/8 of that.
    assert!(
        allocated < edge_list_bytes / 8,
        "zero-copy path allocated {allocated} bytes — more than 1/8 of an owned \
         edge list ({edge_list_bytes} bytes); something is materializing edges"
    );
    std::fs::remove_file(&bel).ok();
}

/// The full recommendation path over a `.bel` mapping stays zero-copy:
/// `try_graph` is `None` before and after advanced extraction + a
/// partitioner run, i.e. nothing ever silently builds a `Graph`.
#[test]
fn source_backed_analysis_never_builds_a_graph() {
    let g = Rmat::new(RMAT_COMBOS[2], 512, 4_000, 5).generate();
    let tag = FILE_TAG.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok(unique-name counter)
    let bel = std::env::temp_dir().join(format!("ease_gs_ng_{}_{tag}.bel", std::process::id()));
    write_bel(&g, &bel).unwrap();
    let src = BelSource::open(&bel).unwrap();
    let prepared = PreparedGraph::of_source(&src);
    assert!(prepared.try_graph().is_none());
    let advanced = prepared.properties(PropertyTier::Advanced);
    let partition = PartitionerId::Hdrf.build(3).partition_prepared(&prepared, 4);
    assert_eq!(partition.num_edges(), g.num_edges());
    assert_props_bit_identical(
        &advanced,
        &PreparedGraph::of(&g).properties(PropertyTier::Advanced),
        "advanced",
    );
    assert!(prepared.try_graph().is_none(), "analysis materialized a Graph");
    std::fs::remove_file(&bel).ok();
}
