//! Guards the `ease_repro::` re-export surface: every namespace the facade
//! promises must stay reachable, and the doctest contract in `src/lib.rs`
//! (`Graph::from_pairs`, `PartitionerId::ALL.len() == 11`) must hold. A
//! rename or dropped re-export in any member crate fails here first.

use ease_repro::graph::csr::Direction;
use ease_repro::graph::{Csr, DegreeTable, Graph, GraphProperties, PropertyTier};
use ease_repro::partition::{Partitioner, PartitionerId, QualityMetrics};

#[test]
fn doctest_contract_from_pairs_and_eleven_partitioners() {
    let g = Graph::from_pairs([(0, 1), (1, 2), (2, 0)]);
    assert_eq!(g.num_edges(), 3);
    assert_eq!(g.num_vertices(), 3);
    assert_eq!(PartitionerId::ALL.len(), 11);
}

#[test]
fn graph_namespace_is_reachable() {
    let g = Graph::from_pairs([(0, 1), (1, 2), (2, 0), (0, 2)]);
    let csr = Csr::build(&g, Direction::Out);
    assert_eq!(csr.neighbors(0).len(), 2);
    let degrees = DegreeTable::compute(&g);
    assert!(degrees.total.iter().copied().max().unwrap_or(0) >= 2);
    let props = GraphProperties::compute(&g, PropertyTier::Simple);
    assert_eq!(props.num_edges, 4);
    // advanced tier exists through the facade too
    let adv = GraphProperties::compute_advanced(&g);
    assert!(adv.avg_lcc.is_some());
}

#[test]
fn partition_namespace_is_reachable() {
    let g = Graph::from_pairs([(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)]);
    for id in PartitionerId::ALL {
        let partitioner: Box<dyn Partitioner> = id.build(7);
        let part = partitioner.partition(&g, 2);
        assert_eq!(part.num_edges(), g.num_edges(), "{id:?}");
        let metrics = QualityMetrics::compute(&g, &part);
        assert!(metrics.replication_factor >= 1.0, "{id:?}");
    }
}

#[test]
fn graphgen_namespace_is_reachable() {
    use ease_repro::graphgen::rmat::{Rmat, RMAT_COMBOS};
    use ease_repro::graphgen::Scale;
    assert_eq!(RMAT_COMBOS.len(), 9);
    let g = Rmat::new(RMAT_COMBOS[0], 64, 300, 1).generate();
    assert_eq!(g.num_edges(), 300);
    assert!(Scale::parse("tiny").is_some());
    let tg = ease_repro::graphgen::realworld::socfb_analogue(Scale::Tiny, 3);
    assert!(tg.graph.num_edges() > 0);
}

#[test]
fn ml_namespace_is_reachable() {
    use ease_repro::ml::{rmse, Matrix, ModelConfig, StandardScaler};
    let rows = vec![vec![0.0, 1.0], vec![1.0, 0.0], vec![2.0, 2.0], vec![3.0, 1.0]];
    let y = vec![1.0, 2.0, 3.0, 4.0];
    let x = Matrix::from_rows(&rows);
    let mut model = ModelConfig::Knn { k: 2, distance_weighted: false }.build();
    model.fit(&x, &y);
    let preds = model.predict(&x);
    assert_eq!(preds.len(), 4);
    assert!(rmse(&y, &preds) >= 0.0);
    let scaler = StandardScaler::fit(&x);
    assert_eq!(scaler.transform(&x).rows, 4);
}

#[test]
fn procsim_namespace_is_reachable() {
    use ease_repro::procsim::{ClusterSpec, DistributedGraph, Workload};
    let g = Graph::from_pairs([(0, 1), (1, 2), (2, 0), (2, 3)]);
    let part = PartitionerId::Dbh.build(1).partition(&g, 2);
    let dg = DistributedGraph::build(&g, &part);
    let report = Workload::PageRank { iterations: 2 }.execute(&dg, &ClusterSpec::new(2));
    assert!(report.total_secs > 0.0);
    assert_eq!(report.supersteps, 2);
}

#[test]
fn core_namespace_is_reachable() {
    use ease_repro::core::pipeline::EaseConfig;
    use ease_repro::core::profiling::TimingMode;
    use ease_repro::core::selector::OptGoal;
    use ease_repro::graphgen::Scale;
    let cfg = EaseConfig::at_scale(Scale::Tiny);
    assert_eq!(cfg.timing, TimingMode::Measured);
    assert!(!cfg.ks.is_empty());
    assert!(matches!(OptGoal::EndToEnd, OptGoal::EndToEnd));
}
