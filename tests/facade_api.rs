//! Guards the `ease_repro::` re-export surface: every namespace the facade
//! promises must stay reachable, and the doctest contract in `src/lib.rs`
//! (`Graph::from_pairs`, `PartitionerId::ALL.len() == 11`) must hold. A
//! rename or dropped re-export in any member crate fails here first.

use ease_repro::graph::csr::Direction;
use ease_repro::graph::{Csr, DegreeTable, Graph, GraphProperties, PropertyTier};
use ease_repro::partition::{Partitioner, PartitionerId, QualityMetrics};

#[test]
fn doctest_contract_from_pairs_and_eleven_partitioners() {
    let g = Graph::from_pairs([(0, 1), (1, 2), (2, 0)]);
    assert_eq!(g.num_edges(), 3);
    assert_eq!(g.num_vertices(), 3);
    assert_eq!(PartitionerId::ALL.len(), 11);
}

#[test]
fn graph_namespace_is_reachable() {
    let g = Graph::from_pairs([(0, 1), (1, 2), (2, 0), (0, 2)]);
    let csr = Csr::build(&g, Direction::Out);
    assert_eq!(csr.neighbors(0).len(), 2);
    let degrees = DegreeTable::compute(&g);
    assert!(degrees.total.iter().copied().max().unwrap_or(0) >= 2);
    let props = GraphProperties::compute(&g, PropertyTier::Simple);
    assert_eq!(props.num_edges, 4);
    // advanced tier exists through the facade too
    let adv = GraphProperties::compute_advanced(&g);
    assert!(adv.avg_lcc.is_some());
}

#[test]
fn partition_namespace_is_reachable() {
    let g = Graph::from_pairs([(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)]);
    for id in PartitionerId::ALL {
        let partitioner: Box<dyn Partitioner> = id.build(7);
        let part = partitioner.partition(&g, 2);
        assert_eq!(part.num_edges(), g.num_edges(), "{id:?}");
        let metrics = QualityMetrics::compute(&g, &part);
        assert!(metrics.replication_factor >= 1.0, "{id:?}");
    }
}

#[test]
fn graphgen_namespace_is_reachable() {
    use ease_repro::graphgen::rmat::{Rmat, RMAT_COMBOS};
    use ease_repro::graphgen::Scale;
    assert_eq!(RMAT_COMBOS.len(), 9);
    let g = Rmat::new(RMAT_COMBOS[0], 64, 300, 1).generate();
    assert_eq!(g.num_edges(), 300);
    assert!(Scale::parse("tiny").is_some());
    let tg = ease_repro::graphgen::realworld::socfb_analogue(Scale::Tiny, 3);
    assert!(tg.graph.num_edges() > 0);
}

#[test]
fn ml_namespace_is_reachable() {
    use ease_repro::ml::{rmse, Matrix, ModelConfig, StandardScaler};
    let rows = vec![vec![0.0, 1.0], vec![1.0, 0.0], vec![2.0, 2.0], vec![3.0, 1.0]];
    let y = vec![1.0, 2.0, 3.0, 4.0];
    let x = Matrix::from_rows(&rows);
    let mut model = ModelConfig::Knn { k: 2, distance_weighted: false }.build();
    model.fit(&x, &y);
    let preds = model.predict(&x);
    assert_eq!(preds.len(), 4);
    assert!(rmse(&y, &preds) >= 0.0);
    let scaler = StandardScaler::fit(&x);
    assert_eq!(scaler.transform(&x).rows, 4);
}

#[test]
fn procsim_namespace_is_reachable() {
    use ease_repro::procsim::{ClusterSpec, DistributedGraph, Workload};
    let g = Graph::from_pairs([(0, 1), (1, 2), (2, 0), (2, 3)]);
    let part = PartitionerId::Dbh.build(1).partition(&g, 2);
    let dg = DistributedGraph::build(&g, &part);
    let report = Workload::PageRank { iterations: 2 }.execute(&dg, &ClusterSpec::new(2));
    assert!(report.total_secs > 0.0);
    assert_eq!(report.supersteps, 2);
}

#[test]
fn core_namespace_is_reachable() {
    use ease_repro::core::pipeline::EaseConfig;
    use ease_repro::core::profiling::TimingMode;
    use ease_repro::core::selector::OptGoal;
    use ease_repro::graphgen::Scale;
    let cfg = EaseConfig::at_scale(Scale::Tiny);
    assert_eq!(cfg.timing, TimingMode::Measured);
    assert!(!cfg.ks.is_empty());
    assert!(matches!(OptGoal::EndToEnd, OptGoal::EndToEnd));
}

#[test]
fn service_api_is_the_primary_entry_point() {
    // the PR 2 surface: builder, service, typed errors, batch queries —
    // re-exported at the facade root
    use ease_repro::graphgen::Scale;
    use ease_repro::{EaseError, EaseServiceBuilder, OptGoal};
    let builder = EaseServiceBuilder::at_scale(Scale::Tiny).seed(1).goal(OptGoal::EndToEnd);
    assert_eq!(builder.config().seed, 1);
    // validation is typed, not a panic
    let err = EaseServiceBuilder::at_scale(Scale::Tiny).folds(0).train().unwrap_err();
    assert!(matches!(err, EaseError::InvalidConfig(_)));
}

#[test]
fn timing_mode_lives_in_the_partition_runner() {
    // PR 2 moved TimingMode next to the runner so deterministic mode can
    // skip the wall clock entirely; the core re-export must stay intact
    use ease_repro::partition::{run_partitioner_with, TimingMode};
    let g = Graph::from_pairs([(0, 1), (1, 2), (2, 0), (0, 2)]);
    let run = run_partitioner_with(PartitionerId::Dbh, &g, 2, 1, TimingMode::Deterministic);
    assert_eq!(
        run.partitioning_secs,
        ease_repro::partition::deterministic_partitioning_secs(PartitionerId::Dbh, 4, 2)
    );
    // same type through the core path
    let _: ease_repro::core::profiling::TimingMode = TimingMode::Measured;
}

#[test]
fn ml_persistence_is_reachable_through_the_facade() {
    use ease_repro::ml::persist::{build_regressor, decode_model, encode_model, Reader, Writer};
    use ease_repro::ml::{Matrix, ModelConfig};
    let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
    let y = vec![0.0, 2.0, 4.0, 6.0];
    let mut m = ModelConfig::Knn { k: 1, distance_weighted: false }.build();
    m.fit(&x, &y);
    let mut w = Writer::new();
    encode_model(&mut w, &m.to_params());
    let bytes = w.into_bytes();
    let restored = build_regressor(decode_model(&mut Reader::new(&bytes)).unwrap()).unwrap();
    assert_eq!(m.predict_row(&[1.2]), restored.predict_row(&[1.2]));
}
