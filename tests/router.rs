//! Integration suite for the fleet router (PR 9 tentpole: `ease route`).
//!
//! The acceptance bar: answers through the router are *bit-identical* to
//! a direct backend (and therefore to the one-shot CLI); the hash ring
//! balances (no backend over 2x fair share) and remaps minimally on
//! fleet resize; killing a backend mid-stream fails its keys over to the
//! next ring node with bit-identical retried answers; a budget-saturated
//! fleet sheds load with the typed `Overloaded` answer instead of
//! spilling; and one `shutdown` through the router stops the whole fleet.
#![cfg(unix)]

use ease_repro::core::profiling::TimingMode;
use ease_repro::graph::{bel, GraphSource, MemoryBudget};
use ease_repro::graphgen::realworld::socfb_analogue;
use ease_repro::graphgen::Scale;
use ease_repro::partition::PartitionerId;
use ease_repro::procsim::Workload;
use ease_repro::serve::ring::hash64;
use ease_repro::serve::{
    self, Endpoint, HashRing, PipelinedClient, Request, Response, RouterConfig, ServeConfig,
    ServeStats,
};
use ease_repro::{EaseError, EaseService, EaseServiceBuilder, OptGoal, ServeError};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

// ---------------------------------------------------------------------
// Hash-ring property tests
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Balance: with the default vnode count, no backend of a 2–8 node
    /// ring owns more than twice its fair share of a large key sample.
    /// This is the bound the router's cache-affinity argument rests on —
    /// a 2x-hot shard still beats a cold cache everywhere.
    #[test]
    fn no_backend_owns_more_than_twice_its_fair_share(
        n in 2usize..9,
        salt in 0u64..u64::MAX,
    ) {
        let labels: Vec<String> =
            (0..n).map(|i| format!("10.{}.0.{i}:7000", salt % 200)).collect();
        let ring = HashRing::new(&labels);
        const KEYS: usize = 8192;
        let mut owned = vec![0usize; n];
        for k in 0..KEYS as u64 {
            let key = hash64(&(salt ^ k).to_le_bytes());
            let owner = ring.node_for(key).expect("non-empty ring owns every key");
            owned[owner] += 1;
        }
        let fair = KEYS / n;
        for (backend, &count) in owned.iter().enumerate() {
            prop_assert!(
                count < fair * 2,
                "backend {backend}/{n} owns {count} of {KEYS} keys (fair share {fair})"
            );
        }
    }

    /// Consistency: adding one backend steals keys *only for itself*, and
    /// roughly a fair share of them — never a reshuffle among survivors.
    /// Read backwards this is also the removal guarantee: dropping the
    /// backend returns exactly its keys to the survivors, whose other
    /// keys never move.
    #[test]
    fn a_fleet_resize_remaps_only_the_new_backends_fair_share(
        n in 1usize..8,
        salt in 0u64..u64::MAX,
    ) {
        let labels: Vec<String> = (0..=n).map(|i| format!("backend-{i}:70{i:02}")).collect();
        let before = HashRing::new(&labels[..n]);
        let after = HashRing::new(&labels);
        const KEYS: usize = 4096;
        let mut moved = 0usize;
        for k in 0..KEYS as u64 {
            let key = hash64(&(salt ^ k.rotate_left(17)).to_le_bytes());
            let old = before.node_for(key).expect("owner before");
            let new = after.node_for(key).expect("owner after");
            if old != new {
                prop_assert_eq!(
                    new, n,
                    "a key may only move TO the added backend (moved {} -> {})", old, new
                );
                moved += 1;
            }
        }
        // volume: ~1/(n+1) of the keyspace, generously bounded at 2x
        let expected = KEYS / (n + 1);
        prop_assert!(
            moved < expected * 2,
            "resize moved {moved} of {KEYS} keys; fair share is {expected}"
        );
    }
}

// ---------------------------------------------------------------------
// Fleet fixtures
// ---------------------------------------------------------------------

/// Distinct graphs to spread over the ring — enough that a 2-backend
/// fleet essentially always has traffic on both sides.
const GRAPHS: usize = 6;

struct Fixtures {
    dir: PathBuf,
    model: PathBuf,
    /// `GRAPHS` distinct `.bel` graphs (distinct fingerprints).
    graphs: Vec<PathBuf>,
}

fn fixtures() -> &'static Fixtures {
    static FIXTURES: OnceLock<Fixtures> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        let dir = std::env::temp_dir().join("ease_router_suite");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("create fixture dir");
        let graphs: Vec<PathBuf> = (0..GRAPHS)
            .map(|i| {
                let g = socfb_analogue(Scale::Tiny, 20 + i as u64).graph;
                let path = dir.join(format!("g{i}.bel"));
                bel::write_bel(&g, &path).expect("write bel");
                path
            })
            .collect();
        let model = dir.join("ease.model");
        let service = EaseServiceBuilder::at_scale(Scale::Tiny)
            .quick_grid()
            .max_small_graphs(Some(6))
            .max_large_graphs(Some(4))
            .partition_counts(vec![2, 4])
            .partitioners(vec![PartitionerId::OneDD, PartitionerId::Dbh, PartitionerId::Ne])
            .workloads(vec![Workload::PageRank { iterations: 10 }, Workload::ConnectedComponents])
            .folds(2)
            .timing(TimingMode::Deterministic)
            .train()
            .expect("train fixture service");
        service.save(&model).expect("save fixture model");
        Fixtures { dir, model, graphs }
    })
}

/// An `ease serve` backend on an ephemeral TCP port, optionally budgeted.
fn start_backend(tag: &str, budget: Option<Arc<MemoryBudget>>) -> (serve::ServerHandle, Endpoint) {
    let fx = fixtures();
    let service = Arc::new(EaseService::load(&fx.model).expect("load fixture model"));
    let mut config = ServeConfig::tcp_at("127.0.0.1:0").workers(2);
    if let Some(budget) = budget {
        config = config.memory_budget(budget);
    }
    let handle = serve::serve(service, config).expect("bind backend");
    let tcp = handle.tcp_addr().unwrap_or_else(|| panic!("{tag}: tcp listener bound")).to_string();
    (handle, Endpoint::tcp(tcp))
}

/// An `ease route` front on a fresh unix socket.
fn start_router(
    tag: &str,
    backends: Vec<Endpoint>,
    forward_shutdown: bool,
) -> (serve::ServerHandle, Endpoint) {
    let socket = fixtures().dir.join(format!("{tag}.router.sock"));
    let config = RouterConfig::new(ServeConfig::at(&socket).workers(2), backends)
        // long interval: tests drive mark-down via transport errors, not
        // the probe cadence, so probes only need to not interfere
        .health_interval(Duration::from_secs(60))
        .forward_shutdown(forward_shutdown);
    let handle = serve::route(config).expect("bind router");
    (handle, Endpoint::unix(socket))
}

/// What a one-shot `ease recommend` prints for this query — the
/// bit-identity reference for every routed answer.
fn one_shot_answer(graph: &Path, workload: &str) -> String {
    let fx = fixtures();
    let service = EaseService::load(&fx.model).expect("load model");
    let source = ease_repro::graph::open_path(graph).expect("open graph");
    let wl = Workload::from_name(workload).expect("known workload");
    serve::render_recommendation(
        &service,
        graph.to_str().expect("utf8 path"),
        source.as_ref(),
        wl,
        service.meta().default_k,
        OptGoal::EndToEnd,
        serve::DEFAULT_TOP,
        None,
    )
    .expect("render one-shot answer")
}

fn recommend_request(graph: &Path, workload: &str) -> Request {
    Request::Recommend {
        graph: graph.to_str().expect("utf8 path").to_string(),
        workload: workload.to_string(),
        k: None,
        goal: OptGoal::EndToEnd,
        top: serve::DEFAULT_TOP,
        cwd: None,
    }
}

fn stats_of(response: Response) -> ServeStats {
    match response {
        Response::CacheStats(stats) => stats,
        other => panic!("expected CacheStats, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Bit-identity, affinity, and fleet-wide stats
// ---------------------------------------------------------------------

#[test]
fn routed_answers_are_bit_identical_and_cache_affine() {
    let fx = fixtures();
    let (backend_a, ep_a) = start_backend("identity-a", None);
    let (backend_b, ep_b) = start_backend("identity-b", None);
    let (router, front) = start_router("identity", vec![ep_a.clone(), ep_b.clone()], false);
    let mut client = PipelinedClient::connect(&front).expect("connect router");

    // every graph, both workloads: the routed answer is byte-for-byte the
    // one-shot answer — the backend renders, the router only forwards
    for graph in &fx.graphs {
        for workload in ["pr", "cc"] {
            let expected = one_shot_answer(graph, workload);
            let got = serve::expect_answer(
                client.call(&recommend_request(graph, workload)).expect("routed call"),
            )
            .expect("routed answer");
            assert_eq!(got, expected, "routed answer must be bit-identical ({workload})");
        }
    }

    // cache affinity: a repeat query lands on the same backend, whose
    // property cache is warm — fleet-wide hits must rise, not misses
    let before = stats_of(client.call(&Request::CacheStats).expect("fleet stats"));
    for graph in &fx.graphs {
        let response = client.call(&recommend_request(graph, "pr")).expect("repeat call");
        serve::expect_answer(response).expect("repeat answer");
    }
    let after = stats_of(client.call(&Request::CacheStats).expect("fleet stats"));
    assert!(
        after.hits >= before.hits + fx.graphs.len() as u64,
        "repeat queries must be property-cache hits on their home backend \
         (hits {} -> {})",
        before.hits,
        after.hits
    );
    assert_eq!(after.misses, before.misses, "no repeat query may land on a cold backend");

    // the fleet view is the fold of the two direct views: capacity sums,
    // and every forwarded request is accounted on some backend
    let direct_a = stats_of(serve::call_endpoint(&ep_a, &Request::CacheStats).expect("a stats"));
    let direct_b = stats_of(serve::call_endpoint(&ep_b, &Request::CacheStats).expect("b stats"));
    assert_eq!(after.capacity, direct_a.capacity + direct_b.capacity);
    assert_eq!(after.len as u64, after.misses, "every miss populated one cache slot");
    let forwarded = (fx.graphs.len() * 3) as u64; // 2 cold workloads + 1 warm repeat each
    assert!(
        direct_a.requests_served + direct_b.requests_served >= forwarded,
        "backends served {} + {}, expected at least {forwarded}",
        direct_a.requests_served,
        direct_b.requests_served
    );

    router.trigger_shutdown();
    router.join().expect("router join");
    // forward_shutdown(false): the backends must still be running
    for ep in [&ep_a, &ep_b] {
        match serve::call_endpoint(ep, &Request::Ping).expect("backend outlives router") {
            Response::Pong { .. } => {}
            other => panic!("expected Pong, got {other:?}"),
        }
    }
    backend_a.trigger_shutdown();
    backend_b.trigger_shutdown();
    backend_a.join().expect("backend a join");
    backend_b.join().expect("backend b join");
}

// ---------------------------------------------------------------------
// Failover: a backend dies mid-stream
// ---------------------------------------------------------------------

#[test]
fn killing_a_backend_mid_stream_retries_with_bit_identical_answers() {
    let fx = fixtures();
    let (backend_a, ep_a) = start_backend("failover-a", None);
    let (backend_b, ep_b) = start_backend("failover-b", None);
    let (router, front) = start_router("failover", vec![ep_a, ep_b.clone()], false);
    let mut client = PipelinedClient::connect(&front).expect("connect router");

    // first pass: all graphs answered through the full fleet — this also
    // parks pooled router->backend connections that the kill will poison
    let expected: Vec<String> =
        fx.graphs.iter().map(|graph| one_shot_answer(graph, "pr")).collect();
    for (graph, expected) in fx.graphs.iter().zip(&expected) {
        let got = serve::expect_answer(client.call(&recommend_request(graph, "pr")).unwrap())
            .expect("pre-kill answer");
        assert_eq!(&got, expected);
    }

    // kill one backend under the router, mid-client-stream
    backend_a.trigger_shutdown();
    backend_a.join().expect("backend a drained");

    // same client, same queries: keys homed on the dead backend hit a
    // transport error, mark it down, and fail over to the ring successor
    // — and the retried answer is still bit-identical
    for (graph, expected) in fx.graphs.iter().zip(&expected) {
        let got = serve::expect_answer(client.call(&recommend_request(graph, "pr")).unwrap())
            .expect("post-kill answer must fail over, not error");
        assert_eq!(&got, expected, "retried answer must be bit-identical");
    }

    // the fleet view now folds only the survivor
    let fleet = stats_of(client.call(&Request::CacheStats).expect("fleet stats"));
    let direct_b = stats_of(serve::call_endpoint(&ep_b, &Request::CacheStats).expect("b stats"));
    assert_eq!(fleet.capacity, direct_b.capacity, "only the survivor is folded");

    router.trigger_shutdown();
    router.join().expect("router join");
    backend_b.trigger_shutdown();
    backend_b.join().expect("backend b join");
}

// ---------------------------------------------------------------------
// Budget-aware admission: a saturated fleet sheds, a mixed fleet steers
// ---------------------------------------------------------------------

#[test]
fn a_saturated_fleet_sheds_with_a_typed_overloaded_answer() {
    let fx = fixtures();
    // every backend budgeted to 1 byte of headroom: no graph fits anywhere
    let tiny = || Some(Arc::new(MemoryBudget::bytes(1).with_spill_dir(&fx.dir)));
    let (backend_a, ep_a) = start_backend("shed-a", tiny());
    let (backend_b, ep_b) = start_backend("shed-b", tiny());
    let (router, front) = start_router("shed", vec![ep_a, ep_b], false);
    let mut client = PipelinedClient::connect(&front).expect("connect router");

    let graph = &fx.graphs[0];
    // admission sniffs the .bel header and estimates the advanced tier's
    // CSR charge (offsets + undirected u32 targets), not the file size
    let src = ease_repro::graph::BelSource::open(graph).expect("open bel");
    let needed = 8 * (src.num_vertices() as u64 + 1) + 8 * src.edge_count() as u64;
    assert!(
        needed < std::fs::metadata(graph).expect("stat graph").len(),
        "the sniffed estimate undercuts the old file-size one"
    );
    drop(src);
    match client.call(&recommend_request(graph, "pr")).expect("transport ok") {
        Response::Overloaded { needed: got_needed, headroom } => {
            assert_eq!(got_needed, needed, "needed = the query's estimated footprint");
            assert_eq!(headroom, 1, "headroom = the best backend's remaining budget");
        }
        other => panic!("expected a typed Overloaded shed, got {other:?}"),
    }
    // clients surface it as the typed error, not a stringly one
    let err = serve::expect_answer(client.call(&recommend_request(graph, "pr")).unwrap())
        .expect_err("overloaded is an error to clients");
    match err {
        EaseError::Serve(ServeError::Overloaded { needed: n, headroom }) => {
            assert_eq!((n, headroom), (needed, 1));
        }
        other => panic!("expected ServeError::Overloaded, got {other:?}"),
    }
    // shedding is not a mark-down: the fleet still answers cache-stats
    let fleet = stats_of(client.call(&Request::CacheStats).expect("fleet stats"));
    assert_eq!(fleet.memory_budget_remaining, Some(2), "1 byte headroom per backend, summed");
    assert_eq!(fleet.spilled_csr_builds, 0, "the whole point: nothing was forced to spill");

    router.trigger_shutdown();
    router.join().expect("router join");
    for handle in [backend_a, backend_b] {
        handle.trigger_shutdown();
        handle.join().expect("backend join");
    }
}

#[test]
fn oversized_queries_steer_to_the_backend_with_headroom() {
    let fx = fixtures();
    // one saturated backend, one with room: admission must steer every
    // graph to the one with headroom, never shed, never touch the full one
    let (backend_full, ep_full) =
        start_backend("steer-full", Some(Arc::new(MemoryBudget::bytes(1).with_spill_dir(&fx.dir))));
    let (backend_open, ep_open) = start_backend("steer-open", None);
    let (router, front) = start_router("steer", vec![ep_full.clone(), ep_open.clone()], false);
    let mut client = PipelinedClient::connect(&front).expect("connect router");

    for graph in &fx.graphs {
        let expected = one_shot_answer(graph, "pr");
        let got = serve::expect_answer(client.call(&recommend_request(graph, "pr")).unwrap())
            .expect("steered answer");
        assert_eq!(got, expected, "steered answers stay bit-identical");
    }
    let full = stats_of(serve::call_endpoint(&ep_full, &Request::CacheStats).expect("full stats"));
    let open = stats_of(serve::call_endpoint(&ep_open, &Request::CacheStats).expect("open stats"));
    assert_eq!(full.hits + full.misses, 0, "no analysis ever reached the saturated backend");
    assert_eq!(open.misses, fx.graphs.len() as u64, "every graph was analyzed on the open one");

    router.trigger_shutdown();
    router.join().expect("router join");
    for handle in [backend_full, backend_open] {
        handle.trigger_shutdown();
        handle.join().expect("backend join");
    }
}

/// Regression for the file-size admission estimate: a `.bel` query whose
/// file is bigger than the fleet's headroom used to be shed outright,
/// even though the derived CSR state it actually needs fits fine. With
/// the header-sniffed estimate the same budget admits it — answered
/// bit-identically, nothing spilled.
#[test]
fn header_sniffed_admission_admits_what_file_size_used_to_shed() {
    let fx = fixtures();
    let graph = &fx.graphs[1];
    let src = ease_repro::graph::BelSource::open(graph).expect("open bel");
    let estimate = 8 * (src.num_vertices() as u64 + 1) + 8 * src.edge_count() as u64;
    drop(src);
    let file_size = std::fs::metadata(graph).expect("stat graph").len();
    let budget_bytes = (estimate + file_size) / 2;
    assert!(
        estimate <= budget_bytes && budget_bytes < file_size,
        "a budget the old file-size estimate shed against ({budget_bytes} < {file_size}) \
         but the CSR charge ({estimate}) fits"
    );

    let budget = Arc::new(MemoryBudget::bytes(budget_bytes as usize).with_spill_dir(&fx.dir));
    let (backend, ep) = start_backend("sniff-admit", Some(budget));
    let (router, front) = start_router("sniff-admit", vec![ep.clone()], false);

    let expected = one_shot_answer(graph, "pr");
    let got = serve::expect_answer(
        serve::call_endpoint(&front, &recommend_request(graph, "pr")).expect("transport ok"),
    )
    .expect("admitted, not shed");
    assert_eq!(got, expected, "admitted answers stay bit-identical");

    let stats = stats_of(serve::call_endpoint(&ep, &Request::CacheStats).expect("stats"));
    assert_eq!(stats.spilled_csr_builds, 0, "the charge really did fit the budget");

    router.trigger_shutdown();
    router.join().expect("router join");
    backend.trigger_shutdown();
    backend.join().expect("backend join");
}

// ---------------------------------------------------------------------
// Fleet-wide shutdown through the router
// ---------------------------------------------------------------------

#[test]
fn one_shutdown_through_the_router_stops_the_whole_fleet() {
    let (backend_a, ep_a) = start_backend("fleetstop-a", None);
    let (backend_b, ep_b) = start_backend("fleetstop-b", None);
    let (router, front) = start_router("fleetstop", vec![ep_a, ep_b], true);

    match serve::call_endpoint(&front, &Request::Shutdown).expect("shutdown call") {
        Response::ShuttingDown => {}
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
    // the router forwarded the stop: every backend drains and joins —
    // no per-backend shutdown was ever sent by this test
    router.join().expect("router join");
    backend_a.join().expect("backend a stopped by the router");
    backend_b.join().expect("backend b stopped by the router");
}
