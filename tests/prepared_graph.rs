//! Property tests for the prepared-graph analysis context: extraction
//! through [`PreparedGraph`] must be *bit-identical* to the pre-refactor
//! direct path, and the content fingerprint must be stable under
//! recomputation yet sensitive to any edge change.

use ease_repro::graph::degree::DegreeTable;
use ease_repro::graph::{triangles, Edge, Graph, GraphProperties, PropertyTier};
use ease_repro::graphgen::rmat::{Rmat, RMAT_COMBOS};
use ease_repro::PreparedGraph;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (0usize..9, 40usize..600, 0u64..50)
        .prop_map(|(combo, edges, seed)| Rmat::new(RMAT_COMBOS[combo], 128, edges, seed).generate())
}

/// The pre-refactor direct extraction path, reimplemented verbatim: degree
/// table and triangle statistics derived straight from the edge list with
/// no shared context. Any numerical drift in the prepared path fails the
/// bit-identity test below.
fn direct_properties(graph: &Graph, tier: PropertyTier) -> GraphProperties {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    let density = if n > 1 { m as f64 / (n as f64 * (n as f64 - 1.0)) } else { 0.0 };
    let mean_degree = if n > 0 { 2.0 * m as f64 / n as f64 } else { 0.0 };
    let (in_skew, out_skew) = if matches!(tier, PropertyTier::Simple) {
        (0.0, 0.0)
    } else {
        let deg = DegreeTable::compute(graph);
        (deg.in_moments.pearson_skew, deg.out_moments.pearson_skew)
    };
    let (avg_triangles, avg_lcc) = if matches!(tier, PropertyTier::Advanced) {
        let s = triangles::triangle_stats(graph);
        (Some(s.avg_triangles), Some(s.avg_lcc))
    } else {
        (None, None)
    };
    GraphProperties {
        num_vertices: n,
        num_edges: m,
        density,
        mean_degree,
        in_degree_skew: in_skew,
        out_degree_skew: out_skew,
        avg_triangles,
        avg_lcc,
    }
}

fn assert_bit_identical(a: &GraphProperties, b: &GraphProperties) {
    assert_eq!(a.num_vertices, b.num_vertices);
    assert_eq!(a.num_edges, b.num_edges);
    assert_eq!(a.density.to_bits(), b.density.to_bits());
    assert_eq!(a.mean_degree.to_bits(), b.mean_degree.to_bits());
    assert_eq!(a.in_degree_skew.to_bits(), b.in_degree_skew.to_bits());
    assert_eq!(a.out_degree_skew.to_bits(), b.out_degree_skew.to_bits());
    assert_eq!(a.avg_triangles.map(f64::to_bits), b.avg_triangles.map(f64::to_bits));
    assert_eq!(a.avg_lcc.map(f64::to_bits), b.avg_lcc.map(f64::to_bits));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every tier, through a shared context and through the legacy
    /// per-call path, produces bit-identical feature values.
    #[test]
    fn prepared_extraction_is_bit_identical_to_direct(g in arb_graph()) {
        let prepared = PreparedGraph::of(&g);
        for tier in PropertyTier::ALL {
            let via_prepared = prepared.properties(tier);
            let via_compute = GraphProperties::compute(&g, tier);
            let direct = direct_properties(&g, tier);
            assert_bit_identical(&via_prepared, &direct);
            assert_bit_identical(&via_compute, &direct);
        }
        // one graph, three tiers: the undirected CSR was still built once
        prop_assert_eq!(prepared.undirected_csr_builds(), 1);
    }

    /// Recomputing the fingerprint — same context or a fresh one over the
    /// same content — yields the same value.
    #[test]
    fn fingerprint_stable_under_recomputation(g in arb_graph()) {
        let a = PreparedGraph::of(&g);
        let first = a.fingerprint();
        prop_assert_eq!(first, a.fingerprint());
        prop_assert_eq!(first, PreparedGraph::of(&g).fingerprint());
        prop_assert_eq!(first, PreparedGraph::new(g.clone()).fingerprint());
    }

    /// Changing any single edge changes the fingerprint.
    #[test]
    fn fingerprint_changes_when_any_edge_changes(g in arb_graph(), pick in 0u64..1_000_000) {
        let baseline = PreparedGraph::of(&g).fingerprint();
        let m = g.num_edges();
        let n = g.num_vertices() as u32;
        prop_assume!(m > 0 && n > 1);
        let idx = (pick % m as u64) as usize;
        // rewire the picked edge's destination to a different vertex
        let mut changed = g.clone();
        let e = changed.edges()[idx];
        changed.edges_mut()[idx] = Edge::new(e.src, (e.dst + 1) % n);
        prop_assert_ne!(baseline, PreparedGraph::of(&changed).fingerprint());
        // dropping the picked edge changes it too
        let mut dropped = g.clone();
        dropped.edges_mut().remove(idx);
        let dropped = Graph::new(g.num_vertices(), dropped.edges().to_vec());
        prop_assert_ne!(baseline, PreparedGraph::of(&dropped).fingerprint());
        // and so does appending one
        let mut grown = g.clone();
        grown.push_edge(e.src, e.dst);
        prop_assert_ne!(baseline, PreparedGraph::of(&grown).fingerprint());
    }
}
