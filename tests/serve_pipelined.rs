//! Integration suite for the pipelined TCP front (PR 6 tentpole) and the
//! serve-layer concurrency bugfixes that rode along.
//!
//! The acceptance bar: many clients each driving many requests through
//! one v2 connection get answers *bit-identical* to the one-shot CLI over
//! both unix and TCP; responses genuinely complete out of order; protocol
//! garbage on the TCP path never kills the daemon; shutdown drains
//! promptly even with every worker pinned and the accept hand-off full
//! (the PR 6 lost-wake-up regression); and two daemons racing one socket
//! path resolve to exactly one winner whose socket survives (the PR 6
//! bind-TOCTOU regression).
#![cfg(unix)]

use ease_repro::core::profiling::TimingMode;
use ease_repro::graph::bel;
use ease_repro::graph::io::TextEdgeListWriter;
use ease_repro::graph::open_path;
use ease_repro::graph::PropertyTier;
use ease_repro::graphgen::realworld::socfb_analogue;
use ease_repro::graphgen::Scale;
use ease_repro::partition::PartitionerId;
use ease_repro::procsim::Workload;
use ease_repro::serve::{self, Endpoint, PipelinedClient, Request, Response, ServeConfig};
use ease_repro::{EaseError, EaseService, EaseServiceBuilder, OptGoal, ServeError};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Barrier, OnceLock};
use std::time::{Duration, Instant};

struct Fixtures {
    dir: PathBuf,
    model: PathBuf,
    /// The same graph content in both ingestion formats.
    txt: PathBuf,
    bel: PathBuf,
    /// A second, different graph (distinct fingerprint) for heavier
    /// feature-extraction requests.
    other_txt: PathBuf,
}

fn fixtures() -> &'static Fixtures {
    static FIXTURES: OnceLock<Fixtures> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        let dir = std::env::temp_dir().join("ease_serve_pipelined_suite");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("create fixture dir");
        let write_txt = |path: &Path, g: &ease_repro::graph::Graph| {
            let mut w = TextEdgeListWriter::create(path).expect("create txt");
            for &e in g.edges() {
                w.push(e).expect("write edge");
            }
            w.finish_with_vertices(g.num_vertices()).expect("finish txt");
        };
        let g = socfb_analogue(Scale::Tiny, 7).graph;
        let txt = dir.join("graph.txt");
        let bel_path = dir.join("graph.bel");
        write_txt(&txt, &g);
        bel::write_bel(&g, &bel_path).expect("write bel");
        let other = socfb_analogue(Scale::Tiny, 8).graph;
        let other_txt = dir.join("other.txt");
        write_txt(&other_txt, &other);
        let model = dir.join("ease.model");
        let service = EaseServiceBuilder::at_scale(Scale::Tiny)
            .quick_grid()
            .max_small_graphs(Some(6))
            .max_large_graphs(Some(4))
            .partition_counts(vec![2, 4])
            .partitioners(vec![PartitionerId::OneDD, PartitionerId::Dbh, PartitionerId::Ne])
            .workloads(vec![Workload::PageRank { iterations: 10 }, Workload::ConnectedComponents])
            .folds(2)
            .timing(TimingMode::Deterministic)
            .train()
            .expect("train fixture service");
        service.save(&model).expect("save fixture model");
        Fixtures { dir, model, txt, bel: bel_path, other_txt }
    })
}

/// Start an in-process daemon on a fresh unix socket *and* an ephemeral
/// TCP port, exactly as `ease serve --socket … --tcp 127.0.0.1:0` does.
fn start_server(tag: &str, workers: usize) -> (serve::ServerHandle, Endpoint, Endpoint) {
    let fx = fixtures();
    let socket = fx.dir.join(format!("{tag}.sock"));
    let service = Arc::new(EaseService::load(&fx.model).expect("load fixture model"));
    let config = ServeConfig::at(&socket).tcp("127.0.0.1:0").workers(workers);
    let handle = serve::serve(service, config).expect("bind daemon");
    let tcp = handle.tcp_addr().expect("tcp listener bound").to_string();
    (handle, Endpoint::unix(socket), Endpoint::tcp(tcp))
}

/// What a one-shot `ease recommend` answers for this query (the CLI
/// binary is pinned to this exact text by `tests/serve.rs`).
fn one_shot_answer(graph: &Path, workload: &str, k: Option<usize>) -> String {
    let fx = fixtures();
    let service = EaseService::load(&fx.model).expect("load model");
    let source = open_path(graph).expect("open graph");
    let display = graph.to_str().expect("utf8 path");
    let wl = Workload::from_name(workload).expect("known workload");
    let k = k.unwrap_or(service.meta().default_k);
    serve::render_recommendation(
        &service,
        display,
        source.as_ref(),
        wl,
        k,
        OptGoal::EndToEnd,
        serve::DEFAULT_TOP,
        None,
    )
    .expect("render one-shot answer")
}

fn recommend_request(graph: &Path, workload: &str, k: Option<usize>) -> Request {
    Request::Recommend {
        graph: graph.to_str().expect("utf8 path").to_string(),
        workload: workload.to_string(),
        k,
        goal: OptGoal::EndToEnd,
        top: serve::DEFAULT_TOP,
        cwd: None,
    }
}

// ---------------------------------------------------------------------
// v2 frame property tests
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any sequence of (id, payload) frames round-trips through v2
    /// framing byte-exactly and in order — including ids at the u64
    /// extremes and empty payloads.
    #[test]
    fn v2_frame_streams_round_trip(
        seed in 0u64..u64::MAX,
        lens in prop::collection::vec(0usize..4096, 1..12),
    ) {
        let frames: Vec<(u64, Vec<u8>)> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| {
                // ids anywhere in the u64 space, not just small counters
                let id = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(i as u32);
                let payload = (0..len).map(|b| (b as u8) ^ (id as u8)).collect();
                (id, payload)
            })
            .collect();
        let mut wire = Vec::new();
        for (id, payload) in &frames {
            serve::write_frame_v2(&mut wire, *id, payload).expect("write frame");
        }
        let mut r = &wire[..];
        for (id, payload) in &frames {
            let (got_id, got_payload) = serve::read_frame_v2(&mut r).expect("read frame");
            prop_assert_eq!(got_id, *id);
            prop_assert_eq!(&got_payload, payload);
        }
        prop_assert!(r.is_empty(), "no trailing bytes after the last frame");
    }

    /// Responses arriving in any order are matched back to their requests
    /// by id: encode a batch of distinct responses, deliver them in a
    /// seed-shuffled order, and every id must still map to its own bytes.
    #[test]
    fn out_of_order_responses_match_by_id(
        seed in 0u64..u64::MAX,
        count in 2usize..16,
    ) {
        let responses: Vec<(u64, Vec<u8>)> = (0..count as u64)
            .map(|id| (id, serve::encode_response(&Response::Error(format!("r{id}")))))
            .collect();
        // deterministic shuffle: deliver in a seed-dependent order
        let mut order: Vec<usize> = (0..count).collect();
        for i in (1..count).rev() {
            let j = (seed.rotate_left(i as u32) % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let mut wire = Vec::new();
        for &at in &order {
            let (id, payload) = &responses[at];
            serve::write_frame_v2(&mut wire, *id, payload).expect("write frame");
        }
        let mut r = &wire[..];
        let mut seen = vec![false; count];
        for _ in 0..count {
            let (id, payload) = serve::read_frame_v2(&mut r).expect("read frame");
            prop_assert_eq!(&payload, &responses[id as usize].1, "payload follows its id");
            prop_assert!(!seen[id as usize], "no duplicate deliveries");
            seen[id as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "every response delivered exactly once");
    }
}

// ---------------------------------------------------------------------
// Pipelined bit-identity over both transports
// ---------------------------------------------------------------------

#[test]
fn pipelined_answers_are_bit_identical_over_unix_and_tcp() {
    let fx = fixtures();
    let (handle, unix, tcp) = start_server("identity", 4);
    let expected_txt = one_shot_answer(&fx.txt, "pr", None);
    let expected_bel = one_shot_answer(&fx.bel, "pr", None);
    let expected_cc = one_shot_answer(&fx.txt, "cc", Some(2));
    // 6 clients × 9 requests, each client multiplexing one connection,
    // half over unix and half over TCP — v2 framing speaks both
    const CLIENTS: usize = 6;
    const REQS: usize = 9;
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let endpoint = if c % 2 == 0 { &tcp } else { &unix };
            let (expected_txt, expected_bel, expected_cc) =
                (&expected_txt, &expected_bel, &expected_cc);
            scope.spawn(move || {
                let requests: Vec<Request> = (0..REQS)
                    .map(|r| match (c + r) % 3 {
                        0 => recommend_request(&fixtures().txt, "pr", None),
                        1 => recommend_request(&fixtures().bel, "pr", None),
                        _ => recommend_request(&fixtures().txt, "cc", Some(2)),
                    })
                    .collect();
                let responses =
                    serve::call_pipelined(endpoint, &requests, 4).expect("pipelined batch");
                assert_eq!(responses.len(), REQS);
                for (r, response) in responses.into_iter().enumerate() {
                    let expected = match (c + r) % 3 {
                        0 => expected_txt,
                        1 => expected_bel,
                        _ => expected_cc,
                    };
                    let answer = serve::expect_answer(response).expect("answer");
                    assert_eq!(&answer, expected, "client {c} request {r}: must be bit-identical");
                }
            });
        }
    });
    // the real CLI binary over TCP prints the same bytes as the one-shot
    let tcp_addr = match &tcp {
        Endpoint::Tcp(addr) => addr.clone(),
        _ => unreachable!(),
    };
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_ease"))
        .args([
            "client",
            "recommend",
            "--tcp",
            &tcp_addr,
            "--graph",
            fx.txt.to_str().unwrap(),
            "--workload",
            "pr",
        ])
        .output()
        .expect("run ease CLI");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8(out.stdout).unwrap(), expected_txt);
    handle.trigger_shutdown();
    let summary = handle.join().expect("clean join");
    // all pipelined requests plus at least the CLI's one
    assert!(summary.requests_served > (CLIENTS * REQS) as u64);
}

// ---------------------------------------------------------------------
// Out-of-order completion on a live connection
// ---------------------------------------------------------------------

#[test]
fn slow_requests_do_not_block_later_answers_on_the_same_connection() {
    let fx = fixtures();
    let (handle, _unix, tcp) = start_server("ooo", 4);
    let mut client = PipelinedClient::connect(&tcp).expect("connect");
    // one heavy request (three full feature extractions) followed by a
    // burst of pings: with concurrent executors the pings must overtake it
    let heavy = client
        .send(&Request::Features {
            graph: fx.other_txt.to_str().unwrap().into(),
            tier: PropertyTier::Advanced,
            cwd: None,
        })
        .expect("send heavy");
    let pings: Vec<u64> = (0..4).map(|_| client.send(&Request::Ping).expect("send ping")).collect();
    let mut arrivals = Vec::new();
    for _ in 0..5 {
        let (id, response) = client.recv_any().expect("recv");
        match &response {
            Response::Pong { .. } => assert!(pings.contains(&id)),
            Response::Answer(text) => {
                assert_eq!(id, heavy);
                assert!(text.contains("feature"), "features answer: {text}");
            }
            other => panic!("unexpected response {other:?}"),
        }
        arrivals.push(id);
    }
    let heavy_at = arrivals.iter().position(|&id| id == heavy).expect("heavy answered");
    assert!(
        heavy_at > 0,
        "a ping sent after the heavy request must complete before it (arrivals: {arrivals:?})"
    );
    // the same connection still works after out-of-order traffic
    match client.call(&Request::Ping).expect("ping after reorder") {
        Response::Pong { version } => assert_eq!(version, serve::PROTOCOL_VERSION),
        other => panic!("expected Pong, got {other:?}"),
    }
    handle.trigger_shutdown();
    handle.join().expect("clean join");
}

// ---------------------------------------------------------------------
// Protocol robustness on the TCP path
// ---------------------------------------------------------------------

#[test]
fn tcp_garbage_never_kills_the_daemon() {
    let (handle, _unix, tcp) = start_server("garbage", 2);
    let addr = match &tcp {
        Endpoint::Tcp(addr) => addr.clone(),
        _ => unreachable!(),
    };
    let connect = || {
        let stream = TcpStream::connect(&addr).expect("tcp connect");
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream
    };
    // 1. an HTTP probe (wrong magic) gets a framed v1 error or a close,
    //    never a hang or a crash
    {
        let mut stream = connect();
        stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        if let Ok(payload) = serve::read_frame(&mut stream) {
            match serve::decode_response(&payload).unwrap() {
                Response::Error(msg) => assert!(msg.contains("protocol"), "{msg}"),
                other => panic!("expected protocol error, got {other:?}"),
            }
        }
    }
    // 2. a v2 frame declaring an oversized payload: connection closed
    //    without reading the flood
    {
        let mut stream = connect();
        let mut head = Vec::new();
        head.extend_from_slice(&serve::FRAME_MAGIC_V2);
        head.extend_from_slice(&7u64.to_le_bytes());
        head.extend_from_slice(&(u32::MAX).to_le_bytes());
        stream.write_all(&head).unwrap();
        let mut buf = [0u8; 1];
        assert_eq!(stream.read(&mut buf).expect("server closes"), 0, "expected EOF");
    }
    // 3. a well-framed v2 request with garbage payload: an Error response
    //    under the offending id, connection stays usable
    {
        let mut stream = connect();
        serve::write_frame_v2(&mut stream, 99, &[0xFF, 0xFF, 0xFF]).unwrap();
        let (id, payload) = serve::read_frame_v2(&mut stream).expect("framed error reply");
        assert_eq!(id, 99);
        match serve::decode_response(&payload).unwrap() {
            Response::Error(msg) => assert!(msg.contains("protocol"), "{msg}"),
            other => panic!("expected protocol error, got {other:?}"),
        }
        // same connection, valid request after the bad one
        serve::write_frame_v2(&mut stream, 100, &serve::encode_request(&Request::Ping)).unwrap();
        let (id, payload) = serve::read_frame_v2(&mut stream).expect("pong after garbage");
        assert_eq!(id, 100);
        assert!(matches!(serve::decode_response(&payload).unwrap(), Response::Pong { .. }));
    }
    // 4. v1 framing over TCP works too — the sniffer dispatches per
    //    connection, not per transport
    {
        let mut stream = connect();
        serve::write_frame(&mut stream, &serve::encode_request(&Request::Ping)).unwrap();
        let payload = serve::read_frame(&mut stream).expect("v1 over tcp");
        assert!(matches!(serve::decode_response(&payload).unwrap(), Response::Pong { .. }));
    }
    // after all that abuse the daemon still answers pipelined queries
    let responses = serve::call_pipelined(&tcp, &[Request::Ping, Request::CacheStats], 2)
        .expect("daemon alive");
    assert!(matches!(responses[0], Response::Pong { .. }));
    assert!(matches!(responses[1], Response::CacheStats(_)));
    handle.trigger_shutdown();
    handle.join().expect("no worker may have panicked");
}

// ---------------------------------------------------------------------
// Fingerprint-memo staleness: rewritten files must be re-read
// ---------------------------------------------------------------------

/// The daemon memoizes `path → fingerprint` keyed by a stat stamp so warm
/// repeat queries skip the graph open and the `O(|E|)` content hash. The
/// stamp must make that safe: overwriting the file with different content
/// has to invalidate the memo, and the post-rewrite answer must be what a
/// fresh one-shot run would print — never the remembered graph's answer.
#[test]
fn rewritten_graph_files_are_answered_fresh_not_from_the_memo() {
    let fx = fixtures();
    let (handle, unix, _tcp) = start_server("rewrite", 2);
    let path = fx.dir.join("rewrite.txt");
    std::fs::copy(&fx.txt, &path).expect("seed graph file");
    let expected_first = one_shot_answer(&path, "pr", None);

    let ask = || {
        let responses = serve::call_pipelined(&unix, &[recommend_request(&path, "pr", None)], 1)
            .expect("recommend");
        serve::expect_answer(responses.into_iter().next().unwrap()).expect("answer")
    };
    // first query takes the full open+hash path and seeds the memo; the
    // second is a warm memo hit — both must render identical bytes
    assert_eq!(ask(), expected_first, "cold answer matches the one-shot CLI");
    assert_eq!(ask(), expected_first, "memo-warm answer is bit-identical to the cold one");

    // rewrite the path with a different graph (different edge count, so
    // the file size — and therefore the stat stamp — must change even on
    // filesystems with coarse mtime granularity)
    std::fs::copy(&fx.other_txt, &path).expect("rewrite graph file");
    let expected_second = one_shot_answer(&path, "pr", None);
    assert_ne!(expected_first, expected_second, "fixture graphs must rank differently");
    assert_eq!(ask(), expected_second, "rewritten file must be answered fresh, not from memo");
    // and the new content is itself memoized correctly
    assert_eq!(ask(), expected_second, "warm answer after the rewrite stays fresh");

    handle.trigger_shutdown();
    handle.join().expect("clean join");
}

// ---------------------------------------------------------------------
// Regression: shutdown wake-up under load (PR 6 satellite bugfix)
// ---------------------------------------------------------------------

#[test]
fn shutdown_drains_promptly_with_all_workers_pinned_and_handoff_full() {
    let fx = fixtures();
    let socket = fx.dir.join("pinned.sock");
    let service = Arc::new(EaseService::load(&fx.model).expect("load fixture model"));
    // io_timeout(None): the old code's only escape hatch (worker eviction
    // at the I/O deadline) is off, so this reproduces the genuinely
    // unbounded case — workers blocked in reads forever, hand-off full,
    // accept thread stuck mid-send where the shutdown poke can't reach it
    let config = ServeConfig::at(&socket).workers(2).io_timeout(None);
    let handle = serve::serve(service, config).expect("bind daemon");
    // 2 stalled connections pin both workers; 4 fill the bounded hand-off
    // (workers * 2); 1 more parks the accept thread in the hand-off
    let _stalled: Vec<UnixStream> =
        (0..7).map(|_| UnixStream::connect(&socket).expect("connect stalled client")).collect();
    // let the accept thread actually reach the blocked hand-off state
    std::thread::sleep(Duration::from_millis(300));
    handle.trigger_shutdown();
    let start = Instant::now();
    let summary = handle.join().expect("join must not hang");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "shutdown took {:?} with pinned workers and a full hand-off queue",
        start.elapsed()
    );
    assert_eq!(summary.requests_served, 0, "no stalled client ever sent a request");
    assert!(!socket.exists(), "socket file removed on shutdown");
}

// ---------------------------------------------------------------------
// Regression: two daemons racing one socket path (PR 6 satellite bugfix)
// ---------------------------------------------------------------------

#[test]
fn two_daemons_racing_one_socket_path_resolve_to_one_winner() {
    let fx = fixtures();
    let socket = fx.dir.join("race.sock");
    // several rounds: the old TOCTOU (probe, remove_file, bind) let the
    // loser unlink the winner's freshly bound socket, so the winner would
    // "win" and then silently serve an unlinked inode no client can reach
    for round in 0..4 {
        // a stale socket file makes both daemons take the reclaim path —
        // exactly the racy window the flock now serializes
        std::fs::write(&socket, b"stale").unwrap();
        let barrier = Barrier::new(2);
        let (a, b) = std::thread::scope(|scope| {
            let spawn_daemon = || {
                let socket = &socket;
                let barrier = &barrier;
                scope.spawn(move || {
                    let service =
                        Arc::new(EaseService::load(&fixtures().model).expect("load model"));
                    barrier.wait();
                    serve::serve(service, ServeConfig::at(socket).workers(2))
                })
            };
            let a = spawn_daemon();
            let b = spawn_daemon();
            (a.join().expect("no panic"), b.join().expect("no panic"))
        });
        let (winner, loser) = match (a, b) {
            (Ok(h), Err(e)) | (Err(e), Ok(h)) => (h, e),
            (Ok(_), Ok(_)) => panic!("round {round}: both daemons claimed the same socket"),
            (Err(ea), Err(eb)) => panic!("round {round}: both daemons failed: {ea:?} / {eb:?}"),
        };
        match loser {
            EaseError::Serve(ServeError::Bind { socket: s, .. }) => {
                assert_eq!(s, socket.display().to_string(), "round {round}")
            }
            other => panic!("round {round}: expected a typed Bind error, got {other:?}"),
        }
        // the decisive assertion: the loser must NOT have unlinked the
        // winner's socket — a client can still reach it
        match serve::call(&socket, &Request::Ping).expect("winner's socket must be live") {
            Response::Pong { .. } => {}
            other => panic!("round {round}: expected Pong, got {other:?}"),
        }
        winner.trigger_shutdown();
        winner.join().expect("clean join");
        assert!(!socket.exists(), "round {round}: socket removed after shutdown");
    }
}
