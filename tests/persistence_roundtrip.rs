//! Persistence round-trip guarantees for the PR 2 codec:
//!
//! 1. Every `ModelConfig` in the default grid survives
//!    `to_params → encode → decode → from_params` with **bit-identical**
//!    predictions on random feature vectors (property-tested).
//! 2. A trained `EaseService` saved to disk and reloaded produces identical
//!    `Selection`s for the same queries.
//! 3. Corrupted headers, version skew, and truncation are rejected with
//!    typed errors — never a panic or a silently wrong model.

use ease_repro::core::profiling::TimingMode;
use ease_repro::graph::GraphProperties;
use ease_repro::graphgen::realworld::socfb_analogue;
use ease_repro::graphgen::Scale;
use ease_repro::ml::persist::{
    build_regressor, decode_model, encode_model, read_header, write_header, Reader, Writer,
};
use ease_repro::ml::zoo::default_grid;
use ease_repro::ml::{Matrix, ModelConfig, PersistError};
use ease_repro::partition::PartitionerId;
use ease_repro::procsim::Workload;
use ease_repro::{EaseError, EaseService, EaseServiceBuilder, OptGoal};
use proptest::prelude::*;

/// Shrink the expensive grid members so the property test stays fast
/// without losing family coverage.
fn test_sized(cfg: ModelConfig) -> ModelConfig {
    match cfg {
        ModelConfig::Mlp { hidden, .. } => {
            ModelConfig::Mlp { hidden, epochs: 8, learning_rate: 1e-3 }
        }
        ModelConfig::Forest { max_depth, feature_fraction, .. } => {
            ModelConfig::Forest { n_trees: 12, max_depth, feature_fraction }
        }
        ModelConfig::Xgb { learning_rate, max_depth, lambda, .. } => {
            ModelConfig::Xgb { n_estimators: 25, learning_rate, max_depth, lambda }
        }
        other => other,
    }
}

fn round_trip(model: &dyn ease_repro::ml::Regressor) -> Box<dyn ease_repro::ml::Regressor> {
    let mut w = Writer::new();
    write_header(&mut w);
    encode_model(&mut w, &model.to_params());
    let bytes = w.into_bytes();
    let mut r = Reader::new(&bytes);
    read_header(&mut r).expect("valid header");
    let restored = build_regressor(decode_model(&mut r).expect("decodable")).expect("buildable");
    assert_eq!(r.remaining(), 0, "payload fully consumed");
    restored
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// save → load → identical predictions on random feature vectors, for
    /// every model family + hyper-parameter point of the default grid.
    #[test]
    fn every_grid_config_round_trips_on_random_vectors(
        rows in prop::collection::vec(prop::collection::vec(-50.0f64..50.0, 4usize..=4), 25usize..40),
        probes in prop::collection::vec(prop::collection::vec(-75.0f64..75.0, 4usize..=4), 8usize..=8),
    ) {
        let y: Vec<f64> = rows.iter().map(|r| r[0] - 0.5 * r[1] + (r[2] * 0.1).sin() * r[3]).collect();
        let x = Matrix::from_rows(&rows);
        for cfg in default_grid() {
            let cfg = test_sized(cfg);
            let mut model = cfg.build();
            model.fit(&x, &y);
            let restored = round_trip(model.as_ref());
            for probe in &probes {
                let a = model.predict_row(probe);
                let b = restored.predict_row(probe);
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{} diverged on {:?}", cfg.describe(), probe);
            }
        }
    }
}

fn tiny_service() -> EaseService {
    EaseServiceBuilder::at_scale(Scale::Tiny)
        .quick_grid()
        .max_small_graphs(Some(6))
        .max_large_graphs(Some(4))
        .partition_counts(vec![2, 4])
        .partitioners(vec![PartitionerId::OneDD, PartitionerId::Hdrf, PartitionerId::Ne])
        .workloads(vec![Workload::PageRank { iterations: 3 }, Workload::ConnectedComponents])
        .folds(2)
        .timing(TimingMode::Deterministic)
        .seed(77)
        .train()
        .expect("valid config")
}

#[test]
fn service_survives_a_disk_round_trip_with_identical_selections() {
    let service = tiny_service();
    let path = std::env::temp_dir().join(format!("ease_rt_{}.model", std::process::id()));
    service.save(&path).expect("saveable");
    let restored = EaseService::load(&path).expect("loadable");
    std::fs::remove_file(&path).ok();

    assert_eq!(restored.meta(), service.meta());
    assert_eq!(restored.catalog(), service.catalog());
    for seed in 0..6 {
        let props = GraphProperties::compute_advanced(&socfb_analogue(Scale::Tiny, seed).graph);
        for workload in [Workload::PageRank { iterations: 3 }, Workload::ConnectedComponents] {
            for goal in [OptGoal::EndToEnd, OptGoal::ProcessingOnly] {
                let a = service.recommend(&props, workload, goal).expect("trained");
                let b = restored.recommend(&props, workload, goal).expect("trained");
                assert_eq!(a.best, b.best, "seed {seed}");
                for (ca, cb) in a.candidates.iter().zip(&b.candidates) {
                    assert_eq!(ca.partitioner, cb.partitioner);
                    assert_eq!(ca.end_to_end_secs.to_bits(), cb.end_to_end_secs.to_bits());
                    assert_eq!(
                        ca.quality.replication_factor.to_bits(),
                        cb.quality.replication_factor.to_bits()
                    );
                }
            }
        }
    }
}

#[test]
fn corrupted_header_is_rejected() {
    let service = tiny_service();
    let good = service.to_bytes();

    // flipped magic byte
    let mut bad_magic = good.clone();
    bad_magic[0] ^= 0x01;
    assert!(matches!(
        EaseService::from_bytes(&bad_magic).unwrap_err(),
        EaseError::Persist(PersistError::BadMagic)
    ));

    // future format version
    let mut future = good.clone();
    future[8] = 0xFF;
    assert!(matches!(
        EaseService::from_bytes(&future).unwrap_err(),
        EaseError::Persist(PersistError::UnsupportedVersion(_))
    ));

    // header alone (truncated payload)
    assert!(matches!(EaseService::from_bytes(&good[..12]).unwrap_err(), EaseError::Persist(_)));

    // empty file
    assert!(matches!(
        EaseService::from_bytes(&[]).unwrap_err(),
        EaseError::Persist(PersistError::BadMagic)
    ));
}

#[test]
fn mid_payload_corruption_never_panics() {
    let service = tiny_service();
    let good = service.to_bytes();
    // stomp a byte at several depths; decoding must either fail with a
    // typed error or produce a structurally valid service — never panic
    for at in [20, good.len() / 4, good.len() / 2, good.len() - 9] {
        let mut bad = good.clone();
        bad[at] ^= 0xA5;
        match EaseService::from_bytes(&bad) {
            Ok(s) => {
                let _ = s.supported_workloads();
            }
            Err(EaseError::Persist(_)) => {}
            Err(other) => panic!("unexpected error class: {other:?}"),
        }
    }
}

#[test]
fn load_of_missing_file_is_an_io_error() {
    let err = EaseService::load(std::path::Path::new("/nonexistent/ease.model")).unwrap_err();
    assert!(matches!(err, EaseError::Io(_)), "{err:?}");
}
