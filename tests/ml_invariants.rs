//! Property-based invariants of the ML substrate.

use ease_repro::ml::{mape, rmse, Matrix, ModelConfig, StandardScaler};
use proptest::prelude::*;

fn arb_dataset() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    (10usize..80, 1usize..5).prop_flat_map(|(rows, cols)| {
        (
            prop::collection::vec(
                prop::collection::vec(-100.0f64..100.0, cols..=cols),
                rows..=rows,
            ),
            prop::collection::vec(-50.0f64..50.0, rows..=rows),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Tree-family predictions never leave the convex hull of the targets.
    #[test]
    fn tree_predictions_within_target_hull((rows, y) in arb_dataset()) {
        let x = Matrix::from_rows(&rows);
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut forest =
            ModelConfig::Forest { n_trees: 10, max_depth: 8, feature_fraction: 1.0 }.build();
        forest.fit(&x, &y);
        for row in &rows {
            let p = forest.predict_row(row);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo},{hi}]");
        }
    }

    /// KNN with k = n predicts the global mean everywhere.
    #[test]
    fn knn_full_k_is_global_mean((rows, y) in arb_dataset()) {
        let x = Matrix::from_rows(&rows);
        let mut knn = ModelConfig::Knn { k: y.len(), distance_weighted: false }.build();
        knn.fit(&x, &y);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let p = knn.predict_row(&rows[0]);
        prop_assert!((p - mean).abs() < 1e-6, "{p} vs mean {mean}");
    }

    /// z-score transform is invertible in distribution: transformed columns
    /// have mean ~0, and transforming twice equals composing scales.
    #[test]
    fn scaler_centers_columns((rows, _y) in arb_dataset()) {
        let x = Matrix::from_rows(&rows);
        let s = StandardScaler::fit(&x);
        let t = s.transform(&x);
        for j in 0..x.cols {
            let mean: f64 = (0..t.rows).map(|i| t.get(i, j)).sum::<f64>() / t.rows as f64;
            prop_assert!(mean.abs() < 1e-8, "col {j} mean {mean}");
        }
    }

    /// Metric identities: rmse/mape vanish iff predictions equal targets;
    /// rmse is symmetric in its arguments.
    #[test]
    fn metric_identities(y in prop::collection::vec(0.5f64..100.0, 2..40)) {
        prop_assert!(rmse(&y, &y) == 0.0);
        prop_assert!(mape(&y, &y) == 0.0);
        let shifted: Vec<f64> = y.iter().map(|v| v + 1.0).collect();
        prop_assert!(rmse(&y, &shifted) > 0.0);
        prop_assert!((rmse(&y, &shifted) - rmse(&shifted, &y)).abs() < 1e-12);
    }

    /// Ridge regression with huge alpha collapses to the target mean.
    #[test]
    fn poly_heavy_ridge_predicts_mean((rows, y) in arb_dataset()) {
        let x = Matrix::from_rows(&rows);
        let mut m = ModelConfig::Poly { degree: 1, alpha: 1e12 }.build();
        m.fit(&x, &y);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let spread = y.iter().map(|v| (v - mean).abs()).fold(0.0, f64::max);
        let p = m.predict_row(&rows[0]);
        prop_assert!((p - mean).abs() <= spread * 0.05 + 1e-6, "{p} vs mean {mean}");
    }
}
