//! Integration suite for `ease serve` — the multi-client recommendation
//! daemon (PR 5 tentpole).
//!
//! The acceptance bar: ≥ 8 concurrent clients hammering an in-process
//! server get answers *bit-identical* to the one-shot CLI, for both text
//! and mmap'd `.bel` inputs; the warm property cache stays coherent under
//! that concurrency; errors (missing files, malformed graphs, unknown
//! workloads, protocol garbage) are routed back to the offending client
//! without ever killing the daemon; and shutdown drains gracefully.
//!
//! The trained service + graph fixtures are built once per test binary
//! (`OnceLock`) — every test then serves on its own socket.
#![cfg(unix)]

use ease_repro::core::profiling::TimingMode;
use ease_repro::graph::bel;
use ease_repro::graph::io::TextEdgeListWriter;
use ease_repro::graph::open_path;
use ease_repro::graphgen::realworld::socfb_analogue;
use ease_repro::graphgen::Scale;
use ease_repro::procsim::Workload;
use ease_repro::serve::{self, Request, Response, ServeConfig};
use ease_repro::{EaseError, EaseService, EaseServiceBuilder, OptGoal, ServeError};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::{Arc, OnceLock};

use ease_repro::partition::PartitionerId;

struct Fixtures {
    dir: PathBuf,
    model: PathBuf,
    /// The same graph content in both ingestion formats.
    txt: PathBuf,
    bel: PathBuf,
    /// A second, different graph (distinct fingerprint).
    other_txt: PathBuf,
}

fn fixtures() -> &'static Fixtures {
    static FIXTURES: OnceLock<Fixtures> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        // fixed name, wiped on entry: each run cleans up the previous
        // run's fixtures (tests have no teardown hook for the OnceLock)
        let dir = std::env::temp_dir().join("ease_serve_suite");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("create fixture dir");
        let write_txt = |path: &Path, g: &ease_repro::graph::Graph| {
            let mut w = TextEdgeListWriter::create(path).expect("create txt");
            for &e in g.edges() {
                w.push(e).expect("write edge");
            }
            w.finish_with_vertices(g.num_vertices()).expect("finish txt");
        };
        let g = socfb_analogue(Scale::Tiny, 7).graph;
        let txt = dir.join("graph.txt");
        let bel_path = dir.join("graph.bel");
        write_txt(&txt, &g);
        bel::write_bel(&g, &bel_path).expect("write bel");
        let other = socfb_analogue(Scale::Tiny, 8).graph;
        let other_txt = dir.join("other.txt");
        write_txt(&other_txt, &other);
        let model = dir.join("ease.model");
        let service = EaseServiceBuilder::at_scale(Scale::Tiny)
            .quick_grid()
            .max_small_graphs(Some(6))
            .max_large_graphs(Some(4))
            .partition_counts(vec![2, 4])
            .partitioners(vec![PartitionerId::OneDD, PartitionerId::Dbh, PartitionerId::Ne])
            .workloads(vec![Workload::PageRank { iterations: 10 }, Workload::ConnectedComponents])
            .folds(2)
            .timing(TimingMode::Deterministic)
            .train()
            .expect("train fixture service");
        service.save(&model).expect("save fixture model");
        Fixtures { dir, model, txt, bel: bel_path, other_txt }
    })
}

/// Start an in-process daemon on a fresh socket, exactly as `ease serve`
/// does: load the persisted model, share it behind an `Arc`.
fn start_server(tag: &str, workers: usize) -> (serve::ServerHandle, PathBuf) {
    let fx = fixtures();
    let socket = fx.dir.join(format!("{tag}.sock"));
    let service = Arc::new(EaseService::load(&fx.model).expect("load fixture model"));
    let handle =
        serve::serve(service, ServeConfig::at(&socket).workers(workers)).expect("bind daemon");
    (handle, socket)
}

/// What a one-shot `ease recommend` process answers: fresh service load,
/// fresh graph open, shared renderer. The CLI binary itself is pinned to
/// this exact text by `one_shot_render_matches_the_real_cli_binary`.
fn one_shot_answer(graph: &Path, workload: &str, k: Option<usize>) -> String {
    let fx = fixtures();
    let service = EaseService::load(&fx.model).expect("load model");
    let source = open_path(graph).expect("open graph");
    let display = graph.to_str().expect("utf8 path");
    let wl = Workload::from_name(workload).expect("known workload");
    let k = k.unwrap_or(service.meta().default_k);
    serve::render_recommendation(
        &service,
        display,
        source.as_ref(),
        wl,
        k,
        OptGoal::EndToEnd,
        serve::DEFAULT_TOP,
        None,
    )
    .expect("render one-shot answer")
}

fn recommend_request(graph: &Path, workload: &str, k: Option<usize>) -> Request {
    Request::Recommend {
        graph: graph.to_str().expect("utf8 path").to_string(),
        workload: workload.to_string(),
        k,
        goal: OptGoal::EndToEnd,
        top: serve::DEFAULT_TOP,
        cwd: None,
    }
}

fn run_cli(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_ease")).args(args).output().expect("run ease CLI");
    (
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        String::from_utf8(out.stderr).expect("utf8 stderr"),
        out.status.success(),
    )
}

#[test]
fn one_shot_render_matches_the_real_cli_binary() {
    let fx = fixtures();
    for graph in [&fx.txt, &fx.bel] {
        let expected = one_shot_answer(graph, "pr", None);
        let (stdout, stderr, ok) = run_cli(&[
            "recommend",
            "--model",
            fx.model.to_str().unwrap(),
            "--graph",
            graph.to_str().unwrap(),
            "--workload",
            "pr",
            "--goal",
            "e2e",
        ]);
        assert!(ok, "one-shot CLI failed: {stderr}");
        assert_eq!(stdout, expected, "render_recommendation must be the CLI's exact output");
    }
}

#[test]
fn concurrent_clients_get_bit_identical_answers_for_text_and_bel() {
    let fx = fixtures();
    let (handle, socket) = start_server("concurrent", 4);
    // the acceptance bar is >= 8 concurrent clients; run 12 mixing formats,
    // workloads and explicit k against the same warm daemon
    let expected_txt = one_shot_answer(&fx.txt, "pr", None);
    let expected_bel = one_shot_answer(&fx.bel, "pr", None);
    let expected_txt_cc_k2 = one_shot_answer(&fx.txt, "cc", Some(2));
    const CLIENTS: usize = 12;
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let socket = &socket;
            let (request, expected) = match c % 3 {
                0 => (recommend_request(&fx.txt, "pr", None), &expected_txt),
                1 => (recommend_request(&fx.bel, "pr", None), &expected_bel),
                _ => (recommend_request(&fx.txt, "cc", Some(2)), &expected_txt_cc_k2),
            };
            scope.spawn(move || {
                let response = serve::call(socket, &request).expect("daemon call");
                let answer = serve::expect_answer(response).expect("answer");
                assert_eq!(&answer, expected, "client {c}: daemon answer must be bit-identical");
            });
        }
    });
    // same content, two backends -> one fingerprint: the .bel queries hit
    // the entry the .txt queries populated (or vice versa)
    let stats = match serve::call(&socket, &Request::CacheStats).expect("stats call") {
        Response::CacheStats(stats) => stats,
        other => panic!("expected CacheStats, got {other:?}"),
    };
    assert_eq!(stats.hits + stats.misses, CLIENTS as u64);
    assert_eq!(stats.len, 1, "txt and bel of the same graph share one fingerprint");
    assert!(stats.misses >= 1);
    handle.trigger_shutdown();
    let summary = handle.join().expect("clean join");
    assert_eq!(summary.requests_served, CLIENTS as u64 + 1);
}

#[test]
fn daemon_proxy_cli_is_bit_identical_to_one_shot_cli() {
    let fx = fixtures();
    let (handle, socket) = start_server("proxy", 2);
    let socket_str = socket.to_str().unwrap();
    for graph in [&fx.txt, &fx.bel] {
        let graph_str = graph.to_str().unwrap();
        let one_shot_args =
            ["recommend", "--model", fx.model.to_str().unwrap(), "--graph", graph_str];
        let (direct, stderr, ok) = run_cli(&one_shot_args);
        assert!(ok, "one-shot failed: {stderr}");
        // `ease recommend --daemon <socket>`: no --model needed
        let (proxied, stderr, ok) =
            run_cli(&["recommend", "--daemon", socket_str, "--graph", graph_str]);
        assert!(ok, "proxy failed: {stderr}");
        assert_eq!(proxied, direct, "--daemon answer must match the one-shot CLI byte-for-byte");
        // `ease client recommend` speaks the same protocol
        let (via_client, stderr, ok) =
            run_cli(&["client", "recommend", "--socket", socket_str, "--graph", graph_str]);
        assert!(ok, "client failed: {stderr}");
        assert_eq!(via_client, direct);
    }
    // features: every line except the trailing wall-clock timing line is
    // deterministic, so strip it on both sides (as CI does)
    let strip_timing = |s: &str| {
        let mut lines: Vec<&str> = s.lines().collect();
        assert!(lines.last().is_some_and(|l| l.starts_with("extraction:")), "timing line last");
        lines.pop();
        lines.join("\n")
    };
    let graph_str = fx.bel.to_str().unwrap();
    let (direct, _, ok) = run_cli(&["features", graph_str, "--tier", "advanced"]);
    assert!(ok);
    let (proxied, stderr, ok) =
        run_cli(&["features", graph_str, "--tier", "advanced", "--daemon", socket_str]);
    assert!(ok, "features proxy failed: {stderr}");
    assert_eq!(strip_timing(&proxied), strip_timing(&direct));
    // ping through the CLI client
    let (pong, _, ok) = run_cli(&["client", "ping", "--socket", socket_str]);
    assert!(ok);
    assert!(pong.contains("pong"), "{pong}");
    // graceful shutdown through the CLI client: zero exit, socket gone
    let (_, _, ok) = run_cli(&["client", "shutdown", "--socket", socket_str]);
    assert!(ok);
    let summary = handle.join().expect("clean join");
    assert!(summary.requests_served >= 7);
    assert!(!socket.exists(), "shutdown must remove the socket file");
}

#[test]
fn cache_stats_over_the_socket_stay_coherent_under_concurrency() {
    let fx = fixtures();
    let (handle, socket) = start_server("stats", 4);
    const CLIENTS: usize = 8;
    const REQS_PER_CLIENT: usize = 4;
    let expected: Vec<String> =
        [&fx.txt, &fx.other_txt].iter().map(|g| one_shot_answer(g, "pr", None)).collect();
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let socket = &socket;
            let expected = &expected;
            scope.spawn(move || {
                for r in 0..REQS_PER_CLIENT {
                    let which = (c + r) % 2;
                    let graph = if which == 0 { &fixtures().txt } else { &fixtures().other_txt };
                    let response =
                        serve::call(socket, &recommend_request(graph, "pr", None)).expect("call");
                    let answer = serve::expect_answer(response).expect("answer");
                    assert_eq!(&answer, &expected[which]);
                }
            });
        }
    });
    let total = (CLIENTS * REQS_PER_CLIENT) as u64;
    let stats = match serve::call(&socket, &Request::CacheStats).expect("stats") {
        Response::CacheStats(stats) => stats,
        other => panic!("expected CacheStats, got {other:?}"),
    };
    // exactly one lookup per recommend; concurrent first queries may race
    // to a redundant extraction, so misses is bounded, not exact
    assert_eq!(stats.hits + stats.misses, total, "one cache lookup per recommend");
    assert!(stats.misses >= 2, "two distinct graphs must each miss at least once");
    assert!(stats.misses <= 2 * CLIENTS as u64);
    assert_eq!(stats.len, 2, "one resident entry per distinct fingerprint");
    assert_eq!(stats.evictions, 0, "far below capacity");
    assert_eq!(stats.requests_served, total + 1, "the stats request counts itself");
    handle.trigger_shutdown();
    handle.join().expect("clean join");
}

#[test]
fn request_failures_never_kill_the_daemon() {
    let fx = fixtures();
    let (handle, socket) = start_server("errors", 2);
    let expect_error = |request: &Request, needle: &str| match serve::call(&socket, request)
        .expect("transport must survive")
    {
        Response::Error(msg) => {
            assert!(msg.contains(needle), "error `{msg}` should mention `{needle}`")
        }
        other => panic!("expected an error for {request:?}, got {other:?}"),
    };
    // missing file
    let missing = fx.dir.join("no_such.txt");
    expect_error(&recommend_request(&missing, "pr", None), "I/O error");
    // unknown workload (defensive server-side validation; the CLI rejects
    // it client-side before connecting)
    expect_error(&recommend_request(&fx.txt, "nope", None), "unknown workload");
    // workload the model was never trained for -> typed, not fatal
    expect_error(&recommend_request(&fx.txt, "kcores", None), "no model trained");
    // malformed text graph reaches the daemon as a parse error with a line
    let bad_txt = fx.dir.join("bad.txt");
    std::fs::write(&bad_txt, "0 1\nbroken token\n").unwrap();
    expect_error(&recommend_request(&bad_txt, "pr", None), "malformed edge-list line 2");
    // corrupt .bel: the mmap validation rejects it at open
    let bad_bel = fx.dir.join("bad.bel");
    std::fs::write(&bad_bel, b"NOTABEL!").unwrap();
    expect_error(
        &Request::Features {
            graph: bad_bel.to_str().unwrap().into(),
            tier: ease_repro::graph::PropertyTier::Advanced,
            cwd: None,
        },
        "malformed binary edge list",
    );
    // raw protocol garbage: framed junk payload gets an Error response...
    {
        use std::io::Write as _;
        use std::os::unix::net::UnixStream;
        let mut stream = UnixStream::connect(&socket).unwrap();
        serve::write_frame(&mut stream, &[0xFF, 0xFF, 0xFF]).unwrap();
        let payload = serve::read_frame(&mut stream).unwrap();
        match serve::decode_response(&payload).unwrap() {
            Response::Error(msg) => assert!(msg.contains("protocol"), "{msg}"),
            other => panic!("expected protocol error, got {other:?}"),
        }
        // ...and an unframed byte blast (wrong magic) is answered or
        // dropped, but never crashes the pool
        let mut stream = UnixStream::connect(&socket).unwrap();
        stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        stream.shutdown(std::net::Shutdown::Write).ok();
    }
    // after all that abuse, a well-formed query still answers correctly
    let expected = one_shot_answer(&fx.txt, "pr", None);
    let response = serve::call(&socket, &recommend_request(&fx.txt, "pr", None)).expect("call");
    assert_eq!(serve::expect_answer(response).expect("answer"), expected);
    handle.trigger_shutdown();
    let summary = handle.join().expect("no worker may have panicked");
    assert!(summary.requests_served >= 6);
}

#[test]
fn relative_graph_paths_resolve_against_the_client_cwd() {
    let fx = fixtures();
    let (handle, socket) = start_server("relpath", 2);
    // client runs in the fixture dir and names the graph relatively; the
    // daemon (whose cwd is the cargo test cwd, where `graph.txt` does not
    // exist) must still answer for the client's file — and display the
    // path exactly as the client wrote it
    let out = Command::new(env!("CARGO_BIN_EXE_ease"))
        .current_dir(&fx.dir)
        .args(["recommend", "--daemon", socket.to_str().unwrap(), "--graph", "graph.txt"])
        .output()
        .expect("run ease CLI");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let answer = String::from_utf8(out.stdout).unwrap();
    assert!(answer.starts_with("graph graph.txt:"), "displays the client's spelling: {answer}");
    // identical ranking to the absolute-path answer (only line 1 differs)
    let absolute = one_shot_answer(&fx.txt, "pr", None);
    assert_eq!(
        answer.lines().skip(1).collect::<Vec<_>>(),
        absolute.lines().skip(1).collect::<Vec<_>>(),
    );
    handle.trigger_shutdown();
    handle.join().expect("clean join");
}

#[test]
fn stalled_clients_cannot_block_graceful_shutdown() {
    use std::os::unix::net::UnixStream;
    let fx = fixtures();
    let socket = fx.dir.join("stalled.sock");
    let service = Arc::new(EaseService::load(&fx.model).expect("load fixture model"));
    let config =
        ServeConfig::at(&socket).workers(2).io_timeout(Some(std::time::Duration::from_millis(200)));
    let handle = serve::serve(service, config).expect("bind daemon");
    // a client that connects and never sends a complete frame (crashed
    // peer, port probe) occupies a worker until the I/O timeout frees it
    let stalled = UnixStream::connect(&socket).expect("connect stalled client");
    // the daemon still answers on the remaining worker, and shutdown drains
    match serve::call(&socket, &Request::Ping).expect("ping around the stalled peer") {
        Response::Pong { .. } => {}
        other => panic!("expected Pong, got {other:?}"),
    }
    handle.trigger_shutdown();
    let start = std::time::Instant::now();
    handle.join().expect("join must not hang on the stalled connection");
    assert!(
        start.elapsed() < std::time::Duration::from_secs(5),
        "shutdown took {:?} despite the 200ms io timeout",
        start.elapsed()
    );
    drop(stalled);
}

#[test]
fn shutdown_is_graceful_and_sockets_are_exclusive() {
    let fx = fixtures();
    let (handle, socket) = start_server("lifecycle", 2);
    // a second daemon on a *live* socket is a typed bind error
    let service = Arc::new(EaseService::load(&fx.model).unwrap());
    match serve::serve(Arc::clone(&service), ServeConfig::at(&socket).workers(2)) {
        Err(EaseError::Serve(ServeError::Bind { socket: s, .. })) => {
            assert_eq!(s, socket.display().to_string())
        }
        Err(other) => panic!("expected a Bind error, got {other:?}"),
        Ok(_) => panic!("expected a Bind error, got a second daemon"),
    }
    // client-initiated shutdown acknowledges, drains and removes the socket
    match serve::call(&socket, &Request::Shutdown).expect("shutdown call") {
        Response::ShuttingDown => {}
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
    let summary = handle.join().expect("clean join");
    assert_eq!(summary.requests_served, 1);
    assert!(!socket.exists(), "socket file removed on shutdown");
    // further calls fail with a typed I/O error (nothing is listening)
    assert!(matches!(
        serve::call(&socket, &Request::Ping).unwrap_err(),
        EaseError::Io(_) | EaseError::Serve(_)
    ));
    // a *stale* socket file (dead daemon / leftover path) is replaced
    std::fs::write(&socket, b"stale").unwrap();
    let (handle2, _) = {
        let handle = serve::serve(service, ServeConfig::at(&socket).workers(2))
            .expect("stale socket file must be reclaimed");
        (handle, ())
    };
    match serve::call(&socket, &Request::Ping).expect("ping after reclaim") {
        Response::Pong { version } => assert_eq!(version, serve::PROTOCOL_VERSION),
        other => panic!("expected Pong, got {other:?}"),
    }
    handle2.trigger_shutdown();
    handle2.join().expect("clean join");
}
