//! Quickstart: generate a graph, partition it three ways, inspect quality
//! metrics, and run PageRank on the simulated cluster.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ease_repro::graph::{GraphProperties, PropertyTier};
use ease_repro::graphgen::rmat::{Rmat, RMAT_COMBOS};
use ease_repro::partition::{run_partitioner, PartitionerId};
use ease_repro::procsim::{ClusterSpec, DistributedGraph, Workload};

fn main() {
    // 1. a power-law R-MAT graph (paper combo C7), 2^12 vertices, 30k edges
    let graph = Rmat::new(RMAT_COMBOS[6], 1 << 12, 30_000, 42).generate();
    let props = GraphProperties::compute(&graph, PropertyTier::Advanced);
    println!(
        "graph: |V|={} |E|={} mean degree {:.1} clustering {:.3}",
        props.num_vertices,
        props.num_edges,
        props.mean_degree,
        props.avg_lcc.unwrap_or(0.0)
    );

    // 2. partition into 8 parts with three very different algorithms
    let k = 8;
    println!(
        "\n{:<8} {:>6} {:>8} {:>8} {:>12}",
        "algo", "rf", "edge-bal", "vtx-bal", "partition-ms"
    );
    for id in [PartitionerId::OneDD, PartitionerId::Hdrf, PartitionerId::Ne] {
        let run = run_partitioner(id, &graph, k, 1);
        println!(
            "{:<8} {:>6.2} {:>8.3} {:>8.3} {:>12.2}",
            id.name(),
            run.metrics.replication_factor,
            run.metrics.edge_balance,
            run.metrics.vertex_balance,
            run.partitioning_secs * 1e3,
        );
    }

    // 3. run PageRank on the simulated 8-machine cluster for each placement
    println!("\nPageRank (10 iterations) on the simulated cluster:");
    let cluster = ClusterSpec::new(k);
    for id in [PartitionerId::OneDD, PartitionerId::Hdrf, PartitionerId::Ne] {
        let run = run_partitioner(id, &graph, k, 1);
        let dg = DistributedGraph::build(&graph, &run.partition);
        let report = Workload::PageRank { iterations: 10 }.execute(&dg, &cluster);
        println!(
            "  {:<8} processing {:>7.3}s  (comm {:.1} MB)",
            id.name(),
            report.total_secs,
            report.total_comm_bytes / 1e6
        );
    }
    println!("\nlower replication factor -> less communication -> faster PageRank.");
}
