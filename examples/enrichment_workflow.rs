//! The enrichment workflow of paper Sec. V-D: diagnose a weak spot of the
//! synthetically trained quality predictor and fix it by adding a handful
//! of real graphs of the weak type to the training set.
//!
//! ```sh
//! cargo run --release --example enrichment_workflow
//! ```

use ease_repro::core::enrich::{aggregate_point, enrichment_sweep};
use ease_repro::core::profiling::{profile_quality, GraphInput};
use ease_repro::graphgen::grids::rmat_small_corpus;
use ease_repro::graphgen::realworld::{generate_typed, GraphType};
use ease_repro::graphgen::Scale;
use ease_repro::ml::ModelConfig;
use ease_repro::partition::{PartitionerId, QualityTarget};

fn main() {
    let scale = Scale::Tiny;
    let partitioners =
        [PartitionerId::Dbh, PartitionerId::TwoPs, PartitionerId::Hdrf, PartitionerId::Ne];
    let ks = [4usize, 8];

    println!("profiling a slice of the R-MAT training corpus...");
    let train_inputs: Vec<GraphInput> =
        rmat_small_corpus(scale).into_iter().step_by(12).map(GraphInput::Rmat).collect();
    let base = profile_quality(&train_inputs, &partitioners, &ks, 1);
    println!("  {} training records", base.len());

    println!("profiling wiki graphs (the weak type) for enrichment + test...");
    let pool_inputs: Vec<GraphInput> = (0..12)
        .map(|i| GraphInput::Materialized(generate_typed(GraphType::Wiki, i, scale, 50)))
        .collect();
    let pool = profile_quality(&pool_inputs, &partitioners, &ks, 2);
    let test_inputs: Vec<GraphInput> = (20..28)
        .map(|i| GraphInput::Materialized(generate_typed(GraphType::Wiki, i, scale, 51)))
        .collect();
    let test = profile_quality(&test_inputs, &partitioners, &ks, 3);

    let rfr = ModelConfig::Forest { n_trees: 40, max_depth: 12, feature_fraction: 0.7 };
    let sizes = [0usize, 4, 8, 12];
    println!("sweeping enrichment levels {sizes:?} (x2 repetitions)...");
    let points = enrichment_sweep(
        &base,
        &pool,
        &test,
        &sizes,
        2,
        ease_repro::graph::PropertyTier::Basic,
        &rfr,
        QualityTarget::ReplicationFactor,
        9,
    );
    println!("\nreplication-factor MAPE on unseen wiki graphs:");
    for &size in &sizes {
        if let Some((mean, std)) = aggregate_point(&points, size, None) {
            println!("  {size:>2} enrichment graphs -> MAPE {mean:.3} (±{std:.3})");
        }
    }
    println!("\nadding even a few graphs of the weak type sharply improves its predictions,");
    println!("mirroring the paper's Fig. 8.");
}
