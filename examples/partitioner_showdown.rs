//! Domain scenario: the partitioning trade-off across graph *types*.
//!
//! Runs all 11 partitioners on a social-network analogue and a web-crawl
//! analogue, reproducing the paper's core motivation (Sec. III): no single
//! partitioner wins everywhere — 2PS is near-NE quality on clustered web
//! graphs but near-hash on social graphs; in-memory quality costs
//! partitioning time that only pays off for communication-bound workloads.
//!
//! ```sh
//! cargo run --release --example partitioner_showdown
//! ```

use ease_repro::graphgen::Scale;
use ease_repro::partition::{run_partitioner, PartitionerId};
use ease_repro::procsim::{ClusterSpec, DistributedGraph, Workload};

fn main() {
    let scale = Scale::Tiny;
    let graphs = [
        ease_repro::graphgen::realworld::friendster_analogue(scale, 11),
        ease_repro::graphgen::realworld::sk2005_analogue(scale, 22),
    ];
    let k = 16;
    let cluster = ClusterSpec::new(k);
    let workload = Workload::PageRank { iterations: 10 };
    for tg in &graphs {
        println!(
            "\n=== {} (|V|={}, |E|={}) ===",
            tg.name,
            tg.graph.num_vertices(),
            tg.graph.num_edges()
        );
        println!(
            "{:<8} {:>6} {:>12} {:>12} {:>12}",
            "algo", "rf", "partition-s", "pagerank-s", "end-to-end-s"
        );
        let mut rows: Vec<(PartitionerId, f64, f64, f64)> = PartitionerId::ALL
            .iter()
            .map(|&p| {
                let run = run_partitioner(p, &tg.graph, k, 3);
                let dg = DistributedGraph::build(&tg.graph, &run.partition);
                let rep = workload.execute(&dg, &cluster);
                (p, run.metrics.replication_factor, run.partitioning_secs, rep.total_secs)
            })
            .collect();
        rows.sort_by(|a, b| (a.2 + a.3).partial_cmp(&(b.2 + b.3)).unwrap());
        for (p, rf, ps, pr) in &rows {
            println!("{:<8} {:>6.2} {:>12.3} {:>12.3} {:>12.3}", p.name(), rf, ps, pr, ps + pr);
        }
        let best = rows.first().unwrap();
        println!("--> best end-to-end here: {}", best.0.name());
    }
    println!("\nNote how the winner differs between the two graph types — that is");
    println!("exactly the selection problem EASE automates.");
}
