//! Automatic partitioner selection — the paper's end-to-end scenario.
//!
//! Trains EASE at tiny scale (seconds), then asks it to pick partitioners
//! for an unseen social-network graph under both optimization goals, and
//! verifies the choice against measured ground truth.
//!
//! ```sh
//! cargo run --release --example auto_selection
//! ```

use ease_repro::graph::GraphProperties;
use ease_repro::graphgen::Scale;
use ease_repro::partition::run_partitioner;
use ease_repro::procsim::{ClusterSpec, DistributedGraph, Workload};
use ease_repro::{EaseServiceBuilder, OptGoal};

fn main() {
    println!("training EASE at tiny scale (this profiles two corpora)...");
    // the default tiny caps (24 + 10 graphs) are sized for unit tests;
    // give the example enough training data for a credible ranking
    let service = EaseServiceBuilder::at_scale(Scale::Tiny)
        .max_small_graphs(Some(80))
        .max_large_graphs(Some(36))
        .train()
        .expect("valid config");

    // an unseen graph: the Socfb-A-anon analogue of the paper's Fig. 2
    let tg = ease_repro::graphgen::realworld::socfb_analogue(Scale::Tiny, 777);
    let props = GraphProperties::compute_advanced(&tg.graph);
    println!("\nunseen graph {}: |V|={} |E|={}", tg.name, props.num_vertices, props.num_edges);

    let k = service.meta().default_k;
    let workload = Workload::PageRank { iterations: 10 };
    for goal in [OptGoal::EndToEnd, OptGoal::ProcessingOnly] {
        let selection = service.recommend(&props, workload, goal).expect("trained workload");
        println!("\ngoal {:?}: EASE picks {}", goal, selection.best.name());
        println!("  {:<8} {:>10} {:>10} {:>10}", "algo", "pred-part", "pred-proc", "pred-e2e");
        let mut ranked = selection.candidates.clone();
        ranked.sort_by(|a, b| a.end_to_end_secs.partial_cmp(&b.end_to_end_secs).unwrap());
        for c in ranked.iter().take(5) {
            println!(
                "  {:<8} {:>9.3}s {:>9.3}s {:>9.3}s",
                c.partitioner.name(),
                c.partitioning_secs,
                c.processing_secs,
                c.end_to_end_secs
            );
        }
    }

    // ground truth for the EndToEnd goal
    println!("\nmeasured ground truth (all 11 partitioners):");
    let cluster = ClusterSpec::new(k);
    let mut truth: Vec<(String, f64)> = service
        .catalog()
        .iter()
        .map(|&p| {
            let run = run_partitioner(p, &tg.graph, k, 5);
            let dg = DistributedGraph::build(&tg.graph, &run.partition);
            let rep = workload.execute(&dg, &cluster);
            (p.name().to_string(), run.partitioning_secs + rep.total_secs)
        })
        .collect();
    truth.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    for (name, secs) in &truth {
        println!("  {name:<8} {secs:>9.3}s");
    }
    let pick = service
        .recommend(&props, workload, OptGoal::EndToEnd)
        .expect("trained workload")
        .best
        .name()
        .to_string();
    let rank = truth.iter().position(|(n, _)| *n == pick).unwrap_or(99);
    println!(
        "\nEASE's pick `{pick}` ranks #{} of {} by true end-to-end time.",
        rank + 1,
        truth.len()
    );
}
