//! Select a partitioner for *your own* graph.
//!
//! Reads a whitespace-separated edge list (SNAP/KONECT style, `#`/`%`
//! comments allowed), trains EASE, and prints the recommended partitioner
//! for a chosen workload and partition count — the deployment workflow of
//! the paper's Fig. 3 pipeline.
//!
//! ```sh
//! cargo run --release --example select_for_file -- my_graph.txt pr 16
//! # args: <edge-list path> [workload: pr|cc|sssp|kcores|lp|synthetic-low|synthetic-high] [k]
//! ```
//!
//! Without arguments it demos on a generated graph.

use ease_repro::graph::{Graph, GraphProperties};
use ease_repro::graphgen::Scale;
use ease_repro::procsim::Workload;
use ease_repro::{EaseService, EaseServiceBuilder, OptGoal};

fn workload_from_name(name: &str) -> Workload {
    match name {
        "pr" => Workload::PageRank { iterations: 10 },
        "cc" => Workload::ConnectedComponents,
        "sssp" => Workload::Sssp { source_seed: 1 },
        "kcores" => Workload::KCores,
        "lp" => Workload::LabelPropagation { iterations: 10 },
        "synthetic-low" => Workload::Synthetic { s: 1, iterations: 5 },
        "synthetic-high" => Workload::Synthetic { s: 10, iterations: 5 },
        other => {
            eprintln!("unknown workload `{other}`, using pr");
            Workload::PageRank { iterations: 10 }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let graph: Graph = match args.get(1) {
        Some(path) => {
            println!("reading edge list from {path} ...");
            ease_repro::graph::io::read_edge_list(path.as_ref()).expect("readable edge list")
        }
        None => {
            println!("no file given — demoing on a generated social graph");
            ease_repro::graphgen::realworld::socfb_analogue(Scale::Tiny, 7).graph
        }
    };
    let workload = workload_from_name(args.get(2).map(String::as_str).unwrap_or("pr"));
    let k: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(8);

    println!(
        "graph: |V|={} |E|={}; workload {}; k={k}",
        graph.num_vertices(),
        graph.num_edges(),
        workload.label()
    );
    // Train once, then persist — reruns of this example reuse the saved
    // service instead of re-profiling (the paper's amortization argument).
    let model_path = std::env::temp_dir().join("ease_select_for_file.model");
    let system = match EaseService::load(&model_path) {
        Ok(service) => {
            println!("loaded trained service from {} ...", model_path.display());
            service
        }
        Err(_) => {
            println!("training EASE (tiny scale) ...");
            let service = EaseServiceBuilder::at_scale(Scale::Tiny).train().expect("valid config");
            if service.save(&model_path).is_ok() {
                println!("saved trained service to {} for future runs", model_path.display());
            }
            service
        }
    };

    let props = GraphProperties::compute_advanced(&graph);
    println!(
        "properties: mean degree {:.2}, density {:.6}, clustering {:.4}",
        props.mean_degree,
        props.density,
        props.avg_lcc.unwrap_or(0.0)
    );
    for goal in [OptGoal::EndToEnd, OptGoal::ProcessingOnly] {
        let sel = match system.recommend_with_k(&props, workload, k, goal) {
            Ok(sel) => sel,
            Err(e) => {
                eprintln!("cannot recommend: {e}");
                std::process::exit(1);
            }
        };
        let best = sel
            .candidates
            .iter()
            .find(|c| c.partitioner == sel.best)
            .expect("winner in candidates");
        println!(
            "\n[{}] recommended partitioner: {}  (predicted partitioning {:.4}s + processing {:.4}s)",
            goal.name(),
            sel.best.name(),
            best.partitioning_secs,
            best.processing_secs,
        );
    }
}
