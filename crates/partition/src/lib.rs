//! Edge partitioners and partitioning quality metrics.
//!
//! Implements the 11 partitioners of the paper's evaluation (Sec. V-C),
//! covering all four categories of the taxonomy in Sec. I:
//!
//! * **Stateless streaming** — `1DD`, `1DS` (1-dimensional destination /
//!   source hashing), `2D` (grid hashing), `CRVC` (canonical random vertex
//!   cut), `DBH` (degree-based hashing).
//! * **Stateful streaming** — `HDRF` (high-degree replicated first),
//!   `2PS` (two-phase streaming: clustering then placement).
//! * **In-memory** — `NE` (neighborhood expansion).
//! * **Hybrid** — `HEP-τ` for τ ∈ {1, 10, 100} (in-memory NE on the
//!   low-degree part, streaming on the rest); each τ is treated as its own
//!   partitioner, exactly as the paper does.
//!
//! The [`metrics`] module computes the five quality metrics of Sec. II-A:
//! replication factor and the edge/vertex/source/destination balances.

pub mod assignment;
pub mod hashing;
pub mod hdrf;
pub mod hep;
pub mod metrics;
pub mod ne;
pub mod runner;
pub mod two_ps;

pub use assignment::EdgePartition;
pub use metrics::{QualityMetrics, QualityTarget};
pub use runner::{
    deterministic_partitioning_secs, run_partitioner, run_partitioner_with, PartitionRun,
    TimingMode,
};

use ease_graph::Graph;

/// Taxonomy of partitioner categories (paper Sec. I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    StatelessStreaming,
    StatefulStreaming,
    InMemory,
    Hybrid,
}

impl Category {
    pub fn name(self) -> &'static str {
        match self {
            Category::StatelessStreaming => "stateless-streaming",
            Category::StatefulStreaming => "stateful-streaming",
            Category::InMemory => "in-memory",
            Category::Hybrid => "hybrid",
        }
    }
}

/// The 11 partitioners of the paper, named as in its figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PartitionerId {
    OneDD,
    OneDS,
    TwoD,
    TwoPs,
    Crvc,
    Dbh,
    Hdrf,
    Hep1,
    Hep10,
    Hep100,
    Ne,
}

impl PartitionerId {
    /// All partitioners in the column order of the paper's Fig. 7 heatmaps.
    pub const ALL: [PartitionerId; 11] = [
        PartitionerId::OneDD,
        PartitionerId::OneDS,
        PartitionerId::TwoD,
        PartitionerId::TwoPs,
        PartitionerId::Crvc,
        PartitionerId::Dbh,
        PartitionerId::Hdrf,
        PartitionerId::Hep1,
        PartitionerId::Hep10,
        PartitionerId::Hep100,
        PartitionerId::Ne,
    ];

    pub fn name(self) -> &'static str {
        match self {
            PartitionerId::OneDD => "1dd",
            PartitionerId::OneDS => "1ds",
            PartitionerId::TwoD => "2d",
            PartitionerId::TwoPs => "2ps",
            PartitionerId::Crvc => "crvc",
            PartitionerId::Dbh => "dbh",
            PartitionerId::Hdrf => "hdrf",
            PartitionerId::Hep1 => "hep1",
            PartitionerId::Hep10 => "hep10",
            PartitionerId::Hep100 => "hep100",
            PartitionerId::Ne => "ne",
        }
    }

    pub fn category(self) -> Category {
        match self {
            PartitionerId::OneDD
            | PartitionerId::OneDS
            | PartitionerId::TwoD
            | PartitionerId::Crvc
            | PartitionerId::Dbh => Category::StatelessStreaming,
            PartitionerId::TwoPs | PartitionerId::Hdrf => Category::StatefulStreaming,
            PartitionerId::Ne => Category::InMemory,
            PartitionerId::Hep1 | PartitionerId::Hep10 | PartitionerId::Hep100 => Category::Hybrid,
        }
    }

    /// Index into [`Self::ALL`] (stable across the workspace — used for
    /// one-hot encoding in the ML feature builder).
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&p| p == self).expect("id in ALL")
    }

    /// Parse a paper-style name.
    pub fn parse(s: &str) -> Option<PartitionerId> {
        Self::ALL.iter().copied().find(|p| p.name() == s.to_ascii_lowercase())
    }

    /// Instantiate the partitioner with a hash/tie-breaking seed.
    pub fn build(self, seed: u64) -> Box<dyn Partitioner> {
        match self {
            PartitionerId::OneDD => Box::new(hashing::OneD::destination(seed)),
            PartitionerId::OneDS => Box::new(hashing::OneD::source(seed)),
            PartitionerId::TwoD => Box::new(hashing::TwoD::new(seed)),
            PartitionerId::Crvc => Box::new(hashing::Crvc::new(seed)),
            PartitionerId::Dbh => Box::new(hashing::Dbh::new(seed)),
            PartitionerId::Hdrf => Box::new(hdrf::Hdrf::new(seed)),
            PartitionerId::TwoPs => Box::new(two_ps::TwoPs::new(seed)),
            PartitionerId::Ne => Box::new(ne::Ne::new(seed)),
            PartitionerId::Hep1 => Box::new(hep::Hep::new(1.0, seed)),
            PartitionerId::Hep10 => Box::new(hep::Hep::new(10.0, seed)),
            PartitionerId::Hep100 => Box::new(hep::Hep::new(100.0, seed)),
        }
    }
}

/// An edge partitioner: assigns every edge of a graph to one of `k`
/// partitions. Implementations must be deterministic for a fixed seed.
pub trait Partitioner: Send + Sync {
    fn id(&self) -> PartitionerId;

    /// Partition the edges of `graph` into `k` parts (`1 ≤ k ≤ 128`).
    fn partition(&self, graph: &Graph, k: usize) -> EdgePartition;
}

/// Maximum supported partition count (replica sets are u128 bitmasks; the
/// paper's largest K is also 128).
pub const MAX_PARTITIONS: usize = 128;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_partitioners() {
        assert_eq!(PartitionerId::ALL.len(), 11);
        let names: std::collections::HashSet<_> =
            PartitionerId::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 11);
    }

    #[test]
    fn category_taxonomy_matches_paper() {
        use Category::*;
        assert_eq!(PartitionerId::OneDD.category(), StatelessStreaming);
        assert_eq!(PartitionerId::Dbh.category(), StatelessStreaming);
        assert_eq!(PartitionerId::Hdrf.category(), StatefulStreaming);
        assert_eq!(PartitionerId::TwoPs.category(), StatefulStreaming);
        assert_eq!(PartitionerId::Ne.category(), InMemory);
        assert_eq!(PartitionerId::Hep10.category(), Hybrid);
    }

    #[test]
    fn parse_round_trips() {
        for p in PartitionerId::ALL {
            assert_eq!(PartitionerId::parse(p.name()), Some(p));
        }
        assert_eq!(PartitionerId::parse("HDRF"), Some(PartitionerId::Hdrf));
        assert_eq!(PartitionerId::parse("metis"), None);
    }

    #[test]
    fn index_is_position_in_all() {
        for (i, p) in PartitionerId::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }
}
