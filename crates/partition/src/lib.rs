//! Edge partitioners and partitioning quality metrics.
//!
//! Implements the 11 partitioners of the paper's evaluation (Sec. V-C),
//! covering all four categories of the taxonomy in Sec. I:
//!
//! * **Stateless streaming** — `1DD`, `1DS` (1-dimensional destination /
//!   source hashing), `2D` (grid hashing), `CRVC` (canonical random vertex
//!   cut), `DBH` (degree-based hashing).
//! * **Stateful streaming** — `HDRF` (high-degree replicated first),
//!   `2PS` (two-phase streaming: clustering then placement).
//! * **In-memory** — `NE` (neighborhood expansion).
//! * **Hybrid** — `HEP-τ` for τ ∈ {1, 10, 100} (in-memory NE on the
//!   low-degree part, streaming on the rest); each τ is treated as its own
//!   partitioner, exactly as the paper does.
//!
//! The [`metrics`] module computes the five quality metrics of Sec. II-A:
//! replication factor and the edge/vertex/source/destination balances.

pub mod assignment;
pub mod hashing;
pub mod hdrf;
pub mod hep;
pub mod metrics;
pub mod ne;
pub mod runner;
pub mod two_ps;

pub use assignment::EdgePartition;
pub use metrics::{QualityMetrics, QualityTarget};
pub use runner::{
    deterministic_partitioning_secs, run_partitioner, run_partitioner_prepared,
    run_partitioner_with, PartitionRun, TimingMode,
};

use ease_graph::{Graph, GraphSource, PreparedGraph};

/// Taxonomy of partitioner categories (paper Sec. I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    StatelessStreaming,
    StatefulStreaming,
    InMemory,
    Hybrid,
}

impl Category {
    pub fn name(self) -> &'static str {
        match self {
            Category::StatelessStreaming => "stateless-streaming",
            Category::StatefulStreaming => "stateful-streaming",
            Category::InMemory => "in-memory",
            Category::Hybrid => "hybrid",
        }
    }
}

/// The 11 partitioners of the paper, named as in its figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PartitionerId {
    OneDD,
    OneDS,
    TwoD,
    TwoPs,
    Crvc,
    Dbh,
    Hdrf,
    Hep1,
    Hep10,
    Hep100,
    Ne,
}

impl PartitionerId {
    /// All partitioners in the column order of the paper's Fig. 7 heatmaps.
    pub const ALL: [PartitionerId; 11] = [
        PartitionerId::OneDD,
        PartitionerId::OneDS,
        PartitionerId::TwoD,
        PartitionerId::TwoPs,
        PartitionerId::Crvc,
        PartitionerId::Dbh,
        PartitionerId::Hdrf,
        PartitionerId::Hep1,
        PartitionerId::Hep10,
        PartitionerId::Hep100,
        PartitionerId::Ne,
    ];

    pub fn name(self) -> &'static str {
        match self {
            PartitionerId::OneDD => "1dd",
            PartitionerId::OneDS => "1ds",
            PartitionerId::TwoD => "2d",
            PartitionerId::TwoPs => "2ps",
            PartitionerId::Crvc => "crvc",
            PartitionerId::Dbh => "dbh",
            PartitionerId::Hdrf => "hdrf",
            PartitionerId::Hep1 => "hep1",
            PartitionerId::Hep10 => "hep10",
            PartitionerId::Hep100 => "hep100",
            PartitionerId::Ne => "ne",
        }
    }

    pub fn category(self) -> Category {
        match self {
            PartitionerId::OneDD
            | PartitionerId::OneDS
            | PartitionerId::TwoD
            | PartitionerId::Crvc
            | PartitionerId::Dbh => Category::StatelessStreaming,
            PartitionerId::TwoPs | PartitionerId::Hdrf => Category::StatefulStreaming,
            PartitionerId::Ne => Category::InMemory,
            PartitionerId::Hep1 | PartitionerId::Hep10 | PartitionerId::Hep100 => Category::Hybrid,
        }
    }

    /// Index into [`Self::ALL`] (stable across the workspace — used for
    /// one-hot encoding in the ML feature builder).
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&p| p == self).expect("id in ALL")
    }

    /// Parse a paper-style name.
    pub fn parse(s: &str) -> Option<PartitionerId> {
        Self::ALL.iter().copied().find(|p| p.name() == s.to_ascii_lowercase())
    }

    /// Instantiate the partitioner with a hash/tie-breaking seed.
    pub fn build(self, seed: u64) -> Box<dyn Partitioner> {
        match self {
            PartitionerId::OneDD => Box::new(hashing::OneD::destination(seed)),
            PartitionerId::OneDS => Box::new(hashing::OneD::source(seed)),
            PartitionerId::TwoD => Box::new(hashing::TwoD::new(seed)),
            PartitionerId::Crvc => Box::new(hashing::Crvc::new(seed)),
            PartitionerId::Dbh => Box::new(hashing::Dbh::new(seed)),
            PartitionerId::Hdrf => Box::new(hdrf::Hdrf::new(seed)),
            PartitionerId::TwoPs => Box::new(two_ps::TwoPs::new(seed)),
            PartitionerId::Ne => Box::new(ne::Ne::new(seed)),
            PartitionerId::Hep1 => Box::new(hep::Hep::new(1.0, seed)),
            PartitionerId::Hep10 => Box::new(hep::Hep::new(10.0, seed)),
            PartitionerId::Hep100 => Box::new(hep::Hep::new(100.0, seed)),
        }
    }
}

/// An edge partitioner: assigns every edge of a graph to one of `k`
/// partitions. Implementations must be deterministic for a fixed seed.
///
/// The primary entry point is [`Partitioner::partition_prepared`]: it takes
/// a [`PreparedGraph`] analysis context so degree-hungry partitioners (DBH,
/// HEP) reuse the memoized degree table instead of re-deriving it per run —
/// profiling executes 11 partitioners × K on the same graph, and the shared
/// context pays for the derivation once. Every implementation consumes the
/// context's replayable edge *stream* (never an owned slice), so all 11
/// partitioners run unchanged over any ingestion backend — in-memory,
/// memory-mapped `.bel`, or streamed text. [`Partitioner::partition`] and
/// [`Partitioner::partition_source`] are the one-shot adapters.
pub trait Partitioner: Send + Sync {
    fn id(&self) -> PartitionerId;

    /// Partition the edges of the prepared graph into `k` parts
    /// (`1 ≤ k ≤ 128`), reusing the context's memoized derived structure.
    fn partition_prepared(&self, prepared: &PreparedGraph<'_>, k: usize) -> EdgePartition;

    /// Edge-list adapter: routes `graph` through the [`GraphSource`] seam
    /// (an in-memory graph is its own source) into a throwaway context.
    /// Prefer [`Partitioner::partition_prepared`] when running several
    /// partitioners (or several `k`) on the same graph.
    fn partition(&self, graph: &Graph, k: usize) -> EdgePartition {
        self.partition_source(graph, k)
    }

    /// Ingestion adapter: partition any [`GraphSource`] — a memory-mapped
    /// `.bel` file partitions without an owned `Vec<Edge>` ever existing.
    fn partition_source(&self, source: &dyn GraphSource, k: usize) -> EdgePartition {
        self.partition_prepared(&PreparedGraph::of_source(source), k)
    }
}

/// Maximum supported partition count (replica sets are u128 bitmasks; the
/// paper's largest K is also 128).
pub const MAX_PARTITIONS: usize = 128;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_partitioners() {
        assert_eq!(PartitionerId::ALL.len(), 11);
        let names: std::collections::HashSet<_> =
            PartitionerId::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 11);
    }

    #[test]
    fn category_taxonomy_matches_paper() {
        use Category::*;
        assert_eq!(PartitionerId::OneDD.category(), StatelessStreaming);
        assert_eq!(PartitionerId::Dbh.category(), StatelessStreaming);
        assert_eq!(PartitionerId::Hdrf.category(), StatefulStreaming);
        assert_eq!(PartitionerId::TwoPs.category(), StatefulStreaming);
        assert_eq!(PartitionerId::Ne.category(), InMemory);
        assert_eq!(PartitionerId::Hep10.category(), Hybrid);
    }

    #[test]
    fn parse_round_trips() {
        for p in PartitionerId::ALL {
            assert_eq!(PartitionerId::parse(p.name()), Some(p));
        }
        assert_eq!(PartitionerId::parse("HDRF"), Some(PartitionerId::Hdrf));
        assert_eq!(PartitionerId::parse("metis"), None);
    }

    #[test]
    fn index_is_position_in_all() {
        for (i, p) in PartitionerId::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn prepared_and_edge_list_paths_agree_for_every_partitioner() {
        let g = ease_graphgen::rmat::Rmat::new(ease_graphgen::rmat::RMAT_COMBOS[4], 512, 4_000, 11)
            .generate();
        let prepared = PreparedGraph::of(&g);
        for id in PartitionerId::ALL {
            let p = id.build(7);
            assert_eq!(
                p.partition(&g, 8),
                p.partition_prepared(&prepared, 8),
                "{id:?}: the edge-list adapter must be a pure wrapper"
            );
        }
        // one shared context across 11 partitioners derived degrees once
        assert_eq!(prepared.undirected_csr_builds(), 0, "no partitioner needs the CSR");
    }
}
