//! HEP — Hybrid Edge Partitioner (Mayer & Jacobsen, SIGMOD 2021).
//!
//! Splits the work by vertex degree: edges incident to at least one
//! *low-degree* vertex (degree ≤ τ · mean degree) are partitioned in memory
//! with neighborhood expansion; the remaining high-degree core is streamed
//! with HDRF scoring that is *aware of the phase-1 replica placement*.
//!
//! τ controls the memory/quality trade-off and the paper treats each
//! setting as a separate partitioner: HEP-1 streams the hub core (fast,
//! lower quality), HEP-100 keeps nearly everything in memory (≈ NE quality,
//! slower). Exactly as in the paper (Sec. IV-B2 and V-C).

use crate::assignment::EdgePartition;
use crate::hdrf::HdrfState;
use crate::ne::neighborhood_expansion;
use crate::{Partitioner, PartitionerId, MAX_PARTITIONS};
use ease_graph::{MemoryBudget, PreparedGraph};
use std::sync::Arc;

/// Estimated in-memory cost per adjacency entry of the phase-1 expansion
/// state (edge endpoints plus replica bookkeeping).
const BYTES_PER_ADJ_ENTRY: usize = 8;

#[derive(Debug, Clone)]
pub struct Hep {
    /// Degree threshold multiplier τ.
    pub tau: f64,
    seed: u64,
    /// Optional hard memory budget (PR 8): τ names the *desired* split, the
    /// budget caps what the in-memory phase may actually hold.
    budget: Option<Arc<MemoryBudget>>,
}

impl Hep {
    pub fn new(tau: f64, seed: u64) -> Self {
        assert!(tau > 0.0);
        Hep { tau, seed, budget: None }
    }

    /// Bound the in-memory phase by a real, measured budget: the effective
    /// degree threshold is lowered until the estimated footprint of the
    /// low-degree part (Σ degrees ≤ threshold, at [`BYTES_PER_ADJ_ENTRY`]
    /// bytes per entry) fits the budget's remaining headroom. An unlimited
    /// budget is bit-identical to no budget; a zero budget streams every
    /// edge — HEP degrades to placement-aware HDRF instead of blowing the
    /// limit, exactly the τ-as-soft-hint problem the HEP paper calls out.
    pub fn with_memory_budget(mut self, budget: Arc<MemoryBudget>) -> Self {
        self.budget = Some(budget);
        self
    }

    fn id_for_tau(&self) -> PartitionerId {
        if self.tau <= 1.0 {
            PartitionerId::Hep1
        } else if self.tau <= 10.0 {
            PartitionerId::Hep10
        } else {
            PartitionerId::Hep100
        }
    }

    /// Largest degree `d` such that keeping every vertex of degree ≤ `d`
    /// in memory fits the budget; `threshold` unchanged when unbudgeted or
    /// unlimited.
    fn budget_capped_threshold(&self, degrees: &[u32], threshold: f64) -> f64 {
        let Some(budget) = &self.budget else { return threshold };
        if budget.is_unlimited() {
            return threshold;
        }
        let remaining = budget.remaining();
        let mut sorted: Vec<u32> = degrees.iter().copied().filter(|&d| d > 0).collect();
        sorted.sort_unstable();
        let mut footprint = 0usize;
        let mut capped = 0.0f64;
        let mut i = 0;
        while i < sorted.len() {
            // whole equal-degree groups, so the cap lands on a degree
            // boundary and stays deterministic
            let d = sorted[i];
            let mut group = 0usize;
            while i < sorted.len() && sorted[i] == d {
                group += 1;
                i += 1;
            }
            let group_bytes =
                (d as usize).saturating_mul(group).saturating_mul(BYTES_PER_ADJ_ENTRY);
            match footprint.checked_add(group_bytes) {
                Some(total) if total <= remaining => footprint = total,
                _ => break,
            }
            capped = f64::from(d);
        }
        threshold.min(capped)
    }
}

impl Partitioner for Hep {
    fn id(&self) -> PartitionerId {
        self.id_for_tau()
    }

    fn partition_prepared(&self, prepared: &PreparedGraph<'_>, k: usize) -> EdgePartition {
        assert!((1..=MAX_PARTITIONS).contains(&k));
        let m = prepared.num_edges();
        if m == 0 {
            return EdgePartition::new(k, Vec::new());
        }
        // The degree threshold split uses *final* total degrees — exactly
        // what the shared context memoizes (one derivation across all three
        // HEP-τ variants and every k).
        let degrees = &prepared.degrees().total;
        let used = degrees.iter().filter(|&&d| d > 0).count().max(1);
        let mean_degree = 2.0 * m as f64 / used as f64;
        let threshold = self.budget_capped_threshold(degrees, (self.tau * mean_degree).max(1.0));
        // Phase split: only edges between two *low*-degree vertices are kept
        // in memory (this is where HEP's memory savings come from — hubs and
        // all their incident edges never enter the in-memory graph). Any
        // edge touching a high-degree vertex is streamed in phase 2.
        let mut eligible: Vec<bool> = Vec::with_capacity(m);
        prepared.for_each_edge(|e| {
            eligible.push(
                f64::from(degrees[e.src as usize]) <= threshold
                    && f64::from(degrees[e.dst as usize]) <= threshold,
            );
        });
        let capacity = m.div_ceil(k).max(1);
        // ---- phase 1: in-memory neighborhood expansion on the low part ----
        let ex = neighborhood_expansion(prepared, k, capacity, Some(&eligible), false, self.seed);
        let mut assignment = ex.assignment;
        // ---- phase 2: stream the high-degree core with placement-aware HDRF
        let mut state = HdrfState::new(prepared.num_vertices(), k, 1.1, self.seed ^ 0x48E5);
        for (p, &count) in ex.sizes.iter().enumerate() {
            state.seed_size(p, count);
        }
        prepared.for_each_edge_indexed(|i, e| {
            if ex.assigned[i] {
                let p = assignment[i] as usize;
                state.seed_replica(e.src, p);
                state.seed_replica(e.dst, p);
            }
        });
        prepared.for_each_edge_indexed(|i, e| {
            if !ex.assigned[i] {
                assignment[i] = state.place(e.src, e.dst) as u16;
            }
        });
        EdgePartition::new(k, assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::OneD;
    use crate::metrics::QualityMetrics;
    use crate::ne::Ne;
    use ease_graph::Graph;
    use ease_graphgen::rmat::{Rmat, RMAT_COMBOS};

    fn test_graph() -> Graph {
        Rmat::new(RMAT_COMBOS[6], 1 << 11, 16_000, 5).generate()
    }

    #[test]
    fn tau_maps_to_distinct_partitioner_ids() {
        assert_eq!(Hep::new(1.0, 0).id(), PartitionerId::Hep1);
        assert_eq!(Hep::new(10.0, 0).id(), PartitionerId::Hep10);
        assert_eq!(Hep::new(100.0, 0).id(), PartitionerId::Hep100);
    }

    #[test]
    fn assigns_all_edges() {
        let g = test_graph();
        for tau in [1.0, 10.0, 100.0] {
            let p = Hep::new(tau, 3).partition(&g, 8);
            assert_eq!(p.num_edges(), g.num_edges());
            assert!(p.assignment().iter().all(|&x| x < 8), "tau={tau}");
        }
    }

    #[test]
    fn quality_improves_with_tau() {
        let g = test_graph();
        let rf = |tau: f64| {
            QualityMetrics::compute(&g, &Hep::new(tau, 1).partition(&g, 16)).replication_factor
        };
        let (rf1, rf100) = (rf(1.0), rf(100.0));
        assert!(rf100 <= rf1 * 1.05, "hep-100 rf {rf100} should not trail hep-1 rf {rf1}");
    }

    #[test]
    fn hep100_close_to_ne() {
        let g = test_graph();
        let hep = QualityMetrics::compute(&g, &Hep::new(100.0, 1).partition(&g, 8));
        let ne = QualityMetrics::compute(&g, &Ne::new(1).partition(&g, 8));
        assert!(
            hep.replication_factor < 1.5 * ne.replication_factor,
            "hep100 {} vs ne {}",
            hep.replication_factor,
            ne.replication_factor
        );
    }

    #[test]
    fn beats_stateless_hashing() {
        let g = test_graph();
        for tau in [1.0, 10.0, 100.0] {
            let hep = QualityMetrics::compute(&g, &Hep::new(tau, 2).partition(&g, 16));
            let hash = QualityMetrics::compute(&g, &OneD::destination(2).partition(&g, 16));
            assert!(
                hep.replication_factor < hash.replication_factor,
                "tau={tau}: hep {} vs 1dd {}",
                hep.replication_factor,
                hash.replication_factor
            );
        }
    }

    #[test]
    fn deterministic() {
        let g = Rmat::new(RMAT_COMBOS[0], 512, 3_000, 7).generate();
        let a = Hep::new(10.0, 5).partition(&g, 4);
        let b = Hep::new(10.0, 5).partition(&g, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn unlimited_budget_is_bit_identical_to_no_budget() {
        let g = test_graph();
        let plain = Hep::new(10.0, 5).partition(&g, 8);
        let budgeted = Hep::new(10.0, 5)
            .with_memory_budget(std::sync::Arc::new(ease_graph::MemoryBudget::unlimited()))
            .partition(&g, 8);
        assert_eq!(plain, budgeted);
    }

    #[test]
    fn zero_budget_streams_everything_and_stays_valid() {
        let g = test_graph();
        let hep = Hep::new(100.0, 5)
            .with_memory_budget(std::sync::Arc::new(ease_graph::MemoryBudget::bytes(0)));
        let a = hep.partition(&g, 8);
        assert_eq!(a.num_edges(), g.num_edges());
        assert!(a.assignment().iter().all(|&x| x < 8));
        assert_eq!(a, hep.partition(&g, 8), "budget-capped split stays deterministic");
    }

    /// A mid-size budget sits strictly between the extremes: it admits
    /// some low-degree vertices (so the capped threshold is > 0) while
    /// refusing the full HEP-100 in-memory phase.
    #[test]
    fn partial_budget_caps_the_threshold_monotonically() {
        let g = test_graph();
        let degrees = ease_repro_degrees(&g);
        let hep = Hep::new(100.0, 1);
        let unlimited = hep.budget_capped_threshold(&degrees, f64::MAX);
        assert_eq!(unlimited, f64::MAX, "no budget leaves the threshold alone");
        let capped = Hep::new(100.0, 1)
            .with_memory_budget(std::sync::Arc::new(ease_graph::MemoryBudget::bytes(4_000)))
            .budget_capped_threshold(&degrees, f64::MAX);
        assert!(capped > 0.0 && capped < f64::MAX, "capped threshold {capped}");
        let tighter = Hep::new(100.0, 1)
            .with_memory_budget(std::sync::Arc::new(ease_graph::MemoryBudget::bytes(400)))
            .budget_capped_threshold(&degrees, f64::MAX);
        assert!(tighter <= capped, "smaller budget, lower threshold");
    }

    fn ease_repro_degrees(g: &Graph) -> Vec<u32> {
        ease_graph::PreparedGraph::of(g).degrees().total.clone()
    }
}
