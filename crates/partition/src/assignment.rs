//! The result of partitioning: a per-edge partition assignment.

/// Edge → partition assignment produced by a [`crate::Partitioner`].
///
/// `assignment[i]` is the partition of `graph.edges()[i]`; partition ids are
/// `u16` (the workspace caps k at [`crate::MAX_PARTITIONS`] = 128, matching
/// the paper, so `u16` wastes nothing while keeping headroom).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgePartition {
    k: usize,
    assignment: Vec<u16>,
}

impl EdgePartition {
    /// Wrap a raw assignment. Panics (debug) if an id is out of range.
    pub fn new(k: usize, assignment: Vec<u16>) -> Self {
        debug_assert!((1..=crate::MAX_PARTITIONS).contains(&k));
        debug_assert!(assignment.iter().all(|&p| (p as usize) < k));
        EdgePartition { k, assignment }
    }

    /// Pre-sized builder filled with partition 0.
    pub fn zeroed(k: usize, num_edges: usize) -> Self {
        EdgePartition { k, assignment: vec![0; num_edges] }
    }

    #[inline]
    pub fn num_partitions(&self) -> usize {
        self.k
    }

    #[inline]
    pub fn num_edges(&self) -> usize {
        self.assignment.len()
    }

    #[inline]
    pub fn partition_of(&self, edge_index: usize) -> usize {
        self.assignment[edge_index] as usize
    }

    #[inline]
    pub fn set(&mut self, edge_index: usize, partition: usize) {
        debug_assert!(partition < self.k);
        self.assignment[edge_index] = partition as u16;
    }

    #[inline]
    pub fn assignment(&self) -> &[u16] {
        &self.assignment
    }

    /// Edges per partition.
    pub fn edge_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.k];
        for &p in &self.assignment {
            counts[p as usize] += 1;
        }
        counts
    }

    /// Largest / average partition size ratio (edge balance, Sec. II-A.1).
    pub fn edge_balance(&self) -> f64 {
        let counts = self.edge_counts();
        let max = counts.iter().copied().max().unwrap_or(0) as f64;
        let avg = self.assignment.len() as f64 / self.k as f64;
        if avg > 0.0 {
            max / avg
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_balance() {
        let p = EdgePartition::new(4, vec![0, 0, 1, 2, 3, 3, 3, 3]);
        assert_eq!(p.edge_counts(), vec![2, 1, 1, 4]);
        // max 4 / avg 2 = 2.0
        assert!((p.edge_balance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn perfectly_balanced_is_one() {
        let p = EdgePartition::new(2, vec![0, 1, 0, 1]);
        assert!((p.edge_balance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zeroed_builder() {
        let mut p = EdgePartition::zeroed(3, 5);
        assert_eq!(p.num_edges(), 5);
        p.set(2, 2);
        assert_eq!(p.partition_of(2), 2);
        assert_eq!(p.partition_of(0), 0);
    }

    #[test]
    fn empty_partitioning_balance_defaults_to_one() {
        let p = EdgePartition::new(4, vec![]);
        assert_eq!(p.edge_balance(), 1.0);
    }
}
