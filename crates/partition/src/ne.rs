//! NE — Neighborhood Expansion (Zhang et al., KDD 2017).
//!
//! In-memory edge partitioner. For each partition it grows a vertex set: a
//! *core* C inside a *boundary* S. Every step moves the boundary vertex with
//! the fewest external neighbors into the core and pulls its neighbors into
//! the boundary; every edge whose endpoints are both in S is allocated to
//! the current partition. When the partition reaches its capacity `|E|/k`,
//! expansion restarts from a random seed for the next partition; the last
//! partition takes the leftovers.
//!
//! The *random* seed selection is deliberate: the paper observes (Sec. V-C)
//! that NE's vertex balance fluctuates by up to ~2× between runs because of
//! it, which limits how well vertex balance can be predicted. Our
//! implementation reproduces that behaviour under different seeds (see the
//! `ne_seed_instability` ablation bench).

use crate::assignment::EdgePartition;
use crate::{Partitioner, PartitionerId, MAX_PARTITIONS};
use ease_graph::hash::SplitMix64;
use ease_graph::PreparedGraph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Debug, Clone)]
pub struct Ne {
    seed: u64,
}

impl Ne {
    pub fn new(seed: u64) -> Self {
        Ne { seed }
    }
}

impl Partitioner for Ne {
    fn id(&self) -> PartitionerId {
        PartitionerId::Ne
    }

    fn partition_prepared(&self, prepared: &PreparedGraph<'_>, k: usize) -> EdgePartition {
        assert!((1..=MAX_PARTITIONS).contains(&k));
        // NE needs *edge-index-carrying* incidence (so allocation can flip
        // per-edge flags), which no other consumer shares — it builds its
        // own and takes only the edge stream from the context.
        let capacity = prepared.num_edges().div_ceil(k).max(1);
        let r = neighborhood_expansion(prepared, k, capacity, None, true, self.seed);
        EdgePartition::new(k, r.assignment)
    }
}

/// Result of an expansion pass (shared with HEP's in-memory phase).
pub(crate) struct ExpansionResult {
    /// Per-edge partition; only meaningful where `assigned`.
    pub assignment: Vec<u16>,
    pub assigned: Vec<bool>,
    /// Edges per partition.
    pub sizes: Vec<usize>,
}

/// Incidence adjacency carrying edge indices, so allocation can flip
/// per-edge flags. Built once per expansion run.
struct Incidence {
    offsets: Vec<usize>,
    /// (neighbor, edge index) pairs.
    neighbor: Vec<u32>,
    edge_idx: Vec<u32>,
}

impl Incidence {
    fn build(prepared: &PreparedGraph<'_>, eligible: Option<&[bool]>) -> Self {
        let n = prepared.num_vertices();
        let mut counts = vec![0usize; n + 1];
        prepared.for_each_edge_indexed(|i, e| {
            if eligible.is_some_and(|m| !m[i]) {
                return;
            }
            counts[e.src as usize + 1] += 1;
            counts[e.dst as usize + 1] += 1;
        });
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts;
        let mut cursor = offsets.clone();
        let total = offsets[n];
        let mut neighbor = vec![0u32; total];
        let mut edge_idx = vec![0u32; total];
        prepared.for_each_edge_indexed(|i, e| {
            if eligible.is_some_and(|m| !m[i]) {
                return;
            }
            let c = &mut cursor[e.src as usize];
            neighbor[*c] = e.dst;
            edge_idx[*c] = i as u32;
            *c += 1;
            let c = &mut cursor[e.dst as usize];
            neighbor[*c] = e.src;
            edge_idx[*c] = i as u32;
            *c += 1;
        });
        Incidence { offsets, neighbor, edge_idx }
    }

    #[inline]
    fn incident(&self, v: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        let (lo, hi) = (self.offsets[v as usize], self.offsets[v as usize + 1]);
        self.neighbor[lo..hi].iter().copied().zip(self.edge_idx[lo..hi].iter().copied())
    }
}

/// Core expansion routine. `eligible` restricts which edges participate
/// (HEP's in-memory phase); `fill_last` dumps the remaining eligible edges
/// into partition `k−1` (plain NE behaviour).
pub(crate) fn neighborhood_expansion(
    prepared: &PreparedGraph<'_>,
    k: usize,
    capacity: usize,
    eligible: Option<&[bool]>,
    fill_last: bool,
    seed: u64,
) -> ExpansionResult {
    let m = prepared.num_edges();
    let n = prepared.num_vertices();
    let mut assignment = vec![0u16; m];
    let mut assigned = vec![false; m];
    let mut sizes = vec![0usize; k];
    // edges that are out of scope count as "assigned" for bookkeeping
    let mut remaining = match eligible {
        Some(mask) => mask.iter().filter(|&&e| e).count(),
        None => m,
    };
    if remaining == 0 {
        return ExpansionResult { assignment, assigned, sizes };
    }
    let inc = Incidence::build(prepared, eligible);
    let mut rng = SplitMix64::new(seed);
    // epoch-stamped membership: value == p + 1 means "in set for partition p"
    let mut in_s = vec![0u32; n];
    let mut in_c = vec![0u32; n];
    let mut seed_cursor = 0usize;
    let is_eligible = |i: usize| eligible.is_none_or(|mask| mask[i]);

    let expandable = if fill_last { k.saturating_sub(1).max(1) } else { k };
    for p in 0..expandable {
        let epoch = p as u32 + 1;
        let mut heap: BinaryHeap<Reverse<(usize, u32)>> = BinaryHeap::new();
        let ext_degree = |v: u32, in_s: &[u32], assigned: &[bool]| -> usize {
            inc.incident(v)
                .filter(|&(nbr, ei)| !assigned[ei as usize] && in_s[nbr as usize] != epoch)
                .count()
        };
        // Add `y` to the boundary. Following the original allocation rule,
        // joining S only allocates y's edges toward *core* vertices; edges
        // between two boundary vertices wait until one of them enters C.
        macro_rules! add_to_boundary {
            ($y:expr) => {{
                let y = $y;
                if in_s[y as usize] != epoch {
                    in_s[y as usize] = epoch;
                    for (nbr, ei) in inc.incident(y) {
                        let ei = ei as usize;
                        if !assigned[ei] && in_c[nbr as usize] == epoch {
                            assigned[ei] = true;
                            assignment[ei] = p as u16;
                            sizes[p] += 1;
                            remaining -= 1;
                        }
                    }
                    let d = ext_degree(y, &in_s, &assigned);
                    heap.push(Reverse((d, y)));
                }
            }};
        }
        'fill: while sizes[p] < capacity && remaining > 0 {
            // find the next boundary vertex with minimal external degree,
            // lazily revalidating stale heap entries
            let x = loop {
                match heap.pop() {
                    None => {
                        // boundary exhausted: random restart (paper: random
                        // seed vertex -> vertex-balance instability)
                        match pick_seed(n, &inc, &assigned, &mut rng, &mut seed_cursor) {
                            Some(v) => {
                                add_to_boundary!(v);
                                continue;
                            }
                            None => break 'fill,
                        }
                    }
                    Some(Reverse((d, x))) => {
                        if in_c[x as usize] == epoch {
                            continue; // already in core
                        }
                        let actual = ext_degree(x, &in_s, &assigned);
                        if actual != d {
                            heap.push(Reverse((actual, x)));
                            continue;
                        }
                        break x;
                    }
                }
            };
            // move x into the core: allocate its edges into S ∪ C, then pull
            // its outside neighbors into the boundary
            in_c[x as usize] = epoch;
            for (nbr, ei) in inc.incident(x) {
                let ei = ei as usize;
                if !assigned[ei] && (in_s[nbr as usize] == epoch || in_c[nbr as usize] == epoch) {
                    assigned[ei] = true;
                    assignment[ei] = p as u16;
                    sizes[p] += 1;
                    remaining -= 1;
                }
            }
            for (nbr, ei) in inc.incident(x) {
                if !assigned[ei as usize] && in_s[nbr as usize] != epoch {
                    add_to_boundary!(nbr);
                    if sizes[p] >= capacity {
                        break;
                    }
                }
            }
        }
        if remaining == 0 {
            break;
        }
    }
    if fill_last && remaining > 0 {
        let last = k - 1;
        for i in 0..m {
            if !assigned[i] && is_eligible(i) {
                assigned[i] = true;
                assignment[i] = last as u16;
                sizes[last] += 1;
            }
        }
    }
    ExpansionResult { assignment, assigned, sizes }
}

/// Random seed vertex with at least one unassigned eligible edge.
///
/// Sampling is *vertex-uniform* (like the original NE), not edge-uniform:
/// edge-biased sampling would preferentially seed partitions at hubs, which
/// measurably degrades replication factors on power-law graphs. Falls back
/// to a linear cursor scan so the routine always terminates.
fn pick_seed(
    n: usize,
    inc: &Incidence,
    assigned: &[bool],
    rng: &mut SplitMix64,
    cursor: &mut usize,
) -> Option<u32> {
    let has_work = |v: u32| inc.incident(v).any(|(_, ei)| !assigned[ei as usize]);
    for _ in 0..64 {
        let v = rng.next_below(n) as u32;
        if has_work(v) {
            return Some(v);
        }
    }
    while *cursor < n {
        let v = *cursor as u32;
        if has_work(v) {
            return Some(v);
        }
        *cursor += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::OneD;
    use crate::metrics::QualityMetrics;
    use ease_graphgen::community::CommunityGraph;
    use ease_graphgen::rmat::{Rmat, RMAT_COMBOS};

    #[test]
    fn assigns_every_edge() {
        let g = Rmat::new(RMAT_COMBOS[1], 512, 4_000, 1).generate();
        let p = Ne::new(3).partition(&g, 8);
        assert_eq!(p.num_edges(), 4_000);
        assert!(p.assignment().iter().all(|&x| x < 8));
    }

    #[test]
    fn respects_capacity_approximately() {
        let g = Rmat::new(RMAT_COMBOS[2], 1 << 10, 10_000, 2).generate();
        let p = Ne::new(5).partition(&g, 4);
        let cap = 10_000usize.div_ceil(4);
        for (i, c) in p.edge_counts().iter().enumerate() {
            // expansion can overshoot by one vertex's degree
            assert!(*c <= cap + 600, "partition {i} has {c} edges (cap {cap})");
        }
    }

    #[test]
    fn much_better_than_hashing_on_community_graphs() {
        let g = CommunityGraph::new(2_000, 16_000, 0.05, 7).generate();
        let ne = QualityMetrics::compute(&g, &Ne::new(1).partition(&g, 8));
        let hash = QualityMetrics::compute(&g, &OneD::destination(1).partition(&g, 8));
        assert!(
            ne.replication_factor < 0.6 * hash.replication_factor,
            "ne {} vs hash {}",
            ne.replication_factor,
            hash.replication_factor
        );
    }

    #[test]
    fn vertex_balance_fluctuates_across_seeds() {
        // Reproduces the paper's observation (Sec. V-C): repeated NE runs on
        // the same graph yield heavily varying vertex balance.
        let g = Rmat::new(RMAT_COMBOS[6], 1 << 11, 12_000, 9).generate();
        let balances: Vec<f64> = (0..6)
            .map(|s| QualityMetrics::compute(&g, &Ne::new(s).partition(&g, 8)).vertex_balance)
            .collect();
        let min = balances.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = balances.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 1.02, "balances {balances:?}");
        // replication factor stays comparatively stable
        let rfs: Vec<f64> = (0..6)
            .map(|s| QualityMetrics::compute(&g, &Ne::new(s).partition(&g, 8)).replication_factor)
            .collect();
        let rf_min = rfs.iter().cloned().fold(f64::INFINITY, f64::min);
        let rf_max = rfs.iter().cloned().fold(0.0, f64::max);
        assert!(rf_max / rf_min < 1.25, "rfs {rfs:?}");
    }

    #[test]
    fn k_one_assigns_all_to_zero() {
        let g = Rmat::new(RMAT_COMBOS[0], 128, 600, 3).generate();
        let p = Ne::new(2).partition(&g, 1);
        assert!(p.assignment().iter().all(|&x| x == 0));
    }

    #[test]
    fn expansion_with_mask_only_touches_eligible() {
        let g = Rmat::new(RMAT_COMBOS[3], 256, 2_000, 4).generate();
        let mask: Vec<bool> = (0..2_000).map(|i| i % 2 == 0).collect();
        let r = neighborhood_expansion(&PreparedGraph::of(&g), 4, 250, Some(&mask), false, 1);
        for i in 0..2_000 {
            if !mask[i] {
                assert!(!r.assigned[i], "ineligible edge {i} was assigned");
            }
        }
        let assigned_count = r.assigned.iter().filter(|&&a| a).count();
        assert_eq!(assigned_count, r.sizes.iter().sum::<usize>());
        assert_eq!(assigned_count, 1_000, "all eligible edges placed");
    }
}
