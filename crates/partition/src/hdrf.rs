//! HDRF — High-Degree Replicated First (Petroni et al., CIKM 2015).
//!
//! Stateful streaming: tracks partial vertex degrees `δ(v)`, per-vertex
//! replica sets `A(v)` and partition sizes. For each edge `(u, v)` it picks
//! the partition maximizing
//!
//! ```text
//! C(u,v,p) = C_REP(u,v,p) + λ · C_BAL(p)
//! C_REP    = g(u,p) + g(v,p),  g(x,p) = [p ∈ A(x)] · (1 + 1 − θ(x))
//! θ(x)     = δ(x) / (δ(u) + δ(v))
//! C_BAL    = (maxsize − |p|) / (ε + maxsize − minsize)
//! ```
//!
//! so the *lower*-degree endpoint dominates placement and high-degree
//! vertices get replicated first. Replica sets are `u128` bitmasks
//! (k ≤ 128), making the score loop branch-light.

use crate::assignment::EdgePartition;
use crate::{Partitioner, PartitionerId, MAX_PARTITIONS};
use ease_graph::hash::SplitMix64;
use ease_graph::PreparedGraph;

/// HDRF with the standard balance weight λ = 1.1 (paper default).
#[derive(Debug, Clone)]
pub struct Hdrf {
    pub lambda: f64,
    seed: u64,
}

impl Hdrf {
    pub fn new(seed: u64) -> Self {
        Hdrf { lambda: 1.1, seed }
    }

    pub fn with_lambda(lambda: f64, seed: u64) -> Self {
        Hdrf { lambda, seed }
    }
}

impl Partitioner for Hdrf {
    fn id(&self) -> PartitionerId {
        PartitionerId::Hdrf
    }

    fn partition_prepared(&self, prepared: &PreparedGraph<'_>, k: usize) -> EdgePartition {
        assert!((1..=MAX_PARTITIONS).contains(&k));
        // HDRF is degree-agnostic by design: it tracks *partial* degrees as
        // the stream unfolds, so the prepared context only supplies the
        // edge stream.
        let mut state = HdrfState::new(prepared.num_vertices(), k, self.lambda, self.seed);
        let mut assignment = Vec::with_capacity(prepared.num_edges());
        prepared.for_each_edge(|e| {
            let p = state.place(e.src, e.dst);
            assignment.push(p as u16);
        });
        EdgePartition::new(k, assignment)
    }
}

/// Reusable streaming state — HEP's streaming phase drives it directly with
/// pre-seeded replica sets.
pub(crate) struct HdrfState {
    pub degrees: Vec<u32>,
    pub replicas: Vec<u128>,
    pub sizes: Vec<usize>,
    lambda: f64,
    k: usize,
    rng: SplitMix64,
}

impl HdrfState {
    pub fn new(num_vertices: usize, k: usize, lambda: f64, seed: u64) -> Self {
        HdrfState {
            degrees: vec![0; num_vertices],
            replicas: vec![0; num_vertices],
            sizes: vec![0; k],
            lambda,
            k,
            rng: SplitMix64::new(seed),
        }
    }

    /// Pre-register a replica (used by HEP to carry phase-1 placements).
    pub fn seed_replica(&mut self, v: u32, p: usize) {
        self.replicas[v as usize] |= 1u128 << p;
    }

    /// Account an externally placed edge in the size table.
    pub fn seed_size(&mut self, p: usize, count: usize) {
        self.sizes[p] += count;
    }

    /// Place one edge, updating all state. Returns the chosen partition.
    pub fn place(&mut self, src: u32, dst: u32) -> usize {
        let (su, sv) = (src as usize, dst as usize);
        self.degrees[su] += 1;
        self.degrees[sv] += 1;
        let (du, dv) = (f64::from(self.degrees[su]), f64::from(self.degrees[sv]));
        let theta_u = du / (du + dv);
        let theta_v = 1.0 - theta_u;
        let max_size = self.sizes.iter().copied().max().unwrap_or(0) as f64;
        let min_size = self.sizes.iter().copied().min().unwrap_or(0) as f64;
        let denom = 1e-3 + (max_size - min_size);
        let (ru, rv) = (self.replicas[su], self.replicas[sv]);
        let mut best_p = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        let mut ties = 0u32;
        for p in 0..self.k {
            let bit = 1u128 << p;
            let mut c_rep = 0.0;
            if ru & bit != 0 {
                c_rep += 1.0 + (1.0 - theta_u);
            }
            if rv & bit != 0 {
                c_rep += 1.0 + (1.0 - theta_v);
            }
            let c_bal = self.lambda * (max_size - self.sizes[p] as f64) / denom;
            let score = c_rep + c_bal;
            if score > best_score + 1e-12 {
                best_score = score;
                best_p = p;
                ties = 1;
            } else if (score - best_score).abs() <= 1e-12 {
                // reservoir-style random tie-break keeps placement unbiased
                ties += 1;
                if self.rng.next_below(ties as usize) == 0 {
                    best_p = p;
                }
            }
        }
        self.replicas[su] |= 1u128 << best_p;
        self.replicas[sv] |= 1u128 << best_p;
        self.sizes[best_p] += 1;
        best_p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::OneD;
    use crate::metrics::QualityMetrics;
    use ease_graphgen::rmat::{Rmat, RMAT_COMBOS};

    #[test]
    fn assigns_all_edges_in_range() {
        let g = Rmat::new(RMAT_COMBOS[2], 512, 4_000, 1).generate();
        let p = Hdrf::new(7).partition(&g, 16);
        assert_eq!(p.num_edges(), 4_000);
        assert!(p.assignment().iter().all(|&x| x < 16));
    }

    #[test]
    fn beats_stateless_hashing_on_replication() {
        let g = Rmat::new(RMAT_COMBOS[6], 1 << 11, 16_000, 3).generate();
        let hdrf = QualityMetrics::compute(&g, &Hdrf::new(5).partition(&g, 32));
        let oned = QualityMetrics::compute(&g, &OneD::destination(5).partition(&g, 32));
        assert!(
            hdrf.replication_factor < oned.replication_factor,
            "hdrf {} vs 1dd {}",
            hdrf.replication_factor,
            oned.replication_factor
        );
    }

    #[test]
    fn keeps_edges_balanced() {
        let g = Rmat::new(RMAT_COMBOS[8], 1 << 11, 20_000, 9).generate();
        let m = QualityMetrics::compute(&g, &Hdrf::new(1).partition(&g, 8));
        assert!(m.edge_balance < 1.2, "edge balance {}", m.edge_balance);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = Rmat::new(RMAT_COMBOS[0], 256, 2_000, 2).generate();
        let a = Hdrf::new(11).partition(&g, 8);
        let b = Hdrf::new(11).partition(&g, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn lambda_zero_chases_locality_over_balance() {
        let g = Rmat::new(RMAT_COMBOS[4], 1 << 10, 10_000, 4).generate();
        let greedy = QualityMetrics::compute(&g, &Hdrf::with_lambda(0.01, 3).partition(&g, 8));
        let balanced = QualityMetrics::compute(&g, &Hdrf::with_lambda(5.0, 3).partition(&g, 8));
        // with strong balance pressure, edge balance improves
        assert!(balanced.edge_balance <= greedy.edge_balance + 0.05);
        // with weak balance pressure, replication improves
        assert!(greedy.replication_factor <= balanced.replication_factor + 0.05);
    }

    #[test]
    fn k_equals_one_trivially_works() {
        let g = Rmat::new(RMAT_COMBOS[0], 128, 500, 6).generate();
        let p = Hdrf::new(1).partition(&g, 1);
        assert!(p.assignment().iter().all(|&x| x == 0));
    }
}
