//! Timed partitioner execution — the measurement step of the EASE training
//! pipeline (Fig. 5, step 2): run a partitioner, record quality metrics and
//! the *actual* partitioning run-time.
//!
//! Run-times are wall-clock measurements of this crate's implementations,
//! which preserves the real trade-off the paper studies: in-memory NE costs
//! orders of magnitude more time than one-pass hashing, with 2PS/HDRF/HEP
//! in between.

use crate::assignment::EdgePartition;
use crate::metrics::QualityMetrics;
use crate::PartitionerId;
use ease_graph::{Graph, PreparedGraph};
use std::time::Instant;

/// How partitioning run-times are obtained.
///
/// The paper measures real wall-clock times (step 2 of Fig. 5), which makes
/// full-pipeline retraining inherently non-bit-identical. `Deterministic`
/// replaces the measurement with a reproducible analytical proxy so that
/// training becomes a pure function of its config — the mode CI uses to
/// guard future parallelism work against nondeterminism regressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimingMode {
    /// Wall-clock measurement of the real partitioner implementations.
    #[default]
    Measured,
    /// Reproducible analytical cost proxy (same ordering: in-memory ≫
    /// hybrid ≫ stateful ≫ stateless; grows with |E| and log k). Under this
    /// mode the runner never consults the system clock.
    Deterministic,
}

impl TimingMode {
    pub fn name(self) -> &'static str {
        match self {
            TimingMode::Measured => "measured",
            TimingMode::Deterministic => "deterministic",
        }
    }

    /// Parse `measured` / `deterministic`.
    pub fn parse(s: &str) -> Option<TimingMode> {
        match s {
            "measured" => Some(TimingMode::Measured),
            "deterministic" => Some(TimingMode::Deterministic),
            _ => None,
        }
    }
}

/// Analytical stand-in for a partitioning run-time: per-edge cost scaled by
/// the partitioner category's empirical expense, with a mild log-k factor.
/// Only the *relative ordering* matters for training; the constants are
/// calibrated to the same orders of magnitude the measured mode produces on
/// the tiny corpora.
pub fn deterministic_partitioning_secs(p: PartitionerId, num_edges: usize, k: usize) -> f64 {
    use crate::Category;
    let per_edge = match p.category() {
        Category::StatelessStreaming => 20e-9,
        Category::StatefulStreaming => 90e-9,
        Category::Hybrid => 250e-9,
        Category::InMemory => 900e-9,
    };
    let m = num_edges.max(1) as f64;
    per_edge * m * (1.0 + (k.max(2) as f64).log2() / 8.0)
}

/// One profiled partitioning execution.
#[derive(Debug, Clone)]
pub struct PartitionRun {
    pub partitioner: PartitionerId,
    pub k: usize,
    pub metrics: QualityMetrics,
    pub partition: EdgePartition,
    /// Seconds spent inside `Partitioner::partition` — wall-clock under
    /// [`TimingMode::Measured`], the analytical proxy under
    /// [`TimingMode::Deterministic`].
    pub partitioning_secs: f64,
}

/// Execute `partitioner` on `graph` with `k` partitions and measure
/// run-time + quality metrics (wall-clock timing, the paper-faithful
/// default).
pub fn run_partitioner(
    partitioner: PartitionerId,
    graph: &Graph,
    k: usize,
    seed: u64,
) -> PartitionRun {
    run_partitioner_with(partitioner, graph, k, seed, TimingMode::Measured)
}

/// [`run_partitioner`] with an explicit [`TimingMode`]. Under
/// [`TimingMode::Deterministic`] the system clock is never consulted, so
/// the produced record is a pure function of `(graph, partitioner, k, seed)`.
pub fn run_partitioner_with(
    partitioner: PartitionerId,
    graph: &Graph,
    k: usize,
    seed: u64,
    timing: TimingMode,
) -> PartitionRun {
    run_partitioner_prepared(partitioner, &PreparedGraph::of(graph), k, seed, timing)
}

/// [`run_partitioner_with`] on a shared [`PreparedGraph`] context — the
/// profiling entry point: one context per graph feeds every partitioner × k
/// measurement, so degree tables are derived once instead of per run.
///
/// Under [`TimingMode::Measured`] the wall clock covers only the
/// partitioning call itself; warm the context first (properties extraction
/// does) so the first degree-hungry partitioner is not charged for the
/// shared derivation.
pub fn run_partitioner_prepared(
    partitioner: PartitionerId,
    prepared: &PreparedGraph<'_>,
    k: usize,
    seed: u64,
    timing: TimingMode,
) -> PartitionRun {
    let p = partitioner.build(seed);
    let (partition, partitioning_secs) = match timing {
        TimingMode::Measured => {
            let start = Instant::now();
            let partition = p.partition_prepared(prepared, k);
            let secs = start.elapsed().as_secs_f64();
            (partition, secs)
        }
        TimingMode::Deterministic => {
            let partition = p.partition_prepared(prepared, k);
            (partition, deterministic_partitioning_secs(partitioner, prepared.num_edges(), k))
        }
    };
    let metrics = QualityMetrics::compute_prepared(prepared, &partition);
    PartitionRun { partitioner, k, metrics, partition, partitioning_secs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ease_graphgen::rmat::{Rmat, RMAT_COMBOS};

    #[test]
    fn run_produces_consistent_record() {
        let g = Rmat::new(RMAT_COMBOS[3], 512, 3_000, 1).generate();
        let run = run_partitioner(PartitionerId::Dbh, &g, 8, 42);
        assert_eq!(run.partitioner, PartitionerId::Dbh);
        assert_eq!(run.k, 8);
        assert_eq!(run.partition.num_edges(), g.num_edges());
        assert!(run.partitioning_secs >= 0.0);
        assert!(run.metrics.replication_factor >= 1.0);
    }

    #[test]
    fn all_eleven_partitioners_run_end_to_end() {
        let g = Rmat::new(RMAT_COMBOS[5], 512, 4_000, 2).generate();
        for id in PartitionerId::ALL {
            let run = run_partitioner(id, &g, 4, 7);
            assert_eq!(run.partition.num_edges(), g.num_edges(), "{id:?}");
            assert!(run.metrics.edge_balance >= 1.0, "{id:?}");
            assert!(run.metrics.vertex_balance >= 1.0, "{id:?}");
        }
    }

    #[test]
    fn deterministic_mode_is_a_pure_function_of_the_inputs() {
        let g = Rmat::new(RMAT_COMBOS[2], 256, 2_000, 9).generate();
        let a = run_partitioner_with(PartitionerId::Hdrf, &g, 8, 3, TimingMode::Deterministic);
        let b = run_partitioner_with(PartitionerId::Hdrf, &g, 8, 3, TimingMode::Deterministic);
        // bit-identical run-times across executions: no wall clock involved
        assert_eq!(a.partitioning_secs.to_bits(), b.partitioning_secs.to_bits());
        assert_eq!(
            a.partitioning_secs,
            deterministic_partitioning_secs(PartitionerId::Hdrf, g.num_edges(), 8)
        );
        // the partition itself is unaffected by the timing mode
        let measured = run_partitioner_with(PartitionerId::Hdrf, &g, 8, 3, TimingMode::Measured);
        assert_eq!(a.metrics.replication_factor, measured.metrics.replication_factor);
    }

    #[test]
    fn deterministic_proxy_orders_partitioner_categories() {
        let m = 50_000;
        let fast = deterministic_partitioning_secs(PartitionerId::OneDD, m, 8);
        let stateful = deterministic_partitioning_secs(PartitionerId::Hdrf, m, 8);
        let hybrid = deterministic_partitioning_secs(PartitionerId::Hep10, m, 8);
        let slow = deterministic_partitioning_secs(PartitionerId::Ne, m, 8);
        assert!(fast < stateful && stateful < hybrid && hybrid < slow);
        // grows with k
        assert!(
            deterministic_partitioning_secs(PartitionerId::Ne, m, 128)
                > deterministic_partitioning_secs(PartitionerId::Ne, m, 2)
        );
    }

    #[test]
    fn in_memory_costs_more_time_than_hashing() {
        // The central trade-off of the paper's Sec. III: NE is slower to
        // partition than stateless hashing. Use a graph large enough for the
        // signal to dominate timer noise.
        let g = Rmat::new(RMAT_COMBOS[6], 1 << 12, 60_000, 3).generate();
        let fast: f64 =
            (0..3).map(|s| run_partitioner(PartitionerId::OneDD, &g, 8, s).partitioning_secs).sum();
        let slow: f64 =
            (0..3).map(|s| run_partitioner(PartitionerId::Ne, &g, 8, s).partitioning_secs).sum();
        assert!(slow > fast, "ne {slow} vs 1dd {fast}");
    }
}
