//! Timed partitioner execution — the measurement step of the EASE training
//! pipeline (Fig. 5, step 2): run a partitioner, record quality metrics and
//! the *actual* partitioning run-time.
//!
//! Run-times are wall-clock measurements of this crate's implementations,
//! which preserves the real trade-off the paper studies: in-memory NE costs
//! orders of magnitude more time than one-pass hashing, with 2PS/HDRF/HEP
//! in between.

use crate::assignment::EdgePartition;
use crate::metrics::QualityMetrics;
use crate::PartitionerId;
use ease_graph::Graph;
use std::time::Instant;

/// One profiled partitioning execution.
#[derive(Debug, Clone)]
pub struct PartitionRun {
    pub partitioner: PartitionerId,
    pub k: usize,
    pub metrics: QualityMetrics,
    pub partition: EdgePartition,
    /// Wall-clock seconds spent inside `Partitioner::partition`.
    pub partitioning_secs: f64,
}

/// Execute `partitioner` on `graph` with `k` partitions and measure
/// run-time + quality metrics.
pub fn run_partitioner(
    partitioner: PartitionerId,
    graph: &Graph,
    k: usize,
    seed: u64,
) -> PartitionRun {
    let p = partitioner.build(seed);
    let start = Instant::now();
    let partition = p.partition(graph, k);
    let partitioning_secs = start.elapsed().as_secs_f64();
    let metrics = QualityMetrics::compute(graph, &partition);
    PartitionRun { partitioner, k, metrics, partition, partitioning_secs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ease_graphgen::rmat::{Rmat, RMAT_COMBOS};

    #[test]
    fn run_produces_consistent_record() {
        let g = Rmat::new(RMAT_COMBOS[3], 512, 3_000, 1).generate();
        let run = run_partitioner(PartitionerId::Dbh, &g, 8, 42);
        assert_eq!(run.partitioner, PartitionerId::Dbh);
        assert_eq!(run.k, 8);
        assert_eq!(run.partition.num_edges(), g.num_edges());
        assert!(run.partitioning_secs >= 0.0);
        assert!(run.metrics.replication_factor >= 1.0);
    }

    #[test]
    fn all_eleven_partitioners_run_end_to_end() {
        let g = Rmat::new(RMAT_COMBOS[5], 512, 4_000, 2).generate();
        for id in PartitionerId::ALL {
            let run = run_partitioner(id, &g, 4, 7);
            assert_eq!(run.partition.num_edges(), g.num_edges(), "{id:?}");
            assert!(run.metrics.edge_balance >= 1.0, "{id:?}");
            assert!(run.metrics.vertex_balance >= 1.0, "{id:?}");
        }
    }

    #[test]
    fn in_memory_costs_more_time_than_hashing() {
        // The central trade-off of the paper's Sec. III: NE is slower to
        // partition than stateless hashing. Use a graph large enough for the
        // signal to dominate timer noise.
        let g = Rmat::new(RMAT_COMBOS[6], 1 << 12, 60_000, 3).generate();
        let fast: f64 =
            (0..3).map(|s| run_partitioner(PartitionerId::OneDD, &g, 8, s).partitioning_secs).sum();
        let slow: f64 =
            (0..3).map(|s| run_partitioner(PartitionerId::Ne, &g, 8, s).partitioning_secs).sum();
        assert!(slow > fast, "ne {slow} vs 1dd {fast}");
    }
}
