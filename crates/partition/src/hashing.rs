//! Stateless streaming hash partitioners: 1DD, 1DS, 2D, CRVC, DBH.
//!
//! These assign each edge independently with one hash evaluation, which
//! makes them the fastest partitioners (a single pass, no state) at the cost
//! of high replication factors. 2D bounds the replication factor by
//! `2·√k − 1`; DBH cuts high-degree vertices preferentially, exploiting the
//! power-law structure of real graphs (Xie et al., NIPS 2014).

use crate::assignment::EdgePartition;
use crate::{Partitioner, PartitionerId};
use ease_graph::hash::{bucket, hash_pair, hash_vertex};
use ease_graph::PreparedGraph;

/// Which endpoint a 1-dimensional hash partitioner keys on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EndPoint {
    Source,
    Destination,
}

/// 1DS / 1DD: hash one endpoint of the edge (GraphX `EdgePartition1D`).
/// All edges of a source (resp. destination) vertex land together, so the
/// hashed side is never replicated; the other side replicates freely.
#[derive(Debug, Clone)]
pub struct OneD {
    endpoint: EndPoint,
    seed: u64,
}

impl OneD {
    pub fn source(seed: u64) -> Self {
        OneD { endpoint: EndPoint::Source, seed }
    }

    pub fn destination(seed: u64) -> Self {
        OneD { endpoint: EndPoint::Destination, seed }
    }
}

impl Partitioner for OneD {
    fn id(&self) -> PartitionerId {
        match self.endpoint {
            EndPoint::Source => PartitionerId::OneDS,
            EndPoint::Destination => PartitionerId::OneDD,
        }
    }

    fn partition_prepared(&self, prepared: &PreparedGraph<'_>, k: usize) -> EdgePartition {
        let mut assignment = Vec::with_capacity(prepared.num_edges());
        prepared.for_each_edge(|e| {
            let key = match self.endpoint {
                EndPoint::Source => e.src,
                EndPoint::Destination => e.dst,
            };
            assignment.push(bucket(hash_vertex(key, self.seed), k) as u16);
        });
        EdgePartition::new(k, assignment)
    }
}

/// 2D grid partitioning (GraphX `EdgePartition2D`): source hashes pick the
/// grid column, destination hashes the row, bounding each vertex's replicas
/// by one row plus one column (`2√k − 1`).
#[derive(Debug, Clone)]
pub struct TwoD {
    seed: u64,
}

impl TwoD {
    pub fn new(seed: u64) -> Self {
        TwoD { seed }
    }
}

impl Partitioner for TwoD {
    fn id(&self) -> PartitionerId {
        PartitionerId::TwoD
    }

    fn partition_prepared(&self, prepared: &PreparedGraph<'_>, k: usize) -> EdgePartition {
        let side = (k as f64).sqrt().ceil() as usize;
        let mut assignment = Vec::with_capacity(prepared.num_edges());
        prepared.for_each_edge(|e| {
            let col = bucket(hash_vertex(e.src, self.seed), side);
            let row = bucket(hash_vertex(e.dst, self.seed ^ 0xABCD_EF01), side);
            assignment.push(((col * side + row) % k) as u16);
        });
        EdgePartition::new(k, assignment)
    }
}

/// CRVC — canonical random vertex cut (GraphX `CanonicalRandomVertexCut`):
/// hash the *unordered* endpoint pair, so reciprocal edges `(u,v)` and
/// `(v,u)` colocate.
#[derive(Debug, Clone)]
pub struct Crvc {
    seed: u64,
}

impl Crvc {
    pub fn new(seed: u64) -> Self {
        Crvc { seed }
    }
}

impl Partitioner for Crvc {
    fn id(&self) -> PartitionerId {
        PartitionerId::Crvc
    }

    fn partition_prepared(&self, prepared: &PreparedGraph<'_>, k: usize) -> EdgePartition {
        let mut assignment = Vec::with_capacity(prepared.num_edges());
        prepared.for_each_edge(|e| {
            let (a, b) = e.canonical();
            assignment.push(bucket(hash_pair(a, b, self.seed), k) as u16);
        });
        EdgePartition::new(k, assignment)
    }
}

/// DBH — degree-based hashing (Xie et al., NIPS 2014): hash the endpoint
/// with the *lower* degree, cutting hubs instead of the long tail. The
/// degree pre-pass of the reference implementation comes from the shared
/// [`PreparedGraph`] degree table, so repeated DBH runs on one graph (the
/// profiling cross-product) derive degrees only once.
#[derive(Debug, Clone)]
pub struct Dbh {
    seed: u64,
}

impl Dbh {
    pub fn new(seed: u64) -> Self {
        Dbh { seed }
    }
}

impl Partitioner for Dbh {
    fn id(&self) -> PartitionerId {
        PartitionerId::Dbh
    }

    fn partition_prepared(&self, prepared: &PreparedGraph<'_>, k: usize) -> EdgePartition {
        let degrees = &prepared.degrees().total;
        let mut assignment = Vec::with_capacity(prepared.num_edges());
        prepared.for_each_edge(|e| {
            let (ds, dd) = (degrees[e.src as usize], degrees[e.dst as usize]);
            let key = if ds <= dd { e.src } else { e.dst };
            assignment.push(bucket(hash_vertex(key, self.seed), k) as u16);
        });
        EdgePartition::new(k, assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::QualityMetrics;
    use ease_graph::Graph;

    fn star_plus_ring(n: u32) -> Graph {
        // hub 0 connected to all, plus a ring over 1..n
        let mut pairs: Vec<(u32, u32)> = (1..n).map(|i| (0, i)).collect();
        for i in 1..n {
            pairs.push((i, if i + 1 < n { i + 1 } else { 1 }));
        }
        Graph::from_pairs(pairs)
    }

    #[test]
    fn one_dd_never_replicates_destinations() {
        let g = star_plus_ring(64);
        let p = OneD::destination(7).partition(&g, 8);
        // every destination vertex appears in exactly one partition
        let mut seen: std::collections::HashMap<u32, usize> = Default::default();
        for (i, e) in g.edges().iter().enumerate() {
            let part = p.partition_of(i);
            let prev = seen.insert(e.dst, part);
            if let Some(prev) = prev {
                assert_eq!(prev, part, "dst {} split", e.dst);
            }
        }
    }

    #[test]
    fn one_ds_never_replicates_sources() {
        let g = star_plus_ring(64);
        let p = OneD::source(7).partition(&g, 8);
        let mut seen: std::collections::HashMap<u32, usize> = Default::default();
        for (i, e) in g.edges().iter().enumerate() {
            let part = p.partition_of(i);
            if let Some(prev) = seen.insert(e.src, part) {
                assert_eq!(prev, part);
            }
        }
    }

    #[test]
    fn two_d_bounds_replication_by_grid() {
        let g = star_plus_ring(256);
        let k = 16;
        let p = TwoD::new(3).partition(&g, k);
        // every vertex appears in at most 2*sqrt(k)-1 partitions
        let bound = 2 * (k as f64).sqrt().ceil() as usize - 1;
        let mut parts: std::collections::HashMap<u32, std::collections::HashSet<usize>> =
            Default::default();
        for (i, e) in g.edges().iter().enumerate() {
            parts.entry(e.src).or_default().insert(p.partition_of(i));
            parts.entry(e.dst).or_default().insert(p.partition_of(i));
        }
        for (v, set) in parts {
            assert!(set.len() <= bound, "vertex {v} in {} parts (bound {bound})", set.len());
        }
    }

    #[test]
    fn crvc_colocates_reciprocal_edges() {
        let g = Graph::from_pairs([(3, 9), (9, 3), (4, 5), (5, 4)]);
        let p = Crvc::new(11).partition(&g, 8);
        assert_eq!(p.partition_of(0), p.partition_of(1));
        assert_eq!(p.partition_of(2), p.partition_of(3));
    }

    #[test]
    fn dbh_cuts_the_hub_not_the_leaves() {
        let g = star_plus_ring(128);
        let p = Dbh::new(5).partition(&g, 8);
        // leaves (low degree) should not be replicated: each leaf's star edge
        // is hashed by the leaf itself.
        let m = QualityMetrics::compute(&g, &p);
        let m_1dd = QualityMetrics::compute(&g, &OneD::destination(5).partition(&g, 8));
        // DBH must beat destination hashing on a hub-dominated graph.
        assert!(
            m.replication_factor <= m_1dd.replication_factor + 1e-9,
            "dbh {} vs 1dd {}",
            m.replication_factor,
            m_1dd.replication_factor
        );
    }

    #[test]
    fn all_stateless_partitioners_assign_in_range() {
        let g = star_plus_ring(50);
        for id in [
            PartitionerId::OneDD,
            PartitionerId::OneDS,
            PartitionerId::TwoD,
            PartitionerId::Crvc,
            PartitionerId::Dbh,
        ] {
            for k in [1, 2, 3, 7, 64, 128] {
                let p = id.build(9).partition(&g, k);
                assert_eq!(p.num_edges(), g.num_edges());
                assert!(p.assignment().iter().all(|&x| (x as usize) < k), "{id:?} k={k}");
            }
        }
    }

    #[test]
    fn stateless_partitioners_are_deterministic() {
        let g = star_plus_ring(40);
        for id in [PartitionerId::TwoD, PartitionerId::Crvc, PartitionerId::Dbh] {
            let a = id.build(42).partition(&g, 8);
            let b = id.build(42).partition(&g, 8);
            assert_eq!(a, b, "{id:?}");
            let c = id.build(43).partition(&g, 8);
            // different seed should (almost surely) differ
            assert_ne!(a, c, "{id:?}");
        }
    }
}
