//! 2PS — Two-Phase Streaming edge partitioning (Mayer et al., 2020).
//!
//! Phase 1 streams the edges once and performs *streaming clustering*:
//! union-find clusters merge along edges as long as the combined cluster
//! volume (sum of member degrees) stays below the average partition volume
//! `2|E|/k`. Clusters are then mapped to partitions largest-first.
//! Phase 2 streams the edges again and places each edge on the partition of
//! one of its endpoints' clusters, preferring the emptier one, with a
//! least-loaded fallback under an α capacity bound.
//!
//! The quality is graph-dependent — on graphs with strong community
//! structure the clusters recover the communities and 2PS approaches NE's
//! replication factor; on low-clustering graphs it degrades toward hash
//! partitioning. This is exactly the behaviour the paper showcases in
//! Fig. 1 (2PS ≈ NE on sk-2005, 2PS ≈ 2D on Friendster).

use crate::assignment::EdgePartition;
use crate::{Partitioner, PartitionerId, MAX_PARTITIONS};
use ease_graph::PreparedGraph;

#[derive(Debug, Clone)]
pub struct TwoPs {
    /// Edge-capacity slack (paper-family default 1.05).
    pub alpha: f64,
    #[allow(dead_code)]
    seed: u64,
}

impl TwoPs {
    pub fn new(seed: u64) -> Self {
        TwoPs { alpha: 1.05, seed }
    }
}

/// Streaming vertex clustering state (2PS phase 1).
///
/// Unlike union-find merging — which lets a single inter-community edge
/// absorb whole communities into one giant cluster — 2PS only moves
/// *individual vertices* between clusters, guided by partial degrees and a
/// volume cap. Volume of a cluster = sum of (partial) degrees of members.
struct Clustering {
    cluster: Vec<u32>,
    degree: Vec<u32>,
    volume: Vec<u64>,
    next_cluster: u32,
}

const UNCLUSTERED: u32 = u32::MAX;

impl Clustering {
    fn new(n: usize) -> Self {
        Clustering {
            cluster: vec![UNCLUSTERED; n],
            degree: vec![0; n],
            volume: Vec::new(),
            next_cluster: 0,
        }
    }

    fn fresh_cluster(&mut self) -> u32 {
        let c = self.next_cluster;
        self.next_cluster += 1;
        self.volume.push(0);
        c
    }

    /// Process one streamed edge.
    fn observe(&mut self, u: u32, v: u32, cap: u64) {
        let (su, sv) = (u as usize, v as usize);
        self.degree[su] += 1;
        self.degree[sv] += 1;
        let (cu, cv) = (self.cluster[su], self.cluster[sv]);
        match (cu == UNCLUSTERED, cv == UNCLUSTERED) {
            (true, true) => {
                let c = self.fresh_cluster();
                self.cluster[su] = c;
                self.cluster[sv] = c;
                self.volume[c as usize] = u64::from(self.degree[su]) + u64::from(self.degree[sv]);
            }
            (false, true) => self.try_join(sv, cu, cap),
            (true, false) => self.try_join(su, cv, cap),
            (false, false) => {
                self.volume[cu as usize] += 1;
                self.volume[cv as usize] += 1;
                if cu != cv {
                    // Degree-anchored movement: only the lower-degree
                    // endpoint may switch clusters. High-degree vertices
                    // anchor their community; a low-degree vertex bounces
                    // until its (majority-internal) edges settle it in its
                    // home cluster. Volume-based movement would let a single
                    // inter-community edge yank hubs around, destroying the
                    // clustering on dense graphs.
                    let (mover, target) =
                        if self.degree[su] <= self.degree[sv] { (su, cv) } else { (sv, cu) };
                    let d = u64::from(self.degree[mover]);
                    if self.volume[target as usize] + d <= cap {
                        let old = self.cluster[mover];
                        self.volume[old as usize] = self.volume[old as usize].saturating_sub(d);
                        self.cluster[mover] = target;
                        self.volume[target as usize] += d;
                    }
                }
            }
        }
    }

    fn try_join(&mut self, v: usize, c: u32, cap: u64) {
        let d = u64::from(self.degree[v]);
        if self.volume[c as usize] + d <= cap {
            self.cluster[v] = c;
            self.volume[c as usize] += d;
        } else {
            let fresh = self.fresh_cluster();
            self.cluster[v] = fresh;
            self.volume[fresh as usize] = d;
        }
    }
}

impl Partitioner for TwoPs {
    fn id(&self) -> PartitionerId {
        PartitionerId::TwoPs
    }

    fn partition_prepared(&self, prepared: &PreparedGraph<'_>, k: usize) -> EdgePartition {
        assert!((1..=MAX_PARTITIONS).contains(&k));
        // 2PS streams edges twice and maintains its own *partial* degrees
        // (streaming semantics) — the context only supplies the edge stream.
        let n = prepared.num_vertices();
        let m = prepared.num_edges();
        if m == 0 {
            return EdgePartition::new(k, Vec::new());
        }
        // ---- phase 1: streaming clustering under a volume cap ----
        let volume_cap = ((2 * m) as u64).div_ceil(k as u64).max(2);
        let mut clustering = Clustering::new(n);
        prepared.for_each_edge(|e| {
            clustering.observe(e.src, e.dst, volume_cap);
        });
        // ---- cluster -> partition mapping, largest volume first ----
        let mut clusters: Vec<u32> =
            (0..clustering.next_cluster).filter(|&c| clustering.volume[c as usize] > 0).collect();
        clusters.sort_unstable_by_key(|&c| std::cmp::Reverse(clustering.volume[c as usize]));
        let mut part_volume = vec![0u64; k];
        let mut cluster_part = vec![0u16; clustering.next_cluster as usize];
        for c in clusters {
            // least-volume partition (first-fit-decreasing by volume)
            let p = (0..k).min_by_key(|&p| part_volume[p]).unwrap_or(0);
            cluster_part[c as usize] = p as u16;
            part_volume[p] += clustering.volume[c as usize];
        }
        let part_of = |v: u32| -> usize {
            let c = clustering.cluster[v as usize];
            if c == UNCLUSTERED {
                0
            } else {
                cluster_part[c as usize] as usize
            }
        };
        // ---- phase 2: stream edges, prefer endpoint-cluster partitions ----
        let edge_cap = ((self.alpha * m as f64 / k as f64).ceil() as usize).max(1);
        let mut sizes = vec![0usize; k];
        let mut assignment = Vec::with_capacity(m);
        prepared.for_each_edge(|e| {
            let pu = part_of(e.src);
            let pv = part_of(e.dst);
            let preferred = if pu == pv || sizes[pu] <= sizes[pv] { pu } else { pv };
            let p = if sizes[preferred] < edge_cap {
                preferred
            } else {
                let alt = if preferred == pu { pv } else { pu };
                if sizes[alt] < edge_cap {
                    alt
                } else {
                    (0..k).min_by_key(|&p| sizes[p]).unwrap_or(0)
                }
            };
            sizes[p] += 1;
            assignment.push(p as u16);
        });
        EdgePartition::new(k, assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::OneD;
    use crate::metrics::QualityMetrics;
    use crate::ne::Ne;
    use ease_graphgen::community::CommunityGraph;
    use ease_graphgen::rmat::{Rmat, RMAT_COMBOS};

    #[test]
    fn assigns_all_edges_in_range() {
        let g = Rmat::new(RMAT_COMBOS[4], 512, 5_000, 2).generate();
        let p = TwoPs::new(1).partition(&g, 16);
        assert_eq!(p.num_edges(), 5_000);
        assert!(p.assignment().iter().all(|&x| x < 16));
    }

    #[test]
    fn edge_balance_bounded_by_alpha() {
        let g = Rmat::new(RMAT_COMBOS[7], 1 << 11, 20_000, 5).generate();
        let p = TwoPs::new(3).partition(&g, 8);
        let m = QualityMetrics::compute(&g, &p);
        assert!(m.edge_balance <= 1.10, "edge balance {}", m.edge_balance);
    }

    #[test]
    fn recovers_communities_and_approaches_ne() {
        let g = CommunityGraph::new(2_000, 16_000, 0.04, 3).generate();
        let tps = QualityMetrics::compute(&g, &TwoPs::new(1).partition(&g, 8));
        let ne = QualityMetrics::compute(&g, &Ne::new(1).partition(&g, 8));
        let hash = QualityMetrics::compute(&g, &OneD::destination(1).partition(&g, 8));
        // 2PS should sit clearly below hashing...
        assert!(
            tps.replication_factor < 0.7 * hash.replication_factor,
            "2ps {} hash {}",
            tps.replication_factor,
            hash.replication_factor
        );
        // ...and within ~2.5x of NE on a strongly clustered graph
        assert!(
            tps.replication_factor < 2.5 * ne.replication_factor,
            "2ps {} ne {}",
            tps.replication_factor,
            ne.replication_factor
        );
    }

    #[test]
    fn degrades_on_unclustered_graphs() {
        // On a skew-heavy, low-clustering R-MAT graph, 2PS's advantage over
        // hashing shrinks (the Friendster behaviour of Fig. 1).
        let g = Rmat::new(RMAT_COMBOS[8], 1 << 12, 24_000, 6).generate();
        let tps = QualityMetrics::compute(&g, &TwoPs::new(1).partition(&g, 8));
        let ne = QualityMetrics::compute(&g, &Ne::new(1).partition(&g, 8));
        assert!(
            tps.replication_factor > ne.replication_factor,
            "2ps {} should trail ne {} here",
            tps.replication_factor,
            ne.replication_factor
        );
    }

    #[test]
    fn deterministic() {
        let g = Rmat::new(RMAT_COMBOS[0], 256, 2_000, 9).generate();
        let a = TwoPs::new(5).partition(&g, 4);
        let b = TwoPs::new(5).partition(&g, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn clustering_groups_fresh_pairs() {
        let mut c = Clustering::new(4);
        c.observe(0, 1, 100);
        assert_eq!(c.cluster[0], c.cluster[1]);
        c.observe(2, 1, 100);
        // vertex 2 joins 1's cluster (room under the cap)
        assert_eq!(c.cluster[2], c.cluster[1]);
        assert_eq!(c.volume[c.cluster[0] as usize], 3);
    }

    #[test]
    fn clustering_respects_volume_cap() {
        let mut c = Clustering::new(4);
        c.observe(0, 1, 2); // volume hits the cap immediately
        c.observe(2, 1, 2); // 2 cannot join: cap exceeded
        assert_ne!(c.cluster[2], c.cluster[1]);
    }
}
