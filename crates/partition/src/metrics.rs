//! Partitioning quality metrics (paper Sec. II-A).
//!
//! * replication factor `RF(P) = (1/|V|) Σ_i |V(p_i)|`
//! * edge balance `max|p_i| / avg|p_i|`
//! * vertex balance `max|V(p_i)| / avg|V(p_i)|`
//! * source balance `max|V_src(p_i)| / avg|V_src(p_i)|`
//! * destination balance `max|V_dst(p_i)| / avg|V_dst(p_i)|`
//!
//! `|V|` counts vertices covered by at least one edge — generated graphs can
//! contain isolated ids (R-MAT with |V| ≫ |E|) which no partitioner ever
//! sees; counting them would push RF below 1 and distort every comparison.
//!
//! Vertex cover sets are computed with per-partition bitsets: `k ≤ 128`
//! partitions × |V| bits is at most a few MB and one pass over the edges.

use crate::assignment::EdgePartition;
use ease_graph::{Graph, PreparedGraph};

/// The five quality metrics predicted by EASE's
/// PartitioningQualityPredictor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityMetrics {
    pub replication_factor: f64,
    pub edge_balance: f64,
    pub vertex_balance: f64,
    pub source_balance: f64,
    pub dest_balance: f64,
}

/// Identifies one of the five prediction targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QualityTarget {
    ReplicationFactor,
    EdgeBalance,
    VertexBalance,
    SourceBalance,
    DestBalance,
}

impl QualityTarget {
    pub const ALL: [QualityTarget; 5] = [
        QualityTarget::ReplicationFactor,
        QualityTarget::EdgeBalance,
        QualityTarget::VertexBalance,
        QualityTarget::SourceBalance,
        QualityTarget::DestBalance,
    ];

    pub fn name(self) -> &'static str {
        match self {
            QualityTarget::ReplicationFactor => "replication_factor",
            QualityTarget::EdgeBalance => "edge_balance",
            QualityTarget::VertexBalance => "vertex_balance",
            QualityTarget::SourceBalance => "source_balance",
            QualityTarget::DestBalance => "dest_balance",
        }
    }
}

impl QualityMetrics {
    /// Compute all five metrics in a single edge pass plus bitset popcounts.
    pub fn compute(graph: &Graph, partition: &EdgePartition) -> Self {
        Self::compute_prepared(&PreparedGraph::of(graph), partition)
    }

    /// [`QualityMetrics::compute`] over a shared analysis context — works
    /// for any ingestion backend (in-memory, mmap `.bel`, streamed text):
    /// the pass replays the context's edge stream, never a slice.
    pub fn compute_prepared(prepared: &PreparedGraph<'_>, partition: &EdgePartition) -> Self {
        assert_eq!(prepared.num_edges(), partition.num_edges());
        let k = partition.num_partitions();
        let n = prepared.num_vertices();
        let words = n.div_ceil(64);
        // three bitset families: covered, covered-as-source, covered-as-dest
        let mut cover = vec![0u64; k * words];
        let mut cover_src = vec![0u64; k * words];
        let mut cover_dst = vec![0u64; k * words];
        let mut edge_counts = vec![0usize; k];
        let mut touched = vec![0u64; words];
        prepared.for_each_edge_indexed(|i, e| {
            let p = partition.partition_of(i);
            edge_counts[p] += 1;
            let (s, d) = (e.src as usize, e.dst as usize);
            let base = p * words;
            cover[base + s / 64] |= 1 << (s % 64);
            cover[base + d / 64] |= 1 << (d % 64);
            cover_src[base + s / 64] |= 1 << (s % 64);
            cover_dst[base + d / 64] |= 1 << (d % 64);
            touched[s / 64] |= 1 << (s % 64);
            touched[d / 64] |= 1 << (d % 64);
        });
        let popcount = |bits: &[u64], p: usize| -> usize {
            bits[p * words..(p + 1) * words].iter().map(|w| w.count_ones() as usize).sum()
        };
        let used_vertices: usize = touched.iter().map(|w| w.count_ones() as usize).sum();
        let mut v_counts = vec![0usize; k];
        let mut s_counts = vec![0usize; k];
        let mut d_counts = vec![0usize; k];
        for p in 0..k {
            v_counts[p] = popcount(&cover, p);
            s_counts[p] = popcount(&cover_src, p);
            d_counts[p] = popcount(&cover_dst, p);
        }
        let total_cover: usize = v_counts.iter().sum();
        let replication_factor =
            if used_vertices > 0 { total_cover as f64 / used_vertices as f64 } else { 1.0 };
        QualityMetrics {
            replication_factor,
            edge_balance: balance(&edge_counts),
            vertex_balance: balance(&v_counts),
            source_balance: balance(&s_counts),
            dest_balance: balance(&d_counts),
        }
    }

    /// Extract one metric by target id.
    pub fn get(&self, target: QualityTarget) -> f64 {
        match target {
            QualityTarget::ReplicationFactor => self.replication_factor,
            QualityTarget::EdgeBalance => self.edge_balance,
            QualityTarget::VertexBalance => self.vertex_balance,
            QualityTarget::SourceBalance => self.source_balance,
            QualityTarget::DestBalance => self.dest_balance,
        }
    }

    /// Metric values in [`QualityTarget::ALL`] order (ML feature rows).
    pub fn as_vector(&self) -> [f64; 5] {
        [
            self.replication_factor,
            self.edge_balance,
            self.vertex_balance,
            self.source_balance,
            self.dest_balance,
        ]
    }
}

/// `max / avg` of a count vector; 1.0 when everything is zero.
fn balance(counts: &[usize]) -> f64 {
    let max = counts.iter().copied().max().unwrap_or(0) as f64;
    let sum: usize = counts.iter().sum();
    if sum == 0 {
        return 1.0;
    }
    let avg = sum as f64 / counts.len() as f64;
    max / avg
}

#[cfg(test)]
mod tests {
    use super::*;
    use ease_graph::Graph;

    /// Triangle split across 2 partitions: edges (0,1)|(1,2) in p0, (2,0) p1.
    /// V(p0)={0,1,2}, V(p1)={0,2} -> RF = 5/3.
    #[test]
    fn replication_factor_hand_computed() {
        let g = Graph::from_pairs([(0, 1), (1, 2), (2, 0)]);
        let p = EdgePartition::new(2, vec![0, 0, 1]);
        let m = QualityMetrics::compute(&g, &p);
        assert!((m.replication_factor - 5.0 / 3.0).abs() < 1e-12);
        // edges: [2,1] -> max 2 / avg 1.5
        assert!((m.edge_balance - 2.0 / 1.5).abs() < 1e-12);
        // V counts [3,2] -> 3/2.5
        assert!((m.vertex_balance - 3.0 / 2.5).abs() < 1e-12);
        // src sets: p0 {0,1}, p1 {2} -> [2,1] -> 2/1.5
        assert!((m.source_balance - 2.0 / 1.5).abs() < 1e-12);
        // dst sets: p0 {1,2}, p1 {0} -> 2/1.5
        assert!((m.dest_balance - 2.0 / 1.5).abs() < 1e-12);
    }

    #[test]
    fn single_partition_is_ideal() {
        let g = Graph::from_pairs([(0, 1), (1, 2), (2, 3)]);
        let p = EdgePartition::new(1, vec![0, 0, 0]);
        let m = QualityMetrics::compute(&g, &p);
        assert_eq!(m.replication_factor, 1.0);
        assert_eq!(m.edge_balance, 1.0);
        assert_eq!(m.vertex_balance, 1.0);
    }

    #[test]
    fn isolated_vertices_do_not_deflate_rf() {
        // 10 vertices but only an edge between 0 and 1.
        let g = Graph::new(10, vec![ease_graph::Edge::new(0, 1)]);
        let p = EdgePartition::new(2, vec![0]);
        let m = QualityMetrics::compute(&g, &p);
        assert_eq!(m.replication_factor, 1.0);
    }

    #[test]
    fn worst_case_replication() {
        // Star around 0 with k=4, one edge per partition: hub replicated 4x.
        let g = Graph::from_pairs([(0, 1), (0, 2), (0, 3), (0, 4)]);
        let p = EdgePartition::new(4, vec![0, 1, 2, 3]);
        let m = QualityMetrics::compute(&g, &p);
        // covers: each partition {0, leaf} -> total 8 over 5 used vertices
        assert!((m.replication_factor - 8.0 / 5.0).abs() < 1e-12);
        assert_eq!(m.edge_balance, 1.0);
    }

    #[test]
    fn get_matches_fields() {
        let g = Graph::from_pairs([(0, 1), (1, 2), (2, 0)]);
        let p = EdgePartition::new(2, vec![0, 1, 0]);
        let m = QualityMetrics::compute(&g, &p);
        for t in QualityTarget::ALL {
            assert!(m.get(t) >= 1.0 - 1e-12, "{t:?}");
        }
        assert_eq!(m.get(QualityTarget::ReplicationFactor), m.replication_factor);
        assert_eq!(m.as_vector()[0], m.replication_factor);
    }

    #[test]
    fn metric_names_unique() {
        let names: std::collections::HashSet<_> =
            QualityTarget::ALL.iter().map(|t| t.name()).collect();
        assert_eq!(names.len(), 5);
    }
}
