//! Quick diagnostic: replication factors of all partitioners on two graphs.
use ease_partition::{run_partitioner, PartitionerId};

fn main() {
    let rmat =
        ease_graphgen::rmat::Rmat::new(ease_graphgen::rmat::RMAT_COMBOS[6], 1 << 11, 16_000, 5)
            .generate();
    let comm = ease_graphgen::community::CommunityGraph::new(2_000, 16_000, 0.04, 3).generate();
    for (name, g) in [("rmat-c7", &rmat), ("community", &comm)] {
        for k in [8, 16] {
            print!("{name} k={k}: ");
            for id in PartitionerId::ALL {
                let r = run_partitioner(id, g, k, 1);
                print!("{}={:.2} ", id.name(), r.metrics.replication_factor);
            }
            println!();
        }
    }
}
