//! Placement of an edge-partitioned graph onto simulated machines.

use ease_graph::{Edge, Graph, PreparedGraph};
use ease_partition::EdgePartition;

/// One machine's slice of the graph.
#[derive(Debug, Clone)]
pub struct PartitionData {
    /// Local edges (global vertex ids).
    pub edges: Vec<Edge>,
    /// Sorted global ids of vertices covered by this partition.
    pub vertices: Vec<u32>,
    /// For each local edge: local index (into `vertices`) of its source.
    pub edge_src_local: Vec<u32>,
    /// For each local edge: local index of its destination.
    pub edge_dst_local: Vec<u32>,
}

/// A graph distributed over `k` machines by a vertex-cut edge partitioning,
/// mirroring the PowerGraph/GraphX placement model: each covered vertex has
/// one *master* replica (lowest covering partition) and mirrors elsewhere.
#[derive(Debug, Clone)]
pub struct DistributedGraph {
    parts: Vec<PartitionData>,
    /// Master partition per vertex (`u16::MAX` for vertices with no edges).
    master: Vec<u16>,
    /// Covering-partition bitmask per vertex.
    replicas: Vec<u128>,
    /// Global out-degree per vertex (for PageRank-style normalization).
    out_degree: Vec<u32>,
    /// Global undirected degree per vertex (for K-Cores / LP semantics).
    total_degree: Vec<u32>,
    num_vertices: usize,
}

pub const NO_MASTER: u16 = u16::MAX;

impl DistributedGraph {
    pub fn build(graph: &Graph, partition: &EdgePartition) -> Self {
        Self::build_inner(&PreparedGraph::of(graph), partition, false)
    }

    /// [`DistributedGraph::build`] from a shared analysis context: the
    /// global degree vectors come from the context's memoized
    /// [`ease_graph::DegreeTable`] instead of being re-derived per
    /// placement — profiling places the same graph once per partitioner.
    /// Works over any ingestion backend; placement replays the context's
    /// edge stream, so only the per-partition slices are materialized.
    pub fn build_prepared(prepared: &PreparedGraph<'_>, partition: &EdgePartition) -> Self {
        Self::build_inner(prepared, partition, true)
    }

    fn build_inner(
        prepared: &PreparedGraph<'_>,
        partition: &EdgePartition,
        shared_degrees: bool,
    ) -> Self {
        assert_eq!(prepared.num_edges(), partition.num_edges());
        let k = partition.num_partitions();
        assert!(k <= 128, "replica masks are u128");
        let n = prepared.num_vertices();
        let mut replicas = vec![0u128; n];
        let mut part_edges: Vec<Vec<Edge>> = vec![Vec::new(); k];
        prepared.for_each_edge_indexed(|i, e| {
            let p = partition.partition_of(i);
            part_edges[p].push(e);
            replicas[e.src as usize] |= 1 << p;
            replicas[e.dst as usize] |= 1 << p;
        });
        // Master replica: a deterministic hash-spread pick among the
        // covering partitions (GraphX hash-partitions vertex state
        // independently of edges; picking the lowest partition would pile
        // all master-side apply work onto machine 0).
        let mut master = vec![NO_MASTER; n];
        for (v, &mask) in replicas.iter().enumerate() {
            if mask != 0 {
                let r = mask.count_ones();
                let pick =
                    (ease_graph::hash::hash_vertex(v as u32, 0x5A57E12) % u64::from(r)) as u32;
                let mut m = mask;
                for _ in 0..pick {
                    m &= m - 1;
                }
                master[v] = m.trailing_zeros() as u16;
            }
        }
        let parts = part_edges
            .into_iter()
            .map(|edges| {
                let mut vertices: Vec<u32> = edges.iter().flat_map(|e| [e.src, e.dst]).collect();
                vertices.sort_unstable();
                vertices.dedup();
                let local =
                    |v: u32| -> u32 { vertices.binary_search(&v).expect("covered vertex") as u32 };
                let edge_src_local = edges.iter().map(|e| local(e.src)).collect();
                let edge_dst_local = edges.iter().map(|e| local(e.dst)).collect();
                PartitionData { edges, vertices, edge_src_local, edge_dst_local }
            })
            .collect();
        let (out_degree, total_degree) = match prepared.try_graph() {
            Some(graph) if !shared_degrees => (graph.out_degrees(), graph.total_degrees()),
            // memoized in the context (and the only option for source-backed
            // contexts, which have no slice to re-derive from)
            _ => {
                let deg = prepared.degrees();
                (deg.out.clone(), deg.total.clone())
            }
        };
        DistributedGraph { parts, master, replicas, out_degree, total_degree, num_vertices: n }
    }

    #[inline]
    pub fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    #[inline]
    pub fn partition(&self, p: usize) -> &PartitionData {
        &self.parts[p]
    }

    #[inline]
    pub fn master_of(&self, v: u32) -> u16 {
        self.master[v as usize]
    }

    /// Number of partitions covering `v`.
    #[inline]
    pub fn replica_count(&self, v: u32) -> u32 {
        self.replicas[v as usize].count_ones()
    }

    #[inline]
    pub fn replica_mask(&self, v: u32) -> u128 {
        self.replicas[v as usize]
    }

    #[inline]
    pub fn out_degree(&self, v: u32) -> u32 {
        self.out_degree[v as usize]
    }

    #[inline]
    pub fn total_degree(&self, v: u32) -> u32 {
        self.total_degree[v as usize]
    }

    /// Total number of vertex replicas (Σ_p |V(p)|).
    pub fn total_replicas(&self) -> usize {
        self.parts.iter().map(|p| p.vertices.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ease_graph::Graph;
    use ease_partition::EdgePartition;

    fn toy() -> (Graph, EdgePartition) {
        let g = Graph::from_pairs([(0, 1), (1, 2), (2, 0), (2, 3)]);
        let p = EdgePartition::new(2, vec![0, 0, 1, 1]);
        (g, p)
    }

    #[test]
    fn local_structures_consistent() {
        let (g, p) = toy();
        let dg = DistributedGraph::build(&g, &p);
        assert_eq!(dg.num_partitions(), 2);
        let p0 = dg.partition(0);
        assert_eq!(p0.vertices, vec![0, 1, 2]);
        assert_eq!(p0.edges.len(), 2);
        // local index arrays point at the right globals
        for (i, e) in p0.edges.iter().enumerate() {
            assert_eq!(p0.vertices[p0.edge_src_local[i] as usize], e.src);
            assert_eq!(p0.vertices[p0.edge_dst_local[i] as usize], e.dst);
        }
    }

    #[test]
    fn masters_are_covering_and_deterministic() {
        let (g, p) = toy();
        let dg = DistributedGraph::build(&g, &p);
        // master must be one of the covering partitions
        for v in 0..4u32 {
            let m = dg.master_of(v);
            assert!(dg.replica_mask(v) & (1 << m) != 0, "vertex {v}");
        }
        assert_eq!(dg.master_of(3), 1); // only covered by partition 1
        assert_eq!(dg.replica_count(0), 2);
        assert_eq!(dg.replica_count(3), 1);
        // determinism
        let dg2 = DistributedGraph::build(&g, &p);
        for v in 0..4u32 {
            assert_eq!(dg.master_of(v), dg2.master_of(v));
        }
    }

    #[test]
    fn isolated_vertices_have_no_master() {
        let g = Graph::new(5, vec![Edge::new(0, 1)]);
        let p = EdgePartition::new(2, vec![0]);
        let dg = DistributedGraph::build(&g, &p);
        assert_eq!(dg.master_of(4), NO_MASTER);
        assert_eq!(dg.replica_count(4), 0);
    }

    #[test]
    fn build_prepared_matches_build() {
        let (g, p) = toy();
        let direct = DistributedGraph::build(&g, &p);
        let prepared = PreparedGraph::of(&g);
        let shared = DistributedGraph::build_prepared(&prepared, &p);
        assert_eq!(shared.num_partitions(), direct.num_partitions());
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(shared.master_of(v), direct.master_of(v));
            assert_eq!(shared.replica_mask(v), direct.replica_mask(v));
            assert_eq!(shared.out_degree(v), direct.out_degree(v));
            assert_eq!(shared.total_degree(v), direct.total_degree(v));
        }
        for part in 0..direct.num_partitions() {
            assert_eq!(shared.partition(part).edges, direct.partition(part).edges);
            assert_eq!(shared.partition(part).vertices, direct.partition(part).vertices);
        }
    }

    #[test]
    fn total_replicas_matches_metric_numerator() {
        let (g, p) = toy();
        let dg = DistributedGraph::build(&g, &p);
        // partition 0 covers {0,1,2}, partition 1 covers {0,2,3}
        assert_eq!(dg.total_replicas(), 6);
    }
}
