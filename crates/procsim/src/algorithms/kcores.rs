//! K-Cores by iterative peeling.
//!
//! A vertex is outside the k-core if its (undirected) degree among surviving
//! vertices drops below `k`; removals cascade. The paper runs K-Cores with
//! `k = deg(G)` (the mean degree) and characterizes the workload as "many
//! vertices active in the first iteration, becoming inactive over time".
//!
//! Final state: `removed == false` ⟺ the vertex belongs to the k-core.

use crate::engine::VertexProgram;
use crate::placement::DistributedGraph;

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreState {
    pub degree: u32,
    pub removed: bool,
}

#[derive(Debug, Clone)]
pub struct KCores {
    pub k: u32,
}

impl KCores {
    pub fn new(k: u32) -> Self {
        KCores { k }
    }

    /// Paper configuration: `k = ⌈mean degree⌉`.
    pub fn with_mean_degree(dg: &DistributedGraph) -> Self {
        let n = dg.num_vertices().max(1);
        let total: u64 = (0..n as u32).map(|v| u64::from(dg.total_degree(v))).sum();
        KCores { k: (total as f64 / n as f64).ceil() as u32 }
    }
}

impl VertexProgram for KCores {
    type State = CoreState;
    type Acc = u32;

    fn init_state(&self, v: u32, dg: &DistributedGraph) -> CoreState {
        CoreState { degree: dg.total_degree(v), removed: false }
    }

    fn initially_active(&self, _v: u32, _dg: &DistributedGraph) -> bool {
        // bootstrap round: every vertex checks its own degree
        true
    }

    fn acc_identity(&self) -> u32 {
        0
    }

    fn gather(
        &self,
        _src: u32,
        src_state: &CoreState,
        _dst: u32,
        acc: &mut u32,
        _dg: &DistributedGraph,
    ) {
        // active senders that have been removed notify their neighbors
        if src_state.removed {
            *acc += 1;
        }
    }

    fn combine(&self, into: &mut u32, other: &u32) {
        *into += *other;
    }

    fn apply(
        &self,
        _v: u32,
        old: &CoreState,
        acc: Option<&u32>,
        _dg: &DistributedGraph,
        _step: usize,
    ) -> (CoreState, bool) {
        if old.removed {
            return (*old, false);
        }
        let degree = old.degree.saturating_sub(acc.copied().unwrap_or(0));
        if degree < self.k {
            // removed this round: stay active one round to notify neighbors
            (CoreState { degree, removed: true }, true)
        } else {
            (CoreState { degree, removed: false }, false)
        }
    }

    fn apply_to_all(&self) -> bool {
        true
    }

    fn symmetric(&self) -> bool {
        true
    }

    fn state_bytes(&self) -> f64 {
        5.0
    }

    fn max_supersteps(&self) -> usize {
        100_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use crate::engine::run;
    use ease_graph::Graph;
    use ease_partition::{EdgePartition, PartitionerId};

    /// Single-machine reference peeling on the undirected multigraph.
    fn reference_core(g: &Graph, k: u32) -> Vec<bool> {
        let mut degree = g.total_degrees();
        let n = g.num_vertices();
        let mut removed = vec![false; n];
        loop {
            let mut change = false;
            for v in 0..n {
                if !removed[v] && degree[v] < k {
                    removed[v] = true;
                    change = true;
                    for e in g.edges() {
                        if e.src as usize == v && !removed[e.dst as usize] {
                            degree[e.dst as usize] -= 1;
                        }
                        if e.dst as usize == v && !removed[e.src as usize] {
                            degree[e.src as usize] -= 1;
                        }
                    }
                }
            }
            if !change {
                return removed.iter().map(|&r| !r).collect();
            }
        }
    }

    #[test]
    fn triangle_with_tail() {
        // triangle {0,1,2} is a 2-core; the tail 2-3 is not
        let g = Graph::from_pairs([(0, 1), (1, 2), (2, 0), (2, 3)]);
        let part = EdgePartition::new(2, vec![0, 1, 0, 1]);
        let dg = DistributedGraph::build(&g, &part);
        let (_, states) = run(&KCores::new(2), &dg, &ClusterSpec::new(2));
        assert!(!states[0].removed && !states[1].removed && !states[2].removed);
        assert!(states[3].removed);
    }

    #[test]
    fn cascade_matches_reference() {
        let g = ease_graphgen::rmat::Rmat::new(ease_graphgen::rmat::RMAT_COMBOS[3], 256, 1_500, 3)
            .generate();
        let part = PartitionerId::Dbh.build(1).partition(&g, 4);
        let dg = DistributedGraph::build(&g, &part);
        let prog = KCores::with_mean_degree(&dg);
        let (_, states) = run(&prog, &dg, &ClusterSpec::new(4));
        let expect = reference_core(&g, prog.k);
        for v in 0..g.num_vertices() {
            if g.total_degrees()[v] == 0 {
                continue;
            }
            assert_eq!(!states[v].removed, expect[v], "vertex {v} (k={})", prog.k);
        }
    }

    #[test]
    fn mean_degree_k_is_positive() {
        let g = Graph::from_pairs([(0, 1), (1, 2)]);
        let part = EdgePartition::new(1, vec![0, 0]);
        let dg = DistributedGraph::build(&g, &part);
        assert!(KCores::with_mean_degree(&dg).k >= 1);
    }
}
