//! Connected Components via HashMin label propagation.
//!
//! Undirected semantics: labels flow both ways along every edge. All
//! vertices start active and the active set shrinks over time (the paper
//! uses exactly this activity profile to characterize the workload).

use crate::engine::VertexProgram;
use crate::placement::DistributedGraph;

#[derive(Debug, Clone, Default)]
pub struct ConnectedComponents;

impl VertexProgram for ConnectedComponents {
    type State = u32;
    type Acc = u32;

    fn init_state(&self, v: u32, _dg: &DistributedGraph) -> u32 {
        v
    }

    fn initially_active(&self, _v: u32, _dg: &DistributedGraph) -> bool {
        true
    }

    fn acc_identity(&self) -> u32 {
        u32::MAX
    }

    fn gather(&self, _src: u32, src_state: &u32, _dst: u32, acc: &mut u32, _dg: &DistributedGraph) {
        *acc = (*acc).min(*src_state);
    }

    fn combine(&self, into: &mut u32, other: &u32) {
        *into = (*into).min(*other);
    }

    fn apply(
        &self,
        _v: u32,
        old: &u32,
        acc: Option<&u32>,
        _dg: &DistributedGraph,
        _step: usize,
    ) -> (u32, bool) {
        match acc {
            Some(&m) if m < *old => (m, true),
            _ => (*old, false),
        }
    }

    fn symmetric(&self) -> bool {
        true
    }

    fn state_bytes(&self) -> f64 {
        4.0
    }

    fn max_supersteps(&self) -> usize {
        100_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use crate::engine::run;
    use ease_graph::Graph;
    use ease_partition::{EdgePartition, PartitionerId};

    fn reference_components(g: &Graph) -> Vec<u32> {
        // simple union-find
        let mut parent: Vec<u32> = (0..g.num_vertices() as u32).collect();
        fn find(parent: &mut [u32], v: u32) -> u32 {
            let mut r = v;
            while parent[r as usize] != r {
                r = parent[r as usize];
            }
            let mut c = v;
            while parent[c as usize] != r {
                let n = parent[c as usize];
                parent[c as usize] = r;
                c = n;
            }
            r
        }
        for e in g.edges() {
            let (a, b) = (find(&mut parent, e.src), find(&mut parent, e.dst));
            if a != b {
                parent[a.max(b) as usize] = a.min(b);
            }
        }
        // component id = min vertex in component
        (0..g.num_vertices() as u32).map(|v| find(&mut parent, v)).collect()
    }

    #[test]
    fn labels_match_union_find() {
        let g = ease_graphgen::erdos_renyi::ErdosRenyi::new(300, 400, 5).generate();
        let part = PartitionerId::TwoD.build(1).partition(&g, 4);
        let dg = DistributedGraph::build(&g, &part);
        let (_, labels) = run(&ConnectedComponents, &dg, &ClusterSpec::new(4));
        let expect = reference_components(&g);
        for v in 0..g.num_vertices() {
            // isolated vertices are not touched by the engine; skip them
            if g.total_degrees()[v] == 0 {
                continue;
            }
            assert_eq!(labels[v], expect[v], "vertex {v}");
        }
    }

    #[test]
    fn two_disjoint_triangles() {
        let g = Graph::from_pairs([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let part = EdgePartition::new(2, vec![0, 1, 0, 1, 0, 1]);
        let dg = DistributedGraph::build(&g, &part);
        let (_, labels) = run(&ConnectedComponents, &dg, &ClusterSpec::new(2));
        assert_eq!(&labels[..3], &[0, 0, 0]);
        assert_eq!(&labels[3..], &[3, 3, 3]);
    }

    #[test]
    fn active_set_shrinks_over_time() {
        let g = ease_graphgen::watts_strogatz::WattsStrogatz::new(400, 4, 0.05, 2).generate();
        let part = PartitionerId::Dbh.build(1).partition(&g, 4);
        let dg = DistributedGraph::build(&g, &part);
        let (report, _) = run(&ConnectedComponents, &dg, &ClusterSpec::new(4));
        assert!(report.supersteps > 2);
        let first = report.per_superstep.first().unwrap().active_senders;
        let last = report.per_superstep.last().unwrap().active_senders;
        assert!(first > last, "first {first} last {last}");
    }
}
