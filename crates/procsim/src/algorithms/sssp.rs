//! Single-Source Shortest Paths (unit edge weights, directed).
//!
//! Activity profile per the paper: "in the first iteration only one vertex
//! is active; the number of active vertices first increases and then
//! decreases until no vertex is active anymore".

use crate::engine::VertexProgram;
use crate::placement::DistributedGraph;

pub const UNREACHED: u32 = u32::MAX;

#[derive(Debug, Clone)]
pub struct Sssp {
    pub source: u32,
}

impl Sssp {
    pub fn new(source: u32) -> Self {
        Sssp { source }
    }

    /// Pick a deterministic pseudo-random source with at least one edge.
    pub fn with_random_source(dg: &DistributedGraph, seed: u64) -> Self {
        let n = dg.num_vertices();
        let mut rng = ease_graph::hash::SplitMix64::new(seed);
        for _ in 0..4 * n.max(16) {
            let v = rng.next_below(n.max(1)) as u32;
            if dg.total_degree(v) > 0 {
                return Sssp { source: v };
            }
        }
        Sssp { source: 0 }
    }
}

impl VertexProgram for Sssp {
    type State = u32;
    type Acc = u32;

    fn init_state(&self, v: u32, _dg: &DistributedGraph) -> u32 {
        if v == self.source {
            0
        } else {
            UNREACHED
        }
    }

    fn initially_active(&self, v: u32, _dg: &DistributedGraph) -> bool {
        v == self.source
    }

    fn acc_identity(&self) -> u32 {
        UNREACHED
    }

    fn gather(&self, _src: u32, src_state: &u32, _dst: u32, acc: &mut u32, _dg: &DistributedGraph) {
        if *src_state != UNREACHED {
            *acc = (*acc).min(src_state + 1);
        }
    }

    fn combine(&self, into: &mut u32, other: &u32) {
        *into = (*into).min(*other);
    }

    fn apply(
        &self,
        _v: u32,
        old: &u32,
        acc: Option<&u32>,
        _dg: &DistributedGraph,
        _step: usize,
    ) -> (u32, bool) {
        match acc {
            Some(&d) if d < *old => (d, true),
            _ => (*old, false),
        }
    }

    fn state_bytes(&self) -> f64 {
        4.0
    }

    fn max_supersteps(&self) -> usize {
        100_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use crate::engine::run;
    use ease_graph::Graph;
    use ease_partition::{EdgePartition, PartitionerId};
    use std::collections::VecDeque;

    fn reference_bfs(g: &Graph, source: u32) -> Vec<u32> {
        let csr = ease_graph::Csr::build(g, ease_graph::csr::Direction::Out);
        let mut dist = vec![UNREACHED; g.num_vertices()];
        dist[source as usize] = 0;
        let mut q = VecDeque::from([source]);
        while let Some(v) = q.pop_front() {
            for &u in csr.neighbors(v) {
                if dist[u as usize] == UNREACHED {
                    dist[u as usize] = dist[v as usize] + 1;
                    q.push_back(u);
                }
            }
        }
        dist
    }

    #[test]
    fn distances_match_bfs() {
        let g = ease_graphgen::rmat::Rmat::new(ease_graphgen::rmat::RMAT_COMBOS[5], 512, 4_000, 7)
            .generate();
        let part = PartitionerId::Hdrf.build(1).partition(&g, 4);
        let dg = DistributedGraph::build(&g, &part);
        let prog = Sssp::with_random_source(&dg, 9);
        let (_, dist) = run(&prog, &dg, &ClusterSpec::new(4));
        let expect = reference_bfs(&g, prog.source);
        assert_eq!(dist, expect);
    }

    #[test]
    fn path_graph_distances() {
        let g = Graph::from_pairs([(0, 1), (1, 2), (2, 3)]);
        let part = EdgePartition::new(2, vec![0, 1, 0]);
        let dg = DistributedGraph::build(&g, &part);
        let (report, dist) = run(&Sssp::new(0), &dg, &ClusterSpec::new(2));
        assert_eq!(dist, vec![0, 1, 2, 3]);
        // frontier expands one hop per superstep
        assert_eq!(report.supersteps, 4);
        assert_eq!(report.per_superstep[0].active_senders, 1);
    }

    #[test]
    fn random_source_has_edges() {
        let g = Graph::new(100, vec![ease_graph::Edge::new(41, 42), ease_graph::Edge::new(42, 43)]);
        let part = EdgePartition::new(1, vec![0, 0]);
        let dg = DistributedGraph::build(&g, &part);
        for seed in 0..5 {
            let prog = Sssp::with_random_source(&dg, seed);
            assert!(dg.total_degree(prog.source) > 0, "seed {seed}");
        }
    }
}
