//! The graph processing algorithms of the paper's evaluation (Sec. V-C):
//! PageRank, Connected Components, Single-Source Shortest Paths, K-Cores,
//! the two synthetic communication workloads, plus Label Propagation for
//! the Sec. III showcase.
//!
//! Each algorithm is a [`crate::engine::VertexProgram`] with calibrated cost
//! constants; all of them produce *correct* outputs (unit-tested against
//! single-machine references).

pub mod cc;
pub mod kcores;
pub mod label_prop;
pub mod pagerank;
pub mod sssp;
pub mod synthetic;

pub use cc::ConnectedComponents;
pub use kcores::KCores;
pub use label_prop::LabelPropagation;
pub use pagerank::PageRank;
pub use sssp::Sssp;
pub use synthetic::Synthetic;
