//! The paper's synthetic workload (Sec. V-C): every vertex holds a feature
//! vector of `s` 64-bit doubles and pushes it along its out-edges each
//! iteration. `s` scales the communication volume: `s = 1` (Synthetic-Low)
//! and `s = 10` (Synthetic-High). Computation and communication are constant
//! across iterations, so the prediction target is the average iteration
//! time.

use crate::engine::VertexProgram;
use crate::placement::DistributedGraph;

#[derive(Debug, Clone)]
pub struct Synthetic {
    /// Feature-vector width in doubles.
    pub s: usize,
    pub iterations: usize,
}

impl Synthetic {
    pub fn low(iterations: usize) -> Self {
        Synthetic { s: 1, iterations }
    }

    pub fn high(iterations: usize) -> Self {
        Synthetic { s: 10, iterations }
    }
}

impl VertexProgram for Synthetic {
    type State = Vec<f64>;
    type Acc = Vec<f64>;

    fn init_state(&self, v: u32, _dg: &DistributedGraph) -> Vec<f64> {
        (0..self.s).map(|i| f64::from((v.wrapping_add(i as u32)) % 101) / 101.0).collect()
    }

    fn initially_active(&self, _v: u32, _dg: &DistributedGraph) -> bool {
        true
    }

    fn acc_identity(&self) -> Vec<f64> {
        vec![0.0; self.s]
    }

    fn gather(
        &self,
        _src: u32,
        src_state: &Vec<f64>,
        _dst: u32,
        acc: &mut Vec<f64>,
        _dg: &DistributedGraph,
    ) {
        for (a, x) in acc.iter_mut().zip(src_state) {
            *a += *x;
        }
    }

    fn combine(&self, into: &mut Vec<f64>, other: &Vec<f64>) {
        for (a, x) in into.iter_mut().zip(other) {
            *a += *x;
        }
    }

    fn apply(
        &self,
        v: u32,
        old: &Vec<f64>,
        acc: Option<&Vec<f64>>,
        dg: &DistributedGraph,
        _step: usize,
    ) -> (Vec<f64>, bool) {
        let state = match acc {
            Some(sum) => {
                let scale = 1.0 / f64::from(dg.total_degree(v).max(1));
                sum.iter().map(|x| 0.5 * x * scale + 0.01).collect()
            }
            None => old.clone(),
        };
        (state, true)
    }

    fn apply_to_all(&self) -> bool {
        true
    }

    fn state_bytes(&self) -> f64 {
        8.0 * self.s as f64
    }

    fn edge_cost(&self) -> f64 {
        0.2 * self.s as f64
    }

    fn apply_cost(&self) -> f64 {
        0.3 * self.s as f64
    }

    fn max_supersteps(&self) -> usize {
        self.iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use crate::engine::run;
    use ease_partition::PartitionerId;

    fn dist(k: usize) -> DistributedGraph {
        let g = ease_graphgen::rmat::Rmat::new(ease_graphgen::rmat::RMAT_COMBOS[2], 256, 2_000, 4)
            .generate();
        let part = PartitionerId::Hdrf.build(1).partition(&g, k);
        DistributedGraph::build(&g, &part)
    }

    #[test]
    fn high_generates_10x_traffic_of_low() {
        let dg = dist(4);
        let cluster = ClusterSpec::new(4);
        let (low, _) = run(&Synthetic::low(5), &dg, &cluster);
        let (high, _) = run(&Synthetic::high(5), &dg, &cluster);
        let ratio = high.total_comm_bytes / low.total_comm_bytes;
        assert!((ratio - 10.0).abs() < 0.5, "ratio {ratio}");
        assert!(high.total_secs > low.total_secs);
    }

    #[test]
    fn runs_fixed_iterations_with_constant_cost() {
        let dg = dist(4);
        let (report, _) = run(&Synthetic::low(5), &dg, &ClusterSpec::new(4));
        assert_eq!(report.supersteps, 5);
        let first = report.per_superstep[0];
        let last = report.per_superstep[4];
        assert!((first.compute_secs - last.compute_secs).abs() < 1e-9);
        assert!((first.network_secs - last.network_secs).abs() < 1e-9);
    }

    #[test]
    fn state_values_stay_finite() {
        let dg = dist(2);
        let (_, states) = run(&Synthetic::high(5), &dg, &ClusterSpec::new(2));
        for s in &states {
            assert_eq!(s.len(), 10);
            assert!(s.iter().all(|x| x.is_finite()));
        }
    }
}
