//! Label Propagation — the computation-bound showcase workload (Sec. III-B).
//!
//! Synchronous LP: each iteration every vertex adopts the most frequent
//! label among its (undirected) neighbors. The per-vertex label-histogram
//! computation is expensive relative to the tiny messages, so the workload
//! is *computation-bound* and its straggler time tracks **vertex balance**
//! rather than replication factor — the key observation of the paper's
//! Fig. 2.

use crate::engine::VertexProgram;
use crate::placement::DistributedGraph;

#[derive(Debug, Clone)]
pub struct LabelPropagation {
    pub iterations: usize,
}

impl LabelPropagation {
    pub fn new(iterations: usize) -> Self {
        LabelPropagation { iterations }
    }
}

/// Small sorted histogram of neighbor labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram(pub Vec<(u32, u32)>);

impl Histogram {
    fn add(&mut self, label: u32, count: u32) {
        match self.0.binary_search_by_key(&label, |&(l, _)| l) {
            Ok(i) => self.0[i].1 += count,
            Err(i) => self.0.insert(i, (label, count)),
        }
    }

    /// Most frequent label; ties break to the smallest label.
    fn argmax(&self) -> Option<u32> {
        self.0.iter().max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0))).map(|&(l, _)| l)
    }
}

impl VertexProgram for LabelPropagation {
    type State = u32;
    type Acc = Histogram;

    fn init_state(&self, v: u32, _dg: &DistributedGraph) -> u32 {
        v
    }

    fn initially_active(&self, _v: u32, _dg: &DistributedGraph) -> bool {
        true
    }

    fn acc_identity(&self) -> Histogram {
        Histogram(Vec::new())
    }

    fn gather(
        &self,
        _src: u32,
        src_state: &u32,
        _dst: u32,
        acc: &mut Histogram,
        _dg: &DistributedGraph,
    ) {
        acc.add(*src_state, 1);
    }

    fn combine(&self, into: &mut Histogram, other: &Histogram) {
        for &(l, c) in &other.0 {
            into.add(l, c);
        }
    }

    fn apply(
        &self,
        _v: u32,
        old: &u32,
        acc: Option<&Histogram>,
        _dg: &DistributedGraph,
        _step: usize,
    ) -> (u32, bool) {
        let new = acc.and_then(Histogram::argmax).unwrap_or(*old);
        (new, true)
    }

    fn apply_to_all(&self) -> bool {
        true
    }

    fn symmetric(&self) -> bool {
        true
    }

    fn state_bytes(&self) -> f64 {
        4.0
    }

    /// Histogram maintenance dominates: high per-replica cost makes the
    /// workload computation-bound (vertex-balance-sensitive).
    fn apply_cost(&self) -> f64 {
        12.0
    }

    fn edge_cost(&self) -> f64 {
        1.5
    }

    fn max_supersteps(&self) -> usize {
        self.iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use crate::engine::run;
    use ease_graph::Graph;
    use ease_partition::EdgePartition;

    #[test]
    fn histogram_argmax_with_tie_break() {
        let mut h = Histogram(Vec::new());
        h.add(5, 2);
        h.add(3, 2);
        h.add(9, 1);
        assert_eq!(h.argmax(), Some(3)); // tie 5 vs 3 -> smaller label
        h.add(5, 1);
        assert_eq!(h.argmax(), Some(5));
    }

    #[test]
    fn clique_converges_to_one_label() {
        // two 4-cliques joined by a single bridge edge
        let mut pairs = Vec::new();
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                pairs.push((a, b));
                pairs.push((a + 4, b + 4));
            }
        }
        pairs.push((0, 4));
        let g = Graph::from_pairs(pairs);
        let part = EdgePartition::new(2, vec![0; 13]);
        let dg = DistributedGraph::build(&g, &part);
        let (_, labels) = run(&LabelPropagation::new(10), &dg, &ClusterSpec::new(2));
        // within each clique, labels agree
        assert!(labels[1] == labels[2] && labels[2] == labels[3], "{labels:?}");
        assert!(labels[5] == labels[6] && labels[6] == labels[7], "{labels:?}");
    }

    #[test]
    fn worse_vertex_balance_costs_more_compute_time() {
        // Disjoint-edge matching: every edge brings two unique vertices, so
        // the machine hosting more edges also hosts proportionally more
        // vertex replicas. A vertex-skewed placement must straggle.
        let n = 2_000u32;
        let g = Graph::from_pairs((0..n / 2).map(|i| (2 * i, 2 * i + 1)));
        let m = g.num_edges();
        let balanced: Vec<u16> = (0..m).map(|i| (i % 4) as u16).collect();
        // skewed: 3/4 of the matching (and its vertices) on machine 0
        let skewed: Vec<u16> =
            (0..m).map(|i| if i % 4 != 0 { 0 } else { (i % 3 + 1) as u16 }).collect();
        let cluster = ClusterSpec::new(4);
        let dgb = DistributedGraph::build(&g, &EdgePartition::new(4, balanced));
        let dgs = DistributedGraph::build(&g, &EdgePartition::new(4, skewed));
        let (rb, _) = run(&LabelPropagation::new(5), &dgb, &cluster);
        let (rs, _) = run(&LabelPropagation::new(5), &dgs, &cluster);
        let cb: f64 = rb.per_superstep.iter().map(|s| s.compute_secs).sum();
        let cs: f64 = rs.per_superstep.iter().map(|s| s.compute_secs).sum();
        assert!(cs > 2.0 * cb, "skewed {cs} vs balanced {cb}");
    }

    #[test]
    fn lp_is_computation_bound() {
        // The paper picks LP as the computation-bound workload: per-replica
        // histogram work dominates its tiny 4-byte messages.
        let g = ease_graphgen::rmat::Rmat::new(ease_graphgen::rmat::RMAT_COMBOS[2], 512, 4_000, 3)
            .generate();
        let part = ease_partition::PartitionerId::Hdrf.build(1).partition(&g, 4);
        let dg = DistributedGraph::build(&g, &part);
        let (r, _) = run(&LabelPropagation::new(5), &dg, &ClusterSpec::new(4));
        let compute: f64 = r.per_superstep.iter().map(|s| s.compute_secs).sum();
        let network: f64 = r.per_superstep.iter().map(|s| s.network_secs).sum();
        assert!(compute > network, "compute {compute} vs network {network}");
    }
}
