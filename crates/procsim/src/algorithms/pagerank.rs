//! PageRank — the canonical communication-bound workload.
//!
//! Every vertex is active in every iteration (paper Sec. V-C: "In PageRank,
//! all vertices are active in each iteration"), so the broadcast volume is
//! proportional to the replication factor — which is why RF predicts
//! PageRank run-time so well (Sec. III-A).

use crate::engine::VertexProgram;
use crate::placement::DistributedGraph;

#[derive(Debug, Clone)]
pub struct PageRank {
    pub iterations: usize,
    pub damping: f64,
}

impl PageRank {
    pub fn new(iterations: usize) -> Self {
        PageRank { iterations, damping: 0.85 }
    }
}

impl VertexProgram for PageRank {
    type State = f64;
    type Acc = f64;

    fn init_state(&self, _v: u32, dg: &DistributedGraph) -> f64 {
        1.0 / dg.num_vertices().max(1) as f64
    }

    fn initially_active(&self, _v: u32, _dg: &DistributedGraph) -> bool {
        true
    }

    fn acc_identity(&self) -> f64 {
        0.0
    }

    fn gather(&self, src: u32, src_state: &f64, _dst: u32, acc: &mut f64, dg: &DistributedGraph) {
        let out = dg.out_degree(src);
        if out > 0 {
            *acc += *src_state / f64::from(out);
        }
    }

    fn combine(&self, into: &mut f64, other: &f64) {
        *into += *other;
    }

    fn apply(
        &self,
        _v: u32,
        _old: &f64,
        acc: Option<&f64>,
        dg: &DistributedGraph,
        _step: usize,
    ) -> (f64, bool) {
        let n = dg.num_vertices().max(1) as f64;
        let sum = acc.copied().unwrap_or(0.0);
        ((1.0 - self.damping) / n + self.damping * sum, true)
    }

    fn apply_to_all(&self) -> bool {
        true
    }

    fn state_bytes(&self) -> f64 {
        8.0
    }

    fn max_supersteps(&self) -> usize {
        self.iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use crate::engine::run;
    use ease_graph::Graph;
    use ease_partition::{EdgePartition, PartitionerId};

    fn reference_pagerank(g: &Graph, iters: usize, d: f64) -> Vec<f64> {
        let n = g.num_vertices();
        let out = g.out_degrees();
        let mut rank = vec![1.0 / n as f64; n];
        for _ in 0..iters {
            let mut next = vec![(1.0 - d) / n as f64; n];
            for e in g.edges() {
                if out[e.src as usize] > 0 {
                    next[e.dst as usize] +=
                        d * rank[e.src as usize] / f64::from(out[e.src as usize]);
                }
            }
            rank = next;
        }
        rank
    }

    #[test]
    fn matches_single_machine_reference() {
        let g = ease_graphgen::rmat::Rmat::new(ease_graphgen::rmat::RMAT_COMBOS[0], 256, 2_000, 1)
            .generate();
        let part = PartitionerId::Hdrf.build(3).partition(&g, 4);
        let dg = DistributedGraph::build(&g, &part);
        let (_, ranks) = run(&PageRank::new(10), &dg, &ClusterSpec::new(4));
        let expect = reference_pagerank(&g, 10, 0.85);
        let degrees = g.total_degrees();
        for v in 0..g.num_vertices() {
            // isolated vertices never enter the engine; they keep init state
            if degrees[v] == 0 {
                continue;
            }
            assert!((ranks[v] - expect[v]).abs() < 1e-9, "v={v}: {} vs {}", ranks[v], expect[v]);
        }
    }

    #[test]
    fn rank_mass_is_bounded() {
        let g = Graph::from_pairs([(0, 1), (1, 2), (2, 0), (0, 2)]);
        let part = EdgePartition::new(2, vec![0, 0, 1, 1]);
        let dg = DistributedGraph::build(&g, &part);
        let (_, ranks) = run(&PageRank::new(20), &dg, &ClusterSpec::new(2));
        let total: f64 = ranks.iter().sum();
        assert!(total > 0.5 && total <= 1.0 + 1e-9, "total={total}");
        assert!(ranks.iter().all(|&r| r > 0.0));
    }

    #[test]
    fn runs_exactly_requested_iterations() {
        let g = Graph::from_pairs([(0, 1), (1, 0)]);
        let part = EdgePartition::new(1, vec![0, 0]);
        let dg = DistributedGraph::build(&g, &part);
        let (report, _) = run(&PageRank::new(7), &dg, &ClusterSpec::new(1));
        assert_eq!(report.supersteps, 7);
    }

    #[test]
    fn lower_replication_means_less_traffic() {
        let g = ease_graphgen::community::CommunityGraph::new(1_000, 8_000, 0.05, 3).generate();
        let k = 8;
        let good = PartitionerId::Ne.build(1).partition(&g, k);
        let bad = PartitionerId::Crvc.build(1).partition(&g, k);
        let dg_good = DistributedGraph::build(&g, &good);
        let dg_bad = DistributedGraph::build(&g, &bad);
        let cluster = ClusterSpec::new(k);
        let (rep_good, _) = run(&PageRank::new(5), &dg_good, &cluster);
        let (rep_bad, _) = run(&PageRank::new(5), &dg_bad, &cluster);
        assert!(
            rep_good.total_comm_bytes < rep_bad.total_comm_bytes,
            "good {} vs bad {}",
            rep_good.total_comm_bytes,
            rep_bad.total_comm_bytes
        );
        assert!(rep_good.total_secs < rep_bad.total_secs);
    }
}
