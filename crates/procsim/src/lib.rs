//! Distributed vertex-cut graph processing engine with an explicit cluster
//! cost model — the substitute for the paper's Spark/GraphX cluster
//! (DESIGN.md §2.1).
//!
//! The engine executes vertex programs **for real** (PageRank ranks,
//! component ids, distances, core numbers and labels are all correct and
//! testable) over a graph that has been edge-partitioned across `k`
//! simulated machines. While executing, it charges a cost ledger modelled on
//! the PowerGraph/GraphX vertex-cut architecture:
//!
//! * masters broadcast vertex state to mirrors (bytes ∝ replication factor),
//! * each machine gathers along its local edges (compute ∝ local edges),
//! * mirrors pre-aggregate and ship accumulators back to masters
//!   (bytes + compute ∝ local vertex replicas),
//! * a superstep ends at a barrier: its wall time is the *maximum* over
//!   machines of compute time plus the maximum of network time plus a fixed
//!   latency — which is precisely how poor edge/vertex balance creates
//!   stragglers.
//!
//! This reproduces the paper's empirical structure: replication factor
//! drives communication-bound workloads (PageRank, Synthetic-High), vertex
//! balance drives computation-bound workloads (Label Propagation).

pub mod algorithms;
pub mod cluster;
pub mod engine;
pub mod placement;
pub mod workload;

pub use cluster::ClusterSpec;
pub use engine::{SimReport, VertexProgram};
pub use placement::DistributedGraph;
pub use workload::Workload;
