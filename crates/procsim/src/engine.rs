//! The superstep engine: executes a vertex program over a
//! [`DistributedGraph`] while charging the cluster cost model.
//!
//! Execution model per superstep (PowerGraph/GraphX vertex-cut):
//!
//! 1. **Broadcast** — every *active* vertex's master ships the vertex state
//!    to each mirror: `(replicas − 1) · state_bytes` out of the master's
//!    machine, `state_bytes` into each mirror's machine.
//! 2. **Gather** — each machine folds contributions along its local edges
//!    whose source is active (`edge_cost` compute units per edge). With
//!    `symmetric()`, reversed edges gather too (undirected semantics).
//! 3. **Aggregate** — each machine pre-aggregates per local vertex
//!    (`apply_cost` units per touched replica — this is the term that makes
//!    vertex balance matter) and mirrors ship accumulators to masters
//!    (`acc_bytes` each way).
//! 4. **Apply** — masters compute the new state (`apply_cost` units) and
//!    decide whether the vertex stays active.
//!
//! Superstep wall time = `max_p compute_p / rate + max_p bytes_p / bw +
//! latency`; the report sums these. All state updates are executed for
//! real — algorithm outputs are exact, only *time* is modelled.

use crate::cluster::ClusterSpec;
use crate::placement::{DistributedGraph, NO_MASTER};

/// A vertex program in gather/apply form.
pub trait VertexProgram {
    type State: Clone + PartialEq;
    type Acc: Clone;

    fn init_state(&self, v: u32, dg: &DistributedGraph) -> Self::State;
    fn initially_active(&self, v: u32, dg: &DistributedGraph) -> bool;
    fn acc_identity(&self) -> Self::Acc;
    /// Fold the contribution of active source `src` into `dst`'s accumulator.
    fn gather(
        &self,
        src: u32,
        src_state: &Self::State,
        dst: u32,
        acc: &mut Self::Acc,
        dg: &DistributedGraph,
    );
    /// Merge two partial accumulators (mirror → master aggregation).
    fn combine(&self, into: &mut Self::Acc, other: &Self::Acc);
    /// Compute the new state at the master; returns `(state, active_next)`.
    fn apply(
        &self,
        v: u32,
        old: &Self::State,
        acc: Option<&Self::Acc>,
        dg: &DistributedGraph,
        superstep: usize,
    ) -> (Self::State, bool);

    /// Apply to every covered vertex each superstep (iterative algorithms
    /// like PageRank); otherwise only vertices that received messages apply.
    fn apply_to_all(&self) -> bool {
        false
    }
    /// Gather along reversed edges too (undirected algorithms).
    fn symmetric(&self) -> bool {
        false
    }
    fn state_bytes(&self) -> f64;
    fn acc_bytes(&self) -> f64 {
        self.state_bytes()
    }
    fn edge_cost(&self) -> f64 {
        1.0
    }
    fn apply_cost(&self) -> f64 {
        1.0
    }
    fn max_supersteps(&self) -> usize;
}

/// Per-superstep cost breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuperstepCost {
    /// Straggler compute time (max over machines).
    pub compute_secs: f64,
    /// Straggler network time (max over machines).
    pub network_secs: f64,
    pub active_senders: usize,
}

/// Cost report of one simulated run.
#[derive(Debug, Clone)]
pub struct SimReport {
    pub total_secs: f64,
    pub supersteps: usize,
    pub total_comm_bytes: f64,
    pub total_compute_units: f64,
    pub per_superstep: Vec<SuperstepCost>,
}

impl SimReport {
    /// Average per-superstep time — the prediction target for
    /// fixed-iteration workloads (paper Sec. V-C).
    pub fn avg_superstep_secs(&self) -> f64 {
        if self.supersteps == 0 {
            0.0
        } else {
            self.total_secs / self.supersteps as f64
        }
    }
}

/// Run `prog` to completion; returns the cost report and the final master
/// states of all vertices.
pub fn run<P: VertexProgram>(
    prog: &P,
    dg: &DistributedGraph,
    cluster: &ClusterSpec,
) -> (SimReport, Vec<P::State>) {
    assert_eq!(cluster.machines, dg.num_partitions(), "one machine per partition");
    let n = dg.num_vertices();
    let k = dg.num_partitions();
    let mut states: Vec<P::State> = (0..n as u32).map(|v| prog.init_state(v, dg)).collect();
    let covered: Vec<bool> = (0..n as u32).map(|v| dg.master_of(v) != NO_MASTER).collect();
    let mut active: Vec<bool> =
        (0..n as u32).map(|v| covered[v as usize] && prog.initially_active(v, dg)).collect();

    // per-partition local accumulator storage, epoch-stamped
    let mut local_acc: Vec<Vec<P::Acc>> =
        (0..k).map(|p| vec![prog.acc_identity(); dg.partition(p).vertices.len()]).collect();
    let mut local_epoch: Vec<Vec<u32>> =
        (0..k).map(|p| vec![0u32; dg.partition(p).vertices.len()]).collect();
    let mut touched_lists: Vec<Vec<u32>> = vec![Vec::new(); k];

    // global (master-side) accumulators, epoch-stamped
    let mut global_acc: Vec<P::Acc> = vec![prog.acc_identity(); n];
    let mut global_epoch: Vec<u32> = vec![0u32; n];

    let mut report = SimReport {
        total_secs: 0.0,
        supersteps: 0,
        total_comm_bytes: 0.0,
        total_compute_units: 0.0,
        per_superstep: Vec::new(),
    };

    for step in 0..prog.max_supersteps() {
        let epoch = step as u32 + 1;
        let num_active = active.iter().filter(|&&a| a).count();
        if num_active == 0 && !prog.apply_to_all() {
            break;
        }
        let mut compute = vec![0.0f64; k];
        let mut bytes = vec![0.0f64; k];

        // ---- 1. broadcast active vertex states to mirrors ----
        let state_bytes = prog.state_bytes();
        for v in 0..n {
            if !active[v] {
                continue;
            }
            let mask = dg.replica_mask(v as u32);
            let r = mask.count_ones();
            if r > 1 {
                let master = dg.master_of(v as u32) as usize;
                bytes[master] += (r - 1) as f64 * state_bytes;
                let mut m = mask;
                while m != 0 {
                    let p = m.trailing_zeros() as usize;
                    m &= m - 1;
                    if p != master {
                        bytes[p] += state_bytes;
                    }
                }
            }
        }

        // ---- 2. gather along local edges ----
        let edge_cost = prog.edge_cost();
        for p in 0..k {
            let part = dg.partition(p);
            let (epochs, accs) = (&mut local_epoch[p], &mut local_acc[p]);
            let touched = &mut touched_lists[p];
            touched.clear();
            let mut work = 0.0;
            for (i, e) in part.edges.iter().enumerate() {
                if active[e.src as usize] {
                    let dst_local = part.edge_dst_local[i] as usize;
                    if epochs[dst_local] != epoch {
                        epochs[dst_local] = epoch;
                        accs[dst_local] = prog.acc_identity();
                        touched.push(dst_local as u32);
                    }
                    prog.gather(e.src, &states[e.src as usize], e.dst, &mut accs[dst_local], dg);
                    work += edge_cost;
                }
                if prog.symmetric() && active[e.dst as usize] {
                    let src_local = part.edge_src_local[i] as usize;
                    if epochs[src_local] != epoch {
                        epochs[src_local] = epoch;
                        accs[src_local] = prog.acc_identity();
                        touched.push(src_local as u32);
                    }
                    prog.gather(e.dst, &states[e.dst as usize], e.src, &mut accs[src_local], dg);
                    work += edge_cost;
                }
            }
            compute[p] += work;
        }

        // ---- 3. mirror pre-aggregation + accumulator shipping ----
        let acc_bytes = prog.acc_bytes();
        let apply_cost = prog.apply_cost();
        for p in 0..k {
            let part = dg.partition(p);
            compute[p] += apply_cost * touched_lists[p].len() as f64;
            for &local in &touched_lists[p] {
                let v = part.vertices[local as usize];
                let master = dg.master_of(v) as usize;
                if master != p {
                    bytes[p] += acc_bytes;
                    bytes[master] += acc_bytes;
                }
                let acc = &local_acc[p][local as usize];
                if global_epoch[v as usize] != epoch {
                    global_epoch[v as usize] = epoch;
                    global_acc[v as usize] = acc.clone();
                } else {
                    let mut merged = global_acc[v as usize].clone();
                    prog.combine(&mut merged, acc);
                    global_acc[v as usize] = merged;
                }
            }
        }

        // ---- 4. apply at masters ----
        let mut next_active = vec![false; n];
        let mut changed = 0usize;
        for v in 0..n {
            if !covered[v] {
                continue;
            }
            let has_acc = global_epoch[v] == epoch;
            if !has_acc && !prog.apply_to_all() {
                continue;
            }
            let master = dg.master_of(v as u32) as usize;
            compute[master] += apply_cost;
            let acc = if has_acc { Some(&global_acc[v]) } else { None };
            let (new_state, act) = prog.apply(v as u32, &states[v], acc, dg, step);
            if new_state != states[v] {
                changed += 1;
                states[v] = new_state;
            }
            next_active[v] = act;
        }

        // ---- account the superstep ----
        let max_compute = compute.iter().cloned().fold(0.0, f64::max);
        let max_bytes = bytes.iter().cloned().fold(0.0, f64::max);
        let cost = SuperstepCost {
            compute_secs: cluster.compute_secs(max_compute),
            network_secs: cluster.network_secs(max_bytes),
            active_senders: num_active,
        };
        report.total_secs += cost.compute_secs + cost.network_secs + cluster.superstep_latency_secs;
        report.total_comm_bytes += bytes.iter().sum::<f64>();
        report.total_compute_units += compute.iter().sum::<f64>();
        report.per_superstep.push(cost);
        report.supersteps += 1;

        let none_active = !next_active.iter().any(|&a| a);
        active = next_active;
        if prog.apply_to_all() {
            if none_active && changed == 0 {
                break;
            }
        } else if none_active {
            break;
        }
    }
    (report, states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ease_graph::Graph;
    use ease_partition::EdgePartition;

    /// Trivial program: every vertex counts its in-neighbors once.
    struct CountIn;

    impl VertexProgram for CountIn {
        type State = u32;
        type Acc = u32;

        fn init_state(&self, _v: u32, _dg: &DistributedGraph) -> u32 {
            0
        }
        fn initially_active(&self, _v: u32, _dg: &DistributedGraph) -> bool {
            true
        }
        fn acc_identity(&self) -> u32 {
            0
        }
        fn gather(&self, _src: u32, _s: &u32, _dst: u32, acc: &mut u32, _dg: &DistributedGraph) {
            *acc += 1;
        }
        fn combine(&self, into: &mut u32, other: &u32) {
            *into += *other;
        }
        fn apply(
            &self,
            _v: u32,
            old: &u32,
            acc: Option<&u32>,
            _dg: &DistributedGraph,
            _step: usize,
        ) -> (u32, bool) {
            (old + acc.copied().unwrap_or(0), false)
        }
        fn state_bytes(&self) -> f64 {
            4.0
        }
        fn max_supersteps(&self) -> usize {
            3
        }
    }

    fn dist(pairs: &[(u32, u32)], assignment: Vec<u16>, k: usize) -> DistributedGraph {
        let g = Graph::from_pairs(pairs.iter().copied());
        let p = EdgePartition::new(k, assignment);
        DistributedGraph::build(&g, &p)
    }

    #[test]
    fn in_degree_counting_is_exact_across_partitions() {
        let dg = dist(&[(0, 2), (1, 2), (3, 2), (2, 0)], vec![0, 1, 0, 1], 2);
        let (report, states) = run(&CountIn, &dg, &ClusterSpec::new(2));
        assert_eq!(states, vec![1, 0, 3, 0]);
        // everything halts after one superstep
        assert_eq!(report.supersteps, 1);
        assert!(report.total_secs > 0.0);
    }

    #[test]
    fn replication_produces_comm_bytes() {
        // vertex 2 is replicated across both partitions -> broadcast +
        // aggregation traffic must be non-zero
        let dg = dist(&[(0, 2), (1, 2)], vec![0, 1], 2);
        let (report, _) = run(&CountIn, &dg, &ClusterSpec::new(2));
        assert!(report.total_comm_bytes > 0.0);
    }

    #[test]
    fn single_partition_means_no_network() {
        let dg = dist(&[(0, 1), (1, 2), (2, 0)], vec![0, 0, 0], 1);
        let (report, _) = run(&CountIn, &dg, &ClusterSpec::new(1));
        assert_eq!(report.total_comm_bytes, 0.0);
    }

    #[test]
    #[should_panic(expected = "one machine per partition")]
    fn machine_count_must_match() {
        let dg = dist(&[(0, 1)], vec![0], 1);
        let _ = run(&CountIn, &dg, &ClusterSpec::new(4));
    }
}
