//! Cluster cost-model parameters.

/// Simulated cluster. One machine hosts one edge partition, as in the
/// paper's Spark/GraphX deployments (64 machines / 64 partitions for Fig. 1,
/// 4 machines / 4 partitions for the training runs).
///
/// The default rates are calibrated for the workspace's ~1000×-scaled
/// graphs: they are deliberately "slow" so that a scaled graph produces the
/// same compute-vs-communication regime as the paper's billion-edge graphs
/// on real hardware — per-superstep times are dominated by work and bytes,
/// not by the barrier latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Number of machines (must equal the partition count of the graph).
    pub machines: usize,
    /// Compute throughput per machine, in cost units per second
    /// (one unit ≈ one edge traversal).
    pub compute_units_per_sec: f64,
    /// Network throughput per machine, bytes per second.
    pub bytes_per_sec: f64,
    /// Fixed per-superstep barrier/scheduling latency, seconds.
    pub superstep_latency_secs: f64,
}

impl ClusterSpec {
    /// Default calibration for `machines` machines.
    pub fn new(machines: usize) -> Self {
        assert!(machines >= 1);
        ClusterSpec {
            machines,
            compute_units_per_sec: 2.0e6,
            bytes_per_sec: 2.0e6,
            superstep_latency_secs: 0.002,
        }
    }

    /// Seconds to compute `units` of work on one machine.
    #[inline]
    pub fn compute_secs(&self, units: f64) -> f64 {
        units / self.compute_units_per_sec
    }

    /// Seconds to move `bytes` through one machine's NIC.
    #[inline]
    pub fn network_secs(&self, bytes: f64) -> f64 {
        bytes / self.bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rates_positive() {
        let c = ClusterSpec::new(4);
        assert_eq!(c.machines, 4);
        assert!(c.compute_units_per_sec > 0.0);
        assert!(c.bytes_per_sec > 0.0);
    }

    #[test]
    fn conversion_math() {
        let c = ClusterSpec::new(2);
        assert!((c.compute_secs(c.compute_units_per_sec) - 1.0).abs() < 1e-12);
        assert!((c.network_secs(c.bytes_per_sec) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_machines_rejected() {
        let _ = ClusterSpec::new(0);
    }
}
