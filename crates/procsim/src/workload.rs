//! Workload catalog — the graph processing algorithms used to train and
//! evaluate EASE's ProcessingTimePredictor.

use crate::algorithms::{ConnectedComponents, KCores, LabelPropagation, PageRank, Sssp, Synthetic};
use crate::cluster::ClusterSpec;
use crate::engine::{run, SimReport};
use crate::placement::DistributedGraph;

/// A graph processing workload with the paper's parametrization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// PageRank, fixed iterations (training runs use 10).
    PageRank {
        iterations: usize,
    },
    ConnectedComponents,
    /// SSSP from a pseudo-random seed vertex.
    Sssp {
        source_seed: u64,
    },
    /// K-Cores with k = ⌈mean degree⌉.
    KCores,
    /// Label Propagation, fixed iterations (showcase algorithm of Fig. 2).
    LabelPropagation {
        iterations: usize,
    },
    /// Synthetic workload with feature width `s` (1 = low, 10 = high).
    Synthetic {
        s: usize,
        iterations: usize,
    },
}

impl Workload {
    /// The six training workloads of the paper (Sec. V-C), in Table V order.
    pub fn all_training() -> [Workload; 6] {
        [
            Workload::ConnectedComponents,
            Workload::KCores,
            Workload::PageRank { iterations: 10 },
            Workload::Sssp { source_seed: 0x55AA },
            Workload::Synthetic { s: 10, iterations: 5 },
            Workload::Synthetic { s: 1, iterations: 5 },
        ]
    }

    pub fn name(self) -> &'static str {
        match self {
            Workload::PageRank { .. } => "pr",
            Workload::ConnectedComponents => "cc",
            Workload::Sssp { .. } => "sssp",
            Workload::KCores => "kcores",
            Workload::LabelPropagation { .. } => "lp",
            Workload::Synthetic { s, .. } => {
                if s >= 10 {
                    "synthetic-high"
                } else {
                    "synthetic-low"
                }
            }
        }
    }

    /// Inverse of [`Workload::name`] with the paper's default
    /// parametrization — the single name→workload catalog shared by the
    /// `ease` CLI and the persistence layer (which uses it to intern saved
    /// workload names back to `'static`).
    pub fn from_name(name: &str) -> Option<Workload> {
        Some(match name {
            "pr" => Workload::PageRank { iterations: 10 },
            "cc" => Workload::ConnectedComponents,
            "sssp" => Workload::Sssp { source_seed: 0x55AA },
            "kcores" => Workload::KCores,
            "lp" => Workload::LabelPropagation { iterations: 10 },
            "synthetic-low" => Workload::Synthetic { s: 1, iterations: 5 },
            "synthetic-high" => Workload::Synthetic { s: 10, iterations: 5 },
            _ => return None,
        })
    }

    /// Human-readable label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Workload::PageRank { .. } => "PageRank",
            Workload::ConnectedComponents => "Connected Components",
            Workload::Sssp { .. } => "Single Source Shortest Paths",
            Workload::KCores => "K-Cores",
            Workload::LabelPropagation { .. } => "Label Propagation",
            Workload::Synthetic { s, .. } => {
                if s >= 10 {
                    "Synthetic-High"
                } else {
                    "Synthetic-Low"
                }
            }
        }
    }

    /// Fixed iteration count, if the workload has one. Fixed-iteration
    /// workloads are predicted by average iteration time (paper Sec. V-C).
    pub fn fixed_iterations(self) -> Option<usize> {
        match self {
            Workload::PageRank { iterations }
            | Workload::LabelPropagation { iterations }
            | Workload::Synthetic { iterations, .. } => Some(iterations),
            _ => None,
        }
    }

    /// Execute the workload on a distributed graph; returns the cost report.
    pub fn execute(self, dg: &DistributedGraph, cluster: &ClusterSpec) -> SimReport {
        match self {
            Workload::PageRank { iterations } => run(&PageRank::new(iterations), dg, cluster).0,
            Workload::ConnectedComponents => run(&ConnectedComponents, dg, cluster).0,
            Workload::Sssp { source_seed } => {
                run(&Sssp::with_random_source(dg, source_seed), dg, cluster).0
            }
            Workload::KCores => run(&KCores::with_mean_degree(dg), dg, cluster).0,
            Workload::LabelPropagation { iterations } => {
                run(&LabelPropagation::new(iterations), dg, cluster).0
            }
            Workload::Synthetic { s, iterations } => {
                run(&Synthetic { s, iterations }, dg, cluster).0
            }
        }
    }

    /// The prediction target the paper uses: average iteration time for
    /// fixed-iteration workloads, total time-to-convergence otherwise.
    pub fn prediction_target(self, report: &SimReport) -> f64 {
        if self.fixed_iterations().is_some() {
            report.avg_superstep_secs()
        } else {
            report.total_secs
        }
    }

    /// Total processing time implied by a predicted target value.
    pub fn total_from_target(self, target: f64) -> f64 {
        match self.fixed_iterations() {
            Some(iters) => target * iters as f64,
            None => target,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ease_partition::PartitionerId;

    #[test]
    fn six_training_workloads_with_unique_names() {
        let all = Workload::all_training();
        let names: std::collections::HashSet<_> = all.iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), 6);
        assert!(names.contains("synthetic-high") && names.contains("synthetic-low"));
    }

    #[test]
    fn every_training_workload_executes() {
        let g = ease_graphgen::rmat::Rmat::new(ease_graphgen::rmat::RMAT_COMBOS[1], 256, 2_000, 2)
            .generate();
        let part = PartitionerId::Dbh.build(1).partition(&g, 4);
        let dg = DistributedGraph::build(&g, &part);
        let cluster = ClusterSpec::new(4);
        for w in Workload::all_training() {
            let report = w.execute(&dg, &cluster);
            assert!(report.total_secs > 0.0, "{}", w.name());
            assert!(report.supersteps > 0, "{}", w.name());
            let target = w.prediction_target(&report);
            assert!(target > 0.0, "{}", w.name());
            assert!(w.total_from_target(target) > 0.0);
        }
    }

    #[test]
    fn fixed_iteration_reconstruction() {
        let w = Workload::PageRank { iterations: 10 };
        assert_eq!(w.fixed_iterations(), Some(10));
        assert!((w.total_from_target(0.5) - 5.0).abs() < 1e-12);
        let cc = Workload::ConnectedComponents;
        assert_eq!(cc.fixed_iterations(), None);
        assert_eq!(cc.total_from_target(3.0), 3.0);
    }
}
