//! Linear-growth copying model (Kumar et al., FOCS 2000).
//!
//! Each new vertex picks a random *prototype* and creates `out_degree`
//! links: with probability `beta` the target is uniform random, otherwise
//! the corresponding out-link of the prototype is copied. Copying
//! concentrates in-links on popular pages and — with low `beta` — creates
//! the dense bipartite cores of web graphs; high `beta` approaches random
//! citation behaviour. Used for the web, wiki and citation analogues.
//!
//! With `acyclic = true`, vertices only link to *older* vertices,
//! producing citation-DAG-like graphs.

use ease_graph::{Edge, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone)]
pub struct CopyingModel {
    pub num_vertices: usize,
    pub out_degree: usize,
    /// Probability of a uniformly random link instead of a copied one.
    pub beta: f64,
    /// Restrict links to older vertices (citation-style DAG).
    pub acyclic: bool,
    pub seed: u64,
}

impl CopyingModel {
    pub fn new(num_vertices: usize, out_degree: usize, beta: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&beta));
        assert!(num_vertices > out_degree && out_degree >= 1);
        CopyingModel { num_vertices, out_degree, beta, acyclic: false, seed }
    }

    pub fn acyclic(mut self) -> Self {
        self.acyclic = true;
        self
    }

    pub fn generate(&self) -> Graph {
        let (n, d) = (self.num_vertices, self.out_degree);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut edges: Vec<Edge> = Vec::with_capacity(n * d);
        // out-link table for prototype copying
        let mut out_links: Vec<Vec<u32>> = vec![Vec::new(); n];
        // Seed component: ring over the first d+1 vertices.
        for v in 0..=d {
            let u = (v + 1) % (d + 1);
            if self.acyclic && u >= v {
                continue;
            }
            edges.push(Edge::new(v as u32, u as u32));
            out_links[v].push(u as u32);
        }
        for v in (d + 1)..n {
            let prototype = rng.gen_range(0..v);
            for slot in 0..d {
                let copied = out_links[prototype].get(slot).copied();
                let target = if rng.gen::<f64>() >= self.beta {
                    copied.unwrap_or_else(|| rng.gen_range(0..v) as u32)
                } else {
                    rng.gen_range(0..v) as u32
                };
                let target = if self.acyclic { target.min(v as u32 - 1) } else { target };
                if target as usize != v {
                    edges.push(Edge::new(v as u32, target));
                    out_links[v].push(target);
                }
            }
        }
        Graph::new(n, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ease_graph::DegreeTable;

    #[test]
    fn approximate_edge_count() {
        let g = CopyingModel::new(500, 5, 0.3, 1).generate();
        // Each non-seed vertex emits up to d edges (self-targets dropped).
        assert!(g.num_edges() >= 490 * 5 - 50);
        assert!(g.num_edges() <= 495 * 5 + 6);
    }

    #[test]
    fn acyclic_links_point_backwards() {
        let g = CopyingModel::new(400, 3, 0.5, 2).acyclic().generate();
        assert!(g.edges().iter().all(|e| e.dst < e.src || e.src as usize <= 3));
    }

    #[test]
    fn copying_creates_inlink_hubs() {
        let g = CopyingModel::new(3_000, 4, 0.1, 3).generate();
        let t = DegreeTable::compute(&g);
        // strong in-degree concentration: max in-degree >> mean degree
        assert!(f64::from(t.in_moments.max) > 5.0 * t.mean_degree());
    }

    #[test]
    fn high_beta_flattens_indegree() {
        let copy_heavy = CopyingModel::new(2_000, 4, 0.05, 4).generate();
        let random_heavy = CopyingModel::new(2_000, 4, 0.95, 4).generate();
        let mc = DegreeTable::compute(&copy_heavy).in_moments.max;
        let mr = DegreeTable::compute(&random_heavy).in_moments.max;
        assert!(mc > mr, "copy max={mc} random max={mr}");
    }

    #[test]
    fn deterministic() {
        let a = CopyingModel::new(200, 3, 0.4, 6).generate();
        let b = CopyingModel::new(200, 3, 0.4, 6).generate();
        assert_eq!(a.edges(), b.edges());
    }
}
