//! Erdős–Rényi G(n, m) random graphs.
//!
//! Used as a structureless baseline in tests and as an ingredient of the
//! interaction-graph recipes in the real-world library (uniform random
//! contact patterns have neither hubs nor clustering).

use ease_graph::{Edge, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// G(n, m): `m` directed edges chosen uniformly without self-loops.
/// Duplicates are avoided only when `simple` is set.
#[derive(Debug, Clone)]
pub struct ErdosRenyi {
    pub num_vertices: usize,
    pub num_edges: usize,
    pub simple: bool,
    pub seed: u64,
}

impl ErdosRenyi {
    pub fn new(num_vertices: usize, num_edges: usize, seed: u64) -> Self {
        ErdosRenyi { num_vertices, num_edges, simple: true, seed }
    }

    pub fn generate(&self) -> Graph {
        let n = self.num_vertices as u32;
        assert!(n >= 2, "G(n,m) needs at least 2 vertices");
        let max_edges = self.num_vertices * (self.num_vertices - 1);
        assert!(
            !self.simple || self.num_edges <= max_edges,
            "too many edges for a simple directed graph"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut edges = Vec::with_capacity(self.num_edges);
        if self.simple {
            let mut seen = std::collections::HashSet::with_capacity(self.num_edges * 2);
            while edges.len() < self.num_edges {
                let src = rng.gen_range(0..n);
                let dst = rng.gen_range(0..n);
                if src != dst && seen.insert((src, dst)) {
                    edges.push(Edge::new(src, dst));
                }
            }
        } else {
            while edges.len() < self.num_edges {
                let src = rng.gen_range(0..n);
                let dst = rng.gen_range(0..n);
                if src != dst {
                    edges.push(Edge::new(src, dst));
                }
            }
        }
        Graph::new(self.num_vertices, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ease_graph::triangles;

    #[test]
    fn exact_edge_count_and_simplicity() {
        let g = ErdosRenyi::new(50, 200, 3).generate();
        assert_eq!(g.num_edges(), 200);
        let mut set = std::collections::HashSet::new();
        for e in g.edges() {
            assert!(!e.is_loop());
            assert!(set.insert((e.src, e.dst)));
        }
    }

    #[test]
    fn deterministic() {
        let a = ErdosRenyi::new(64, 300, 5).generate();
        let b = ErdosRenyi::new(64, 300, 5).generate();
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn sparse_er_has_low_clustering() {
        let g = ErdosRenyi::new(2_000, 8_000, 1).generate();
        // expected LCC ≈ p ≈ m / (n(n-1)) ≈ 0.002
        assert!(triangles::avg_local_clustering(&g) < 0.05);
    }

    #[test]
    #[should_panic(expected = "too many edges")]
    fn rejects_overfull_simple_graph() {
        let _ = ErdosRenyi::new(3, 100, 1).generate();
    }
}
