//! Training corpora: the (V, E) grids of Table Ia (R-MAT-SMALL, 297 graphs,
//! quality-predictor training) and Table Ib (R-MAT-LARGE, 180 graphs,
//! time-predictor training), plus the Barabási–Albert sweep of Sec. IV-A.
//!
//! The paper's edge counts (1 M – 200 M / 100 M – 500 M) are scaled down by a
//! power-of-two factor while *preserving every (|V|, |E|) ratio*, so mean
//! degrees and densities — the features the models learn from — span the
//! same ranges as in the paper. The grid structure (33 + 20 combos × 9
//! R-MAT parameter combinations) is preserved exactly.

use crate::rmat::{Rmat, RmatParams, RMAT_COMBOS};
use ease_graph::Graph;

/// Experiment scale. `log2_factor` is how many powers of two the paper's
/// sizes are divided by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// ÷16384 — unit/integration tests (largest graphs ≈ 12 k edges).
    Tiny,
    /// ÷4096 — default for experiment binaries (largest ≈ 49 k edges).
    Small,
    /// ÷1024 — overnight-quality runs (largest ≈ 195 k edges).
    Medium,
}

impl Scale {
    pub fn log2_factor(self) -> u32 {
        match self {
            Scale::Tiny => 14,
            Scale::Small => 12,
            Scale::Medium => 10,
        }
    }

    /// Scale a paper-sized count down, keeping at least `min`.
    pub fn scale_count(self, paper: usize, min: usize) -> usize {
        (paper >> self.log2_factor()).max(min)
    }

    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Medium => "medium",
        }
    }

    /// Parse from a CLI/env string.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            _ => None,
        }
    }
}

/// A lazily generated R-MAT corpus entry. Corpora hold specs rather than
/// materialized graphs so profiling loops can generate → measure → drop one
/// graph at a time (the Small corpus would otherwise hold ~10 M edges live).
#[derive(Debug, Clone)]
pub struct RmatSpec {
    pub name: String,
    /// Index into [`RMAT_COMBOS`] (0-based; paper's C1..C9).
    pub combo_index: usize,
    pub params: RmatParams,
    pub num_vertices: usize,
    pub num_edges: usize,
    pub seed: u64,
}

impl RmatSpec {
    pub fn generate(&self) -> Graph {
        Rmat::new(self.params, self.num_vertices, self.num_edges, self.seed).generate()
    }
}

const MIN_VERTICES_LOG2: u32 = 6;

/// Table Ia — R-MAT-SMALL: paper rows `(|E| in M, |V| exponents)`.
const SMALL_GRID: [(usize, &[u32]); 6] = [
    (1_000_000, &[15, 16, 17, 18, 19]),
    (40_000_000, &[21, 22, 23, 24, 25]),
    (80_000_000, &[21, 22, 23, 24, 25, 26]),
    (120_000_000, &[22, 23, 24, 25, 26]),
    (160_000_000, &[22, 23, 24, 25, 26, 27]),
    (200_000_000, &[22, 23, 24, 25, 26, 27]),
];

/// Table Ib — R-MAT-LARGE: paper rows `(|E| in M, |V| in M)`.
const LARGE_GRID: [(usize, [f64; 4]); 5] = [
    (100_000_000, [1.8, 2.5, 4.0, 10.0]),
    (200_000_000, [3.6, 5.0, 8.0, 20.0]),
    (300_000_000, [5.4, 7.5, 12.0, 30.0]),
    (400_000_000, [7.3, 10.0, 16.0, 40.0]),
    (500_000_000, [9.1, 12.5, 20.0, 50.0]),
];

/// The 297 R-MAT-SMALL specs (Table Ia × Table II) at the given scale.
pub fn rmat_small_corpus(scale: Scale) -> Vec<RmatSpec> {
    let f = scale.log2_factor();
    let mut specs = Vec::with_capacity(297);
    let mut seed = 0x5EA5_0001u64;
    for (paper_edges, v_exponents) in SMALL_GRID {
        let num_edges = (paper_edges >> f).max(64);
        for &ve in v_exponents {
            let num_vertices = 1usize << ve.saturating_sub(f).max(MIN_VERTICES_LOG2);
            for (ci, params) in RMAT_COMBOS.iter().enumerate() {
                specs.push(RmatSpec {
                    // paper exponent kept in the name: vertex clamping at
                    // small scales would otherwise collide names
                    name: format!("rmat-small-e{num_edges}-x{ve}-v{num_vertices}-c{}", ci + 1),
                    combo_index: ci,
                    params: *params,
                    num_vertices,
                    num_edges,
                    seed,
                });
                seed = seed.wrapping_add(0x9E37_79B9);
            }
        }
    }
    specs
}

/// The 180 R-MAT-LARGE specs (Table Ib × Table II) at the given scale.
pub fn rmat_large_corpus(scale: Scale) -> Vec<RmatSpec> {
    let f = scale.log2_factor();
    let mut specs = Vec::with_capacity(180);
    let mut seed = 0x5EA5_1001u64;
    for (paper_edges, v_millions) in LARGE_GRID {
        let num_edges = (paper_edges >> f).max(256);
        for vm in v_millions {
            let paper_vertices = (vm * 1e6) as usize;
            let num_vertices = (paper_vertices >> f).max(1 << MIN_VERTICES_LOG2);
            for (ci, params) in RMAT_COMBOS.iter().enumerate() {
                specs.push(RmatSpec {
                    name: format!("rmat-large-e{num_edges}-pv{}-v{num_vertices}-c{}", vm, ci + 1),
                    combo_index: ci,
                    params: *params,
                    num_vertices,
                    num_edges,
                    seed,
                });
                seed = seed.wrapping_add(0x9E37_79B9);
            }
        }
    }
    specs
}

/// The Fig. 6(f) subset: |E| = 160 M row of Table Ia (all |V|, all combos).
pub fn fig6f_corpus(scale: Scale) -> Vec<RmatSpec> {
    let e = (160_000_000usize >> scale.log2_factor()).max(64);
    rmat_small_corpus(scale)
        .into_iter()
        .filter(|s| s.name.starts_with("rmat-small-") && s.num_edges == e)
        .collect()
}

/// The 70-graph Barabási–Albert sweep of Sec. IV-A: paper uses |V| = 1 M and
/// m ∈ {1..70}; we scale |V| and keep the m sweep so average degree still
/// spans 2..140.
pub fn ba_sweep(scale: Scale) -> Vec<(String, crate::ba::BarabasiAlbert)> {
    let num_vertices = (1_000_000usize >> scale.log2_factor()).max(256);
    (1..=70)
        .map(|m| {
            (
                format!("ba-v{num_vertices}-m{m}"),
                crate::ba::BarabasiAlbert::new(num_vertices, m, 0xBA5E + m as u64),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_corpus_has_297_specs() {
        for scale in [Scale::Tiny, Scale::Small] {
            let c = rmat_small_corpus(scale);
            assert_eq!(c.len(), 297, "scale {scale:?}");
        }
    }

    #[test]
    fn large_corpus_has_180_specs() {
        assert_eq!(rmat_large_corpus(Scale::Tiny).len(), 180);
    }

    #[test]
    fn specs_have_unique_names_and_seeds() {
        let c = rmat_small_corpus(Scale::Tiny);
        let names: std::collections::HashSet<_> = c.iter().map(|s| &s.name).collect();
        assert_eq!(names.len(), c.len());
        let seeds: std::collections::HashSet<_> = c.iter().map(|s| s.seed).collect();
        assert_eq!(seeds.len(), c.len());
    }

    #[test]
    fn mean_degree_ratios_preserved_on_unclamped_rows() {
        // Paper: E=160M, V=2^22 -> mean degree 2*160M/2^22 ≈ 76.3. Rows whose
        // vertex exponent stays above the clamp must preserve that ratio
        // exactly; the tiniest rows are allowed to deviate (documented clamp).
        let c = rmat_small_corpus(Scale::Small);
        let e = 160_000_000usize >> Scale::Small.log2_factor();
        let spec = c
            .iter()
            .find(|s| s.num_edges == e && s.num_vertices == 1 << (22 - 12))
            .expect("160M/2^22 row present");
        let paper_ratio = 2.0 * 160e6 / (1u64 << 22) as f64;
        let ours = 2.0 * spec.num_edges as f64 / spec.num_vertices as f64;
        assert!((ours / paper_ratio - 1.0).abs() < 0.05, "ratio ours={ours} paper={paper_ratio}");
    }

    #[test]
    fn tiny_spec_generates_quickly() {
        let c = rmat_small_corpus(Scale::Tiny);
        let g = c[0].generate();
        assert_eq!(g.num_edges(), c[0].num_edges);
    }

    #[test]
    fn fig6f_selects_the_160m_row() {
        let c = fig6f_corpus(Scale::Tiny);
        assert_eq!(c.len(), 6 * 9);
        let e = 160_000_000usize >> Scale::Tiny.log2_factor();
        assert!(c.iter().all(|s| s.num_edges == e));
    }

    #[test]
    fn ba_sweep_has_70_generators() {
        let s = ba_sweep(Scale::Tiny);
        assert_eq!(s.len(), 70);
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("TINY"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("paper"), None);
    }
}
