//! R-MAT recursive matrix graph generator (Chakrabarti et al., SDM 2004).
//!
//! The paper uses R-MAT (implementation of Khorasani et al.) as its training
//! graph generator because it is lightweight, scales well, and covers the
//! property space of real graphs. Partition probabilities `(a, b, c, d)`
//! recursively pick the adjacency-matrix quadrant of each edge; `a`/`d` act
//! as communities, `b`/`c` as inter-community edges. Table II of the paper
//! defines nine combinations C1..C9 (d fixed at 0.05) reproduced here in
//! [`RMAT_COMBOS`].

use ease_graph::{Edge, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// R-MAT quadrant probabilities. Must sum to 1 (checked on construction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    pub a: f64,
    pub b: f64,
    pub c: f64,
    pub d: f64,
}

impl RmatParams {
    pub fn new(a: f64, b: f64, c: f64, d: f64) -> Self {
        let sum = a + b + c + d;
        assert!((sum - 1.0).abs() < 1e-9, "R-MAT probabilities must sum to 1 (got {sum})");
        assert!(a >= 0.0 && b >= 0.0 && c >= 0.0 && d >= 0.0);
        RmatParams { a, b, c, d }
    }
}

/// The nine R-MAT parameter combinations C1..C9 of Table II
/// (`d` fixed at 0.05; `c` ∈ {0.34, 0.19}; `a`/`b` sweep skewness).
pub const RMAT_COMBOS: [RmatParams; 9] = [
    RmatParams { a: 0.35, b: 0.26, c: 0.34, d: 0.05 },
    RmatParams { a: 0.45, b: 0.16, c: 0.34, d: 0.05 },
    RmatParams { a: 0.55, b: 0.06, c: 0.34, d: 0.05 },
    RmatParams { a: 0.60, b: 0.01, c: 0.34, d: 0.05 },
    RmatParams { a: 0.40, b: 0.36, c: 0.19, d: 0.05 },
    RmatParams { a: 0.50, b: 0.26, c: 0.19, d: 0.05 },
    RmatParams { a: 0.60, b: 0.16, c: 0.19, d: 0.05 },
    RmatParams { a: 0.65, b: 0.11, c: 0.19, d: 0.05 },
    RmatParams { a: 0.70, b: 0.06, c: 0.19, d: 0.05 },
];

/// R-MAT generator configuration.
#[derive(Debug, Clone)]
pub struct Rmat {
    pub params: RmatParams,
    /// Number of vertices. Internally rounded up to the next power of two
    /// for the quadrant recursion; sampled ids are folded back with modulo.
    pub num_vertices: usize,
    pub num_edges: usize,
    /// Multiplicative noise on the quadrant probabilities per recursion
    /// level (smoothing parameter of Chakrabarti et al.; 0.1 ≈ realistic).
    pub noise: f64,
    pub seed: u64,
}

impl Rmat {
    pub fn new(params: RmatParams, num_vertices: usize, num_edges: usize, seed: u64) -> Self {
        Rmat { params, num_vertices, num_edges, noise: 0.1, seed }
    }

    /// Generate the directed multigraph (self-loops removed, parallel edges
    /// kept — streaming partitioners consume raw edge streams).
    pub fn generate(&self) -> Graph {
        let mut edges = Vec::with_capacity(self.num_edges);
        self.generate_into(&mut |e| edges.push(e));
        Graph::new(self.num_vertices, edges)
    }

    /// Stream the generated edges into `sink` without materializing the
    /// edge list — `ease gen` pipes this straight into a file writer, so
    /// arbitrarily large R-MAT graphs generate in constant memory. Emits
    /// exactly the edges (and order) of [`Rmat::generate`].
    pub fn generate_into(&self, sink: &mut dyn FnMut(Edge)) {
        assert!(self.num_vertices >= 2, "R-MAT needs at least 2 vertices");
        let levels = (usize::BITS - (self.num_vertices - 1).leading_zeros()) as usize;
        let levels = levels.max(1);
        let n = self.num_vertices as u64;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut emitted = 0usize;
        let RmatParams { a, b, c, d } = self.params;
        while emitted < self.num_edges {
            let (mut row, mut col) = (0u64, 0u64);
            for _ in 0..levels {
                // Perturb probabilities per level to avoid lattice artefacts.
                let na = a * (1.0 - self.noise + 2.0 * self.noise * rng.gen::<f64>());
                let nb = b * (1.0 - self.noise + 2.0 * self.noise * rng.gen::<f64>());
                let nc = c * (1.0 - self.noise + 2.0 * self.noise * rng.gen::<f64>());
                let nd = d * (1.0 - self.noise + 2.0 * self.noise * rng.gen::<f64>());
                let total = na + nb + nc + nd;
                let r = rng.gen::<f64>() * total;
                row <<= 1;
                col <<= 1;
                if r < na {
                    // quadrant a: (0,0)
                } else if r < na + nb {
                    col |= 1; // b: (0,1)
                } else if r < na + nb + nc {
                    row |= 1; // c: (1,0)
                } else {
                    row |= 1;
                    col |= 1; // d: (1,1)
                }
            }
            let src = (row % n) as u32;
            let dst = (col % n) as u32;
            if src != dst {
                sink(Edge::new(src, dst));
                emitted += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ease_graph::DegreeTable;

    #[test]
    fn combos_match_table_ii() {
        assert_eq!(RMAT_COMBOS.len(), 9);
        for p in RMAT_COMBOS {
            let sum = p.a + p.b + p.c + p.d;
            assert!((sum - 1.0).abs() < 1e-9, "{p:?}");
            assert!((p.d - 0.05).abs() < 1e-12);
        }
        // first four use c = 0.34, last five c = 0.19
        assert!(RMAT_COMBOS[..4].iter().all(|p| (p.c - 0.34).abs() < 1e-12));
        assert!(RMAT_COMBOS[4..].iter().all(|p| (p.c - 0.19).abs() < 1e-12));
    }

    #[test]
    fn generates_requested_edge_count() {
        let g = Rmat::new(RMAT_COMBOS[0], 1 << 10, 5_000, 7).generate();
        assert_eq!(g.num_edges(), 5_000);
        assert_eq!(g.num_vertices(), 1 << 10);
        assert!(g.edges().iter().all(|e| !e.is_loop()));
    }

    #[test]
    fn streamed_generation_is_bit_identical_to_materialized() {
        let r = Rmat::new(RMAT_COMBOS[4], 1 << 9, 3_000, 11);
        let materialized = r.generate();
        let mut streamed = Vec::new();
        r.generate_into(&mut |e| streamed.push(e));
        assert_eq!(streamed, materialized.edges());
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Rmat::new(RMAT_COMBOS[3], 512, 2_000, 42).generate();
        let b = Rmat::new(RMAT_COMBOS[3], 512, 2_000, 42).generate();
        assert_eq!(a.edges(), b.edges());
        let c = Rmat::new(RMAT_COMBOS[3], 512, 2_000, 43).generate();
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn skewed_params_make_skewed_degrees() {
        // C9 (a=0.70) should be much more skewed than C1 (a=0.35).
        let flat = Rmat::new(RMAT_COMBOS[0], 1 << 11, 20_000, 1).generate();
        let skew = Rmat::new(RMAT_COMBOS[8], 1 << 11, 20_000, 1).generate();
        let d_flat = DegreeTable::compute(&flat).out_moments;
        let d_skew = DegreeTable::compute(&skew).out_moments;
        assert!(d_skew.max > d_flat.max, "skewed max {} vs flat max {}", d_skew.max, d_flat.max);
    }

    #[test]
    fn non_power_of_two_vertex_counts_fold_in_range() {
        let g = Rmat::new(RMAT_COMBOS[5], 1_000, 3_000, 5).generate();
        assert_eq!(g.num_vertices(), 1_000);
        assert!(g.edges().iter().all(|e| (e.src as usize) < 1_000 && (e.dst as usize) < 1_000));
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn invalid_params_rejected() {
        let _ = RmatParams::new(0.5, 0.5, 0.5, 0.5);
    }
}
