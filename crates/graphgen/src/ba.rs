//! Barabási–Albert preferential attachment (Science 1999).
//!
//! Each new vertex attaches `m` edges to existing vertices with probability
//! proportional to their degree. The paper (Sec. IV-A) evaluated BA as a
//! training-data generator and found it *insufficiently flexible* — fixing
//! `m` pins the replication factor regardless of `|V|`, and BA cannot reach
//! the clustering levels of real graphs. We keep it to regenerate that
//! comparison (Fig. 6).

use ease_graph::{Edge, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Barabási–Albert generator: `n` vertices, `m` edges per new vertex.
#[derive(Debug, Clone)]
pub struct BarabasiAlbert {
    pub num_vertices: usize,
    pub edges_per_vertex: usize,
    pub seed: u64,
}

impl BarabasiAlbert {
    pub fn new(num_vertices: usize, edges_per_vertex: usize, seed: u64) -> Self {
        assert!(edges_per_vertex >= 1);
        assert!(num_vertices > edges_per_vertex, "need n > m");
        BarabasiAlbert { num_vertices, edges_per_vertex, seed }
    }

    /// Generate the graph. Degree-proportional sampling uses the classic
    /// repeated-endpoints trick: picking a uniform element of the endpoint
    /// list is exactly degree-biased.
    pub fn generate(&self) -> Graph {
        let (n, m) = (self.num_vertices, self.edges_per_vertex);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut edges: Vec<Edge> = Vec::with_capacity((n - m) * m);
        // endpoint pool: every endpoint of every edge, plus the seed clique.
        let mut pool: Vec<u32> = Vec::with_capacity(2 * n * m);
        // Seed: star over the first m+1 vertices (standard initialization).
        for v in 0..m as u32 {
            edges.push(Edge::new(m as u32, v));
            pool.push(m as u32);
            pool.push(v);
        }
        let mut targets = vec![u32::MAX; m];
        for v in (m + 1) as u32..n as u32 {
            // choose m distinct degree-biased targets
            let mut chosen = 0;
            let mut guard = 0;
            while chosen < m {
                let t = pool[rng.gen_range(0..pool.len())];
                guard += 1;
                if guard > 100 * m {
                    // fall back to uniform to guarantee termination on
                    // adversarial configurations
                    let t = rng.gen_range(0..v);
                    if !targets[..chosen].contains(&t) {
                        targets[chosen] = t;
                        chosen += 1;
                    }
                    continue;
                }
                if !targets[..chosen].contains(&t) {
                    targets[chosen] = t;
                    chosen += 1;
                }
            }
            for &t in &targets[..m] {
                edges.push(Edge::new(v, t));
                pool.push(v);
                pool.push(t);
            }
        }
        Graph::new(n, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ease_graph::DegreeTable;

    #[test]
    fn edge_count_formula() {
        let g = BarabasiAlbert::new(100, 3, 1).generate();
        // m seed edges + (n - m - 1) * m attachment edges
        assert_eq!(g.num_edges(), 3 + (100 - 3 - 1) * 3);
        assert_eq!(g.num_vertices(), 100);
    }

    #[test]
    fn deterministic() {
        let a = BarabasiAlbert::new(200, 2, 9).generate();
        let b = BarabasiAlbert::new(200, 2, 9).generate();
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn no_self_loops_no_duplicate_targets() {
        let g = BarabasiAlbert::new(300, 4, 3).generate();
        assert!(g.edges().iter().all(|e| !e.is_loop()));
        // Each new vertex's m targets are distinct: count (src,dst) dupes.
        let mut seen = std::collections::HashSet::new();
        for e in g.edges() {
            assert!(seen.insert((e.src, e.dst)), "duplicate edge {e:?}");
        }
    }

    #[test]
    fn heavy_tail_degree_distribution() {
        let g = BarabasiAlbert::new(2_000, 2, 11).generate();
        let t = DegreeTable::compute(&g);
        // PA yields hubs: max degree far above the mean.
        assert!(f64::from(t.total_moments.max) > 8.0 * t.mean_degree());
    }

    #[test]
    fn average_degree_tracks_2m() {
        let g = BarabasiAlbert::new(5_000, 7, 5).generate();
        let t = DegreeTable::compute(&g);
        assert!((t.mean_degree() - 14.0).abs() < 1.0, "mean={}", t.mean_degree());
    }
}
