//! Watts–Strogatz small-world model (Nature 1998).
//!
//! Ring lattice of `n` vertices each linked to its `k` nearest neighbors,
//! with every edge rewired to a uniform random endpoint with probability
//! `p_rewire`. Produces high clustering with narrow, nearly regular degree
//! distributions — the recipe for the *product network* (co-purchase)
//! analogues in the real-world library.

use ease_graph::{Edge, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone)]
pub struct WattsStrogatz {
    pub num_vertices: usize,
    /// Each vertex connects to `k` nearest ring neighbors (k even).
    pub k: usize,
    pub p_rewire: f64,
    pub seed: u64,
}

impl WattsStrogatz {
    pub fn new(num_vertices: usize, k: usize, p_rewire: f64, seed: u64) -> Self {
        assert!(k.is_multiple_of(2) && k >= 2, "k must be even and >= 2");
        assert!(num_vertices > k, "need n > k");
        assert!((0.0..=1.0).contains(&p_rewire));
        WattsStrogatz { num_vertices, k, p_rewire, seed }
    }

    pub fn generate(&self) -> Graph {
        let n = self.num_vertices;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut edges = Vec::with_capacity(n * self.k / 2);
        for v in 0..n {
            for j in 1..=self.k / 2 {
                let mut u = (v + j) % n;
                if rng.gen::<f64>() < self.p_rewire {
                    // rewire the far endpoint, avoiding self-loops
                    loop {
                        let cand = rng.gen_range(0..n);
                        if cand != v {
                            u = cand;
                            break;
                        }
                    }
                }
                edges.push(Edge::new(v as u32, u as u32));
            }
        }
        Graph::new(n, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ease_graph::{triangles, DegreeTable};

    #[test]
    fn lattice_edge_count() {
        let g = WattsStrogatz::new(100, 4, 0.0, 1).generate();
        assert_eq!(g.num_edges(), 100 * 2);
    }

    #[test]
    fn zero_rewire_is_clustered_lattice() {
        let g = WattsStrogatz::new(500, 6, 0.0, 1).generate();
        // k=6 ring lattice has LCC = 0.6 exactly
        let c = triangles::avg_local_clustering(&g);
        assert!((c - 0.6).abs() < 0.01, "c={c}");
    }

    #[test]
    fn heavy_rewire_destroys_clustering() {
        let lat = WattsStrogatz::new(800, 6, 0.0, 2).generate();
        let rnd = WattsStrogatz::new(800, 6, 1.0, 2).generate();
        assert!(
            triangles::avg_local_clustering(&rnd) < 0.2 * triangles::avg_local_clustering(&lat)
        );
    }

    #[test]
    fn degree_distribution_is_narrow() {
        let g = WattsStrogatz::new(1_000, 8, 0.1, 3).generate();
        let t = DegreeTable::compute(&g);
        assert!(f64::from(t.total_moments.max) < 3.0 * t.mean_degree());
    }

    #[test]
    fn deterministic() {
        let a = WattsStrogatz::new(128, 4, 0.3, 9).generate();
        let b = WattsStrogatz::new(128, 4, 0.3, 9).generate();
        assert_eq!(a.edges(), b.edges());
    }
}
