//! Holme–Kim model: preferential attachment with tunable clustering
//! (Phys. Rev. E 65, 026107).
//!
//! BA cannot produce the high clustering of real social/collaboration
//! networks. Holme–Kim interleaves *triad-formation* steps: after a
//! preferential-attachment step to target `t`, with probability `p_triad`
//! the next edge goes to a random neighbor of `t`, closing a triangle.
//! Social-network analogues in the real-world library use this model.

use ease_graph::{Edge, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone)]
pub struct HolmeKim {
    pub num_vertices: usize,
    pub edges_per_vertex: usize,
    /// Probability of a triad-formation step after each PA step.
    pub p_triad: f64,
    pub seed: u64,
}

impl HolmeKim {
    pub fn new(num_vertices: usize, edges_per_vertex: usize, p_triad: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p_triad));
        assert!(num_vertices > edges_per_vertex && edges_per_vertex >= 1);
        HolmeKim { num_vertices, edges_per_vertex, p_triad, seed }
    }

    pub fn generate(&self) -> Graph {
        let (n, m) = (self.num_vertices, self.edges_per_vertex);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut edges: Vec<Edge> = Vec::with_capacity(n * m);
        let mut pool: Vec<u32> = Vec::with_capacity(2 * n * m);
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        let link = |edges: &mut Vec<Edge>,
                    pool: &mut Vec<u32>,
                    adj: &mut Vec<Vec<u32>>,
                    u: u32,
                    v: u32| {
            edges.push(Edge::new(u, v));
            pool.push(u);
            pool.push(v);
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        };
        for v in 0..m as u32 {
            link(&mut edges, &mut pool, &mut adj, m as u32, v);
        }
        for v in (m + 1) as u32..n as u32 {
            let mut connected: Vec<u32> = Vec::with_capacity(m);
            let mut last_target: Option<u32> = None;
            while connected.len() < m {
                let use_triad = last_target.is_some() && rng.gen::<f64>() < self.p_triad;
                let candidate = if use_triad {
                    let t = last_target.unwrap();
                    let nbrs = &adj[t as usize];
                    nbrs[rng.gen_range(0..nbrs.len())]
                } else {
                    pool[rng.gen_range(0..pool.len())]
                };
                if candidate != v && !connected.contains(&candidate) {
                    link(&mut edges, &mut pool, &mut adj, v, candidate);
                    connected.push(candidate);
                    last_target = Some(candidate);
                } else if use_triad {
                    // triad failed (duplicate); fall back to PA next round
                    last_target = None;
                }
            }
        }
        Graph::new(n, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ease_graph::triangles;

    #[test]
    fn produces_expected_edge_count() {
        let g = HolmeKim::new(200, 3, 0.8, 2).generate();
        assert_eq!(g.num_edges(), 3 + (200 - 4) * 3);
    }

    #[test]
    fn triad_probability_raises_clustering() {
        let low = HolmeKim::new(1_500, 3, 0.0, 7).generate();
        let high = HolmeKim::new(1_500, 3, 0.95, 7).generate();
        let c_low = triangles::avg_local_clustering(&low);
        let c_high = triangles::avg_local_clustering(&high);
        assert!(c_high > 2.0 * c_low, "clustering low={c_low:.4} high={c_high:.4}");
    }

    #[test]
    fn deterministic() {
        let a = HolmeKim::new(300, 2, 0.5, 13).generate();
        let b = HolmeKim::new(300, 2, 0.5, 13).generate();
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn simple_graph_per_new_vertex() {
        let g = HolmeKim::new(400, 4, 0.6, 5).generate();
        assert!(g.edges().iter().all(|e| !e.is_loop()));
    }
}
