//! The synthetic "real-world" test library (substitution for the paper's
//! 175 downloaded graphs — DESIGN.md §2.3).
//!
//! The paper's generalization study trains on R-MAT graphs and tests on nine
//! types of real graphs. The scientific requirement is *distribution shift*:
//! test graphs must come from structurally different families than the
//! training grid. We therefore generate each type with a different model:
//!
//! | type            | count | generator family                                   |
//! |-----------------|-------|----------------------------------------------------|
//! | affiliation     | 12    | bipartite membership ([`crate::affiliation`])      |
//! | citation        | 3     | acyclic copying model ([`crate::copying`])         |
//! | collaboration   | 6     | planted communities + triadic closure              |
//! | interaction     | 5     | Chung–Lu, moderate tail                            |
//! | internet        | 5     | Chung–Lu, heavy tail (γ ≈ 2)                       |
//! | product_network | 1     | Watts–Strogatz small world                         |
//! | soc             | 31    | Holme–Kim (PA + triad formation)                   |
//! | web             | 12    | Kronecker 3×3 + low-β copying (clustered cores)    |
//! | wiki            | 101   | high-β copying (hubs, low clustering)              |
//!
//! 5 wiki graphs belong to the standard test set; the remaining 96 form the
//! enrichment pool of Sec. V-D, matching the paper's split exactly.
//! (The paper's prose says "175" graphs but its own per-type counts sum to
//! 176, and 176 − 96 = 80 matches its stated 80-graph test set — we follow
//! the per-type counts.)
//! Also provides the Table IV analogues (7 larger graphs for the
//! time-predictor test set) and the Fig. 1/2 showcase analogues.

use crate::affiliation::Affiliation;
use crate::chung_lu::ChungLu;
use crate::community::CommunityGraph;
use crate::copying::CopyingModel;
use crate::grids::Scale;
use crate::holme_kim::HolmeKim;
use crate::kronecker::Kronecker;
use crate::rmat::{Rmat, RmatParams};
use crate::watts_strogatz::WattsStrogatz;
use ease_graph::hash::SplitMix64;
use ease_graph::Graph;

/// The nine graph types of the paper's test set (Sec. V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GraphType {
    Affiliation,
    Citation,
    Collaboration,
    Interaction,
    Internet,
    ProductNetwork,
    Social,
    Web,
    Wiki,
}

impl GraphType {
    pub const ALL: [GraphType; 9] = [
        GraphType::Affiliation,
        GraphType::Citation,
        GraphType::Collaboration,
        GraphType::Interaction,
        GraphType::Internet,
        GraphType::ProductNetwork,
        GraphType::Social,
        GraphType::Web,
        GraphType::Wiki,
    ];

    /// Name as printed in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            GraphType::Affiliation => "affiliation",
            GraphType::Citation => "citation",
            GraphType::Collaboration => "collaboration",
            GraphType::Interaction => "interaction",
            GraphType::Internet => "internet",
            GraphType::ProductNetwork => "product_network",
            GraphType::Social => "soc",
            GraphType::Web => "web",
            GraphType::Wiki => "wiki",
        }
    }

    /// Number of graphs of this type in the paper's test set.
    pub fn paper_count(self) -> usize {
        match self {
            GraphType::Affiliation => 12,
            GraphType::Citation => 3,
            GraphType::Collaboration => 6,
            GraphType::Interaction => 5,
            GraphType::Internet => 5,
            GraphType::ProductNetwork => 1,
            GraphType::Social => 31,
            GraphType::Web => 12,
            GraphType::Wiki => 101,
        }
    }
}

/// A named test graph with its type label.
#[derive(Debug, Clone)]
pub struct TestGraph {
    pub name: String,
    pub graph_type: GraphType,
    pub graph: Graph,
}

/// Per-scale edge budget range for library graphs (log-uniform draw).
fn edge_range(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Tiny => (400, 3_000),
        Scale::Small => (2_000, 24_000),
        Scale::Medium => (8_000, 96_000),
    }
}

fn log_uniform(rng: &mut SplitMix64, lo: usize, hi: usize) -> usize {
    let (l, h) = ((lo as f64).ln(), (hi as f64).ln());
    (l + rng.next_f64() * (h - l)).exp() as usize
}

/// Generate one graph of the given type. `idx` individualizes parameters so
/// graphs of a type differ in size, density and internal structure.
pub fn generate_typed(graph_type: GraphType, idx: usize, scale: Scale, seed: u64) -> TestGraph {
    let mut rng = SplitMix64::new(seed ^ (idx as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
    let (lo, hi) = edge_range(scale);
    let m_edges = log_uniform(&mut rng, lo, hi);
    let gseed = rng.next_u64();
    let graph = match graph_type {
        GraphType::Affiliation => {
            let mean_memberships = 2.0 + rng.next_f64() * 4.0;
            let actors = ((m_edges as f64 / mean_memberships) as usize).max(16);
            let groups = (actors / (5 + rng.next_below(25))).max(4);
            Affiliation::new(actors, groups, mean_memberships, gseed).generate()
        }
        GraphType::Citation => {
            let d = 5 + rng.next_below(15);
            let n = (m_edges / d).max(d + 2);
            CopyingModel::new(n, d, 0.3 + rng.next_f64() * 0.4, gseed).acyclic().generate()
        }
        GraphType::Collaboration => {
            if idx.is_multiple_of(2) {
                let mixing = 0.03 + rng.next_f64() * 0.12;
                let n = (m_edges / (6 + rng.next_below(10))).max(64);
                CommunityGraph::new(n, m_edges, mixing, gseed).generate()
            } else {
                let m = 4 + rng.next_below(8);
                let n = (m_edges / m).max(m + 2);
                HolmeKim::new(n, m, 0.7 + rng.next_f64() * 0.25, gseed).generate()
            }
        }
        GraphType::Interaction => {
            let n = (m_edges / (3 + rng.next_below(8))).max(32);
            ChungLu::new(n, m_edges, 2.4 + rng.next_f64() * 0.6, gseed).generate()
        }
        GraphType::Internet => {
            let n = (m_edges / (2 + rng.next_below(4))).max(32);
            ChungLu::new(n, m_edges, 1.95 + rng.next_f64() * 0.25, gseed).generate()
        }
        GraphType::ProductNetwork => {
            let k = 2 * (3 + rng.next_below(3));
            let n = (m_edges * 2 / k).max(k + 2);
            WattsStrogatz::new(n, k, 0.05 + rng.next_f64() * 0.15, gseed).generate()
        }
        GraphType::Social => {
            let m = 3 + rng.next_below(12);
            let n = (m_edges / m).max(m + 2);
            HolmeKim::new(n, m, 0.3 + rng.next_f64() * 0.4, gseed).generate()
        }
        GraphType::Web => {
            if idx.is_multiple_of(2) {
                let n = (m_edges / (8 + rng.next_below(12))).max(32);
                Kronecker::web_like(n, m_edges, gseed).generate()
            } else {
                let d = 8 + rng.next_below(12);
                let n = (m_edges / d).max(d + 2);
                CopyingModel::new(n, d, 0.1 + rng.next_f64() * 0.2, gseed).generate()
            }
        }
        GraphType::Wiki => {
            let d = 6 + rng.next_below(18);
            let n = (m_edges / d).max(d + 2);
            CopyingModel::new(n, d, 0.5 + rng.next_f64() * 0.3, gseed).generate()
        }
    };
    TestGraph { name: format!("{}-{:03}", graph_type.name(), idx), graph_type, graph }
}

/// The full 176-graph library with the paper's per-type counts.
pub fn full_library(scale: Scale, seed: u64) -> Vec<TestGraph> {
    let mut out = Vec::with_capacity(176);
    for t in GraphType::ALL {
        for idx in 0..t.paper_count() {
            out.push(generate_typed(t, idx, scale, seed ^ type_salt(t)));
        }
    }
    out
}

/// The standard test set: all graphs except 96 of the 101 wiki graphs
/// (paper Sec. V-B keeps 5 wikis in the test set).
pub fn standard_test_set(scale: Scale, seed: u64) -> Vec<TestGraph> {
    full_library(scale, seed)
        .into_iter()
        .filter(|g| g.graph_type != GraphType::Wiki || wiki_index(&g.name) < 5)
        .collect()
}

/// The 96-graph wiki enrichment pool of Sec. V-D.
pub fn wiki_enrichment_pool(scale: Scale, seed: u64) -> Vec<TestGraph> {
    full_library(scale, seed)
        .into_iter()
        .filter(|g| g.graph_type == GraphType::Wiki && wiki_index(&g.name) >= 5)
        .collect()
}

fn wiki_index(name: &str) -> usize {
    name.rsplit('-').next().and_then(|s| s.parse().ok()).unwrap_or(0)
}

fn type_salt(t: GraphType) -> u64 {
    ease_graph::hash::mix64(t.name().len() as u64 ^ t.name().as_bytes()[0] as u64)
}

/// Table IV analogues: the 7 larger real-world graphs used as the test set
/// for PartitioningTimePredictor and ProcessingTimePredictor. Paper sizes
/// (117 M – 581 M edges) are divided by `2^log2_factor`, shapes match the
/// original domains.
pub fn table4_test_set(scale: Scale, seed: u64) -> Vec<TestGraph> {
    let f = scale.log2_factor();
    let e = |paper_m: f64| ((paper_m * 1e6) as usize >> f).max(2_000);
    let v = |paper_m: f64| ((paper_m * 1e6) as usize >> f).max(128);
    let mut rng = SplitMix64::new(seed ^ 0x7AB4);
    let mut s = || rng.next_u64();
    vec![
        TestGraph {
            name: "com-orkut-analogue".into(),
            graph_type: GraphType::Social,
            graph: HolmeKim::new(v(3.1), (e(117.2) / v(3.1)).max(2), 0.45, s()).generate(),
        },
        TestGraph {
            name: "enwiki-2021-analogue".into(),
            graph_type: GraphType::Wiki,
            graph: CopyingModel::new(v(6.3), (e(150.1) / v(6.3)).max(2), 0.6, s()).generate(),
        },
        TestGraph {
            name: "eu-2015-tpd-analogue".into(),
            graph_type: GraphType::Web,
            graph: Kronecker::web_like(v(6.7), e(165.7), s()).generate(),
        },
        TestGraph {
            name: "hollywood-2011-analogue".into(),
            graph_type: GraphType::Collaboration,
            graph: CommunityGraph::new(v(2.0), e(229.0), 0.08, s()).generate(),
        },
        TestGraph {
            name: "orkut-groupmemberships-analogue".into(),
            graph_type: GraphType::Affiliation,
            graph: Affiliation::new(
                v(8.7),
                v(8.7) / 12,
                (e(327.0) as f64 / v(8.7) as f64).max(1.5),
                s(),
            )
            .generate(),
        },
        TestGraph {
            name: "eu-2015-host-analogue".into(),
            graph_type: GraphType::Web,
            graph: CopyingModel::new(v(11.3), (e(379.7) / v(11.3)).max(2), 0.2, s()).generate(),
        },
        TestGraph {
            name: "gsh-2015-tpd-analogue".into(),
            graph_type: GraphType::Web,
            graph: Kronecker::web_like(v(30.8), e(581.2), s()).generate(),
        },
    ]
}

/// Fig. 1 showcase: Friendster analogue — social graph with high skew and
/// low clustering where streaming partitioners struggle (2PS ≈ 2D).
pub fn friendster_analogue(scale: Scale, seed: u64) -> TestGraph {
    let f = scale.log2_factor();
    let edges = (1_800_000_000usize >> f).max(20_000);
    let vertices = (66_000_000usize >> f).max(1_024);
    TestGraph {
        name: "friendster-analogue".into(),
        graph_type: GraphType::Social,
        graph: Rmat::new(RmatParams::new(0.57, 0.19, 0.19, 0.05), vertices, edges, seed).generate(),
    }
}

/// Fig. 1 showcase: sk-2005 analogue — web crawl with strong community
/// structure where stateful streaming (2PS) approaches in-memory quality.
/// Communities are host-sized (small relative to |E|/k), which is exactly
/// what lets 2PS's volume-capped clustering recover them.
pub fn sk2005_analogue(scale: Scale, seed: u64) -> TestGraph {
    let f = scale.log2_factor();
    let edges = (1_900_000_000usize >> f).max(20_000);
    let vertices = (51_000_000usize >> f).max(1_024);
    let host_size = (vertices / 128).clamp(8, 48);
    TestGraph {
        name: "sk-2005-analogue".into(),
        graph_type: GraphType::Web,
        graph: CommunityGraph::new(vertices, edges, 0.03, seed)
            .with_max_community(host_size)
            .generate(),
    }
}

/// Fig. 2 showcase: Socfb-A-anon analogue — 3.1 M vertices / 24 M edges
/// social network, scaled.
pub fn socfb_analogue(scale: Scale, seed: u64) -> TestGraph {
    let f = scale.log2_factor();
    let edges = (24_000_000usize >> f).max(12_000);
    let vertices = (3_100_000usize >> f).max(1_536);
    let m = (edges / vertices).max(2);
    TestGraph {
        name: "socfb-a-anon-analogue".into(),
        graph_type: GraphType::Social,
        graph: HolmeKim::new(vertices, m, 0.5, seed).generate(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_counts_sum_to_176() {
        // The paper's per-type counts sum to 176 (its "175" is a typo:
        // 176 - 96 enrichment wikis = the 80-graph test set it reports).
        let total: usize = GraphType::ALL.iter().map(|t| t.paper_count()).sum();
        assert_eq!(total, 176);
    }

    #[test]
    fn full_library_has_176_graphs() {
        let lib = full_library(Scale::Tiny, 1);
        assert_eq!(lib.len(), 176);
        // every type present with its paper count
        for t in GraphType::ALL {
            let n = lib.iter().filter(|g| g.graph_type == t).count();
            assert_eq!(n, t.paper_count(), "{t:?}");
        }
    }

    #[test]
    fn standard_test_set_keeps_5_wikis() {
        let test = standard_test_set(Scale::Tiny, 1);
        assert_eq!(test.len(), 80);
        assert_eq!(test.iter().filter(|g| g.graph_type == GraphType::Wiki).count(), 5);
    }

    #[test]
    fn enrichment_pool_has_96_wikis() {
        let pool = wiki_enrichment_pool(Scale::Tiny, 1);
        assert_eq!(pool.len(), 96);
        assert!(pool.iter().all(|g| g.graph_type == GraphType::Wiki));
    }

    #[test]
    fn library_is_deterministic() {
        let a = full_library(Scale::Tiny, 7);
        let b = full_library(Scale::Tiny, 7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.graph.edges(), y.graph.edges(), "{}", x.name);
        }
    }

    #[test]
    fn graphs_are_nonempty_and_in_range() {
        for g in standard_test_set(Scale::Tiny, 3) {
            assert!(g.graph.num_edges() > 0, "{}", g.name);
            assert!(g.graph.num_vertices() > 1, "{}", g.name);
        }
    }

    #[test]
    fn table4_set_sizes_ordered_like_paper() {
        let t4 = table4_test_set(Scale::Tiny, 1);
        assert_eq!(t4.len(), 7);
        // Last (gsh-2015-tpd) has the most edges in the paper.
        let first = t4.first().unwrap().graph.num_edges();
        let last = t4.last().unwrap().graph.num_edges();
        assert!(last > first, "first={first} last={last}");
    }

    #[test]
    fn showcase_analogues_generate() {
        let fr = friendster_analogue(Scale::Tiny, 1);
        let sk = sk2005_analogue(Scale::Tiny, 1);
        let fb = socfb_analogue(Scale::Tiny, 1);
        assert!(fr.graph.num_edges() >= 20_000);
        assert!(sk.graph.num_edges() >= 20_000);
        assert!(fb.graph.num_edges() >= 1_000);
    }
}
