//! Planted-community graphs with power-law community sizes (LFR-flavoured).
//!
//! Vertices are assigned to communities whose sizes follow a truncated
//! power law; a fraction `mixing` of each edge's endpoints crosses
//! community boundaries, the rest stay internal. Internal edges make the
//! graph highly clustered and easily partitionable — the structure of
//! collaboration networks (co-authorship cliques) in the real-world library.

use ease_graph::{Edge, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone)]
pub struct CommunityGraph {
    pub num_vertices: usize,
    pub num_edges: usize,
    /// Fraction of inter-community edges (LFR mixing parameter μ).
    pub mixing: f64,
    /// Power-law exponent of community sizes.
    pub size_exponent: f64,
    /// Minimum community size.
    pub min_community: usize,
    /// Maximum community size (None = |V|/4). Web crawls have host-sized
    /// communities much smaller than |V|; see `realworld::sk2005_analogue`.
    pub max_community: Option<usize>,
    pub seed: u64,
}

impl CommunityGraph {
    pub fn new(num_vertices: usize, num_edges: usize, mixing: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&mixing));
        CommunityGraph {
            num_vertices,
            num_edges,
            mixing,
            size_exponent: 2.0,
            min_community: 8,
            max_community: None,
            seed,
        }
    }

    /// Cap community sizes (builder style).
    pub fn with_max_community(mut self, max: usize) -> Self {
        self.max_community = Some(max);
        self
    }

    /// Draw community sizes until the vertex budget is exhausted.
    fn community_sizes(&self, rng: &mut StdRng) -> Vec<usize> {
        let max_community =
            self.max_community.unwrap_or(self.num_vertices / 4).max(self.min_community + 1);
        let mut sizes = Vec::new();
        let mut used = 0usize;
        while used < self.num_vertices {
            // inverse-transform sample of a truncated power law
            let u = rng.gen::<f64>();
            let a = 1.0 - self.size_exponent;
            let lo = (self.min_community as f64).powf(a);
            let hi = (max_community as f64).powf(a);
            let s = ((lo + u * (hi - lo)).powf(1.0 / a)).round() as usize;
            let s = s.clamp(self.min_community, max_community).min(self.num_vertices - used);
            sizes.push(s);
            used += s;
        }
        sizes
    }

    pub fn generate(&self) -> Graph {
        assert!(self.num_vertices >= 2 * self.min_community);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let sizes = self.community_sizes(&mut rng);
        // community membership: vertex id ranges [start, start+size)
        let mut starts = Vec::with_capacity(sizes.len());
        let mut acc = 0usize;
        for &s in &sizes {
            starts.push(acc);
            acc += s;
        }
        let mut edges = Vec::with_capacity(self.num_edges);
        let n = self.num_vertices;
        // Edge mass per community proportional to size (so degree is roughly
        // uniform across communities).
        while edges.len() < self.num_edges {
            // pick a community weighted by size via uniform vertex pick
            let v = rng.gen_range(0..n);
            let ci = starts.partition_point(|&s| s <= v) - 1;
            let (cs, cl) = (starts[ci], sizes[ci]);
            let src = v as u32;
            let dst = if rng.gen::<f64>() < self.mixing || cl < 2 {
                rng.gen_range(0..n) as u32
            } else {
                (cs + rng.gen_range(0..cl)) as u32
            };
            if src != dst {
                edges.push(Edge::new(src, dst));
            }
        }
        let mut g = Graph::new(n, edges);
        // shuffle ids so communities are not contiguous ranges
        use rand::seq::SliceRandom;
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.shuffle(&mut rng);
        g.relabel(&perm);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ease_graph::triangles;

    #[test]
    fn exact_edge_count() {
        let g = CommunityGraph::new(1_000, 5_000, 0.1, 1).generate();
        assert_eq!(g.num_edges(), 5_000);
        assert!(g.edges().iter().all(|e| !e.is_loop()));
    }

    #[test]
    fn low_mixing_is_more_clustered() {
        let tight = CommunityGraph::new(2_000, 16_000, 0.05, 3).generate();
        let loose = CommunityGraph::new(2_000, 16_000, 0.9, 3).generate();
        let ct = triangles::avg_local_clustering(&tight);
        let cl = triangles::avg_local_clustering(&loose);
        assert!(ct > 2.0 * cl, "tight={ct:.4} loose={cl:.4}");
    }

    #[test]
    fn deterministic() {
        let a = CommunityGraph::new(300, 1_200, 0.2, 5).generate();
        let b = CommunityGraph::new(300, 1_200, 0.2, 5).generate();
        assert_eq!(a.edges(), b.edges());
    }
}
