//! Stochastic Kronecker graphs (Leskovec et al., PKDD 2005).
//!
//! Generalizes R-MAT to arbitrary square initiator matrices: the adjacency
//! probability matrix is the `levels`-fold Kronecker power of the initiator.
//! With a 3×3 initiator the recursion explores a *different* self-similar
//! family than the 2×2 R-MAT grid used for training, which is exactly what
//! the real-world library wants for web-like test graphs.

use ease_graph::{Edge, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone)]
pub struct Kronecker {
    /// Row-major square initiator matrix of edge-mass weights
    /// (normalized internally).
    pub initiator: Vec<f64>,
    /// Side length of the initiator.
    pub base: usize,
    /// Number of Kronecker levels; vertex universe = base^levels.
    pub levels: usize,
    pub num_edges: usize,
    /// Final vertex count (≤ base^levels; sampled ids folded by modulo).
    pub num_vertices: usize,
    pub seed: u64,
}

impl Kronecker {
    /// A web-like 3×3 initiator: strong core, sizeable periphery, weak
    /// cross links.
    pub fn web_like(num_vertices: usize, num_edges: usize, seed: u64) -> Self {
        Kronecker {
            initiator: vec![0.42, 0.19, 0.05, 0.13, 0.08, 0.02, 0.05, 0.04, 0.02],
            base: 3,
            levels: levels_for(3, num_vertices),
            num_edges,
            num_vertices,
            seed,
        }
    }

    pub fn generate(&self) -> Graph {
        assert_eq!(self.initiator.len(), self.base * self.base);
        let total: f64 = self.initiator.iter().sum();
        assert!(total > 0.0);
        // cumulative cell distribution
        let mut cdf = Vec::with_capacity(self.initiator.len());
        let mut acc = 0.0;
        for &w in &self.initiator {
            acc += w;
            cdf.push(acc / total);
        }
        let n = self.num_vertices as u64;
        assert!(n >= 2);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut edges = Vec::with_capacity(self.num_edges);
        while edges.len() < self.num_edges {
            let (mut row, mut col) = (0u64, 0u64);
            for _ in 0..self.levels {
                let r = rng.gen::<f64>();
                let cell = cdf.partition_point(|&c| c < r).min(cdf.len() - 1);
                row = row * self.base as u64 + (cell / self.base) as u64;
                col = col * self.base as u64 + (cell % self.base) as u64;
            }
            let src = (row % n) as u32;
            let dst = (col % n) as u32;
            if src != dst {
                edges.push(Edge::new(src, dst));
            }
        }
        Graph::new(self.num_vertices, edges)
    }
}

fn levels_for(base: usize, num_vertices: usize) -> usize {
    let mut levels = 1;
    let mut cap = base;
    while cap < num_vertices {
        cap *= base;
        levels += 1;
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use ease_graph::DegreeTable;

    #[test]
    fn levels_cover_vertex_universe() {
        assert_eq!(levels_for(3, 3), 1);
        assert_eq!(levels_for(3, 4), 2);
        assert_eq!(levels_for(3, 27), 3);
        assert_eq!(levels_for(3, 28), 4);
    }

    #[test]
    fn generates_requested_edges_in_range() {
        let g = Kronecker::web_like(1_000, 5_000, 1).generate();
        assert_eq!(g.num_edges(), 5_000);
        assert!(g.edges().iter().all(|e| (e.src as usize) < 1_000 && (e.dst as usize) < 1_000));
    }

    #[test]
    fn deterministic() {
        let a = Kronecker::web_like(500, 2_000, 3).generate();
        let b = Kronecker::web_like(500, 2_000, 3).generate();
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn core_cell_dominance_creates_skew() {
        let g = Kronecker::web_like(2_187, 20_000, 5).generate();
        let t = DegreeTable::compute(&g);
        assert!(f64::from(t.total_moments.max) > 4.0 * t.mean_degree());
    }
}
