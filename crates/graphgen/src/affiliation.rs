//! Bipartite affiliation graphs (actor–movie / member–group style).
//!
//! The paper's *affiliation* test graphs (KONECT) are bipartite membership
//! networks. We generate them directly: `num_actors` left vertices join
//! groups whose popularity follows a power law; each actor joins a
//! Poisson-ish number of groups. Vertex universe = actors ++ groups,
//! edges actor → group.

use ease_graph::{Edge, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone)]
pub struct Affiliation {
    pub num_actors: usize,
    pub num_groups: usize,
    /// Mean memberships per actor.
    pub mean_memberships: f64,
    /// Power-law exponent of group popularity.
    pub popularity_exponent: f64,
    pub seed: u64,
}

impl Affiliation {
    pub fn new(num_actors: usize, num_groups: usize, mean_memberships: f64, seed: u64) -> Self {
        assert!(num_actors >= 1 && num_groups >= 1);
        assert!(mean_memberships >= 1.0);
        Affiliation { num_actors, num_groups, mean_memberships, popularity_exponent: 2.0, seed }
    }

    pub fn generate(&self) -> Graph {
        let mut rng = StdRng::seed_from_u64(self.seed);
        // group popularity weights (Zipf-ish) and cdf
        let gamma = 1.0 / (self.popularity_exponent - 1.0);
        let mut cdf = Vec::with_capacity(self.num_groups);
        let mut acc = 0.0;
        for i in 0..self.num_groups {
            acc += ((i + 1) as f64).powf(-gamma);
            cdf.push(acc);
        }
        let total = acc;
        let n = self.num_actors + self.num_groups;
        let mut edges =
            Vec::with_capacity((self.num_actors as f64 * self.mean_memberships) as usize);
        for actor in 0..self.num_actors {
            // geometric-ish membership count with the requested mean ≥ 1
            let mut memberships = 1usize;
            while rng.gen::<f64>() < 1.0 - 1.0 / self.mean_memberships {
                memberships += 1;
                if memberships > 50 {
                    break;
                }
            }
            for _ in 0..memberships {
                let r = rng.gen::<f64>() * total;
                let group = cdf.partition_point(|&c| c < r).min(self.num_groups - 1);
                edges.push(Edge::new(actor as u32, (self.num_actors + group) as u32));
            }
        }
        Graph::new(n, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ease_graph::{triangles, DegreeTable};

    #[test]
    fn edges_are_strictly_bipartite() {
        let a = Affiliation::new(500, 50, 3.0, 1);
        let g = a.generate();
        assert!(g.edges().iter().all(|e| (e.src as usize) < 500 && (e.dst as usize) >= 500));
    }

    #[test]
    fn bipartite_graphs_have_no_triangles() {
        let g = Affiliation::new(400, 40, 2.5, 2).generate();
        assert_eq!(triangles::avg_triangles(&g), 0.0);
    }

    #[test]
    fn popular_groups_become_hubs() {
        let g = Affiliation::new(2_000, 100, 3.0, 3).generate();
        let t = DegreeTable::compute(&g);
        assert!(f64::from(t.in_moments.max) > 10.0 * t.mean_degree());
    }

    #[test]
    fn mean_memberships_close_to_requested() {
        let g = Affiliation::new(5_000, 200, 4.0, 4).generate();
        let per_actor = g.num_edges() as f64 / 5_000.0;
        assert!((per_actor - 4.0).abs() < 0.5, "per_actor={per_actor}");
    }

    #[test]
    fn deterministic() {
        let a = Affiliation::new(100, 10, 2.0, 7).generate();
        let b = Affiliation::new(100, 10, 2.0, 7).generate();
        assert_eq!(a.edges(), b.edges());
    }
}
