//! Synthetic graph generators for the EASE reproduction.
//!
//! Two roles:
//!
//! 1. **Training-data acquisition** (paper Sec. IV-A): the R-MAT generator
//!    with the nine parameter combinations of Table II and the (V, E) grids
//!    of Tables Ia/Ib (scaled ~1000× down, grid structure preserved —
//!    see DESIGN.md §2.5), plus Barabási–Albert for the Fig. 6 comparison.
//! 2. **Real-world test library** (substitution, DESIGN.md §2.3): the paper
//!    evaluates on 175 downloaded real graphs of nine types; this crate
//!    synthesizes an analogous library with *different generator families*
//!    than the R-MAT training distribution, reproducing the train/test
//!    distribution shift that the paper's generalization study depends on.
//!
//! All generators are deterministic given a seed.

pub mod affiliation;
pub mod ba;
pub mod chung_lu;
pub mod community;
pub mod copying;
pub mod erdos_renyi;
pub mod grids;
pub mod holme_kim;
pub mod kronecker;
pub mod realworld;
pub mod rmat;
pub mod watts_strogatz;

pub use grids::{rmat_large_corpus, rmat_small_corpus, Scale};
pub use realworld::{GraphType, TestGraph};
pub use rmat::{Rmat, RmatParams, RMAT_COMBOS};
