//! Chung–Lu random graphs with a prescribed expected degree sequence.
//!
//! Endpoints are sampled proportionally to per-vertex weights; with
//! power-law weights this yields heavy-tailed degree distributions *without*
//! clustering — matching the structure of internet topologies and
//! interaction (message/email) graphs in the real-world library.

use ease_graph::{Edge, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone)]
pub struct ChungLu {
    pub num_vertices: usize,
    pub num_edges: usize,
    /// Power-law exponent of the weight sequence (typical real-world ~2–3;
    /// smaller = heavier tail).
    pub exponent: f64,
    pub seed: u64,
}

impl ChungLu {
    pub fn new(num_vertices: usize, num_edges: usize, exponent: f64, seed: u64) -> Self {
        assert!(exponent > 1.0, "power-law exponent must exceed 1");
        assert!(num_vertices >= 2);
        ChungLu { num_vertices, num_edges, exponent, seed }
    }

    /// Power-law weights `w_i = (i+1)^(-1/(exponent-1))`, the standard
    /// Chung–Lu parametrization producing P(deg = d) ~ d^(-exponent).
    fn weights(&self) -> Vec<f64> {
        let gamma = 1.0 / (self.exponent - 1.0);
        (0..self.num_vertices).map(|i| ((i + 1) as f64).powf(-gamma)).collect()
    }

    pub fn generate(&self) -> Graph {
        let w = self.weights();
        // Cumulative distribution for inverse-transform sampling.
        let mut cdf = Vec::with_capacity(w.len());
        let mut acc = 0.0;
        for &x in &w {
            acc += x;
            cdf.push(acc);
        }
        let total = acc;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut edges = Vec::with_capacity(self.num_edges);
        let sample = |rng: &mut StdRng, cdf: &[f64]| -> u32 {
            let r = rng.gen::<f64>() * total;
            cdf.partition_point(|&c| c < r) as u32
        };
        let mut guard = 0usize;
        while edges.len() < self.num_edges {
            let src = sample(&mut rng, &cdf).min(self.num_vertices as u32 - 1);
            let dst = sample(&mut rng, &cdf).min(self.num_vertices as u32 - 1);
            guard += 1;
            if guard > 100 * self.num_edges {
                panic!("Chung-Lu failed to place edges (degenerate weights)");
            }
            if src != dst {
                edges.push(Edge::new(src, dst));
            }
        }
        // Shuffle vertex ids so low ids are not systematically high-degree.
        let mut graph = Graph::new(self.num_vertices, edges);
        let mut perm: Vec<u32> = (0..self.num_vertices as u32).collect();
        use rand::seq::SliceRandom;
        perm.shuffle(&mut rng);
        graph.relabel(&perm);
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ease_graph::{triangles, DegreeTable};

    #[test]
    fn edge_count_exact() {
        let g = ChungLu::new(500, 2_000, 2.5, 1).generate();
        assert_eq!(g.num_edges(), 2_000);
        assert!(g.edges().iter().all(|e| !e.is_loop()));
    }

    #[test]
    fn heavier_tail_for_smaller_exponent() {
        let heavy = ChungLu::new(3_000, 15_000, 2.0, 4).generate();
        let light = ChungLu::new(3_000, 15_000, 3.5, 4).generate();
        let dh = DegreeTable::compute(&heavy).total_moments;
        let dl = DegreeTable::compute(&light).total_moments;
        assert!(dh.max > dl.max, "heavy max={} light max={}", dh.max, dl.max);
    }

    #[test]
    fn low_clustering() {
        let g = ChungLu::new(3_000, 12_000, 2.3, 2).generate();
        assert!(triangles::avg_local_clustering(&g) < 0.1);
    }

    #[test]
    fn deterministic() {
        let a = ChungLu::new(100, 500, 2.2, 8).generate();
        let b = ChungLu::new(100, 500, 2.2, 8).generate();
        assert_eq!(a.edges(), b.edges());
    }
}
