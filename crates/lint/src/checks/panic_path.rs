//! Check `panic-path`: no panicking constructs in daemon-reachable code.
//!
//! A panic in `serve/` or `service.rs` kills a worker thread that is
//! serving real clients — and the input that triggered it came off a
//! socket, so *client input could crash the fleet*. The out-of-core
//! spill layer (`graph/src/spill.rs`, `graph/src/mmap.rs`) is in scope
//! too: a budgeted daemon builds CSRs through it on the request path, so
//! a panic there is the same fleet-crash vector. This check flags, in
//! daemon-reachable modules only (see [`super::daemon_reachable`]) and
//! outside `#[cfg(test)]`/`#[test]` items:
//!
//! * `.unwrap()` / `.expect(…)`,
//! * `panic!` / `unreachable!` / `todo!` / `unimplemented!`,
//! * slice/array indexing (`buf[i]`, `head[..8]`) — every `[]` is an
//!   implicit panic path.
//!
//! Fixes, in order of preference: return a typed error, recover (lock
//! poisoning: `unwrap_or_else(PoisonError::into_inner)`), or — when the
//! panic is provably unreachable (fixed-size array, compile-time index) —
//! annotate the line with `// lint: panic-ok(<why>)`.

use super::Ctx;
use crate::annotations::Kind;
use crate::lexer::TokKind;
use crate::{CheckId, Finding};

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that may directly precede an array literal (`match [a, b]`,
/// `return [0; 4]`) — an `[` after one of these is not an indexing site.
const NOT_A_RECEIVER: &[&str] = &[
    "match", "return", "in", "if", "else", "while", "loop", "break", "continue", "yield", "move",
    "as", "let", "mut", "ref", "static", "const", "fn", "where", "unsafe", "impl", "dyn", "for",
    "use", "pub", "mod", "enum", "struct", "trait", "type",
];

pub fn check(ctx: &Ctx, out: &mut Vec<Finding>) {
    if !super::daemon_reachable(ctx.file) {
        return;
    }
    let tokens = ctx.tokens;
    for (i, tok) in tokens.iter().enumerate() {
        if ctx.test_mask[i] || tok.in_attr {
            continue;
        }
        let flagged: Option<String> = match (tok.kind, tok.text.as_str()) {
            (TokKind::Ident, "unwrap" | "expect")
                if i > 0
                    && tokens[i - 1].text == "."
                    && tokens.get(i + 1).is_some_and(|t| t.text == "(") =>
            {
                Some(format!(
                    "`.{}()` in daemon-reachable code — return a typed error or recover \
                     (poisoned locks: `unwrap_or_else(PoisonError::into_inner)`)",
                    tok.text
                ))
            }
            (TokKind::Ident, name)
                if PANIC_MACROS.contains(&name)
                    && tokens.get(i + 1).is_some_and(|t| t.text == "!") =>
            {
                Some(format!("`{name}!` in daemon-reachable code"))
            }
            (TokKind::Punct, "[")
                if i > 0
                    && matches!(
                        (&tokens[i - 1].kind, tokens[i - 1].text.as_str()),
                        (TokKind::Ident, _) | (TokKind::Punct, ")") | (TokKind::Punct, "]")
                    )
                    // `vec![…]` and friends: `[` after `!` is a macro, and
                    // `ident !` before `[` means the ident is a macro name
                    && tokens[i - 1].text != "!"
                    && !(tokens[i - 1].kind == TokKind::Ident
                        && i >= 2
                        && tokens[i - 2].text == "!")
                    && !(tokens[i - 1].kind == TokKind::Ident
                        && NOT_A_RECEIVER.contains(&tokens[i - 1].text.as_str())) =>
            {
                Some(
                    "slice/array indexing in daemon-reachable code — an out-of-bounds index \
                     panics a worker; prefer `.get(…)` or split/chunk APIs"
                        .to_string(),
                )
            }
            _ => None,
        };
        if let Some(message) = flagged {
            if !ctx.annotations.allows(Kind::PanicOk, tok.line) {
                out.push(Finding {
                    check: CheckId::PanicPath,
                    file: ctx.file.to_string(),
                    line: tok.line,
                    message: format!(
                        "{message} (annotate `// lint: panic-ok(<why>)` if provably unreachable)"
                    ),
                });
            }
        }
    }
}
