//! Check `unsafe-hygiene`: every `unsafe` site carries a `// SAFETY:`
//! comment.
//!
//! `unsafe` is a claim that the author checked an invariant the compiler
//! cannot; the `SAFETY:` comment is where that invariant is written down
//! so the next editor can re-check it. The comment must be *adjacent*:
//! on the same line, the line immediately inside the block, or above the
//! `unsafe` keyword with only comments, attributes and blank lines in
//! between (and within [`MAX_LOOKBACK`] lines, so a stale comment at the
//! top of the function does not cover every `unsafe` below it).
//!
//! `unsafe fn` / `unsafe trait` *declarations* are exempt: they state an
//! obligation the **caller** (or implementor) discharges — that contract
//! belongs in a `# Safety` doc section, and the proofs live at the call
//! sites. `unsafe {}` blocks and `unsafe impl`s are where an invariant is
//! actually claimed, so those must carry the comment.
//!
//! There is no annotation escape — the fix *is* writing the comment.

use super::Ctx;
use crate::lexer::TokKind;
use crate::{CheckId, Finding};
use std::collections::BTreeSet;

/// How far above an `unsafe` keyword a `SAFETY:` comment may sit.
pub const MAX_LOOKBACK: u32 = 8;

pub fn check(ctx: &Ctx, out: &mut Vec<Finding>) {
    // lines covered by a comment containing "SAFETY:"
    let mut safety_lines: BTreeSet<u32> = BTreeSet::new();
    for comment in ctx.comments {
        if comment.text.contains("SAFETY:") {
            safety_lines.extend(comment.line..=comment.end_line);
        }
    }
    // lines with real (non-attribute) code on them
    let code_lines: BTreeSet<u32> =
        ctx.tokens.iter().filter(|t| !t.in_attr).map(|t| t.line).collect();

    for (i, tok) in ctx.tokens.iter().enumerate() {
        if tok.kind != TokKind::Ident || tok.text != "unsafe" || tok.in_attr {
            continue;
        }
        // declarations (`unsafe fn`, `unsafe trait`, `unsafe extern`) state a
        // caller-side contract; only blocks and impls discharge one here
        if ctx
            .tokens
            .get(i + 1)
            .is_some_and(|t| matches!(t.text.as_str(), "fn" | "trait" | "extern"))
        {
            continue;
        }
        if has_adjacent_safety(tok.line, &safety_lines, &code_lines) {
            continue;
        }
        out.push(Finding {
            check: CheckId::UnsafeHygiene,
            file: ctx.file.to_string(),
            line: tok.line,
            message: "`unsafe` without an adjacent `// SAFETY:` comment — write down the \
                      invariant this block relies on, right where it is relied on"
                .to_string(),
        });
    }
}

fn has_adjacent_safety(
    line: u32,
    safety_lines: &BTreeSet<u32>,
    code_lines: &BTreeSet<u32>,
) -> bool {
    // same line, or first line inside the block (`unsafe {` + comment)
    if safety_lines.contains(&line) || safety_lines.contains(&(line + 1)) {
        return true;
    }
    // walk upward through comments / attributes / blank lines
    let stop = line.saturating_sub(MAX_LOOKBACK).max(1);
    for l in (stop..line).rev() {
        if safety_lines.contains(&l) {
            return true;
        }
        if code_lines.contains(&l) {
            return false; // a code line breaks adjacency
        }
    }
    false
}
