//! The five workspace invariants, each a lexical pass over one file's
//! token stream. Every check is independently toggleable from the CLI
//! (`--only` / `--skip`) and reports [`Finding`]s with `file:line`.

use crate::annotations::Annotations;
use crate::lexer::{Comment, Token};
use crate::Finding;

pub mod atomic;
pub mod lock_io;
pub mod magic;
pub mod panic_path;
pub mod unsafe_hygiene;

/// Everything a check needs to analyze one file.
pub struct Ctx<'a> {
    /// Workspace-relative path with forward slashes (scoping rules and
    /// finding locations both use this form).
    pub file: &'a str,
    pub tokens: &'a [Token],
    pub comments: &'a [Comment],
    pub annotations: &'a Annotations,
    /// `test_mask[i]` — token `i` sits inside a `#[cfg(test)]` or
    /// `#[test]` item and is exempt from daemon-reachability checks.
    pub test_mask: &'a [bool],
}

/// Whether `file` is part of the out-of-core spill layer (PR 8): code
/// that writes, maps and reinterprets raw `EASECSR1` bytes. Every daemon
/// CSR build can route through it, and its `unsafe` mappings are exactly
/// where a missing invariant becomes memory corruption.
pub fn is_spill_module(file: &str) -> bool {
    file.ends_with("graph/src/spill.rs")
        || file.ends_with("graph/src/mmap.rs")
        || file == "spill.rs"
        || file == "mmap.rs"
}

/// Whether `file` is daemon-reachable: code a serve-path request can
/// drive, where a panic kills a worker serving real clients. The spill
/// layer counts — a budgeted daemon builds CSRs through it on the
/// request path.
pub fn daemon_reachable(file: &str) -> bool {
    file.contains("/serve/")
        || file.ends_with("/service.rs")
        || file == "service.rs"
        || is_spill_module(file)
}

/// Index of the bracket token matching the opener at `open` (any of
/// `(`/`[`/`{`, tracked jointly — valid Rust keeps them balanced).
/// Attribute tokens participate: brackets stay balanced either way.
pub(crate) fn matching_bracket(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, tok) in tokens.iter().enumerate().skip(open) {
        match tok.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Mark every token inside a `#[cfg(test)]` or `#[test]` item. The body
/// is the brace-balanced block following the attribute; an item ended by
/// `;` before any `{` (e.g. `#[cfg(test)] mod tests;`) masks up to the
/// `;` only.
pub(crate) fn compute_test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if let Some(attr_end) = test_attr_end(tokens, i) {
            // find the item body: first `{` before a top-level `;`
            let mut j = attr_end + 1;
            let mut end = None;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    ";" => {
                        end = Some(j);
                        break;
                    }
                    "{" => {
                        end = matching_bracket(tokens, j);
                        break;
                    }
                    _ => j += 1,
                }
            }
            let end = end.unwrap_or(tokens.len() - 1);
            for m in &mut mask[i..=end] {
                *m = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// If tokens at `i` start a `#[cfg(test)]` or `#[test]` attribute,
/// return the index of its closing `]`.
fn test_attr_end(tokens: &[Token], i: usize) -> Option<usize> {
    if tokens[i].text != "#" || !tokens[i].in_attr {
        return None;
    }
    let texts: Vec<&str> = tokens[i..].iter().take(8).map(|t| t.text.as_str()).collect();
    if texts.starts_with(&["#", "[", "test", "]"]) {
        return Some(i + 3);
    }
    if texts.starts_with(&["#", "[", "cfg", "(", "test", ")", "]"]) {
        return Some(i + 6);
    }
    None
}

/// Run every enabled check on one lexed file.
pub fn run(ctx: &Ctx, enabled: impl Fn(crate::CheckId) -> bool, out: &mut Vec<Finding>) {
    if enabled(crate::CheckId::AtomicOrdering) {
        atomic::check(ctx, out);
    }
    if enabled(crate::CheckId::PanicPath) {
        panic_path::check(ctx, out);
    }
    if enabled(crate::CheckId::UnsafeHygiene) {
        unsafe_hygiene::check(ctx, out);
    }
    if enabled(crate::CheckId::LockAcrossIo) {
        lock_io::check(ctx, out);
    }
    if enabled(crate::CheckId::MagicConstants) {
        magic::check(ctx, out);
    }
}
