//! Check `lock-across-io`: a `Mutex` guard held across socket I/O in
//! `serve/`.
//!
//! The shape that pins workers: a guard acquired with `.lock()` stays
//! live while the thread blocks in a socket read or write. Every other
//! worker then queues on the mutex for as long as the *slowest client*
//! takes to drain its socket — the daemon's concurrency collapses to one
//! stalled peer. The fix is to copy what is needed out of the guard and
//! drop it before touching the socket (exactly how `server.rs` scopes
//! its memo lock).
//!
//! Heuristic, by design (lexical, intra-function):
//!
//! * a **guard binding** is `let g = x.lock()…;` where the chain after
//!   `.lock()` only pipes the guard through `expect`/`unwrap`/
//!   `unwrap_or_else` (anything else — `.recv()`, `.get()…` — consumes
//!   the guard within the statement, which is the safe tight scope);
//! * the guard is **live** until its enclosing brace block closes or an
//!   explicit `drop(g)`;
//! * **socket I/O** is a call to one of [`IO_CALLS`] (`Read`/`Write`
//!   combinators and this workspace's frame helpers).
//!
//! A held-across-I/O design that is actually correct can be annotated
//! with `// lint: lock-io-ok(<why>)` on the I/O line or the binding line.

use super::Ctx;
use crate::annotations::Kind;
use crate::lexer::TokKind;
use crate::{CheckId, Finding};

/// Calls treated as socket I/O: std `Read`/`Write` combinators plus the
/// workspace's own framing helpers (`serve::protocol`).
pub const IO_CALLS: &[&str] = &[
    "write_all",
    "read_exact",
    "read_to_end",
    "read_vectored",
    "write_vectored",
    "flush",
    "write_frame",
    "write_frame_v2",
    "read_frame",
    "read_frame_v2",
    "read_frame_after_magic",
    "read_frame_v2_after_magic",
];

/// Guard-preserving adapters: `x.lock().expect(…)` is still a guard.
const GUARD_ADAPTERS: &[&str] = &["expect", "unwrap", "unwrap_or_else"];

pub fn check(ctx: &Ctx, out: &mut Vec<Finding>) {
    if !ctx.file.contains("/serve/") {
        return;
    }
    let tokens = ctx.tokens;
    // brace depth per token (blocks only — liveness is block-scoped)
    let mut brace_depth = vec![0i32; tokens.len()];
    let mut depth = 0i32;
    for (i, tok) in tokens.iter().enumerate() {
        if !tok.in_attr {
            match tok.text.as_str() {
                "{" => depth += 1,
                "}" => depth -= 1,
                _ => {}
            }
        }
        brace_depth[i] = depth;
    }

    for (i, tok) in tokens.iter().enumerate() {
        if ctx.test_mask[i] || tok.kind != TokKind::Ident || tok.text != "let" {
            continue;
        }
        // pattern: `let [mut] name = …` — tuple/struct patterns are not
        // guard bindings this heuristic can track
        let mut p = i + 1;
        if tokens.get(p).is_some_and(|t| t.text == "mut") {
            p += 1;
        }
        let Some(name_tok) = tokens.get(p).filter(|t| t.kind == TokKind::Ident) else { continue };
        let guard_name = name_tok.text.clone();
        // statement end: `;` at bracket depth 0 relative to the `let`
        let Some(stmt_end) = statement_end(tokens, i) else { continue };
        // the RHS must contain `.lock()`
        let Some(lock_at) = (i..stmt_end).find(|&j| {
            tokens[j].text == "lock"
                && tokens[j].kind == TokKind::Ident
                && j > 0
                && tokens[j - 1].text == "."
                && tokens.get(j + 1).is_some_and(|t| t.text == "(")
        }) else {
            continue;
        };
        if !is_guard_chain(tokens, lock_at, stmt_end) {
            continue; // guard consumed within the statement: tight scope
        }
        // liveness: from after the statement to block close or drop(name)
        let let_depth = brace_depth[i];
        let mut j = stmt_end + 1;
        while j < tokens.len() && brace_depth[j] >= let_depth {
            if tokens[j].text == "drop"
                && tokens.get(j + 1).is_some_and(|t| t.text == "(")
                && tokens.get(j + 2).is_some_and(|t| t.text == guard_name)
            {
                break;
            }
            let t = &tokens[j];
            if t.kind == TokKind::Ident
                && IO_CALLS.contains(&t.text.as_str())
                && tokens.get(j + 1).is_some_and(|x| x.text == "(")
                && !ctx.annotations.allows(Kind::LockIoOk, t.line)
                && !ctx.annotations.allows(Kind::LockIoOk, tok.line)
            {
                out.push(Finding {
                    check: CheckId::LockAcrossIo,
                    file: ctx.file.to_string(),
                    line: t.line,
                    message: format!(
                        "lock guard `{guard_name}` (acquired on line {}) is still live across \
                         socket I/O `{}` — one stalled peer serializes every worker behind this \
                         mutex; copy what you need and drop the guard first (or annotate \
                         `// lint: lock-io-ok(<why>)`)",
                        tok.line, t.text
                    ),
                });
            }
            j += 1;
        }
    }
}

/// Find the `;` ending the statement opened at token `start`, tracking
/// all bracket kinds so closure bodies and nested calls do not end it.
fn statement_end(tokens: &[crate::lexer::Token], start: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, tok) in tokens.iter().enumerate().skip(start) {
        match tok.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ";" if depth == 0 => return Some(j),
            _ => {}
        }
        if depth < 0 {
            return None; // malformed / end of enclosing block
        }
    }
    None
}

/// After `x.lock()` at `lock_at`, does the chain keep the guard alive to
/// the end of the statement? True when only [`GUARD_ADAPTERS`] and `?`
/// follow; any other continuation consumes the guard inside the statement.
fn is_guard_chain(tokens: &[crate::lexer::Token], lock_at: usize, stmt_end: usize) -> bool {
    let Some(mut j) = super::matching_bracket(tokens, lock_at + 1) else { return false };
    j += 1;
    while j < stmt_end {
        match tokens[j].text.as_str() {
            "?" => j += 1,
            "." => {
                let adapter = tokens.get(j + 1);
                if adapter.is_some_and(|t| GUARD_ADAPTERS.contains(&t.text.as_str()))
                    && tokens.get(j + 2).is_some_and(|t| t.text == "(")
                {
                    match super::matching_bracket(tokens, j + 2) {
                        Some(close) => j = close + 1,
                        None => return false,
                    }
                } else {
                    return false; // `.recv()` etc: guard consumed here
                }
            }
            _ => return false,
        }
    }
    true
}
