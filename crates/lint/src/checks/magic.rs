//! Check `magic-constants`: protocol magics have exactly one definition.
//!
//! A wire or file-format magic copied into a second module is a fork
//! waiting to happen: bump one copy and old clients half-work in ways no
//! test names. Each magic in [`RULES`] may appear as a literal only in
//! its *home* module — everywhere else must reference the exported
//! constant (`FRAME_MAGIC`, `BEL_MAGIC`, `persist::MAGIC`).
//!
//! Detected spellings:
//!
//! * an integer literal with the magic's exact value (`0xEA5E`),
//! * the split-byte pair (`0xEA, 0x5E`) the framing code writes,
//! * the split byte-char pair (`b'G', b'E'`) the HTTP sniffer matches,
//! * a string/byte-string literal containing the magic text
//!   (`b"EASEBEL1"`).
//!
//! A literal that merely *collides* (an RNG seed spelled `0xEA5E` for
//! fun) is annotated `// lint: magic-ok(<why>)`.

use super::Ctx;
use crate::annotations::Kind;
use crate::lexer::TokKind;
use crate::{CheckId, Finding};

/// One protected magic and the only file allowed to spell it literally.
pub struct MagicRule {
    /// Integer value form, if the magic is numeric.
    pub value: Option<u128>,
    /// Split-byte form `[hi, lo]`, as written in framing code.
    pub byte_pair: Option<[u128; 2]>,
    /// Split byte-char form `[b'G', b'E']`, as written in sniffing code.
    pub char_pair: Option<[&'static str; 2]>,
    /// Text form, matched as a substring of string-ish literals.
    pub text: Option<&'static str>,
    /// Human name used in findings.
    pub name: &'static str,
    /// Workspace-relative path of the defining module.
    pub home: &'static str,
}

/// The workspace's protocol constants (see `serve::protocol`, `bel`,
/// `persist`).
pub const RULES: &[MagicRule] = &[
    MagicRule {
        value: Some(0xEA5E), // lint: magic-ok(this table IS the magic catalogue)
        byte_pair: Some([0xEA, 0x5E]), // lint: magic-ok(this table IS the magic catalogue)
        char_pair: None,
        text: None,
        name: "0xEA5E (serve v1 frame magic, FRAME_MAGIC)",
        home: "crates/core/src/serve/protocol.rs",
    },
    MagicRule {
        value: Some(0xEA5F), // lint: magic-ok(this table IS the magic catalogue)
        byte_pair: Some([0xEA, 0x5F]), // lint: magic-ok(this table IS the magic catalogue)
        char_pair: None,
        text: None,
        name: "0xEA5F (serve v2 pipelined frame magic, FRAME_MAGIC_V2)",
        home: "crates/core/src/serve/protocol.rs",
    },
    MagicRule {
        value: None,
        byte_pair: None,
        char_pair: None,
        text: Some("EASEBEL1"), // lint: magic-ok(this table IS the magic catalogue)
        name: "\"EASEBEL1\" (binary edge-list format magic, BEL_MAGIC)", // lint: magic-ok(finding text names the magic)
        home: "crates/graph/src/bel.rs",
    },
    MagicRule {
        value: None,
        byte_pair: None,
        char_pair: None,
        text: Some("EASEMODL"), // lint: magic-ok(this table IS the magic catalogue)
        name: "\"EASEMODL\" (model persistence magic, persist::MAGIC)", // lint: magic-ok(finding text names the magic)
        home: "crates/ml/src/persist.rs",
    },
    MagicRule {
        value: None,
        byte_pair: None,
        char_pair: None,
        text: Some("EASECSR1"), // lint: magic-ok(this table IS the magic catalogue)
        name: "\"EASECSR1\" (CSR spill file magic, SPILL_MAGIC)", // lint: magic-ok(finding text names the magic)
        home: "crates/graph/src/spill.rs",
    },
    MagicRule {
        value: None,
        byte_pair: None,
        char_pair: Some(["G", "E"]),
        text: None,
        name: "[b'G', b'E'] (HTTP GET sniff prefix, http::SNIFF_GET)",
        home: "crates/core/src/serve/http.rs",
    },
    MagicRule {
        value: None,
        byte_pair: None,
        char_pair: Some(["P", "O"]),
        text: None,
        name: "[b'P', b'O'] (HTTP POST sniff prefix, http::SNIFF_POST)",
        home: "crates/core/src/serve/http.rs",
    },
];

pub fn check(ctx: &Ctx, out: &mut Vec<Finding>) {
    let tokens = ctx.tokens;
    for (i, tok) in tokens.iter().enumerate() {
        for rule in RULES {
            if ctx.file == rule.home {
                continue;
            }
            let hit = match tok.kind {
                TokKind::Number => {
                    let v = tok.value;
                    v.is_some() && v == rule.value
                        || rule.byte_pair.is_some_and(|[hi, lo]| {
                            v == Some(hi)
                                && tokens.get(i + 1).is_some_and(|t| t.text == ",")
                                && tokens.get(i + 2).and_then(|t| t.value) == Some(lo)
                        })
                }
                TokKind::Str => rule.text.is_some_and(|t| tok.text.contains(t)),
                TokKind::Char => rule.char_pair.is_some_and(|[hi, lo]| {
                    tok.text == hi
                        && tokens.get(i + 1).is_some_and(|t| t.text == ",")
                        && tokens
                            .get(i + 2)
                            .is_some_and(|t| t.kind == TokKind::Char && t.text == lo)
                }),
                _ => false,
            };
            if hit && !ctx.annotations.allows(Kind::MagicOk, tok.line) {
                out.push(Finding {
                    check: CheckId::MagicConstants,
                    file: ctx.file.to_string(),
                    line: tok.line,
                    message: format!(
                        "magic literal {} is defined in {} — reference the exported constant \
                         instead of duplicating the value (or annotate \
                         `// lint: magic-ok(<why>)` for an accidental collision)",
                        rule.name, rule.home
                    ),
                });
            }
        }
    }
}
