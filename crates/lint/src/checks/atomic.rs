//! Check `atomic-ordering`: the workspace's memory-ordering policy.
//!
//! This is the PR 6 shutdown-flag bug turned into a gate. Two rules:
//!
//! 1. **Policy atomics are `SeqCst`.** Any `load`/`store`/`swap`/
//!    `fetch_*`/`compare_exchange*` on an atomic whose field or variable
//!    name matches the policy list ([`POLICY_NAMES`]: control flags like
//!    `shutdown`/`stop` that cross the accept/worker boundary) must pass
//!    `SeqCst` for every ordering argument. Mixed or weaker orderings on
//!    a control flag are exactly the shipped bug: a `Relaxed` load of a
//!    `SeqCst`-stored flag gave the accept loop and the workers two
//!    different views of "are we shutting down". Suppress — when a
//!    weaker ordering is *proven* fine — with `// lint: ordering-ok(<why>)`.
//! 2. **`Ordering::Relaxed` is explicit.** Every `Ordering::Relaxed`
//!    anywhere in the workspace needs an adjacent
//!    `// lint: relaxed-ok(<why>)` annotation. Relaxed is usually right
//!    for stats counters and work-stealing indices — the annotation
//!    forces the author to *say so* where a reviewer will read it.

use super::Ctx;
use crate::annotations::Kind;
use crate::{CheckId, Finding};
use std::collections::BTreeSet;

/// Name fragments identifying control-flag atomics that must be `SeqCst`.
/// Matched case-insensitively against the receiver identifier, as a
/// substring (`shutdown`, `shutdown_flag`, `stop_requested` all match).
/// `healthy`/`mark_down` cover the PR 9 router's backend health state:
/// mark-down/mark-up crosses the forwarding/health-thread boundary
/// exactly like the shutdown flag crosses accept/worker, and a relaxed
/// load there would let a forwarder keep sending to a backend the health
/// thread already declared dead.
pub const POLICY_NAMES: &[&str] = &["shutdown", "stop", "shutting_down", "healthy", "mark_down"];

/// Atomic operations whose ordering arguments the policy constrains.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_nand",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

const ORDERINGS: &[&str] = &["SeqCst", "AcqRel", "Acquire", "Release", "Relaxed"];

pub fn check(ctx: &Ctx, out: &mut Vec<Finding>) {
    let tokens = ctx.tokens;
    // lines already carrying a policy finding: the Relaxed that caused a
    // policy violation is one defect, not two findings
    let mut policy_lines: BTreeSet<u32> = BTreeSet::new();

    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != crate::lexer::TokKind::Ident
            || !ATOMIC_METHODS.contains(&tok.text.as_str())
            || i == 0
            || tokens[i - 1].text != "."
            || tokens.get(i + 1).is_none_or(|t| t.text != "(")
        {
            continue;
        }
        // receiver: the identifier before the `.` (`self.shutdown.load(…)`
        // → `shutdown`). Non-identifier receivers (call results, indexed
        // expressions) have no name to match the policy against.
        let receiver = match i.checked_sub(2).map(|r| &tokens[r]) {
            Some(t) if t.kind == crate::lexer::TokKind::Ident => t.text.to_lowercase(),
            _ => continue,
        };
        if !POLICY_NAMES.iter().any(|p| receiver.contains(p)) {
            continue;
        }
        let Some(close) = super::matching_bracket(tokens, i + 1) else { continue };
        let orderings: Vec<&str> = tokens[i + 1..close]
            .iter()
            .filter(|t| {
                t.kind == crate::lexer::TokKind::Ident && ORDERINGS.contains(&t.text.as_str())
            })
            .map(|t| t.text.as_str())
            .collect();
        let violation = if orderings.is_empty() {
            Some("no explicit ordering is visible at the call site".to_string())
        } else if orderings.iter().any(|&o| o != "SeqCst") {
            Some(format!("uses Ordering::{}", orderings.join(" / Ordering::")))
        } else {
            None
        };
        if let Some(why) = violation {
            if !ctx.annotations.allows(Kind::OrderingOk, tok.line) {
                policy_lines.insert(tok.line);
                out.push(Finding {
                    check: CheckId::AtomicOrdering,
                    file: ctx.file.to_string(),
                    line: tok.line,
                    message: format!(
                        "`{receiver}.{}` {why}: `{receiver}` matches the control-flag policy \
                         ({}) and every access must be SeqCst — mixed orderings on a shutdown \
                         flag are the PR 6 lost-wakeup bug (annotate `// lint: ordering-ok(<why>)` \
                         only with a proof)",
                        tok.text,
                        POLICY_NAMES.join("/"),
                    ),
                });
            }
        }
    }

    // rule 2: every Ordering::Relaxed needs a relaxed-ok annotation
    for (i, tok) in tokens.iter().enumerate() {
        if tok.text != "Relaxed"
            || tok.kind != crate::lexer::TokKind::Ident
            || i < 3
            || tokens[i - 1].text != ":"
            || tokens[i - 2].text != ":"
            || tokens[i - 3].text != "Ordering"
        {
            continue;
        }
        if policy_lines.contains(&tok.line) || ctx.annotations.allows(Kind::RelaxedOk, tok.line) {
            continue;
        }
        out.push(Finding {
            check: CheckId::AtomicOrdering,
            file: ctx.file.to_string(),
            line: tok.line,
            message: "Ordering::Relaxed without an adjacent `// lint: relaxed-ok(<why>)` \
                      annotation — say why no other thread orders its reads against this value"
                .to_string(),
        });
    }
}
