//! The `ease-lint` binary — run the workspace checks as a CI gate.
//!
//! ```text
//! ease-lint [--root DIR] [--only a,b] [--skip a,b] [--list] [--explain CHECK] [--quiet]
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage error.

use ease_lint::{all_checks, lint_workspace, CheckId};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    enabled: BTreeSet<CheckId>,
    quiet: bool,
}

fn usage() -> String {
    let checks: Vec<&str> = CheckId::ALL.iter().map(|c| c.name()).collect();
    format!(
        "usage: ease-lint [--root DIR] [--only CHECKS] [--skip CHECKS] [--list] \
         [--explain CHECK] [--quiet]\n\
         \n\
         CHECKS is a comma-separated subset of: {}\n\
         --list     print every check with a one-line summary\n\
         --explain  print the full rule documentation for one check",
        checks.join(", ")
    )
}

fn parse_checks(spec: &str) -> Result<BTreeSet<CheckId>, String> {
    let mut set = BTreeSet::new();
    for name in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let check = CheckId::from_name(name)
            .ok_or_else(|| format!("unknown check `{name}`\n\n{}", usage()))?;
        set.insert(check);
    }
    if set.is_empty() {
        return Err(format!("empty check list\n\n{}", usage()));
    }
    Ok(set)
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = std::env::args().skip(1);
    let mut root = PathBuf::from(".");
    let mut enabled = all_checks();
    let mut quiet = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root = args
                    .next()
                    .ok_or_else(|| format!("--root needs a value\n\n{}", usage()))?
                    .into();
            }
            "--only" => {
                let spec =
                    args.next().ok_or_else(|| format!("--only needs a value\n\n{}", usage()))?;
                enabled = parse_checks(&spec)?;
            }
            "--skip" => {
                let spec =
                    args.next().ok_or_else(|| format!("--skip needs a value\n\n{}", usage()))?;
                for check in parse_checks(&spec)? {
                    enabled.remove(&check);
                }
            }
            "--list" => {
                for check in CheckId::ALL {
                    println!("{:<20} {}", check.name(), check.summary());
                }
                return Ok(None);
            }
            "--explain" => {
                let name = args
                    .next()
                    .ok_or_else(|| format!("--explain needs a check name\n\n{}", usage()))?;
                let check = CheckId::from_name(&name)
                    .ok_or_else(|| format!("unknown check `{name}`\n\n{}", usage()))?;
                println!("{}", check.explain());
                return Ok(None);
            }
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(None);
            }
            other => return Err(format!("unknown argument `{other}`\n\n{}", usage())),
        }
    }
    Ok(Some(Args { root, enabled, quiet }))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(args)) => args,
        Ok(None) => return ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("ease-lint: {message}");
            return ExitCode::from(2);
        }
    };
    if !args.root.join("Cargo.toml").exists() {
        eprintln!(
            "ease-lint: {} does not look like the workspace root (no Cargo.toml) — run from \
             the repo root or pass --root",
            args.root.display()
        );
        return ExitCode::from(2);
    }
    let findings = match lint_workspace(&args.root, &args.enabled) {
        Ok(findings) => findings,
        Err(e) => {
            eprintln!("ease-lint: cannot walk {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };
    for finding in &findings {
        println!("{finding}");
    }
    if findings.is_empty() {
        if !args.quiet {
            let names: Vec<&str> = args.enabled.iter().map(|c| c.name()).collect();
            println!("ease-lint: clean ({} checks: {})", names.len(), names.join(", "));
        }
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "ease-lint: {} finding{} — fix, or annotate with a reason (see --explain)",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        );
        ExitCode::FAILURE
    }
}
