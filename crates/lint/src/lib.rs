//! `ease-lint` — workspace-specific static analysis for the EASE repro.
//!
//! Clippy knows Rust; it does not know *this workspace*. The invariants
//! that actually broke in production here — a `Relaxed` load on a
//! `SeqCst` shutdown flag, an unwrap reachable from a client socket, a
//! frame magic duplicated away from its definition — are repo policy,
//! not language rules. This crate is a dependency-free static-analysis
//! pass (hand-rolled lexer, no `syn`) that walks the workspace sources
//! and enforces them as a blocking CI gate (`ci/lint.sh`).
//!
//! The checks (each toggleable, each documented via `--explain`):
//!
//! | check | invariant |
//! |---|---|
//! | `atomic-ordering` | control-flag atomics are `SeqCst`; every `Relaxed` is annotated |
//! | `panic-path` | no unwrap/expect/panic!/indexing in daemon-reachable code |
//! | `unsafe-hygiene` | every `unsafe` carries an adjacent `// SAFETY:` comment |
//! | `lock-across-io` | no `Mutex` guard held across socket I/O in `serve/` |
//! | `magic-constants` | protocol magics are defined in exactly one module |
//! | `annotation-grammar` | `// lint: <kind>-ok(<reason>)` annotations are well-formed |
//!
//! Findings print as `file:line: [check] message` and any unannotated
//! finding makes the binary exit nonzero.

use std::collections::BTreeSet;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

pub mod annotations;
pub mod checks;
pub mod lexer;

/// Identity of one check, used for toggling and reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CheckId {
    AtomicOrdering,
    PanicPath,
    UnsafeHygiene,
    LockAcrossIo,
    MagicConstants,
    AnnotationGrammar,
}

impl CheckId {
    pub const ALL: [CheckId; 6] = [
        CheckId::AtomicOrdering,
        CheckId::PanicPath,
        CheckId::UnsafeHygiene,
        CheckId::LockAcrossIo,
        CheckId::MagicConstants,
        CheckId::AnnotationGrammar,
    ];

    pub fn name(self) -> &'static str {
        match self {
            CheckId::AtomicOrdering => "atomic-ordering",
            CheckId::PanicPath => "panic-path",
            CheckId::UnsafeHygiene => "unsafe-hygiene",
            CheckId::LockAcrossIo => "lock-across-io",
            CheckId::MagicConstants => "magic-constants",
            CheckId::AnnotationGrammar => "annotation-grammar",
        }
    }

    pub fn from_name(name: &str) -> Option<CheckId> {
        CheckId::ALL.into_iter().find(|c| c.name() == name)
    }

    /// One-line summary (for `--list`).
    pub fn summary(self) -> &'static str {
        match self {
            CheckId::AtomicOrdering => {
                "control-flag atomics use SeqCst; every Ordering::Relaxed is annotated"
            }
            CheckId::PanicPath => {
                "no unwrap/expect/panic!/indexing in daemon-reachable code (serve/, service.rs)"
            }
            CheckId::UnsafeHygiene => "every `unsafe` carries an adjacent // SAFETY: comment",
            CheckId::LockAcrossIo => "no Mutex guard held across socket I/O in serve/",
            CheckId::MagicConstants => "protocol magics are defined in exactly one module",
            CheckId::AnnotationGrammar => "lint annotations parse and carry a non-empty reason",
        }
    }

    /// Full rule documentation (for `--explain <check>`).
    pub fn explain(self) -> &'static str {
        match self {
            CheckId::AtomicOrdering => {
                "atomic-ordering — the workspace memory-ordering policy.\n\
                 \n\
                 Why it exists: PR 6 shipped (and then fixed) a daemon shutdown flag that was\n\
                 stored SeqCst but loaded Relaxed. The accept loop and the workers could\n\
                 disagree about whether the daemon was shutting down — a lost-wakeup race that\n\
                 only shows up under load, with every worker pinned. This check makes that\n\
                 bug class unwriteable.\n\
                 \n\
                 Rule 1: any load/store/swap/fetch_*/compare_exchange* on an atomic whose\n\
                 receiver name matches the control-flag policy (substrings: shutdown, stop,\n\
                 shutting_down) must pass SeqCst for every ordering argument. Suppress only\n\
                 with `// lint: ordering-ok(<why>)` and a proof.\n\
                 \n\
                 Rule 2: every `Ordering::Relaxed` in the workspace needs an adjacent\n\
                 `// lint: relaxed-ok(<why>)` annotation. Relaxed is fine for monotonic stats\n\
                 counters and work-stealing indices — the annotation makes the author say so\n\
                 where the next reviewer will read it.\n\
                 \n\
                 Annotation placement: trailing on the flagged line, or a standalone comment\n\
                 line directly above it."
            }
            CheckId::PanicPath => {
                "panic-path — no panicking constructs in daemon-reachable modules.\n\
                 \n\
                 Scope: files under serve/ and service.rs, outside #[cfg(test)]/#[test]\n\
                 items. A panic there kills a worker thread serving real clients, and the\n\
                 triggering input came off a socket — client input must never crash the\n\
                 fleet.\n\
                 \n\
                 Flagged: .unwrap(), .expect(...), panic!/unreachable!/todo!/unimplemented!,\n\
                 and slice/array indexing (every `[]` is an implicit panic path).\n\
                 \n\
                 Preferred fixes, in order: return a typed EaseError; recover (for lock\n\
                 poisoning: `unwrap_or_else(PoisonError::into_inner)` — a poisoned stats\n\
                 mutex should not take the daemon down); restructure to avoid indexing\n\
                 (`split_first`, `get`, pattern-match fixed arrays). When the panic is\n\
                 provably unreachable (compile-time in-bounds split of a fixed array),\n\
                 annotate the line: `// lint: panic-ok(<why>)`."
            }
            CheckId::UnsafeHygiene => {
                "unsafe-hygiene — every `unsafe` site carries a // SAFETY: comment.\n\
                 \n\
                 `unsafe` claims an invariant the compiler cannot check; SAFETY: is where\n\
                 the claim is written down so the next editor can re-check it before\n\
                 touching the code (the mmap module's raw mmap/munmap calls are the\n\
                 canonical sites here).\n\
                 \n\
                 The comment must be adjacent: same line, first line inside the block, or\n\
                 above the `unsafe` keyword with only comments/attributes/blank lines in\n\
                 between (within 8 lines). There is no annotation escape — the fix is\n\
                 writing the comment. Pairs with #![deny(unsafe_op_in_unsafe_fn)] so ambient\n\
                 unsafety inside unsafe fns is also explicit."
            }
            CheckId::LockAcrossIo => {
                "lock-across-io — no Mutex guard live across socket I/O in serve/.\n\
                 \n\
                 The shape that pins workers: `let g = m.lock()...;` followed by a socket\n\
                 read/write while `g` is still in scope. Every other worker then waits on\n\
                 the mutex for as long as the slowest client takes to drain its socket —\n\
                 one stalled peer serializes the daemon.\n\
                 \n\
                 Heuristic (lexical, intra-function): a let-binding whose right-hand side\n\
                 ends in .lock() (optionally piped through expect/unwrap/unwrap_or_else) is\n\
                 a guard; it is live until its block closes or an explicit drop(g); socket\n\
                 I/O is read_exact/write_all/flush/... plus the serve::protocol frame\n\
                 helpers. A chain that consumes the guard inside one statement\n\
                 (`q.lock().unwrap().recv()`) is the safe tight scope and is not flagged.\n\
                 \n\
                 Fix by copying what you need out of the guard and dropping it before the\n\
                 I/O (see the memo scoping in serve/server.rs), or annotate the I/O or\n\
                 binding line with `// lint: lock-io-ok(<why>)`."
            }
            CheckId::MagicConstants => {
                // lint: magic-ok(the --explain text names the protected magics)
                "magic-constants — protocol magics have exactly one defining module.\n\
                 \n\
                 Protected: 0xEA5E (FRAME_MAGIC) and 0xEA5F (FRAME_MAGIC_V2) in\n\
                 crates/core/src/serve/protocol.rs, \"EASEBEL1\" (BEL_MAGIC) in\n\
                 crates/graph/src/bel.rs, \"EASEMODL\" (persist::MAGIC) in\n\
                 crates/ml/src/persist.rs, and the HTTP sniff prefixes (b'G', b'E') /\n\
                 (b'P', b'O') (SNIFF_GET / SNIFF_POST) in crates/core/src/serve/http.rs.\n\
                 Integer, split-byte-pair (0xEA, 0x5E), split-byte-char-pair and\n\
                 string-literal spellings are all detected.\n\
                 \n\
                 Everywhere outside the home module, reference the exported constant — a\n\
                 duplicated magic is a protocol fork waiting to happen. An accidental\n\
                 collision (an RNG seed spelled 0xEA5E) is annotated\n\
                 `// lint: magic-ok(<why>)`."
            }
            CheckId::AnnotationGrammar => {
                "annotation-grammar — `// lint: <kind>-ok(<reason>)` must parse.\n\
                 \n\
                 Kinds: relaxed-ok, ordering-ok, panic-ok, lock-io-ok, magic-ok. The reason\n\
                 is mandatory (an empty `panic-ok()` is a finding) and unknown kinds are\n\
                 findings too — a typo must fail the gate, not silently suppress nothing.\n\
                 \n\
                 Placement: a trailing annotation covers its own line; a standalone comment\n\
                 line covers the next line carrying code."
            }
        }
    }
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub check: CheckId,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.check.name(), self.message)
    }
}

/// Lint one file's source. `file` must be the workspace-relative path
/// (scoping rules and the magic-constants home table match against it).
pub fn lint_source(file: &str, src: &str, enabled: &BTreeSet<CheckId>) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    let (ann, mut findings) = annotations::collect(file, &lexed.tokens, &lexed.comments);
    if !enabled.contains(&CheckId::AnnotationGrammar) {
        findings.clear();
    }
    let test_mask = checks::compute_test_mask(&lexed.tokens);
    let ctx = checks::Ctx {
        file,
        tokens: &lexed.tokens,
        comments: &lexed.comments,
        annotations: &ann,
        test_mask: &test_mask,
    };
    checks::run(&ctx, |c| enabled.contains(&c), &mut findings);
    findings.sort_by_key(|a| (a.line, a.check));
    findings
}

/// Directory names never descended into: build output, vendored shims
/// (external code with its own idioms), VCS metadata, and lint fixtures
/// (which contain violations *on purpose*).
pub const SKIP_DIRS: &[&str] = &["target", "shims", ".git", "fixtures", "node_modules"];

/// Collect every `.rs` file under `root`, workspace-relative, sorted.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lint the whole workspace rooted at `root`. Findings come back sorted
/// by file then line.
pub fn lint_workspace(root: &Path, enabled: &BTreeSet<CheckId>) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for rel in workspace_files(root)? {
        let src = std::fs::read_to_string(root.join(&rel))?;
        let rel = rel.to_string_lossy().replace('\\', "/");
        findings.extend(lint_source(&rel, &src, enabled));
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.check).cmp(&(b.file.as_str(), b.line, b.check))
    });
    Ok(findings)
}

/// The default-enabled check set (all of them).
pub fn all_checks() -> BTreeSet<CheckId> {
    CheckId::ALL.into_iter().collect()
}
