//! A hand-rolled Rust lexer — just enough tokenization to run lexical
//! checks without `syn` (the offline build has no crates.io access).
//!
//! The output is two parallel streams: *code tokens* (identifiers,
//! literals, punctuation) and *comments*, both carrying 1-based line
//! numbers. The checks operate on code tokens only; the annotation layer
//! ([`crate::annotations`]) and the `// SAFETY:` rule read the comments.
//!
//! Correctness bar: a lint that misfires inside a string literal or a
//! comment is worse than no lint, so this lexer handles every way Rust
//! lets scary text hide inside an inert region:
//!
//! * line comments and **nested** block comments,
//! * string literals with escapes (`"\" // not a comment"`),
//! * raw strings with any number of hashes (`r#"..."#`), raw byte strings,
//! * byte strings and C strings (`b"..."`, `c"..."`),
//! * char and byte-char literals (`'\''`, `b'x'`) vs lifetimes (`'static`),
//! * raw identifiers (`r#match`).
//!
//! The property tests in `tests/lexer_props.rs` drive randomized token
//! soup through exactly these corners.

/// What kind of code token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`shutdown`, `unsafe`, `r#match` → `match`).
    Ident,
    /// Lifetime (`'a`, `'static`) — distinct from char literals.
    Lifetime,
    /// Numeric literal; [`Token::value`] holds the parsed value when the
    /// literal fits a `u128` (suffixes and `_` separators are ignored).
    Number,
    /// String-ish literal: `"…"`, `r"…"`, `b"…"`, `c"…"` and raw forms.
    /// [`Token::text`] is the *unquoted* body (escapes left as written).
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// One punctuation character (`.`, `:`, `(`, …). Multi-character
    /// operators appear as consecutive tokens (`::` is `:` then `:`).
    Punct,
}

/// One code token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// Parsed numeric value for [`TokKind::Number`] tokens.
    pub value: Option<u128>,
    /// True while the token sits inside an outer `#[...]` / `#![...]`
    /// attribute — lets checks tell an attribute-only line from code.
    pub in_attr: bool,
}

/// One comment (either style), with the comment markers stripped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (block comments can span lines).
    pub end_line: u32,
    /// True when a code token precedes the comment on its start line —
    /// i.e. this is a *trailing* comment, not a standalone comment line.
    pub trailing: bool,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    /// Whether a code token has been emitted since the last newline
    /// (classifies comments as trailing vs standalone).
    code_on_line: bool,
    /// Depth of an in-progress outer attribute: `#[` … `]` bracket depth.
    attr_depth: usize,
    out: Lexed,
}

/// Lex `src` into code tokens and comments. Never fails: unterminated
/// literals and comments are closed at end of input (the checks then see
/// a best-effort stream, which is the right behaviour for a linter).
pub fn lex(src: &str) -> Lexed {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        code_on_line: false,
        attr_depth: 0,
        out: Lexed::default(),
    };
    lx.run();
    lx.out
}

impl Lexer<'_> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.src.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.code_on_line = false;
        }
        b.into()
    }

    fn run(&mut self) {
        while let Some(b) = self.peek() {
            match b {
                b'\n' | b' ' | b'\t' | b'\r' => {
                    self.bump();
                }
                b'/' if self.peek_at(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek_at(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.pos, false),
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' | b'c' => self.ident_or_prefixed_literal(),
                b'0'..=b'9' => self.number(),
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => self.ident(),
                _ if b >= 0x80 => self.ident(), // non-ASCII: treat as ident text
                _ => self.punct(),
            }
        }
    }

    /// Sentinel for [`Lexer::attr_depth`]: a `#` (or `#!`) has been seen
    /// whose next byte opens an attribute; the upcoming `[` sets depth 1.
    const ATTR_ARMED: usize = usize::MAX;

    fn emit(&mut self, kind: TokKind, text: String, line: u32, value: Option<u128>) {
        self.code_on_line = true;
        let in_attr = self.track_attr(kind, &text);
        self.out.tokens.push(Token { kind, text, line, value, in_attr });
    }

    /// Track `#[...]` / `#![...]` spans so tokens inside them can be
    /// recognized as attribute tokens. Returns whether the token being
    /// emitted belongs to an attribute (the `#`, `!` and brackets count).
    fn track_attr(&mut self, kind: TokKind, text: &str) -> bool {
        if self.attr_depth == Self::ATTR_ARMED {
            // armed by `#`: the `!` of `#![` stays armed, the `[` opens
            return match text {
                "[" => {
                    self.attr_depth = 1;
                    true
                }
                "!" => true,
                // cannot happen (arming requires the next byte to be `[`
                // or `![`), but disarm defensively
                _ => {
                    self.attr_depth = 0;
                    false
                }
            };
        }
        if self.attr_depth > 0 {
            if kind == TokKind::Punct {
                match text {
                    "[" => self.attr_depth += 1,
                    "]" => self.attr_depth -= 1,
                    _ => {}
                }
            }
            return true;
        }
        if kind == TokKind::Punct && text == "#" {
            // `#[` or `#![` opens an attribute; a bare `#` does not
            let next = self.peek();
            let after_bang = if next == Some(b'!') { self.peek_at(1) } else { next };
            if after_bang == Some(b'[') {
                self.attr_depth = Self::ATTR_ARMED;
                return true;
            }
        }
        false
    }

    fn punct(&mut self) {
        let line = self.line;
        let b = self.bump().unwrap_or(b' ');
        self.emit(TokKind::Punct, (b as char).to_string(), line, None);
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let trailing = self.code_on_line;
        let start = self.pos + 2;
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.comments.push(Comment { text, line, end_line: line, trailing });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let trailing = self.code_on_line;
        self.bump();
        self.bump(); // consume `/*`
        let start = self.pos;
        let mut depth = 1usize;
        let mut end = self.pos;
        while let Some(b) = self.peek() {
            if b == b'/' && self.peek_at(1) == Some(b'*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if b == b'*' && self.peek_at(1) == Some(b'/') {
                depth -= 1;
                end = self.pos;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                self.bump();
            }
            end = self.pos;
        }
        let text = String::from_utf8_lossy(&self.src[start..end.min(self.src.len())]).into_owned();
        self.out.comments.push(Comment { text, line, end_line: self.line, trailing });
    }

    /// Lex a `"`-delimited string whose opening quote is at `self.pos`.
    /// `raw` disables escape processing (used for `r"..."` with 0 hashes
    /// handled by [`Self::raw_string`], so here raw is always false).
    fn string(&mut self, _token_start: usize, raw: bool) {
        let line = self.line;
        self.bump(); // opening quote
        let body_start = self.pos;
        while let Some(b) = self.peek() {
            match b {
                b'\\' if !raw => {
                    self.bump();
                    self.bump(); // the escaped character (possibly `"` or `\`)
                }
                b'"' => break,
                _ => {
                    self.bump();
                }
            }
        }
        let body = String::from_utf8_lossy(&self.src[body_start..self.pos]).into_owned();
        self.bump(); // closing quote
        self.emit(TokKind::Str, body, line, None);
    }

    /// Lex a raw string starting at the first `#` or `"` after the `r`
    /// (which has been consumed). Handles `r"…"` through `r###"…"###`.
    fn raw_string(&mut self) {
        let line = self.line;
        let mut hashes = 0usize;
        while self.peek() == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let body_start = self.pos;
        let mut body_end = self.src.len();
        'scan: while let Some(b) = self.peek() {
            if b == b'"' {
                // candidate close: `"` followed by `hashes` hashes
                for k in 0..hashes {
                    if self.peek_at(1 + k) != Some(b'#') {
                        self.bump();
                        continue 'scan;
                    }
                }
                body_end = self.pos;
                self.bump(); // quote
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            self.bump();
        }
        let body = String::from_utf8_lossy(&self.src[body_start..body_end.min(self.src.len())])
            .into_owned();
        self.emit(TokKind::Str, body, line, None);
    }

    /// `'` — either a char literal (`'x'`, `'\n'`) or a lifetime (`'a`).
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        self.bump(); // the quote
        match self.peek() {
            // escape: always a char literal
            Some(b'\\') => {
                self.bump();
                self.bump(); // escaped char
                             // consume to closing quote (covers \u{...})
                while let Some(b) = self.peek() {
                    self.bump();
                    if b == b'\'' {
                        break;
                    }
                }
                self.emit(TokKind::Char, String::new(), line, None);
            }
            Some(c) if is_ident_char(c) => {
                // `'x'` is a char; `'x` / `'xyz` is a lifetime
                if self.peek_at(1) == Some(b'\'') {
                    self.bump();
                    self.bump();
                    self.emit(TokKind::Char, (c as char).to_string(), line, None);
                } else {
                    let start = self.pos;
                    while self.peek().is_some_and(is_ident_char) {
                        self.bump();
                    }
                    let name = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                    self.emit(TokKind::Lifetime, name, line, None);
                }
            }
            // `'('` etc: a one-character char literal of punctuation
            Some(_) => {
                self.bump();
                if self.peek() == Some(b'\'') {
                    self.bump();
                }
                self.emit(TokKind::Char, String::new(), line, None);
            }
            None => {}
        }
    }

    /// `r`, `b`, or `c`: raw strings / byte strings / C strings / raw
    /// identifiers — or just an identifier starting with that letter.
    fn ident_or_prefixed_literal(&mut self) {
        let b0 = self.peek().unwrap_or(b'r');
        // decide by lookahead, consuming nothing yet
        let (skip, action): (usize, u8) = match (b0, self.peek_at(1), self.peek_at(2)) {
            // r"..." | r#"..."# | br#"..." etc.
            (b'r', Some(b'"'), _) => (1, b'R'),
            (b'r', Some(b'#'), _) => {
                // r#ident vs r#"..."  — scan past hashes
                let mut k = 1;
                while self.peek_at(k) == Some(b'#') {
                    k += 1;
                }
                if self.peek_at(k) == Some(b'"') {
                    (1, b'R')
                } else {
                    (2, b'I') // raw identifier r#name → lex `name`
                }
            }
            (b'b' | b'c', Some(b'"'), _) => (1, b'S'),
            (b'b', Some(b'r'), Some(b'"' | b'#')) => (2, b'R'),
            (b'b', Some(b'\''), _) => (1, b'C'),
            _ => (0, b'I'),
        };
        for _ in 0..skip {
            self.bump();
        }
        match action {
            b'R' => self.raw_string(),
            b'S' => self.string(self.pos, false),
            b'C' => self.char_or_lifetime(),
            _ => self.ident(),
        }
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.pos;
        while self.peek().is_some_and(|b| is_ident_char(b) || b >= 0x80) {
            self.bump();
        }
        if self.pos == start {
            // lone non-ASCII byte that is not an ident char: skip it
            self.bump();
            return;
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.emit(TokKind::Ident, text, line, None);
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.pos;
        // consume the literal: digits, `_`, radix prefixes, hex letters,
        // suffixes (`u64`), exponents. A trailing `.` only belongs to the
        // number when followed by a digit (so `0..10` lexes as 0, .., 10).
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric()
                || b == b'_'
                || (b == b'.' && self.peek_at(1).is_some_and(|d| d.is_ascii_digit()))
            {
                self.bump();
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        let value = parse_int_value(&text);
        self.emit(TokKind::Number, text, line, value);
    }
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Parse the numeric value of an integer literal, ignoring `_` separators
/// and type suffixes. Returns `None` for floats and overflowing values.
pub fn parse_int_value(text: &str) -> Option<u128> {
    let clean: String = text.chars().filter(|&c| c != '_').collect();
    let (radix, digits) = match clean.as_bytes() {
        [b'0', b'x' | b'X', rest @ ..] => (16, rest),
        [b'0', b'o' | b'O', rest @ ..] => (8, rest),
        [b'0', b'b' | b'B', rest @ ..] => (2, rest),
        _ => (10, clean.as_bytes()),
    };
    if digits.contains(&b'.') {
        return None;
    }
    let mut value: u128 = 0;
    let mut any = false;
    for &d in digits {
        match (d as char).to_digit(radix) {
            Some(v) => {
                value = value.checked_mul(radix as u128)?.checked_add(v as u128)?;
                any = true;
            }
            // a type suffix (`u64`, `usize`) ends the digits; a literal
            // that *starts* with a non-digit has no value
            None if any => break,
            None => return None,
        }
    }
    any.then_some(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn strings_hide_everything() {
        let src = r#"let s = "unsafe unwrap() // not a comment /* nope */"; x"#;
        assert_eq!(idents(src), ["let", "s", "x"]);
    }

    #[test]
    fn escaped_quote_does_not_close_string() {
        let src = r#"let s = "a\" unsafe"; y"#;
        assert_eq!(idents(src), ["let", "s", "y"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r##"let s = r#"unsafe "quoted" unwrap()"#; z"##;
        assert_eq!(idents(src), ["let", "s", "z"]);
        let lexed = lex(src);
        let body: Vec<_> =
            lexed.tokens.iter().filter(|t| t.kind == TokKind::Str).map(|t| &t.text).collect();
        assert_eq!(body, [r#"unsafe "quoted" unwrap()"#]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner unsafe */ still comment */ b";
        assert_eq!(idents(src), ["a", "b"]);
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("inner unsafe"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "let c = 'a'; fn f<'a>(x: &'a str) { let q = '\\''; let n = '\\n'; }";
        let lexed = lex(src);
        let chars = lexed.tokens.iter().filter(|t| t.kind == TokKind::Char).count();
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, 3, "{lexed:?}");
        assert_eq!(lifetimes, ["a", "a"]);
    }

    #[test]
    fn byte_and_c_strings() {
        // lint: magic-ok(exercises byte-string lexing, not the wire format)
        assert_eq!(idents(r#"let m = b"EASEBEL1"; k"#), ["let", "m", "k"]);
        assert_eq!(idents(r#"let m = c"unsafe"; k"#), ["let", "m", "k"]);
        assert_eq!(idents(r##"let m = br#"unsafe"#; k"##), ["let", "m", "k"]);
        assert_eq!(idents(r"let b = b'x'; k"), ["let", "b", "k"]);
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(idents("let r#match = 1;"), ["let", "match"]);
    }

    #[test]
    fn numeric_values() {
        let lexed = lex("const A: u16 = 0xEA5E; const B: u64 = 0xEA5E_F16E; const C: i32 = 1_000;");
        let values: Vec<_> =
            lexed.tokens.iter().filter(|t| t.kind == TokKind::Number).map(|t| t.value).collect();
        // lint: magic-ok(exercises hex-literal value parsing, not the wire format)
        assert_eq!(values, [Some(0xEA5E), Some(0xEA5E_F16E), Some(1000)]);
        assert_eq!(parse_int_value("42u64"), Some(42));
        assert_eq!(parse_int_value("0b1010"), Some(10));
        assert_eq!(parse_int_value("1.5"), None);
    }

    #[test]
    fn ranges_are_not_floats() {
        let lexed = lex("for i in 0..10 {}");
        let numbers: Vec<_> =
            lexed.tokens.iter().filter(|t| t.kind == TokKind::Number).map(|t| t.value).collect();
        assert_eq!(numbers, [Some(0), Some(10)]);
    }

    #[test]
    fn comment_classification_and_lines() {
        let src = "let a = 1; // trailing\n// standalone\nlet b = 2;\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].trailing);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(!lexed.comments[1].trailing);
        assert_eq!(lexed.comments[1].line, 2);
        let b = lexed.tokens.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn attribute_tokens_are_marked() {
        let src = "#[cfg(test)]\nmod tests {}\n#![deny(unsafe_op_in_unsafe_fn)]\nfn f() {}";
        let lexed = lex(src);
        let attr: Vec<_> =
            lexed.tokens.iter().filter(|t| t.in_attr).map(|t| t.text.as_str()).collect();
        assert!(attr.contains(&"cfg"));
        assert!(attr.contains(&"deny"));
        let code: Vec<_> =
            lexed.tokens.iter().filter(|t| !t.in_attr).map(|t| t.text.as_str()).collect();
        assert!(code.contains(&"mod"));
        assert!(code.contains(&"fn"));
    }

    #[test]
    fn unterminated_inputs_do_not_loop() {
        lex("let s = \"unterminated");
        lex("/* unterminated");
        lex("let s = r#\"unterminated");
        lex("let c = '");
    }
}
