//! The annotation grammar: `// lint: <kind>-ok(<reason>)`.
//!
//! An annotation suppresses one check's findings on the line(s) it covers:
//!
//! * a **trailing** annotation (after code on the same line) covers that
//!   line;
//! * a **standalone** annotation (a comment-only line) covers the next
//!   line that carries code — so the idiomatic form is a comment
//!   immediately above the flagged statement.
//!
//! The reason is mandatory: an empty `relaxed-ok()` is itself a finding.
//! Unknown kinds after `lint:` are findings too — a typo like
//! `relxed-ok(...)` must fail the gate, not silently suppress nothing.

use crate::lexer::{Comment, Token};
use crate::{CheckId, Finding};
use std::collections::{BTreeMap, BTreeSet};

/// Suppression kinds, one per annotatable check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Kind {
    /// `relaxed-ok` — a deliberate `Ordering::Relaxed` (atomic-ordering).
    RelaxedOk,
    /// `ordering-ok` — a policy-named atomic intentionally not `SeqCst`.
    OrderingOk,
    /// `panic-ok` — a provably unreachable panic path (panic-path).
    PanicOk,
    /// `lock-io-ok` — a lock deliberately held across I/O (lock-across-io).
    LockIoOk,
    /// `magic-ok` — a literal that collides with a protocol magic but is
    /// not a protocol use (magic-constants).
    MagicOk,
}

impl Kind {
    pub const ALL: [Kind; 5] =
        [Kind::RelaxedOk, Kind::OrderingOk, Kind::PanicOk, Kind::LockIoOk, Kind::MagicOk];

    pub fn name(self) -> &'static str {
        match self {
            Kind::RelaxedOk => "relaxed-ok",
            Kind::OrderingOk => "ordering-ok",
            Kind::PanicOk => "panic-ok",
            Kind::LockIoOk => "lock-io-ok",
            Kind::MagicOk => "magic-ok",
        }
    }

    fn from_name(name: &str) -> Option<Kind> {
        Kind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// All annotations of one file, resolved to the code lines they cover.
#[derive(Debug, Default)]
pub struct Annotations {
    covered: BTreeMap<(Kind, u32), String>,
}

impl Annotations {
    /// Whether `line` is covered by an annotation of `kind`.
    pub fn allows(&self, kind: Kind, line: u32) -> bool {
        self.covered.contains_key(&(kind, line))
    }
}

/// Scan `comments` for `lint:` annotations. Returns the resolved
/// suppression set plus grammar findings (empty reason, unknown kind).
/// `tokens` locates the next code line a standalone annotation covers.
pub fn collect(file: &str, tokens: &[Token], comments: &[Comment]) -> (Annotations, Vec<Finding>) {
    let code_lines: BTreeSet<u32> = tokens.iter().map(|t| t.line).collect();
    let mut out = Annotations::default();
    let mut findings = Vec::new();
    for comment in comments {
        // Doc comments (`///`, `//!`, `/** */`, `/*! */`) are prose that may
        // *describe* the grammar; only plain comments carry annotations.
        if comment.text.starts_with(['/', '!', '*']) {
            continue;
        }
        let Some(at) = comment.text.find("lint:") else { continue };
        let spec = comment.text[at + "lint:".len()..].trim();
        match parse_spec(spec) {
            Ok((kind, reason)) => {
                // trailing comments cover their own line; standalone ones
                // cover the next line that has any code on it
                let covered = if comment.trailing {
                    Some(comment.line)
                } else {
                    code_lines.range(comment.end_line + 1..).next().copied()
                };
                if let Some(line) = covered {
                    out.covered.insert((kind, line), reason.to_string());
                }
            }
            Err(message) => findings.push(Finding {
                check: CheckId::AnnotationGrammar,
                file: file.to_string(),
                line: comment.line,
                message,
            }),
        }
    }
    (out, findings)
}

/// Parse `<kind>-ok(<reason>)`; the reason must be non-empty.
fn parse_spec(spec: &str) -> Result<(Kind, &str), String> {
    let open = spec.find('(').ok_or_else(|| {
        format!("malformed lint annotation `{spec}`: expected `<kind>-ok(<reason>)`")
    })?;
    let name = spec[..open].trim();
    let kind = Kind::from_name(name).ok_or_else(|| {
        let known: Vec<&str> = Kind::ALL.iter().map(|k| k.name()).collect();
        format!("unknown lint annotation kind `{name}` (known: {})", known.join(", "))
    })?;
    let rest = &spec[open + 1..];
    let close = rest
        .rfind(')')
        .ok_or_else(|| format!("malformed lint annotation `{spec}`: missing closing `)`"))?;
    let reason = rest[..close].trim();
    if reason.is_empty() {
        return Err(format!(
            "lint annotation `{}` has an empty reason — say why the finding is acceptable",
            kind.name()
        ));
    }
    Ok((kind, reason))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn annotations(src: &str) -> (Annotations, Vec<Finding>) {
        let lexed = lex(src);
        collect("test.rs", &lexed.tokens, &lexed.comments)
    }

    #[test]
    fn trailing_annotation_covers_its_line() {
        let (a, f) = annotations("x.load(Relaxed); // lint: relaxed-ok(stats counter)\n");
        assert!(f.is_empty());
        assert!(a.allows(Kind::RelaxedOk, 1));
        assert!(!a.allows(Kind::RelaxedOk, 2));
        assert!(!a.allows(Kind::PanicOk, 1));
    }

    #[test]
    fn standalone_annotation_covers_next_code_line() {
        let src = "// lint: panic-ok(infallible)\n\n// other comment\nfoo.unwrap();\nbar();\n";
        let (a, f) = annotations(src);
        assert!(f.is_empty());
        assert!(a.allows(Kind::PanicOk, 4));
        assert!(!a.allows(Kind::PanicOk, 5));
    }

    #[test]
    fn empty_reason_is_a_finding() {
        let (_, f) = annotations("// lint: relaxed-ok()\nx();\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("empty reason"), "{}", f[0].message);
    }

    #[test]
    fn unknown_kind_is_a_finding() {
        let (_, f) = annotations("// lint: relxed-ok(typo)\nx();\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("unknown lint annotation kind"), "{}", f[0].message);
    }

    #[test]
    fn annotation_inside_string_is_inert() {
        let (a, f) = annotations("let s = \"// lint: panic-ok(nope)\";\nfoo.unwrap();\n");
        assert!(f.is_empty());
        assert!(!a.allows(Kind::PanicOk, 1));
        assert!(!a.allows(Kind::PanicOk, 2));
    }

    #[test]
    fn reasons_may_contain_parens() {
        let (a, f) =
            annotations("// lint: magic-ok(seed (not a wire constant))\nlet s = 0xEA5E;\n");
        assert!(f.is_empty(), "{f:?}");
        assert!(a.allows(Kind::MagicOk, 2));
    }
}
