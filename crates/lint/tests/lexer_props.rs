//! Property tests for the hand-rolled lexer: token soup assembled from
//! fragments with *known* token content must lex to exactly the
//! concatenation of the fragments' tokens — so strings, raw strings,
//! chars and (nested) comments containing scary text can never leak an
//! identifier or number into what the checks see.

use ease_lint::lexer::{lex, TokKind};
use proptest::prelude::*;

/// One source fragment and the Ident texts / Number values it lexes to.
/// Opaque fragments (comments, string/char literals) expect none.
#[derive(Clone, Debug)]
struct Frag {
    src: &'static str,
    idents: &'static [&'static str],
    values: &'static [u128],
}

fn menu() -> Vec<Frag> {
    vec![
        // code fragments with known token content
        Frag { src: "let alpha = 42;", idents: &["let", "alpha"], values: &[42] },
        Frag { src: "foo.unwrap();", idents: &["foo", "unwrap"], values: &[] },
        Frag {
            src: "shutdown.load(Ordering::SeqCst);",
            idents: &["shutdown", "load", "Ordering", "SeqCst"],
            values: &[],
        },
        Frag { src: "const K: u16 = 0xBEEF;", idents: &["const", "K", "u16"], values: &[0xBEEF] },
        Frag { src: "vec![1, 2]", idents: &["vec"], values: &[1, 2] },
        Frag { src: "let r#match = 9;", idents: &["let", "match"], values: &[9] },
        // opaque fragments: full of keywords, panics and magics that must
        // never surface as Ident/Number tokens
        Frag {
            src: "// unsafe { shutdown.load(Ordering::Relaxed) } panic! 77",
            idents: &[],
            values: &[],
        },
        Frag {
            src: "/* unwrap() /* nested unsafe 0xEA5E */ still a comment */",
            idents: &[],
            values: &[],
        },
        Frag { src: r#""unsafe { boom.unwrap() } 51966""#, idents: &[], values: &[] },
        Frag { src: r##"r#"raw panic!() with "quotes" inside"#"##, idents: &[], values: &[] },
        // lint: magic-ok(opaque lexer fragment, not a wire-format use)
        Frag { src: r#"b"EASEBEL1 unwrap 123""#, idents: &[], values: &[] },
        Frag { src: "'{'", idents: &[], values: &[] },
        Frag { src: r#""escaped \" quote keeps going unwrap()""#, idents: &[], values: &[] },
    ]
}

/// Bytes for the totality soup: quote/escape/comment starters in every
/// broken combination the menu above cannot produce.
fn char_menu() -> Vec<char> {
    vec![
        'a', 'Z', '_', '9', '"', '\'', '\\', '/', '*', '#', 'r', 'b', 'c', '0', 'x', '{', '}', '[',
        ']', '(', ')', '!', '.', ':', ';', '\n', '\t', ' ', 'é', '→',
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Concatenating any mix of fragments lexes to exactly the
    /// concatenation of their expected tokens: opaque fragments
    /// contribute nothing, code fragments survive their neighbors.
    #[test]
    fn token_soup_never_leaks_idents_or_numbers(
        picks in prop::collection::vec(prop::sample::select(menu()), 1..32),
    ) {
        let src = picks.iter().map(|f| f.src).collect::<Vec<_>>().join("\n");
        let lexed = lex(&src);
        let want_idents: Vec<&str> =
            picks.iter().flat_map(|f| f.idents.iter().copied()).collect();
        let got_idents: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        prop_assert_eq!(got_idents, want_idents, "source:\n{}", src);
        let want_values: Vec<u128> =
            picks.iter().flat_map(|f| f.values.iter().copied()).collect();
        let got_values: Vec<u128> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Number)
            .filter_map(|t| t.value)
            .collect();
        prop_assert_eq!(got_values, want_values, "source:\n{}", src);
    }

    /// The lexer is total: arbitrary byte soup (unterminated strings,
    /// stray escapes, half-open comments, non-ASCII) terminates and
    /// reports sane line numbers.
    #[test]
    fn lexer_is_total_on_arbitrary_soup(
        cs in prop::collection::vec(prop::sample::select(char_menu()), 0..200),
    ) {
        let src: String = cs.into_iter().collect();
        let lexed = lex(&src);
        let max_line = src.lines().count().max(1) as u32;
        prop_assert!(
            lexed.tokens.iter().all(|t| t.line >= 1 && t.line <= max_line),
            "token line out of range for source {:?}",
            src
        );
        prop_assert!(
            lexed.comments.iter().all(|c| c.line >= 1 && c.end_line >= c.line),
            "comment span out of order for source {:?}",
            src
        );
    }

    /// A raw string delimited with N hashes must not be terminated by a
    /// quote followed by fewer than N hashes.
    #[test]
    fn raw_string_hashes_never_terminate_early(n in 1usize..4) {
        let h = "#".repeat(n);
        let lookalike = format!("\"{} almost-closed unsafe ", "#".repeat(n - 1));
        let src = format!("let s = r{h}\"{lookalike}\"{h}; tail");
        let lexed = lex(&src);
        let idents: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        prop_assert_eq!(idents, vec!["let", "s", "tail"], "source: {}", src);
    }
}
