//! Fixture tests: each check is exercised against a small source file
//! containing the violation (and a conforming twin), linted under a
//! synthetic workspace-relative path so the scoping rules apply. The
//! fixtures live outside `src/` and are skipped by the workspace walk
//! (`SKIP_DIRS`) — they contain violations *on purpose*.

use ease_lint::{all_checks, lint_source, CheckId, Finding};
use std::collections::BTreeSet;

const PR6: &str = include_str!("../fixtures/pr6_shutdown_relaxed.rs");
const ROUTER_HEALTH: &str = include_str!("../fixtures/router_health_relaxed.rs");
const ATOMIC_GOOD: &str = include_str!("../fixtures/atomic_good.rs");
const PANIC_BAD: &str = include_str!("../fixtures/panic_bad.rs");
const PANIC_GOOD: &str = include_str!("../fixtures/panic_good.rs");
const UNSAFE_BAD: &str = include_str!("../fixtures/unsafe_bad.rs");
const UNSAFE_SPILL_BAD: &str = include_str!("../fixtures/unsafe_spill_bad.rs");
const UNSAFE_GOOD: &str = include_str!("../fixtures/unsafe_good.rs");
const LOCK_IO_BAD: &str = include_str!("../fixtures/lock_io_bad.rs");
const LOCK_IO_GOOD: &str = include_str!("../fixtures/lock_io_good.rs");
const MAGIC_BAD: &str = include_str!("../fixtures/magic_bad.rs");
const MAGIC_HTTP_BAD: &str = include_str!("../fixtures/magic_http_bad.rs");
const ANNOTATION_BAD: &str = include_str!("../fixtures/annotation_bad.rs");

fn only(check: CheckId) -> BTreeSet<CheckId> {
    [check].into_iter().collect()
}

fn lines(findings: &[Finding]) -> Vec<u32> {
    findings.iter().map(|f| f.line).collect()
}

// ---------------------------------------------------------------------
// atomic-ordering
// ---------------------------------------------------------------------

/// The acceptance fixture: reintroducing the PR 6 bug (a Relaxed load on
/// a shutdown-named atomic in a serve module) is flagged, once, with the
/// exact file:line, and the finding names the bug class.
#[test]
fn pr6_shutdown_relaxed_is_flagged_at_the_exact_line() {
    let findings = lint_source("crates/core/src/serve/server.rs", PR6, &all_checks());
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!(f.check, CheckId::AtomicOrdering);
    assert_eq!((f.file.as_str(), f.line), ("crates/core/src/serve/server.rs", 15));
    assert!(f.message.contains("PR 6"), "{}", f.message);
    assert!(
        f.to_string().starts_with("crates/core/src/serve/server.rs:15: [atomic-ordering]"),
        "{f}"
    );
}

/// The policy also fires outside serve/ — a control flag is a control
/// flag wherever it lives.
#[test]
fn policy_flag_rule_is_workspace_wide() {
    let findings = lint_source("crates/ml/src/train.rs", PR6, &only(CheckId::AtomicOrdering));
    assert_eq!(lines(&findings), [15]);
}

/// PR 9: the router's backend health state is on the control-flag policy
/// list — a Relaxed store on `healthy` and a Relaxed swap on a
/// `mark_down`-named latch are each flagged, once, and the conforming
/// SeqCst load is not.
#[test]
fn router_health_state_relaxed_is_flagged() {
    let findings = lint_source(
        "crates/core/src/serve/router.rs",
        ROUTER_HEALTH,
        &only(CheckId::AtomicOrdering),
    );
    assert_eq!(lines(&findings), [14, 18], "{findings:?}");
    assert!(findings[0].message.contains("healthy"), "{}", findings[0].message);
    assert!(findings[1].message.contains("mark_down_latch"), "{}", findings[1].message);
}

#[test]
fn conforming_atomics_are_clean() {
    let findings = lint_source("crates/ml/src/train.rs", ATOMIC_GOOD, &all_checks());
    assert!(findings.is_empty(), "{findings:?}");
}

/// Disabling the check (CLI `--skip atomic-ordering`) silences it.
#[test]
fn atomic_check_is_toggleable() {
    let mut enabled = all_checks();
    enabled.remove(&CheckId::AtomicOrdering);
    let findings = lint_source("crates/core/src/serve/server.rs", PR6, &enabled);
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------------
// panic-path
// ---------------------------------------------------------------------

#[test]
fn panic_paths_in_daemon_code_are_flagged() {
    let findings =
        lint_source("crates/core/src/serve/handler.rs", PANIC_BAD, &only(CheckId::PanicPath));
    assert_eq!(lines(&findings), [2, 4, 8], "{findings:?}");
    assert!(findings.iter().all(|f| f.check == CheckId::PanicPath));
}

/// The same source outside the daemon scope is fine — unwraps in batch
/// tools are not a fleet-crash vector.
#[test]
fn panic_paths_outside_daemon_scope_are_ignored() {
    let findings = lint_source("crates/ml/src/train.rs", PANIC_BAD, &only(CheckId::PanicPath));
    assert!(findings.is_empty(), "{findings:?}");
}

/// PR 8: the spill layer is daemon-reachable — a budgeted daemon builds
/// CSRs through it on the request path, so panic paths there are flagged
/// just like in serve/.
#[test]
fn panic_paths_in_the_spill_layer_are_flagged() {
    let findings = lint_source("crates/graph/src/spill.rs", PANIC_BAD, &only(CheckId::PanicPath));
    assert_eq!(lines(&findings), [2, 4, 8], "{findings:?}");
    let findings = lint_source("crates/graph/src/mmap.rs", PANIC_BAD, &only(CheckId::PanicPath));
    assert!(!findings.is_empty(), "{findings:?}");
}

/// PR 9: the router and hash ring are daemon code — a panicking router
/// takes the whole fleet's front door down, so `serve/router.rs` and
/// `serve/ring.rs` sit inside the panic-path scope like the rest of
/// serve/.
#[test]
fn panic_paths_in_the_router_and_ring_are_flagged() {
    for path in ["crates/core/src/serve/router.rs", "crates/core/src/serve/ring.rs"] {
        let findings = lint_source(path, PANIC_BAD, &only(CheckId::PanicPath));
        assert_eq!(lines(&findings), [2, 4, 8], "{path}: {findings:?}");
    }
}

/// PR 10: the HTTP facade and JSON codec are daemon code — both sit
/// under `serve/`, so the path gate covers them with no new wiring, and
/// this pins that down.
#[test]
fn panic_paths_in_the_http_facade_and_json_codec_are_flagged() {
    for path in ["crates/core/src/serve/http.rs", "crates/core/src/serve/json.rs"] {
        let findings = lint_source(path, PANIC_BAD, &only(CheckId::PanicPath));
        assert_eq!(lines(&findings), [2, 4, 8], "{path}: {findings:?}");
    }
}

#[test]
fn annotated_and_test_code_panic_paths_are_clean() {
    let findings = lint_source("crates/core/src/serve/handler.rs", PANIC_GOOD, &all_checks());
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------------
// unsafe-hygiene
// ---------------------------------------------------------------------

#[test]
fn unsafe_without_safety_comment_is_flagged() {
    let findings = lint_source("crates/graph/src/x.rs", UNSAFE_BAD, &only(CheckId::UnsafeHygiene));
    assert_eq!(lines(&findings), [2], "{findings:?}");
    assert_eq!(findings[0].check, CheckId::UnsafeHygiene);
}

#[test]
fn safety_commented_unsafe_is_clean() {
    let findings = lint_source("crates/graph/src/x.rs", UNSAFE_GOOD, &all_checks());
    assert!(findings.is_empty(), "{findings:?}");
}

/// PR 8 acceptance: an unannotated `unsafe` spill-map in the out-of-core
/// module is flagged — the spill layer reinterprets raw mapped bytes, so
/// its invariants must be written down where they are relied on.
#[test]
fn unannotated_unsafe_spill_map_is_flagged() {
    let findings =
        lint_source("crates/graph/src/spill.rs", UNSAFE_SPILL_BAD, &only(CheckId::UnsafeHygiene));
    assert_eq!(lines(&findings), [2], "{findings:?}");
    assert_eq!(findings[0].check, CheckId::UnsafeHygiene);
}

// ---------------------------------------------------------------------
// lock-across-io
// ---------------------------------------------------------------------

#[test]
fn guard_live_across_io_is_flagged_at_the_io_line() {
    let findings =
        lint_source("crates/core/src/serve/conn.rs", LOCK_IO_BAD, &only(CheckId::LockAcrossIo));
    assert_eq!(lines(&findings), [6], "{findings:?}");
    assert!(findings[0].message.contains("`g`"), "{}", findings[0].message);
}

#[test]
fn tight_scope_drop_and_annotation_are_clean() {
    let findings =
        lint_source("crates/core/src/serve/conn.rs", LOCK_IO_GOOD, &only(CheckId::LockAcrossIo));
    assert!(findings.is_empty(), "{findings:?}");
}

/// PR 9: the router holds per-backend pool and stats mutexes — holding
/// one across a socket round-trip would serialize the whole fleet behind
/// one slow backend, so `serve/router.rs` is inside the lock-across-io
/// scope.
#[test]
fn lock_across_io_in_the_router_is_flagged() {
    let findings =
        lint_source("crates/core/src/serve/router.rs", LOCK_IO_BAD, &only(CheckId::LockAcrossIo));
    assert_eq!(lines(&findings), [6], "{findings:?}");
}

/// PR 10: HTTP sessions do socket I/O per request — a guard held across
/// a `write_all` in `serve/http.rs` would stall every keep-alive peer, so
/// the facade sits inside the lock-across-io scope automatically.
#[test]
fn lock_across_io_in_the_http_facade_is_flagged() {
    let findings =
        lint_source("crates/core/src/serve/http.rs", LOCK_IO_BAD, &only(CheckId::LockAcrossIo));
    assert_eq!(lines(&findings), [6], "{findings:?}");
}

/// The check is scoped to serve/ — a CLI tool may hold locks across
/// writes to a local file.
#[test]
fn lock_across_io_outside_serve_is_ignored() {
    let findings = lint_source("crates/ml/src/x.rs", LOCK_IO_BAD, &only(CheckId::LockAcrossIo));
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------------
// magic-constants
// ---------------------------------------------------------------------

#[test]
fn duplicated_magics_are_flagged_in_every_spelling() {
    let findings =
        lint_source("crates/graph/src/other.rs", MAGIC_BAD, &only(CheckId::MagicConstants));
    assert_eq!(lines(&findings), [1, 2, 3], "{findings:?}");
}

/// The home module may spell its own magic; foreign magics in the same
/// file are still flagged.
#[test]
fn home_module_is_exempt_for_its_own_magic_only() {
    let findings =
        lint_source("crates/core/src/serve/protocol.rs", MAGIC_BAD, &only(CheckId::MagicConstants));
    assert_eq!(lines(&findings), [3], "{findings:?}");
}

/// PR 10: the connection sniffer's HTTP prefixes are protocol magics —
/// a second spelling of `[b'G', b'E']` / `[b'P', b'O']` outside
/// `serve/http.rs` would fork what the listener recognizes. A lone
/// byte-char or a non-prefix pair is not a sniff prefix.
#[test]
fn duplicated_http_sniff_prefixes_are_flagged() {
    let findings = lint_source(
        "crates/core/src/serve/server.rs",
        MAGIC_HTTP_BAD,
        &only(CheckId::MagicConstants),
    );
    assert_eq!(lines(&findings), [1, 2], "{findings:?}");
    assert!(findings[0].message.contains("SNIFF_GET"), "{}", findings[0].message);
    assert!(findings[1].message.contains("SNIFF_POST"), "{}", findings[1].message);
}

/// `serve/http.rs` is the sniff prefixes' home module and may spell them.
#[test]
fn http_module_may_spell_its_own_sniff_prefixes() {
    let findings = lint_source(
        "crates/core/src/serve/http.rs",
        MAGIC_HTTP_BAD,
        &only(CheckId::MagicConstants),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------------
// annotation-grammar
// ---------------------------------------------------------------------

#[test]
fn malformed_annotations_are_findings() {
    let findings = lint_source("crates/core/src/x.rs", ANNOTATION_BAD, &all_checks());
    assert_eq!(lines(&findings), [2, 4], "{findings:?}");
    assert!(findings.iter().all(|f| f.check == CheckId::AnnotationGrammar));
    assert!(findings[0].message.contains("empty reason"), "{}", findings[0].message);
    assert!(
        findings[1].message.contains("unknown lint annotation kind"),
        "{}",
        findings[1].message
    );
}
