//! The gate itself, as a test: the workspace must lint clean. This is
//! what keeps `cargo test` and `ci/lint.sh` telling the same story — a
//! finding introduced anywhere fails both.

use ease_lint::{all_checks, lint_workspace};
use std::path::Path;

#[test]
fn the_workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = lint_workspace(&root, &all_checks()).expect("walk workspace sources");
    assert!(
        findings.is_empty(),
        "unannotated findings (run `cargo run -p ease-lint` for details):\n{}",
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
}
