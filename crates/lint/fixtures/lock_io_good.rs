use std::io::Write;
use std::sync::Mutex;

pub fn tight(q: &Mutex<Vec<u8>>, w: &mut impl Write) {
    let bytes = q.lock().unwrap().clone();
    w.write_all(&bytes).ok();
}

pub fn dropped(m: &Mutex<u64>, w: &mut impl Write) {
    let g = m.lock().unwrap();
    let v = *g;
    drop(g);
    w.write_all(&v.to_le_bytes()).ok();
}

pub fn annotated(m: &Mutex<u64>, w: &mut impl Write) {
    // lint: lock-io-ok(fixture: pretend single-client mode is proven here)
    let g = m.lock().unwrap();
    w.write_all(&g.to_le_bytes()).ok();
}
