use std::io::Write;
use std::sync::Mutex;

pub fn pin(m: &Mutex<u64>, w: &mut impl Write) {
    let g = m.lock().unwrap();
    w.write_all(&g.to_le_bytes()).ok();
}
