pub fn naked(p: *const u8) -> u8 {
    unsafe { *p }
}
