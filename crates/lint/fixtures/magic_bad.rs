pub const MY_MAGIC: u16 = 0xEA5E;
pub const SPLIT: [u8; 2] = [0xEA, 0x5E];
pub const TAG: &[u8] = b"EASEBEL1";
