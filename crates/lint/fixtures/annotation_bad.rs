pub fn f() -> (u8, u8) {
    // lint: panic-ok()
    let x = 1;
    // lint: relxed-ok(typo in the kind)
    let y = 2;
    (x, y)
}
