pub fn commented(p: *const u8) -> u8 {
    // SAFETY: fixture — caller passes a valid, aligned pointer.
    unsafe { *p }
}

/// An `unsafe fn` declares a caller obligation (documented in a
/// `# Safety` section); the proof belongs at call sites, so the
/// declaration itself needs no SAFETY comment.
pub unsafe fn contract(p: *const u8) -> u8 {
    // SAFETY: fixture — the contract above promises validity.
    unsafe { *p }
}
