// Fixture: the PR 9 router health-state pattern — a Relaxed store on a
// `healthy`-named atomic and a Relaxed swap inside `mark_down`, next to a
// conforming SeqCst twin. Linted under the synthetic path
// crates/core/src/serve/router.rs.
use std::sync::atomic::{AtomicBool, Ordering};

pub struct Backend {
    healthy: AtomicBool,
    mark_down_latch: AtomicBool,
}

impl Backend {
    pub fn mark_down(&self) {
        self.healthy.store(false, Ordering::Relaxed);
    }

    pub fn latch_down(&self) -> bool {
        self.mark_down_latch.swap(true, Ordering::Relaxed)
    }

    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::SeqCst)
    }
}
