pub fn map_spill_header(bytes: &[u8]) -> u64 {
    unsafe { bytes.as_ptr().cast::<u64>().read_unaligned() }
}
