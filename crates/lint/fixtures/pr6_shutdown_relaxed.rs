// Fixture: the PR 6 pattern — a Relaxed load on a SeqCst-stored shutdown
// flag. Linted under the synthetic path crates/core/src/serve/server.rs.
use std::sync::atomic::{AtomicBool, Ordering};

pub struct Shared {
    shutdown: AtomicBool,
}

impl Shared {
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }
}
