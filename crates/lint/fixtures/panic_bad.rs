pub fn worker(buf: &[u8]) -> u8 {
    let first = buf[0];
    let parsed: Result<u8, ()> = Ok(first);
    parsed.unwrap()
}

pub fn boom() {
    panic!("kill the worker");
}
