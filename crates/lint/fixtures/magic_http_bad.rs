pub const GET_PREFIX: [u8; 2] = [b'G', b'E'];
pub const POST_PREFIX: [u8; 2] = [b'P', b'O'];
pub const LONE_BYTE: u8 = b'G';
pub const NOT_A_PAIR: [u8; 2] = [b'G', b'Q'];
