// Fixture: atomic-ordering conforming code — SeqCst on the policy flag,
// an annotated weaker ordering, and an annotated Relaxed counter.
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub struct S {
    stop_requested: AtomicBool,
    served: AtomicU64,
}

impl S {
    pub fn policy_flag(&self) -> bool {
        self.stop_requested.load(Ordering::SeqCst)
    }

    pub fn annotated_weak(&self) -> bool {
        // lint: ordering-ok(fixture: pretend a proof lives here)
        self.stop_requested.load(Ordering::Acquire)
    }

    pub fn counter(&self) {
        self.served.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok(stats counter)
    }
}
