pub fn worker(buf: &[u8]) -> Option<u8> {
    buf.first().copied()
}

pub fn head(head: &[u8; 4]) -> u8 {
    head[0] // lint: panic-ok(const index into a fixed 4-byte array)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        Some(1).unwrap();
    }
}
