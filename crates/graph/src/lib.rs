//! Graph data structures and property extraction for the EASE reproduction.
//!
//! This crate provides the substrate every other crate builds on:
//!
//! * [`Graph`] — an owned directed edge list with a known vertex count,
//! * [`Csr`] — compressed sparse row adjacency (out, in, or undirected),
//! * [`DegreeTable`] — degree statistics including Pearson's first skewness
//!   coefficient used by the paper as a machine-learning feature,
//! * [`triangles`] — per-vertex triangle counts and local clustering
//!   coefficients,
//! * [`GraphProperties`] — the simple/basic/advanced feature tiers of
//!   Table III of the paper,
//! * [`PreparedGraph`] — a build-once, share-everywhere analysis context
//!   that lazily memoizes the CSRs, degree table, triangle counts and a
//!   stable content fingerprint, with sharded (multi-threaded) CSR and
//!   degree construction,
//! * [`GraphSource`] — the ingestion seam: in-memory, memory-mapped binary
//!   (`.bel`, [`bel`]) and streaming text ([`source::TextStreamSource`])
//!   backends that replay an edge stream without requiring an owned copy,
//! * [`hash`] — fast seeded mixing functions shared by the hash partitioners.
//!
//! Everything is deterministic: no global RNG state, no time-dependent
//! behaviour. Vertex ids are dense `u32`s in `0..num_vertices`.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod bel;
pub mod budget;
pub mod csr;
pub mod degree;
pub mod edge_list;
pub mod hash;
pub mod io;
pub mod mmap;
pub mod prepared;
pub mod properties;
pub mod source;
pub mod spill;
pub mod triangles;
pub mod types;

pub use bel::BelSource;
pub use budget::MemoryBudget;
pub use csr::Csr;
pub use degree::DegreeTable;
pub use edge_list::Graph;
pub use io::GraphIoError;
pub use prepared::{PreparedGraph, SourceBackedGraph};
pub use properties::{GraphProperties, PropertyTier};
pub use source::{is_bel_path, open_path, GraphSource, TextStreamSource};
pub use types::{Edge, VertexId};
