//! Core identifier and edge types.

/// Dense vertex identifier. Graphs in this workspace are laptop-scale
/// (≤ tens of millions of vertices), so `u32` halves memory traffic
/// compared to `usize` — a deliberate type-size choice (perf-book).
pub type VertexId = u32;

/// A directed edge `src -> dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    pub src: VertexId,
    pub dst: VertexId,
}

impl Edge {
    #[inline]
    pub fn new(src: VertexId, dst: VertexId) -> Self {
        Edge { src, dst }
    }

    /// Endpoints in canonical (unordered) order; used by CRVC-style hashing
    /// and by undirected metrics.
    #[inline]
    pub fn canonical(self) -> (VertexId, VertexId) {
        if self.src <= self.dst {
            (self.src, self.dst)
        } else {
            (self.dst, self.src)
        }
    }

    /// True if the edge is a self-loop.
    #[inline]
    pub fn is_loop(self) -> bool {
        self.src == self.dst
    }
}

impl From<(VertexId, VertexId)> for Edge {
    #[inline]
    fn from((src, dst): (VertexId, VertexId)) -> Self {
        Edge { src, dst }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_orders_endpoints() {
        assert_eq!(Edge::new(5, 3).canonical(), (3, 5));
        assert_eq!(Edge::new(3, 5).canonical(), (3, 5));
        assert_eq!(Edge::new(4, 4).canonical(), (4, 4));
    }

    #[test]
    fn loop_detection() {
        assert!(Edge::new(7, 7).is_loop());
        assert!(!Edge::new(7, 8).is_loop());
    }

    #[test]
    fn tuple_conversion() {
        let e: Edge = (1u32, 2u32).into();
        assert_eq!(e, Edge::new(1, 2));
    }
}
