//! Fast, seeded, deterministic mixing functions.
//!
//! The streaming hash partitioners (1DD, 1DS, 2D, CRVC, DBH) all need a
//! cheap vertex/edge hash. Following the perf-book guidance we avoid the
//! standard library's SipHash and use a SplitMix64 finalizer, which has
//! excellent avalanche behaviour and compiles to a handful of instructions.
//!
//! All functions take an explicit `seed` so that different experiment
//! repetitions can re-randomize hash placements deterministically.

/// SplitMix64 finalization step: full-avalanche 64-bit mixer.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash a single vertex id under a seed.
#[inline]
pub fn hash_vertex(v: u32, seed: u64) -> u64 {
    mix64(u64::from(v) ^ seed.rotate_left(17))
}

/// Hash an ordered pair of vertex ids under a seed.
#[inline]
pub fn hash_pair(a: u32, b: u32, seed: u64) -> u64 {
    mix64((u64::from(a) << 32 | u64::from(b)) ^ seed)
}

/// Map a hash to a partition index in `0..k`.
///
/// Uses the widening-multiply trick (Lemire) instead of `%`, which avoids an
/// integer division in the hot loop and is unbiased enough for partitioning.
#[inline]
pub fn bucket(h: u64, k: usize) -> usize {
    ((u128::from(h) * k as u128) >> 64) as usize
}

/// A tiny deterministic counter-based RNG for places where pulling in `rand`
/// would be overkill (e.g. tie-breaking inside partitioners).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }

    /// Uniform value in `0..n` (n > 0).
    #[inline]
    pub fn next_below(&mut self, n: usize) -> usize {
        bucket(self.next_u64(), n)
    }

    /// Uniform f64 in [0, 1).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_nontrivial() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(42), mix64(43));
        assert_ne!(mix64(0), 0);
    }

    #[test]
    fn bucket_stays_in_range() {
        for k in 1..20 {
            for x in 0..1000u64 {
                let b = bucket(mix64(x), k);
                assert!(b < k);
            }
        }
    }

    #[test]
    fn bucket_is_roughly_uniform() {
        let k = 8;
        let n = 80_000u64;
        let mut counts = vec![0usize; k];
        for x in 0..n {
            counts[bucket(mix64(x), k)] += 1;
        }
        let expect = n as f64 / k as f64;
        for &c in &counts {
            assert!((c as f64 - expect).abs() < expect * 0.1, "counts={counts:?}");
        }
    }

    #[test]
    fn seeded_hashes_differ_across_seeds() {
        assert_ne!(hash_vertex(7, 1), hash_vertex(7, 2));
        assert_ne!(hash_pair(7, 9, 1), hash_pair(7, 9, 2));
    }

    #[test]
    fn splitmix_stream_uniform_f64() {
        let mut rng = SplitMix64::new(99);
        let mut sum = 0.0;
        let n = 10_000;
        for _ in 0..n {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }
}
