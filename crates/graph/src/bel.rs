//! `.bel` — the binary edge-list format and its zero-copy mmap source.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  0: magic  "EASEBEL1"           (8 bytes)
//! offset  8: num_vertices                (u64)
//! offset 16: num_edges                   (u64)
//! offset 24: num_edges × (src u64, dst u64)
//! ```
//!
//! 16 bytes per edge, no parsing: ingesting a `.bel` file is a header check
//! plus `u64::from_le_bytes` per endpoint straight out of the page cache.
//! [`BelSource`] memory-maps the file ([`crate::mmap::Mmap`]) and implements
//! [`GraphSource`], so CSR/degree construction shards directly over the
//! mapping without ever materializing an owned `Vec<Edge>`.
//!
//! [`BelWriter`] streams edges to disk with a placeholder header that is
//! patched on [`BelWriter::finish`] — writers (the `ease gen`/`ease convert`
//! subcommands) do not need to know the edge count or vertex universe up
//! front, which is what makes generator-to-file streaming possible.

use std::fs::File;
use std::io::{self, BufWriter, Seek, SeekFrom, Write};
use std::ops::Range;
use std::path::{Path, PathBuf};

use crate::edge_list::Graph;
use crate::io::GraphIoError;
use crate::mmap::Mmap;
use crate::source::GraphSource;
use crate::types::Edge;

/// File magic of the binary edge-list format (versioned in the last byte).
pub const BEL_MAGIC: [u8; 8] = *b"EASEBEL1";

/// Header length in bytes: magic + num_vertices + num_edges.
pub const BEL_HEADER_LEN: usize = 24;

/// Bytes per edge record: two little-endian `u64` endpoints.
pub const BEL_EDGE_LEN: usize = 16;

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Streaming `.bel` writer: edges go to the (buffered) file as they are
/// pushed; the header is patched with the final counts on `finish`.
#[derive(Debug)]
pub struct BelWriter {
    w: BufWriter<File>,
    edge_count: u64,
    max_endpoint: u64,
    any_edge: bool,
}

impl BelWriter {
    /// Create `path`, writing a placeholder header.
    pub fn create(path: &Path) -> io::Result<BelWriter> {
        let file = File::create(path)?;
        let mut w = BufWriter::new(file);
        w.write_all(&BEL_MAGIC)?;
        w.write_all(&0u64.to_le_bytes())?;
        w.write_all(&0u64.to_le_bytes())?;
        Ok(BelWriter { w, edge_count: 0, max_endpoint: 0, any_edge: false })
    }

    /// Append one edge.
    pub fn push(&mut self, e: Edge) -> io::Result<()> {
        self.w.write_all(&u64::from(e.src).to_le_bytes())?;
        self.w.write_all(&u64::from(e.dst).to_le_bytes())?;
        self.edge_count += 1;
        self.max_endpoint = self.max_endpoint.max(u64::from(e.src)).max(u64::from(e.dst));
        self.any_edge = true;
        Ok(())
    }

    /// Patch the header with the final counts and flush. The vertex
    /// universe is inferred as `max endpoint + 1` (0 for an empty stream).
    pub fn finish(self) -> io::Result<()> {
        let nv = if self.any_edge { self.max_endpoint + 1 } else { 0 };
        self.finish_with_vertices_u64(nv)
    }

    /// [`BelWriter::finish`] with an explicit vertex universe (must cover
    /// every pushed endpoint) — preserves isolated trailing vertices.
    pub fn finish_with_vertices(self, num_vertices: usize) -> io::Result<()> {
        assert!(
            !self.any_edge || (num_vertices as u64) > self.max_endpoint,
            "vertex universe {num_vertices} does not cover max endpoint {}",
            self.max_endpoint
        );
        self.finish_with_vertices_u64(num_vertices as u64)
    }

    fn finish_with_vertices_u64(mut self, num_vertices: u64) -> io::Result<()> {
        self.w.flush()?;
        let file = self.w.get_mut();
        file.seek(SeekFrom::Start(8))?;
        file.write_all(&num_vertices.to_le_bytes())?;
        file.write_all(&self.edge_count.to_le_bytes())?;
        file.flush()
    }
}

/// Write a whole in-memory graph as `.bel`.
pub fn write_bel(graph: &Graph, path: &Path) -> io::Result<()> {
    let mut w = BelWriter::create(path)?;
    for &e in graph.edges() {
        w.push(e)?;
    }
    w.finish_with_vertices(graph.num_vertices())
}

// ---------------------------------------------------------------------
// Source
// ---------------------------------------------------------------------

/// A zero-copy [`GraphSource`] over a memory-mapped `.bel` file.
///
/// `open` validates the header, the length arithmetic, and (one mmap-speed
/// pass) that every endpoint fits the declared vertex universe — replays
/// are then infallible. Edge decoding is two unaligned `u64` loads per
/// edge; nothing proportional to `|E|` is ever allocated.
#[derive(Debug)]
pub struct BelSource {
    map: Mmap,
    path: PathBuf,
    num_vertices: usize,
    edge_count: usize,
}

impl BelSource {
    /// Map and validate `path`.
    pub fn open(path: &Path) -> Result<BelSource, GraphIoError> {
        let file = File::open(path)?;
        let map = Mmap::map(&file)?;
        let bytes = map.as_slice();
        if bytes.len() < BEL_HEADER_LEN {
            return Err(GraphIoError::Format(format!(
                "{} bytes is too short for a .bel header ({BEL_HEADER_LEN} bytes)",
                bytes.len()
            )));
        }
        if bytes[..8] != BEL_MAGIC {
            return Err(GraphIoError::Format(
                "bad magic (not an EASEBEL1 binary edge list)".into(),
            ));
        }
        let num_vertices = read_u64(bytes, 8);
        let edge_count = read_u64(bytes, 16);
        if num_vertices > u64::from(u32::MAX) + 1 {
            return Err(GraphIoError::Format(format!(
                "vertex universe {num_vertices} exceeds the u32 id space"
            )));
        }
        let expected = BEL_HEADER_LEN as u64 + edge_count.saturating_mul(BEL_EDGE_LEN as u64);
        if bytes.len() as u64 != expected {
            return Err(GraphIoError::Format(format!(
                "file is {} bytes but the header declares {edge_count} edges ({expected} bytes)",
                bytes.len()
            )));
        }
        let src = BelSource {
            map,
            path: path.to_path_buf(),
            num_vertices: num_vertices as usize,
            edge_count: edge_count as usize,
        };
        // One sequential validation pass so replay-time decoding can trust
        // the data (mmap-speed; still an order of magnitude under parsing).
        for i in 0..src.edge_count {
            let (s, d) = src.raw_edge(i);
            if s >= num_vertices || d >= num_vertices {
                return Err(GraphIoError::Format(format!(
                    "edge {i} endpoint ({s}, {d}) outside vertex universe {num_vertices}"
                )));
            }
        }
        Ok(src)
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    #[inline]
    fn raw_edge(&self, i: usize) -> (u64, u64) {
        let bytes = self.map.as_slice();
        let off = BEL_HEADER_LEN + i * BEL_EDGE_LEN;
        (read_u64(bytes, off), read_u64(bytes, off + 8))
    }

    #[inline]
    fn edge(&self, i: usize) -> Edge {
        let (s, d) = self.raw_edge(i);
        Edge::new(s as u32, d as u32)
    }
}

#[inline]
fn read_u64(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"))
}

impl GraphSource for BelSource {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    #[inline]
    fn edge_count(&self) -> usize {
        self.edge_count
    }

    fn for_each_edge(&self, f: &mut dyn FnMut(Edge)) {
        self.for_each_edge_in(0..self.edge_count, f);
    }

    fn for_each_edge_in(&self, range: Range<usize>, f: &mut dyn FnMut(Edge)) {
        debug_assert!(range.end <= self.edge_count);
        for i in range {
            f(self.edge(i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{collect_source, fingerprint_source};

    fn temp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ease_bel_test_{tag}_{}.bel", std::process::id()))
    }

    fn toy() -> Graph {
        Graph::from_pairs([(0, 1), (1, 2), (2, 0), (2, 3), (3, 0), (1, 3)])
    }

    #[test]
    fn round_trip_preserves_graph_and_fingerprint() {
        let g = toy();
        let path = temp("roundtrip");
        write_bel(&g, &path).unwrap();
        let src = BelSource::open(&path).unwrap();
        assert_eq!(src.edge_count(), g.num_edges());
        assert_eq!(GraphSource::num_vertices(&src), g.num_vertices());
        assert_eq!(collect_source(&src), g);
        assert_eq!(fingerprint_source(&src), fingerprint_source(&g));
        assert!(src.edge_slice().is_none(), "bel bytes are not Edge layout");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn isolated_trailing_vertices_survive() {
        let g = Graph::new(10, vec![Edge::new(0, 1)]);
        let path = temp("isolated");
        write_bel(&g, &path).unwrap();
        let src = BelSource::open(&path).unwrap();
        assert_eq!(GraphSource::num_vertices(&src), 10);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streaming_writer_infers_universe() {
        let path = temp("writer");
        let mut w = BelWriter::create(&path).unwrap();
        for e in [Edge::new(4, 2), Edge::new(0, 7)] {
            w.push(e).unwrap();
        }
        w.finish().unwrap();
        let src = BelSource::open(&path).unwrap();
        assert_eq!((GraphSource::num_vertices(&src), src.edge_count()), (8, 2));
        assert_eq!(collect_source(&src).edges(), &[Edge::new(4, 2), Edge::new(0, 7)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_graph_round_trips() {
        let path = temp("empty");
        BelWriter::create(&path).unwrap().finish().unwrap();
        let src = BelSource::open(&path).unwrap();
        assert_eq!((src.edge_count(), GraphSource::num_vertices(&src)), (0, 0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_files_are_typed_errors() {
        let path = temp("corrupt");
        // bad magic
        std::fs::write(&path, b"NOTABEL!aaaaaaaabbbbbbbb").unwrap();
        assert!(matches!(BelSource::open(&path), Err(GraphIoError::Format(_))));
        // short header
        std::fs::write(&path, b"EASEBEL1").unwrap();
        assert!(matches!(BelSource::open(&path), Err(GraphIoError::Format(_))));
        // declared edges exceed the payload
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&BEL_MAGIC);
        bytes.extend_from_slice(&4u64.to_le_bytes());
        bytes.extend_from_slice(&3u64.to_le_bytes()); // 3 edges declared, 0 present
        std::fs::write(&path, &bytes).unwrap();
        let err = BelSource::open(&path).unwrap_err();
        assert!(err.to_string().contains("declares 3 edges"), "{err}");
        // endpoint outside the declared universe
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&BEL_MAGIC);
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&9u64.to_le_bytes()); // dst 9 >= nv 2
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(BelSource::open(&path), Err(GraphIoError::Format(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = BelSource::open(Path::new("/definitely/not/here.bel")).unwrap_err();
        assert!(matches!(err, GraphIoError::Io(_)));
    }
}
