//! Graph property extraction — the feature tiers of Table III.
//!
//! The paper distinguishes three feature sets:
//!
//! * **Simple**: `|E|`, `|V|` — cheap, used by the processing-time predictor.
//! * **Basic**: simple + mean degree, density, in-degree skewness,
//!   out-degree skewness — used by quality & time predictors.
//! * **Advanced**: basic + average triangles + average local clustering
//!   coefficient — compute-intensive, optionally improves RF prediction.

use crate::edge_list::Graph;
use crate::prepared::PreparedGraph;

/// Which tier of features to compute / use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PropertyTier {
    Simple,
    Basic,
    Advanced,
}

impl PropertyTier {
    pub const ALL: [PropertyTier; 3] =
        [PropertyTier::Simple, PropertyTier::Basic, PropertyTier::Advanced];

    pub fn name(self) -> &'static str {
        match self {
            PropertyTier::Simple => "simple",
            PropertyTier::Basic => "basic",
            PropertyTier::Advanced => "advanced",
        }
    }
}

/// Extracted graph properties (paper Sec. II-B).
///
/// `avg_triangles`/`avg_lcc` are `None` unless the advanced tier was
/// requested — they are the only super-linear-cost features.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphProperties {
    pub num_vertices: usize,
    pub num_edges: usize,
    /// `|E| / (|V|·(|V|−1))`
    pub density: f64,
    /// `2|E| / |V|`
    pub mean_degree: f64,
    /// Pearson's first skewness of the in-degree distribution.
    pub in_degree_skew: f64,
    /// Pearson's first skewness of the out-degree distribution.
    pub out_degree_skew: f64,
    /// Average number of triangles per vertex (advanced tier only).
    pub avg_triangles: Option<f64>,
    /// Average local clustering coefficient (advanced tier only).
    pub avg_lcc: Option<f64>,
}

impl GraphProperties {
    /// Compute properties up to the requested tier.
    ///
    /// Cold path: wraps the graph in a throwaway [`PreparedGraph`]. Callers
    /// that extract repeatedly from the same graph (profiling workers, the
    /// query service) should build one context and use
    /// [`Self::compute_prepared`] so the degree table and the undirected
    /// adjacency are built exactly once.
    pub fn compute(graph: &Graph, tier: PropertyTier) -> Self {
        Self::compute_prepared(&PreparedGraph::of(graph), tier)
    }

    /// Compute properties as a thin view over an analysis context: every
    /// super-constant structure (degree table, undirected simple CSR,
    /// triangle counts) comes from the context's memoized caches. The
    /// `Advanced` tier builds the undirected CSR exactly once — triangle
    /// counts and the clustering coefficient share it.
    pub fn compute_prepared(prepared: &PreparedGraph<'_>, tier: PropertyTier) -> Self {
        let n = prepared.num_vertices();
        let m = prepared.num_edges();
        let density = if n > 1 { m as f64 / (n as f64 * (n as f64 - 1.0)) } else { 0.0 };
        let mean_degree = if n > 0 { 2.0 * m as f64 / n as f64 } else { 0.0 };
        let (in_skew, out_skew) = if matches!(tier, PropertyTier::Simple) {
            (0.0, 0.0)
        } else {
            let deg = prepared.degrees();
            (deg.in_moments.pearson_skew, deg.out_moments.pearson_skew)
        };
        let (avg_triangles, avg_lcc) = if matches!(tier, PropertyTier::Advanced) {
            let s = prepared.triangle_stats();
            (Some(s.avg_triangles), Some(s.avg_lcc))
        } else {
            (None, None)
        };
        GraphProperties {
            num_vertices: n,
            num_edges: m,
            density,
            mean_degree,
            in_degree_skew: in_skew,
            out_degree_skew: out_skew,
            avg_triangles,
            avg_lcc,
        }
    }

    /// Convenience: compute the full advanced tier.
    pub fn compute_advanced(graph: &Graph) -> Self {
        Self::compute(graph, PropertyTier::Advanced)
    }

    /// Feature vector for a given tier; panics if the tier requires advanced
    /// values that were not computed. Order is stable and documented:
    /// simple  = [|E|, |V|]
    /// basic   = simple + [mean_degree, density, in_skew, out_skew]
    /// advanced= basic + [avg_triangles, avg_lcc]
    pub fn feature_vector(&self, tier: PropertyTier) -> Vec<f64> {
        let mut v = vec![self.num_edges as f64, self.num_vertices as f64];
        if matches!(tier, PropertyTier::Basic | PropertyTier::Advanced) {
            v.extend([self.mean_degree, self.density, self.in_degree_skew, self.out_degree_skew]);
        }
        if matches!(tier, PropertyTier::Advanced) {
            v.push(self.avg_triangles.expect("advanced properties not computed"));
            v.push(self.avg_lcc.expect("advanced properties not computed"));
        }
        v
    }

    /// Column names matching [`Self::feature_vector`].
    pub fn feature_names(tier: PropertyTier) -> Vec<&'static str> {
        let mut v = vec!["num_edges", "num_vertices"];
        if matches!(tier, PropertyTier::Basic | PropertyTier::Advanced) {
            v.extend(["mean_degree", "density", "in_degree_skew", "out_degree_skew"]);
        }
        if matches!(tier, PropertyTier::Advanced) {
            v.extend(["avg_triangles", "avg_lcc"]);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_graph() -> Graph {
        Graph::from_pairs([(0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn density_and_mean_degree() {
        let p = GraphProperties::compute(&triangle_graph(), PropertyTier::Basic);
        assert!((p.density - 3.0 / 6.0).abs() < 1e-12);
        assert!((p.mean_degree - 2.0).abs() < 1e-12);
    }

    #[test]
    fn advanced_tier_fills_triangles() {
        let p = GraphProperties::compute_advanced(&triangle_graph());
        assert_eq!(p.avg_triangles, Some(1.0));
        assert_eq!(p.avg_lcc, Some(1.0));
    }

    #[test]
    fn basic_tier_leaves_advanced_none() {
        let p = GraphProperties::compute(&triangle_graph(), PropertyTier::Basic);
        assert!(p.avg_triangles.is_none());
        assert!(p.avg_lcc.is_none());
    }

    #[test]
    fn feature_vector_lengths_match_names() {
        let p = GraphProperties::compute_advanced(&triangle_graph());
        for tier in PropertyTier::ALL {
            assert_eq!(p.feature_vector(tier).len(), GraphProperties::feature_names(tier).len());
        }
        assert_eq!(p.feature_vector(PropertyTier::Simple).len(), 2);
        assert_eq!(p.feature_vector(PropertyTier::Basic).len(), 6);
        assert_eq!(p.feature_vector(PropertyTier::Advanced).len(), 8);
    }

    #[test]
    #[should_panic(expected = "advanced properties not computed")]
    fn advanced_vector_requires_advanced_compute() {
        let p = GraphProperties::compute(&triangle_graph(), PropertyTier::Basic);
        let _ = p.feature_vector(PropertyTier::Advanced);
    }

    #[test]
    fn skew_positive_for_star() {
        // Star: hub has out-degree n-1, leaves 0 -> out-degree distribution
        // is right-skewed (mean > mode = 0).
        let g = Graph::from_pairs((1..40u32).map(|i| (0u32, i)));
        let p = GraphProperties::compute(&g, PropertyTier::Basic);
        assert!(p.out_degree_skew > 0.0);
    }

    #[test]
    fn singleton_graph_is_degenerate_but_finite() {
        let p = GraphProperties::compute(&Graph::empty(1), PropertyTier::Advanced);
        assert_eq!(p.density, 0.0);
        assert_eq!(p.mean_degree, 0.0);
        assert!(p.feature_vector(PropertyTier::Advanced).iter().all(|x| x.is_finite()));
    }
}
