//! `PreparedGraph` — a build-once, share-everywhere graph analysis context.
//!
//! Every layer of the workspace consumes *derived* graph structure: property
//! extraction needs the degree table and the undirected simple adjacency,
//! triangle counting needs the same adjacency, DBH and HEP need total
//! degrees, the placement simulator needs out- and total-degree vectors, and
//! profiling runs 11 partitioners × K on the *same* graph. Rebuilding each of
//! those from the raw edge list at every call site is the dominant shared
//! cost of the training pipeline (the HEP paper makes the same observation
//! about degree/adjacency precomputation across partitioners).
//!
//! [`PreparedGraph`] wraps any [`GraphSource`] — an in-memory [`Graph`], a
//! memory-mapped `.bel` file ([`crate::bel::BelSource`]), or a streaming
//! text reader ([`crate::source::TextStreamSource`]) — and lazily memoizes
//! the expensive derived structures behind [`OnceLock`]s:
//!
//! * out-/in-/undirected-simple CSR adjacency, built with counting and
//!   placement passes **sharded over edge ranges** (scoped `std::thread`
//!   workers; sequential when one core — or a non-seekable source — is all
//!   there is),
//! * the [`DegreeTable`] (degrees + moments + skewness), whose counting
//!   pass also folds the content fingerprint incrementally,
//! * per-vertex triangle counts of the undirected simple graph,
//! * a stable content [fingerprint](PreparedGraph::fingerprint) for
//!   query-side property caches.
//!
//! Nothing is computed until first use, every structure is computed at most
//! once, and `&PreparedGraph` is `Send + Sync`, so one context can serve a
//! whole profiling fan-out. Source-backed contexts never materialize an
//! owned `Vec<Edge>` — derived structure is built straight off the source's
//! replayable stream. Edge access goes through
//! [`PreparedGraph::for_each_edge`] (monomorphized slice loop for in-memory
//! graphs, streaming replay otherwise); [`PreparedGraph::graph`] returns a
//! typed [`SourceBackedGraph`] error on source-backed contexts, so even a
//! long-running daemon can never be crashed by an accessor that assumes an
//! in-memory edge list.
//!
//! ```
//! use ease_graph::{Graph, PreparedGraph, PropertyTier};
//!
//! let g = Graph::from_pairs([(0, 1), (1, 2), (2, 0)]);
//! let prepared = PreparedGraph::of(&g);
//! let props = prepared.properties(PropertyTier::Advanced);
//! assert_eq!(props.avg_triangles, Some(1.0));
//! // the second extraction reuses every memoized structure
//! let again = prepared.properties(PropertyTier::Advanced);
//! assert_eq!(props, again);
//! assert_eq!(prepared.undirected_csr_builds(), 1);
//! ```

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use crate::budget::MemoryBudget;
use crate::csr::{Csr, Direction};
use crate::degree::DegreeTable;
use crate::edge_list::Graph;
use crate::properties::{GraphProperties, PropertyTier};
use crate::source::{each_edge, fingerprint_source_sharded, GraphSource};
use crate::triangles::{self, TriangleStats};
use crate::types::Edge;

/// Typed error of [`PreparedGraph::graph`]: the context is backed by a
/// replayable [`GraphSource`] (mmap'd `.bel`, streamed text, …) and holds
/// no in-memory [`Graph`] to hand out. Materializing one would defeat the
/// zero-copy ingestion path, so the accessor refuses instead — with an
/// error a server loop can route, not a panic that would take the process
/// down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceBackedGraph;

impl std::fmt::Display for SourceBackedGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "graph context is source-backed (mmap/stream): no in-memory edge list \
             is materialized; use for_each_edge or try_graph"
        )
    }
}

impl std::error::Error for SourceBackedGraph {}

/// How the context holds its graph: a borrowed or `Arc`-shared in-memory
/// [`Graph`], or any other [`GraphSource`] (borrowed or owned).
enum GraphHandle<'g> {
    Borrowed(&'g Graph),
    Shared(Arc<Graph>),
    SourceRef(&'g dyn GraphSource),
    SourceOwned(Box<dyn GraphSource + 'g>),
}

/// A graph plus lazily built, memoized derived structure. See the module
/// docs for the motivation; the short version is *build once, share
/// everywhere* — now over any ingestion backend.
pub struct PreparedGraph<'g> {
    handle: GraphHandle<'g>,
    /// Shard count for the parallel construction passes (`None` = one shard
    /// per available core at build time).
    shards: Option<usize>,
    out_csr: OnceLock<Csr>,
    in_csr: OnceLock<Csr>,
    undirected_simple: OnceLock<Csr>,
    degrees: OnceLock<DegreeTable>,
    triangle_counts: OnceLock<Vec<u64>>,
    fingerprint: OnceLock<u64>,
    /// Observability hook: how many times the undirected simple CSR was
    /// actually constructed (must stay ≤ 1; locked by tests).
    undirected_builds: AtomicU32,
    /// Heap budget for memoized CSRs (PR 8): charge on in-heap build, spill
    /// to a mapped temp file when the charge is refused. `None` = in-heap
    /// always, exactly the pre-budget behaviour.
    budget: Option<Arc<MemoryBudget>>,
    /// Bytes this context has charged to `budget` (released on drop).
    charged: AtomicUsize,
    /// Observability hook: how many memoized CSRs went out of core.
    spilled_builds: AtomicU32,
}

impl std::fmt::Debug for PreparedGraph<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedGraph")
            .field("num_vertices", &self.num_vertices())
            .field("num_edges", &self.num_edges())
            .field("in_memory", &self.try_graph().is_some())
            .field("out_csr", &self.out_csr.get().is_some())
            .field("in_csr", &self.in_csr.get().is_some())
            .field("undirected_simple", &self.undirected_simple.get().is_some())
            .field("degrees", &self.degrees.get().is_some())
            .field("triangle_counts", &self.triangle_counts.get().is_some())
            .field("fingerprint", &self.fingerprint.get())
            .finish()
    }
}

impl<'g> PreparedGraph<'g> {
    /// Borrow `graph` without copying it. The context lives at most as long
    /// as the graph.
    pub fn of(graph: &'g Graph) -> PreparedGraph<'g> {
        Self::from_handle(GraphHandle::Borrowed(graph))
    }

    /// Take ownership of `graph` (wrapped in an `Arc` so the context can
    /// later hand out shared references).
    pub fn new(graph: Graph) -> PreparedGraph<'static> {
        PreparedGraph::from_arc(Arc::new(graph))
    }

    /// Share an already `Arc`-owned graph — the profiling fan-out path:
    /// workers receive clones of the `Arc`, never of the edge list.
    pub fn from_arc(graph: Arc<Graph>) -> PreparedGraph<'static> {
        PreparedGraph::from_handle(GraphHandle::Shared(graph))
    }

    /// Borrow any [`GraphSource`] — the zero-copy ingestion path: a
    /// memory-mapped `.bel` file or a streaming text reader feeds the
    /// context directly, and no owned `Vec<Edge>` is ever materialized.
    pub fn of_source(source: &'g dyn GraphSource) -> PreparedGraph<'g> {
        Self::from_handle(GraphHandle::SourceRef(source))
    }

    /// Take ownership of a [`GraphSource`].
    pub fn from_source(source: Box<dyn GraphSource + 'g>) -> PreparedGraph<'g> {
        Self::from_handle(GraphHandle::SourceOwned(source))
    }

    fn from_handle(handle: GraphHandle<'g>) -> Self {
        PreparedGraph {
            handle,
            shards: None,
            out_csr: OnceLock::new(),
            in_csr: OnceLock::new(),
            undirected_simple: OnceLock::new(),
            degrees: OnceLock::new(),
            triangle_counts: OnceLock::new(),
            fingerprint: OnceLock::new(),
            undirected_builds: AtomicU32::new(0),
            budget: None,
            charged: AtomicUsize::new(0),
            spilled_builds: AtomicU32::new(0),
        }
    }

    /// Pin the shard count of the parallel construction passes (`1` forces
    /// the sequential path). Defaults to one shard per available core.
    /// Derived structures are bit-identical for every shard count; this
    /// knob exists for benchmarks and for tests that lock that invariant.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards.max(1));
        self
    }

    /// Attach a (shareable) memory budget: each CSR about to be memoized
    /// charges its exact heap bytes first, and a refused charge reroutes
    /// the build out of core — spilled to an unlinked `EASECSR1` temp file
    /// and mmapped read-only (see [`crate::spill`]). Every derived result
    /// is bit-identical either way; charges are released when the context
    /// drops.
    pub fn with_memory_budget(mut self, budget: Arc<MemoryBudget>) -> Self {
        self.budget = Some(budget);
        self
    }

    /// The attached memory budget, if any.
    pub fn memory_budget(&self) -> Option<&Arc<MemoryBudget>> {
        self.budget.as_ref()
    }

    /// How many memoized CSRs were built out of core so far (0 without a
    /// budget or when everything fit).
    pub fn spilled_csr_builds(&self) -> u32 {
        self.spilled_builds.load(Ordering::Relaxed) // lint: relaxed-ok(diagnostic counter)
    }

    fn build_shards(&self) -> usize {
        self.shards
            .unwrap_or_else(|| std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1))
    }

    /// Heap-or-spill decision for every memoized CSR. No budget — or a
    /// granted charge — builds in heap exactly as before; a refused charge
    /// streams the build through a bounded chunk into a spill file. A
    /// spill I/O failure (full temp disk, unwritable dir) falls back to
    /// the in-heap build: correctness over the budget, and a daemon that
    /// degrades instead of dying.
    fn build_csr(&self, direction: Direction, simplify: bool) -> Csr {
        let shards = self.build_shards();
        let in_heap = || {
            if simplify {
                Csr::build_undirected_simple_source(self.source(), shards)
            } else {
                Csr::build_source(self.source(), direction, shards)
            }
        };
        let Some(budget) = &self.budget else { return in_heap() };
        let entries = match direction {
            Direction::Undirected => self.num_edges().saturating_mul(2),
            Direction::Out | Direction::In => self.num_edges(),
        };
        let bytes = Csr::heap_bytes(self.num_vertices(), entries);
        if budget.try_charge(bytes) {
            // lint: relaxed-ok(accounting counter read only by our own Drop)
            self.charged.fetch_add(bytes, Ordering::Relaxed);
            return in_heap();
        }
        match Csr::build_spilled(
            self.source(),
            direction,
            shards,
            simplify,
            budget.spill_chunk_bytes(),
            budget.spill_dir(),
        ) {
            Ok(csr) => {
                // lint: relaxed-ok(diagnostic counter; OnceLock publishes the CSR)
                self.spilled_builds.fetch_add(1, Ordering::Relaxed);
                budget.note_spill();
                csr
            }
            Err(_) => in_heap(),
        }
    }

    /// The ingestion source backing this context.
    #[inline]
    pub fn source(&self) -> &dyn GraphSource {
        match &self.handle {
            GraphHandle::Borrowed(g) => *g,
            GraphHandle::Shared(g) => g.as_ref(),
            GraphHandle::SourceRef(s) => *s,
            GraphHandle::SourceOwned(s) => s.as_ref(),
        }
    }

    /// The underlying in-memory graph. Source-backed contexts (mmap /
    /// stream) exist precisely so no owned edge list is materialized, so
    /// for them this is a typed [`SourceBackedGraph`] error — never a
    /// panic. Long-running callers (the `ease serve` daemon) must stay
    /// alive no matter which ingestion backend a request arrives on; use
    /// [`PreparedGraph::for_each_edge`] for backend-agnostic edge access
    /// or [`PreparedGraph::try_graph`] when `Option` is more convenient.
    #[inline]
    pub fn graph(&self) -> Result<&Graph, SourceBackedGraph> {
        self.try_graph().ok_or(SourceBackedGraph)
    }

    /// The underlying in-memory graph, if this context wraps one.
    #[inline]
    pub fn try_graph(&self) -> Option<&Graph> {
        match &self.handle {
            GraphHandle::Borrowed(g) => Some(g),
            GraphHandle::Shared(g) => Some(g),
            GraphHandle::SourceRef(_) | GraphHandle::SourceOwned(_) => None,
        }
    }

    /// A shared handle to the graph, if the context owns one
    /// (`None` for borrowed or source-backed contexts).
    pub fn shared_graph(&self) -> Option<Arc<Graph>> {
        match &self.handle {
            GraphHandle::Shared(g) => Some(Arc::clone(g)),
            _ => None,
        }
    }

    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.source().num_vertices()
    }

    #[inline]
    pub fn num_edges(&self) -> usize {
        self.source().edge_count()
    }

    /// Replay the edge stream in order. In-memory graphs iterate their
    /// slice (fully monomorphized); other sources replay their stream.
    #[inline]
    pub fn for_each_edge<F: FnMut(Edge)>(&self, f: F) {
        each_edge(self.source(), f);
    }

    /// [`PreparedGraph::for_each_edge`] with the 0-based stream index —
    /// the index every [`crate::Edge`]-indexed structure (partition
    /// assignments, eligibility masks) is keyed by.
    #[inline]
    pub fn for_each_edge_indexed<F: FnMut(usize, Edge)>(&self, mut f: F) {
        let mut i = 0usize;
        each_edge(self.source(), |e| {
            f(i, e);
            i += 1;
        });
    }

    /// The edges as a contiguous slice, when the backend has them in
    /// memory (`None` for mmap/stream backends).
    #[inline]
    pub fn edge_slice(&self) -> Option<&[Edge]> {
        self.source().edge_slice()
    }

    /// Out-neighbor adjacency, built on first use (sharded construction).
    pub fn out_csr(&self) -> &Csr {
        self.out_csr.get_or_init(|| self.build_csr(Direction::Out, false))
    }

    /// In-neighbor adjacency, built on first use (sharded construction).
    pub fn in_csr(&self) -> &Csr {
        self.in_csr.get_or_init(|| self.build_csr(Direction::In, false))
    }

    /// Undirected *simple* adjacency (sorted lists, no loops/duplicates) —
    /// the input of triangle counting and neighborhood expansion. Built at
    /// most once per context.
    pub fn undirected_simple(&self) -> &Csr {
        self.undirected_simple.get_or_init(|| {
            // lint: relaxed-ok(diagnostic build counter; OnceLock publishes the CSR itself)
            self.undirected_builds.fetch_add(1, Ordering::Relaxed);
            self.build_csr(Direction::Undirected, true)
        })
    }

    /// How many times the undirected simple CSR was constructed so far
    /// (0 before first use, 1 ever after — memoization makes more
    /// impossible).
    pub fn undirected_csr_builds(&self) -> u32 {
        self.undirected_builds.load(Ordering::Relaxed) // lint: relaxed-ok(diagnostic counter)
    }

    /// Degree tables + moments/skewness, built on first use. The sharded
    /// counting pass folds the content fingerprint as it goes, so a
    /// context that derives degrees gets [`PreparedGraph::fingerprint`]
    /// for free — one traversal, two memoized results.
    pub fn degrees(&self) -> &DegreeTable {
        self.degrees.get_or_init(|| {
            let (table, fingerprint) =
                DegreeTable::compute_source(self.source(), self.build_shards());
            // Opportunistic: a concurrent standalone fingerprint pass may
            // have won the race — the values are identical either way.
            let _ = self.fingerprint.set(fingerprint);
            table
        })
    }

    /// Per-vertex triangle counts of the undirected simple graph, built on
    /// first use from the (shared) undirected adjacency.
    pub fn triangle_counts(&self) -> &[u64] {
        self.triangle_counts
            .get_or_init(|| triangles::triangle_counts_from_simple(self.undirected_simple()))
    }

    /// Averaged triangle statistics (`t(G)`, `C(G)`) from the memoized
    /// adjacency and counts — bit-identical to
    /// [`triangles::triangle_stats`] on the same graph.
    pub fn triangle_stats(&self) -> TriangleStats {
        triangles::stats_from_parts(self.undirected_simple(), self.triangle_counts())
    }

    /// Graph properties up to `tier`, computed from the memoized structures
    /// (see [`GraphProperties::compute_prepared`]). Only the structures the
    /// tier needs are built: `Simple` touches nothing, `Basic` the degree
    /// table, `Advanced` additionally the undirected CSR + triangle counts.
    pub fn properties(&self, tier: PropertyTier) -> GraphProperties {
        GraphProperties::compute_prepared(self, tier)
    }

    /// A stable content fingerprint: equal for identical `(num_vertices,
    /// edge stream)` inputs — across every ingestion backend and shard
    /// count — and different (with overwhelming probability) when any edge,
    /// the edge order, or the vertex universe changes. Keys the query-side
    /// property caches; see [`crate::source`] for the block construction.
    pub fn fingerprint(&self) -> u64 {
        *self
            .fingerprint
            .get_or_init(|| fingerprint_source_sharded(self.source(), self.build_shards()))
    }
}

impl Drop for PreparedGraph<'_> {
    fn drop(&mut self) {
        if let Some(budget) = &self.budget {
            // lint: relaxed-ok(accounting counter; no memory is published through it)
            budget.release(self.charged.load(Ordering::Relaxed));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::collect_source;
    use crate::types::Edge;
    use std::ops::Range;

    fn toy() -> Graph {
        Graph::from_pairs([(0, 1), (1, 2), (2, 0), (2, 3), (3, 0), (1, 3)])
    }

    /// A source that hides its slice — simulates the mmap/stream backends
    /// inside this crate's unit tests.
    struct NoSlice(Graph);

    impl GraphSource for NoSlice {
        fn num_vertices(&self) -> usize {
            self.0.num_vertices()
        }
        fn edge_count(&self) -> usize {
            self.0.num_edges()
        }
        fn for_each_edge(&self, f: &mut dyn FnMut(Edge)) {
            GraphSource::for_each_edge(&self.0, f)
        }
        fn for_each_edge_in(&self, range: Range<usize>, f: &mut dyn FnMut(Edge)) {
            self.0.for_each_edge_in(range, f)
        }
    }

    #[test]
    fn advanced_properties_build_undirected_csr_exactly_once() {
        let g = toy();
        let prepared = PreparedGraph::of(&g);
        assert_eq!(prepared.undirected_csr_builds(), 0, "lazy until first use");
        let a = prepared.properties(PropertyTier::Advanced);
        assert_eq!(prepared.undirected_csr_builds(), 1);
        // repeated extraction + direct access: still exactly one build
        let b = prepared.properties(PropertyTier::Advanced);
        let _ = prepared.triangle_counts();
        let _ = prepared.undirected_simple();
        let _ = prepared.triangle_stats();
        assert_eq!(prepared.undirected_csr_builds(), 1);
        assert_eq!(a, b);
    }

    #[test]
    fn simple_tier_builds_nothing() {
        let g = toy();
        let prepared = PreparedGraph::of(&g);
        let p = prepared.properties(PropertyTier::Simple);
        assert_eq!(p.num_edges, 6);
        assert_eq!(prepared.undirected_csr_builds(), 0);
        assert!(!format!("{prepared:?}").contains("degrees: true"));
    }

    #[test]
    fn memoized_views_match_direct_builds() {
        let g = toy();
        let prepared = PreparedGraph::of(&g);
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(
                prepared.out_csr().neighbors(v),
                Csr::build(&g, Direction::Out).neighbors(v)
            );
            assert_eq!(prepared.in_csr().neighbors(v), Csr::build(&g, Direction::In).neighbors(v));
            assert_eq!(
                prepared.undirected_simple().neighbors(v),
                Csr::build_undirected_simple(&g).neighbors(v)
            );
        }
        assert_eq!(prepared.degrees().total, g.total_degrees());
        assert_eq!(prepared.triangle_counts(), triangles::triangle_counts(&g).as_slice());
    }

    #[test]
    fn ownership_modes_agree() {
        let g = toy();
        let borrowed = PreparedGraph::of(&g);
        let owned = PreparedGraph::new(g.clone());
        let shared = PreparedGraph::from_arc(Arc::new(g.clone()));
        assert_eq!(borrowed.fingerprint(), owned.fingerprint());
        assert_eq!(owned.fingerprint(), shared.fingerprint());
        assert!(borrowed.shared_graph().is_none());
        let arc = shared.shared_graph().expect("shared context owns an Arc");
        assert_eq!(arc.num_edges(), shared.num_edges());
        // Arc sharing: no deep copy, the clone points at the same allocation
        assert!(Arc::ptr_eq(&arc, &shared.shared_graph().unwrap()));
    }

    #[test]
    fn source_backed_context_matches_graph_backed_bit_for_bit() {
        let g = toy();
        let via_graph = PreparedGraph::of(&g);
        let hidden = NoSlice(g.clone());
        let via_source = PreparedGraph::of_source(&hidden).with_shards(3);
        assert!(via_source.try_graph().is_none());
        assert!(via_source.edge_slice().is_none());
        assert_eq!(via_source.num_vertices(), via_graph.num_vertices());
        assert_eq!(via_source.num_edges(), via_graph.num_edges());
        assert_eq!(via_source.fingerprint(), via_graph.fingerprint());
        assert_eq!(
            via_source.properties(PropertyTier::Advanced),
            via_graph.properties(PropertyTier::Advanced)
        );
        assert_eq!(via_source.degrees().total, via_graph.degrees().total);
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(via_source.out_csr().neighbors(v), via_graph.out_csr().neighbors(v));
        }
        // indexed replay sees the same stream
        let mut seen = Vec::new();
        via_source.for_each_edge_indexed(|i, e| seen.push((i, e)));
        assert_eq!(seen.len(), 6);
        assert_eq!(seen[4], (4, g.edges()[4]));
        // owned-source construction works too
        let owned = PreparedGraph::from_source(Box::new(NoSlice(g.clone())));
        assert_eq!(owned.fingerprint(), via_graph.fingerprint());
        assert_eq!(collect_source(owned.source()), g);
    }

    #[test]
    fn graph_accessor_is_a_typed_error_on_source_backed_contexts() {
        let hidden = NoSlice(toy());
        let prepared = PreparedGraph::of_source(&hidden);
        // never a panic: a daemon serving mmap'd inputs must survive any
        // caller that assumed an in-memory edge list
        assert_eq!(prepared.graph().unwrap_err(), SourceBackedGraph);
        assert!(prepared.graph().unwrap_err().to_string().contains("source-backed"));
        let g = toy();
        let in_memory = PreparedGraph::of(&g);
        assert_eq!(in_memory.graph().expect("graph-backed").num_edges(), g.num_edges());
    }

    #[test]
    fn degrees_fold_the_fingerprint_in_the_same_pass() {
        let g = toy();
        let reference = PreparedGraph::of(&g).fingerprint();
        let prepared = PreparedGraph::of(&g);
        let _ = prepared.degrees();
        // the fused pass already populated the fingerprint cache
        assert_eq!(prepared.fingerprint.get().copied(), Some(reference));
        assert_eq!(prepared.fingerprint(), reference);
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let g = toy();
        let a = PreparedGraph::of(&g).fingerprint();
        let b = PreparedGraph::of(&g.clone()).fingerprint();
        assert_eq!(a, b, "same content -> same fingerprint");
        // flip one edge endpoint
        let mut changed = g.clone();
        changed.edges_mut()[0] = Edge::new(0, 2);
        assert_ne!(a, PreparedGraph::of(&changed).fingerprint());
        // add an edge
        let mut grown = g.clone();
        grown.push_edge(0, 3);
        assert_ne!(a, PreparedGraph::of(&grown).fingerprint());
        // grow the vertex universe without touching edges
        let padded = Graph::new(g.num_vertices() + 1, g.edges().to_vec());
        assert_ne!(a, PreparedGraph::of(&padded).fingerprint());
    }

    #[test]
    fn shard_counts_do_not_change_any_derived_structure() {
        let g = crate::Graph::from_pairs((0..500u32).map(|i| (i % 37, (i * 13) % 41)));
        let reference = PreparedGraph::of(&g).with_shards(1);
        for shards in [2, 4, 16] {
            let sharded = PreparedGraph::of(&g).with_shards(shards);
            assert_eq!(sharded.fingerprint(), reference.fingerprint(), "x{shards}");
            assert_eq!(
                sharded.properties(PropertyTier::Advanced),
                reference.properties(PropertyTier::Advanced),
                "x{shards}"
            );
            assert_eq!(sharded.degrees().out, reference.degrees().out, "x{shards}");
        }
    }

    #[test]
    fn prepared_is_shareable_across_threads() {
        let g = toy();
        let prepared = PreparedGraph::of(&g);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let p = prepared.properties(PropertyTier::Advanced);
                    assert_eq!(p.num_edges, 6);
                });
            }
        });
        assert_eq!(prepared.undirected_csr_builds(), 1, "OnceLock serializes the build");
    }

    #[test]
    fn budget_zero_spills_and_unlimited_never_does() {
        let g = toy();
        let dir = std::env::temp_dir().join(format!("ease_prep_budget_{}", std::process::id()));
        let zero = Arc::new(MemoryBudget::bytes(0).with_spill_dir(&dir));
        let spilled = PreparedGraph::of(&g).with_memory_budget(Arc::clone(&zero));
        assert!(spilled.undirected_simple().is_spilled() || cfg!(not(unix)));
        let _ = spilled.out_csr();
        let _ = spilled.in_csr();
        assert_eq!(spilled.spilled_csr_builds(), 3);
        assert_eq!(zero.charged(), 0, "spilled builds charge nothing");

        let unlimited = Arc::new(MemoryBudget::unlimited());
        let in_heap = PreparedGraph::of(&g).with_memory_budget(Arc::clone(&unlimited));
        assert!(!in_heap.undirected_simple().is_spilled());
        assert_eq!(in_heap.spilled_csr_builds(), 0);

        // bit-identical derived state either way
        assert_eq!(
            spilled.properties(PropertyTier::Advanced),
            PreparedGraph::of(&g).properties(PropertyTier::Advanced)
        );
        assert_eq!(spilled.fingerprint(), in_heap.fingerprint());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn granted_charges_are_released_on_drop() {
        let g = toy();
        let budget = Arc::new(MemoryBudget::bytes(1 << 20));
        {
            let prepared = PreparedGraph::of(&g).with_memory_budget(Arc::clone(&budget));
            let _ = prepared.out_csr();
            let _ = prepared.undirected_simple();
            let expected = Csr::heap_bytes(g.num_vertices(), g.num_edges())
                + Csr::heap_bytes(g.num_vertices(), 2 * g.num_edges());
            assert_eq!(budget.charged(), expected);
        }
        assert_eq!(budget.charged(), 0, "drop returns every charge");
    }

    #[test]
    fn empty_graph_is_degenerate_but_safe() {
        let g = Graph::empty(0);
        let prepared = PreparedGraph::of(&g);
        let p = prepared.properties(PropertyTier::Advanced);
        assert_eq!(p.avg_triangles, Some(0.0));
        assert_eq!(prepared.triangle_counts().len(), 0);
        let _ = prepared.fingerprint();
    }
}
