//! `PreparedGraph` — a build-once, share-everywhere graph analysis context.
//!
//! Every layer of the workspace consumes *derived* graph structure: property
//! extraction needs the degree table and the undirected simple adjacency,
//! triangle counting needs the same adjacency, DBH and HEP need total
//! degrees, the placement simulator needs out- and total-degree vectors, and
//! profiling runs 11 partitioners × K on the *same* graph. Rebuilding each of
//! those from the raw edge list at every call site is the dominant shared
//! cost of the training pipeline (the HEP paper makes the same observation
//! about degree/adjacency precomputation across partitioners).
//!
//! [`PreparedGraph`] wraps a [`Graph`] and lazily memoizes the expensive
//! derived structures behind [`OnceLock`]s:
//!
//! * out-/in-/undirected-simple CSR adjacency,
//! * the [`DegreeTable`] (degrees + moments + skewness),
//! * per-vertex triangle counts of the undirected simple graph,
//! * a stable content [fingerprint](PreparedGraph::fingerprint) for
//!   query-side property caches.
//!
//! Nothing is computed until first use, every structure is computed at most
//! once, and `&PreparedGraph` is `Send + Sync`, so one context can serve a
//! whole profiling fan-out. The context either borrows the graph
//! (zero-copy, [`PreparedGraph::of`]) or shares ownership via `Arc`
//! ([`PreparedGraph::new`] / [`PreparedGraph::from_arc`]).
//!
//! ```
//! use ease_graph::{Graph, PreparedGraph, PropertyTier};
//!
//! let g = Graph::from_pairs([(0, 1), (1, 2), (2, 0)]);
//! let prepared = PreparedGraph::of(&g);
//! let props = prepared.properties(PropertyTier::Advanced);
//! assert_eq!(props.avg_triangles, Some(1.0));
//! // the second extraction reuses every memoized structure
//! let again = prepared.properties(PropertyTier::Advanced);
//! assert_eq!(props, again);
//! assert_eq!(prepared.undirected_csr_builds(), 1);
//! ```

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};

use crate::csr::{Csr, Direction};
use crate::degree::DegreeTable;
use crate::edge_list::Graph;
use crate::hash::mix64;
use crate::properties::{GraphProperties, PropertyTier};
use crate::triangles::{self, TriangleStats};

/// How the context holds its graph: borrowed (zero-copy views over a caller
/// graph) or shared (`Arc`, for contexts handed across threads or stored).
enum GraphHandle<'g> {
    Borrowed(&'g Graph),
    Shared(Arc<Graph>),
}

/// A graph plus lazily built, memoized derived structure. See the module
/// docs for the motivation; the short version is *build once, share
/// everywhere*.
pub struct PreparedGraph<'g> {
    handle: GraphHandle<'g>,
    out_csr: OnceLock<Csr>,
    in_csr: OnceLock<Csr>,
    undirected_simple: OnceLock<Csr>,
    degrees: OnceLock<DegreeTable>,
    triangle_counts: OnceLock<Vec<u64>>,
    fingerprint: OnceLock<u64>,
    /// Observability hook: how many times the undirected simple CSR was
    /// actually constructed (must stay ≤ 1; locked by tests).
    undirected_builds: AtomicU32,
}

impl std::fmt::Debug for PreparedGraph<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedGraph")
            .field("num_vertices", &self.graph().num_vertices())
            .field("num_edges", &self.graph().num_edges())
            .field("out_csr", &self.out_csr.get().is_some())
            .field("in_csr", &self.in_csr.get().is_some())
            .field("undirected_simple", &self.undirected_simple.get().is_some())
            .field("degrees", &self.degrees.get().is_some())
            .field("triangle_counts", &self.triangle_counts.get().is_some())
            .field("fingerprint", &self.fingerprint.get())
            .finish()
    }
}

impl<'g> PreparedGraph<'g> {
    /// Borrow `graph` without copying it. The context lives at most as long
    /// as the graph.
    pub fn of(graph: &'g Graph) -> PreparedGraph<'g> {
        Self::from_handle(GraphHandle::Borrowed(graph))
    }

    /// Take ownership of `graph` (wrapped in an `Arc` so the context can
    /// later hand out shared references).
    pub fn new(graph: Graph) -> PreparedGraph<'static> {
        PreparedGraph::from_arc(Arc::new(graph))
    }

    /// Share an already `Arc`-owned graph — the profiling fan-out path:
    /// workers receive clones of the `Arc`, never of the edge list.
    pub fn from_arc(graph: Arc<Graph>) -> PreparedGraph<'static> {
        PreparedGraph::from_handle(GraphHandle::Shared(graph))
    }

    fn from_handle(handle: GraphHandle<'g>) -> Self {
        PreparedGraph {
            handle,
            out_csr: OnceLock::new(),
            in_csr: OnceLock::new(),
            undirected_simple: OnceLock::new(),
            degrees: OnceLock::new(),
            triangle_counts: OnceLock::new(),
            fingerprint: OnceLock::new(),
            undirected_builds: AtomicU32::new(0),
        }
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        match &self.handle {
            GraphHandle::Borrowed(g) => g,
            GraphHandle::Shared(g) => g,
        }
    }

    /// A shared handle to the graph, if the context owns one
    /// (`None` for borrowed contexts — they cannot extend the lifetime).
    pub fn shared_graph(&self) -> Option<Arc<Graph>> {
        match &self.handle {
            GraphHandle::Borrowed(_) => None,
            GraphHandle::Shared(g) => Some(Arc::clone(g)),
        }
    }

    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.graph().num_vertices()
    }

    #[inline]
    pub fn num_edges(&self) -> usize {
        self.graph().num_edges()
    }

    /// Out-neighbor adjacency, built on first use.
    pub fn out_csr(&self) -> &Csr {
        self.out_csr.get_or_init(|| Csr::build(self.graph(), Direction::Out))
    }

    /// In-neighbor adjacency, built on first use.
    pub fn in_csr(&self) -> &Csr {
        self.in_csr.get_or_init(|| Csr::build(self.graph(), Direction::In))
    }

    /// Undirected *simple* adjacency (sorted lists, no loops/duplicates) —
    /// the input of triangle counting and neighborhood expansion. Built at
    /// most once per context.
    pub fn undirected_simple(&self) -> &Csr {
        self.undirected_simple.get_or_init(|| {
            self.undirected_builds.fetch_add(1, Ordering::Relaxed);
            Csr::build_undirected_simple(self.graph())
        })
    }

    /// How many times the undirected simple CSR was constructed so far
    /// (0 before first use, 1 ever after — memoization makes more
    /// impossible).
    pub fn undirected_csr_builds(&self) -> u32 {
        self.undirected_builds.load(Ordering::Relaxed)
    }

    /// Degree tables + moments/skewness, built on first use.
    pub fn degrees(&self) -> &DegreeTable {
        self.degrees.get_or_init(|| DegreeTable::compute(self.graph()))
    }

    /// Per-vertex triangle counts of the undirected simple graph, built on
    /// first use from the (shared) undirected adjacency.
    pub fn triangle_counts(&self) -> &[u64] {
        self.triangle_counts
            .get_or_init(|| triangles::triangle_counts_from_simple(self.undirected_simple()))
    }

    /// Averaged triangle statistics (`t(G)`, `C(G)`) from the memoized
    /// adjacency and counts — bit-identical to
    /// [`triangles::triangle_stats`] on the same graph.
    pub fn triangle_stats(&self) -> TriangleStats {
        triangles::stats_from_parts(self.undirected_simple(), self.triangle_counts())
    }

    /// Graph properties up to `tier`, computed from the memoized structures
    /// (see [`GraphProperties::compute_prepared`]). Only the structures the
    /// tier needs are built: `Simple` touches nothing, `Basic` the degree
    /// table, `Advanced` additionally the undirected CSR + triangle counts.
    pub fn properties(&self, tier: PropertyTier) -> GraphProperties {
        GraphProperties::compute_prepared(self, tier)
    }

    /// A stable content fingerprint: equal for identical `(num_vertices,
    /// edge list)` inputs, different (with overwhelming probability) when
    /// any edge, the edge order, or the vertex universe changes. Keys the
    /// query-side property caches.
    pub fn fingerprint(&self) -> u64 {
        *self.fingerprint.get_or_init(|| {
            let g = self.graph();
            let mut h = mix64(0xEA5E_F16E ^ (g.num_vertices() as u64));
            h = mix64(h ^ (g.num_edges() as u64).rotate_left(32));
            for e in g.edges() {
                h = mix64(h ^ ((u64::from(e.src) << 32) | u64::from(e.dst)));
            }
            h
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;

    fn toy() -> Graph {
        Graph::from_pairs([(0, 1), (1, 2), (2, 0), (2, 3), (3, 0), (1, 3)])
    }

    #[test]
    fn advanced_properties_build_undirected_csr_exactly_once() {
        let g = toy();
        let prepared = PreparedGraph::of(&g);
        assert_eq!(prepared.undirected_csr_builds(), 0, "lazy until first use");
        let a = prepared.properties(PropertyTier::Advanced);
        assert_eq!(prepared.undirected_csr_builds(), 1);
        // repeated extraction + direct access: still exactly one build
        let b = prepared.properties(PropertyTier::Advanced);
        let _ = prepared.triangle_counts();
        let _ = prepared.undirected_simple();
        let _ = prepared.triangle_stats();
        assert_eq!(prepared.undirected_csr_builds(), 1);
        assert_eq!(a, b);
    }

    #[test]
    fn simple_tier_builds_nothing() {
        let g = toy();
        let prepared = PreparedGraph::of(&g);
        let p = prepared.properties(PropertyTier::Simple);
        assert_eq!(p.num_edges, 6);
        assert_eq!(prepared.undirected_csr_builds(), 0);
        assert!(!format!("{prepared:?}").contains("degrees: true"));
    }

    #[test]
    fn memoized_views_match_direct_builds() {
        let g = toy();
        let prepared = PreparedGraph::of(&g);
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(
                prepared.out_csr().neighbors(v),
                Csr::build(&g, Direction::Out).neighbors(v)
            );
            assert_eq!(prepared.in_csr().neighbors(v), Csr::build(&g, Direction::In).neighbors(v));
            assert_eq!(
                prepared.undirected_simple().neighbors(v),
                Csr::build_undirected_simple(&g).neighbors(v)
            );
        }
        assert_eq!(prepared.degrees().total, g.total_degrees());
        assert_eq!(prepared.triangle_counts(), triangles::triangle_counts(&g).as_slice());
    }

    #[test]
    fn ownership_modes_agree() {
        let g = toy();
        let borrowed = PreparedGraph::of(&g);
        let owned = PreparedGraph::new(g.clone());
        let shared = PreparedGraph::from_arc(Arc::new(g.clone()));
        assert_eq!(borrowed.fingerprint(), owned.fingerprint());
        assert_eq!(owned.fingerprint(), shared.fingerprint());
        assert!(borrowed.shared_graph().is_none());
        let arc = shared.shared_graph().expect("shared context owns an Arc");
        assert_eq!(arc.num_edges(), shared.num_edges());
        // Arc sharing: no deep copy, the clone points at the same allocation
        assert!(Arc::ptr_eq(&arc, &shared.shared_graph().unwrap()));
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let g = toy();
        let a = PreparedGraph::of(&g).fingerprint();
        let b = PreparedGraph::of(&g.clone()).fingerprint();
        assert_eq!(a, b, "same content -> same fingerprint");
        // flip one edge endpoint
        let mut changed = g.clone();
        changed.edges_mut()[0] = Edge::new(0, 2);
        assert_ne!(a, PreparedGraph::of(&changed).fingerprint());
        // add an edge
        let mut grown = g.clone();
        grown.push_edge(0, 3);
        assert_ne!(a, PreparedGraph::of(&grown).fingerprint());
        // grow the vertex universe without touching edges
        let padded = Graph::new(g.num_vertices() + 1, g.edges().to_vec());
        assert_ne!(a, PreparedGraph::of(&padded).fingerprint());
    }

    #[test]
    fn prepared_is_shareable_across_threads() {
        let g = toy();
        let prepared = PreparedGraph::of(&g);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let p = prepared.properties(PropertyTier::Advanced);
                    assert_eq!(p.num_edges, 6);
                });
            }
        });
        assert_eq!(prepared.undirected_csr_builds(), 1, "OnceLock serializes the build");
    }

    #[test]
    fn empty_graph_is_degenerate_but_safe() {
        let g = Graph::empty(0);
        let prepared = PreparedGraph::of(&g);
        let p = prepared.properties(PropertyTier::Advanced);
        assert_eq!(p.avg_triangles, Some(0.0));
        assert_eq!(prepared.triangle_counts().len(), 0);
        let _ = prepared.fingerprint();
    }
}
