//! A shared, observable memory budget for derived graph state.
//!
//! [`MemoryBudget`] is the PR 8 tentpole's accounting ledger: every
//! [`PreparedGraph`](crate::PreparedGraph) that carries one *charges* the
//! heap bytes of each CSR it is about to memoize. A charge that fits is
//! recorded (and released when the context drops); a charge that would
//! exceed the limit is refused, and the caller builds the CSR out of core
//! instead — spilled to a temp file and mmapped back (see [`crate::spill`]).
//!
//! Semantics, deliberately simple:
//!
//! * the budget covers **derived adjacency state** (CSR offsets + targets)
//!   — not mapped file pages, which the OS can reclaim under pressure, and
//!   not the O(|V|) degree/triangle tables, which are small by design;
//! * `limit == usize::MAX` means *unlimited*: charges always succeed and
//!   nothing is ever spilled;
//! * `limit == 0` refuses every non-zero charge, forcing the spill path —
//!   the regression tests pin both extremes.
//!
//! One budget may be shared (via `Arc`) by many contexts — the daemon hands
//! the same ledger to every request so concurrent analyses compete for the
//! same headroom.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Spill chunk sizing floor: even with zero headroom the out-of-core
/// builder keeps this much scratch, so progress is guaranteed and the
/// number of edge-stream replays stays bounded.
pub const SPILL_MIN_CHUNK_BYTES: usize = 4 << 20;

/// Spill chunk sizing ceiling — beyond this, larger chunks stop paying.
pub const SPILL_MAX_CHUNK_BYTES: usize = 256 << 20;

/// A byte budget for in-heap derived state, shared across analysis
/// contexts. See the module docs for exact semantics.
#[derive(Debug)]
pub struct MemoryBudget {
    limit: usize,
    used: AtomicUsize,
    /// Lifetime count of CSR builds this budget refused into the spill
    /// path. Monotonic observability only — never read back into any
    /// admission or sizing decision.
    spills: AtomicU64,
    spill_dir: PathBuf,
}

impl MemoryBudget {
    /// A budget that never refuses a charge and never spills.
    pub fn unlimited() -> MemoryBudget {
        MemoryBudget::bytes(usize::MAX)
    }

    /// A budget of exactly `limit` bytes, spilling to the system temp dir.
    pub fn bytes(limit: usize) -> MemoryBudget {
        MemoryBudget {
            limit,
            used: AtomicUsize::new(0),
            spills: AtomicU64::new(0),
            spill_dir: std::env::temp_dir(),
        }
    }

    /// Redirect spill files to `dir` (created on first spill).
    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> MemoryBudget {
        self.spill_dir = dir.into();
        self
    }

    pub fn is_unlimited(&self) -> bool {
        self.limit == usize::MAX
    }

    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Bytes currently charged. Always 0 for an unlimited budget.
    pub fn charged(&self) -> usize {
        self.used.load(Ordering::SeqCst)
    }

    /// Headroom left before the next charge is refused.
    pub fn remaining(&self) -> usize {
        self.limit.saturating_sub(self.charged())
    }

    /// Directory spill files are created in.
    pub fn spill_dir(&self) -> &Path {
        &self.spill_dir
    }

    /// Record one CSR build that this budget refused into the spill path.
    /// Called by the out-of-core builder; a daemon sharing one budget
    /// across all requests reads the accumulated count for its
    /// `cache-stats` answer (and a fleet router reads *that* to steer
    /// big-graph queries toward backends that are not spilling).
    pub fn note_spill(&self) {
        // lint: relaxed-ok(monotonic stats counter, never ordered against other state)
        self.spills.fetch_add(1, Ordering::Relaxed);
    }

    /// Lifetime count of spilled CSR builds recorded via
    /// [`note_spill`](Self::note_spill).
    pub fn spill_events(&self) -> u64 {
        self.spills.load(Ordering::Relaxed) // lint: relaxed-ok(monotonic stats counter)
    }

    /// Scratch-buffer size the out-of-core CSR builder should use right
    /// now: the remaining headroom, clamped to a floor that guarantees
    /// progress and a ceiling past which bigger chunks stop helping.
    pub fn spill_chunk_bytes(&self) -> usize {
        self.remaining().clamp(SPILL_MIN_CHUNK_BYTES, SPILL_MAX_CHUNK_BYTES)
    }

    /// Try to reserve `bytes` of headroom. On success the caller owns the
    /// reservation and must [`release`](Self::release) it when the backing
    /// allocation is freed; on refusal nothing is recorded.
    pub fn try_charge(&self, bytes: usize) -> bool {
        if self.is_unlimited() {
            return true;
        }
        let mut current = self.used.load(Ordering::SeqCst);
        loop {
            let next = match current.checked_add(bytes) {
                Some(next) if next <= self.limit => next,
                _ => return false,
            };
            match self.used.compare_exchange(current, next, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return true,
                Err(actual) => current = actual,
            }
        }
    }

    /// Return `bytes` of previously charged headroom to the pool.
    pub fn release(&self, bytes: usize) {
        if self.is_unlimited() {
            return;
        }
        // saturating: a stray double-release must not wrap the ledger into
        // "everything is charged forever"
        let _ = self.used.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |used| {
            Some(used.saturating_sub(bytes))
        });
    }

    /// Parse a human byte-size spec: a plain byte count (`"1048576"`), a
    /// `k`/`m`/`g` suffix with optional `b` (`"64k"`, `"512MiB"`, `"2g"`),
    /// or `"unlimited"`/`"none"` for no limit. `"0"` means *always spill*.
    pub fn parse_limit(spec: &str) -> Result<usize, String> {
        let s = spec.trim().to_ascii_lowercase();
        if s == "unlimited" || s == "none" || s == "max" {
            return Ok(usize::MAX);
        }
        let digits_end = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
        let (digits, suffix) = s.split_at(digits_end);
        let value: usize = digits
            .parse()
            .map_err(|_| format!("invalid memory budget `{spec}` (expected e.g. 64m, 2g, 0)"))?;
        let shift = match suffix.trim_end_matches("ib").trim_end_matches('b') {
            "" => 0u32,
            "k" => 10,
            "m" => 20,
            "g" => 30,
            _ => return Err(format!("unknown memory budget suffix `{suffix}` in `{spec}`")),
        };
        value
            .checked_shl(shift)
            .filter(|v| v >> shift == value)
            .ok_or_else(|| format!("memory budget `{spec}` overflows"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_always_accepts_and_never_accounts() {
        let b = MemoryBudget::unlimited();
        assert!(b.is_unlimited());
        assert!(b.try_charge(usize::MAX));
        assert_eq!(b.charged(), 0);
        b.release(123); // no-op, no underflow
        assert_eq!(b.remaining(), usize::MAX);
    }

    #[test]
    fn zero_budget_refuses_any_nonzero_charge() {
        let b = MemoryBudget::bytes(0);
        assert!(!b.try_charge(1));
        assert!(b.try_charge(0));
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn charges_accumulate_and_release_restores_headroom() {
        let b = MemoryBudget::bytes(100);
        assert!(b.try_charge(60));
        assert!(!b.try_charge(50));
        assert!(b.try_charge(40));
        assert_eq!(b.remaining(), 0);
        b.release(60);
        assert_eq!(b.remaining(), 60);
        b.release(usize::MAX); // saturates instead of wrapping
        assert_eq!(b.charged(), 0);
    }

    #[test]
    fn concurrent_charges_never_oversubscribe() {
        let b = std::sync::Arc::new(MemoryBudget::bytes(1000));
        let admitted: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let b = std::sync::Arc::clone(&b);
                    s.spawn(move || (0..100).filter(|_| b.try_charge(10)).count())
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("charger")).sum()
        });
        assert_eq!(admitted, 100, "exactly limit/charge admissions");
        assert_eq!(b.charged(), 1000);
    }

    #[test]
    fn spill_events_accumulate_monotonically() {
        let b = MemoryBudget::bytes(0);
        assert_eq!(b.spill_events(), 0);
        b.note_spill();
        b.note_spill();
        assert_eq!(b.spill_events(), 2);
        b.release(100); // releases never touch the spill count
        assert_eq!(b.spill_events(), 2);
    }

    #[test]
    fn parse_limit_accepts_the_documented_spellings() {
        assert_eq!(MemoryBudget::parse_limit("0"), Ok(0));
        assert_eq!(MemoryBudget::parse_limit("1048576"), Ok(1 << 20));
        assert_eq!(MemoryBudget::parse_limit("64k"), Ok(64 << 10));
        assert_eq!(MemoryBudget::parse_limit("8M"), Ok(8 << 20));
        assert_eq!(MemoryBudget::parse_limit("2gb"), Ok(2 << 30));
        assert_eq!(MemoryBudget::parse_limit("512MiB"), Ok(512 << 20));
        assert_eq!(MemoryBudget::parse_limit("unlimited"), Ok(usize::MAX));
        assert!(MemoryBudget::parse_limit("eight").is_err());
        assert!(MemoryBudget::parse_limit("8q").is_err());
        assert!(MemoryBudget::parse_limit("99999999999g").is_err());
    }

    #[test]
    fn chunk_sizing_tracks_headroom_within_the_clamp() {
        let b = MemoryBudget::bytes(0);
        assert_eq!(b.spill_chunk_bytes(), SPILL_MIN_CHUNK_BYTES);
        let big = MemoryBudget::bytes(SPILL_MAX_CHUNK_BYTES * 4);
        assert_eq!(big.spill_chunk_bytes(), SPILL_MAX_CHUNK_BYTES);
        let mid = MemoryBudget::bytes(16 << 20);
        assert_eq!(mid.spill_chunk_bytes(), 16 << 20);
    }
}
