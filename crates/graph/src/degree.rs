//! Degree statistics and Pearson's first skewness coefficient.
//!
//! The paper (Sec. II-B.5) characterizes degree distributions with
//! `skew(values) = (mean(values) − mode(values)) / σ(values)` and feeds the
//! in-degree and out-degree skewness to the machine-learning models as
//! "basic" features.

use crate::edge_list::Graph;
use crate::source::{combine_fingerprint, each_edge_in, BlockHasher, GraphSource};

/// Summary statistics of a per-vertex integer metric (degrees, triangle
/// counts, ...).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Moments {
    pub mean: f64,
    pub std_dev: f64,
    pub min: u32,
    pub max: u32,
    /// Most frequent value (smallest value wins ties, making the statistic
    /// deterministic).
    pub mode: u32,
    /// Pearson's first skewness coefficient `(mean - mode)/σ`; 0 when σ = 0.
    pub pearson_skew: f64,
}

/// Compute [`Moments`] of a value vector.
pub fn moments(values: &[u32]) -> Moments {
    if values.is_empty() {
        return Moments { mean: 0.0, std_dev: 0.0, min: 0, max: 0, mode: 0, pearson_skew: 0.0 };
    }
    let n = values.len() as f64;
    let mut sum = 0.0f64;
    let mut min = u32::MAX;
    let mut max = 0u32;
    for &v in values {
        sum += f64::from(v);
        min = min.min(v);
        max = max.max(v);
    }
    let mean = sum / n;
    let mut var = 0.0f64;
    for &v in values {
        let d = f64::from(v) - mean;
        var += d * d;
    }
    let std_dev = (var / n).sqrt();
    // Mode via a counting table over the (small) value range, falling back to
    // a sort-based scan when the range is huge relative to n.
    let mode = mode_of(values, min, max);
    let pearson_skew = if std_dev > 0.0 { (mean - f64::from(mode)) / std_dev } else { 0.0 };
    Moments { mean, std_dev, min, max, mode, pearson_skew }
}

fn mode_of(values: &[u32], min: u32, max: u32) -> u32 {
    let range = (max - min) as usize + 1;
    if range <= values.len() * 4 + 1024 {
        let mut counts = vec![0u32; range];
        for &v in values {
            counts[(v - min) as usize] += 1;
        }
        let mut best = (0u32, 0usize);
        for (i, &c) in counts.iter().enumerate() {
            if c > best.0 {
                best = (c, i);
            }
        }
        min + best.1 as u32
    } else {
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let (mut best_val, mut best_count) = (sorted[0], 0usize);
        let (mut cur_val, mut cur_count) = (sorted[0], 0usize);
        for &v in &sorted {
            if v == cur_val {
                cur_count += 1;
            } else {
                if cur_count > best_count {
                    best_val = cur_val;
                    best_count = cur_count;
                }
                cur_val = v;
                cur_count = 1;
            }
        }
        if cur_count > best_count {
            best_val = cur_val;
        }
        best_val
    }
}

/// Degree tables of a graph with cached statistics.
#[derive(Debug, Clone)]
pub struct DegreeTable {
    pub out: Vec<u32>,
    pub into: Vec<u32>,
    pub total: Vec<u32>,
    pub out_moments: Moments,
    pub in_moments: Moments,
    pub total_moments: Moments,
}

impl DegreeTable {
    pub fn compute(graph: &Graph) -> Self {
        let out = graph.out_degrees();
        let into = graph.in_degrees();
        let total = graph.total_degrees();
        let out_moments = moments(&out);
        let in_moments = moments(&into);
        let total_moments = moments(&total);
        DegreeTable { out, into, total, out_moments, in_moments, total_moments }
    }

    /// Compute the table from any [`GraphSource`] with the counting pass
    /// sharded over `shards` edge ranges (`std::thread` scoped workers;
    /// one shard degrades to a single sequential pass). The same pass folds
    /// the [block fingerprint](crate::source) — the second return value —
    /// so source-backed contexts pay one traversal for both.
    ///
    /// Bit-identical to [`DegreeTable::compute`] on the same stream for any
    /// shard count: per-shard counts are exact integers merged by addition,
    /// and the fingerprint's block decomposition is fixed, not shard-derived.
    pub fn compute_source(source: &dyn GraphSource, shards: usize) -> (Self, u64) {
        let n = source.num_vertices();
        let m = source.edge_count();
        let chunks = source.par_chunks(shards.max(1));
        let shard_outputs: Vec<(Vec<u32>, Vec<u32>, Vec<(usize, u64)>)> = if chunks.len() <= 1 {
            let range = chunks.into_iter().next().unwrap_or(0..0);
            vec![count_shard(source, range, n)]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .map(|range| scope.spawn(move || count_shard(source, range, n)))
                    .collect();
                handles.into_iter().map(|h| h.join().expect("degree shard")).collect()
            })
        };
        let mut out = vec![0u32; n];
        let mut into = vec![0u32; n];
        let mut blocks: Vec<(usize, u64)> = Vec::new();
        for (shard_out, shard_in, shard_blocks) in shard_outputs {
            for (acc, v) in out.iter_mut().zip(&shard_out) {
                *acc += v;
            }
            for (acc, v) in into.iter_mut().zip(&shard_in) {
                *acc += v;
            }
            blocks.extend(shard_blocks);
        }
        blocks.sort_unstable_by_key(|&(i, _)| i);
        let fingerprint = combine_fingerprint(n, m, &blocks);
        let total: Vec<u32> = out.iter().zip(&into).map(|(a, b)| a + b).collect();
        let out_moments = moments(&out);
        let in_moments = moments(&into);
        let total_moments = moments(&total);
        (DegreeTable { out, into, total, out_moments, in_moments, total_moments }, fingerprint)
    }

    /// Mean total degree `2|E|/|V|` (paper Sec. II-B.2).
    pub fn mean_degree(&self) -> f64 {
        self.total_moments.mean
    }
}

/// One shard of the fused degree/fingerprint pass: count out/in degrees and
/// fold whole fingerprint blocks for the (block-aligned) `range`.
fn count_shard(
    source: &dyn GraphSource,
    range: std::ops::Range<usize>,
    n: usize,
) -> (Vec<u32>, Vec<u32>, Vec<(usize, u64)>) {
    let mut out = vec![0u32; n];
    let mut into = vec![0u32; n];
    let mut hasher = BlockHasher::starting_at(range.start);
    each_edge_in(source, range, |e| {
        out[e.src as usize] += 1;
        into[e.dst as usize] += 1;
        hasher.feed(e);
    });
    (out, into, hasher.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_of_uniform_values() {
        let m = moments(&[3, 3, 3, 3]);
        assert_eq!(m.mean, 3.0);
        assert_eq!(m.std_dev, 0.0);
        assert_eq!(m.mode, 3);
        assert_eq!(m.pearson_skew, 0.0);
    }

    #[test]
    fn moments_hand_computed() {
        // values 1,2,2,3: mean=2, var=(1+0+0+1)/4=0.5, mode=2
        let m = moments(&[1, 2, 2, 3]);
        assert!((m.mean - 2.0).abs() < 1e-12);
        assert!((m.std_dev - 0.5f64.sqrt()).abs() < 1e-12);
        assert_eq!(m.mode, 2);
        assert!(m.pearson_skew.abs() < 1e-12);
        assert_eq!((m.min, m.max), (1, 3));
    }

    #[test]
    fn right_skewed_distribution_has_positive_skew() {
        // many small values, few huge ones -> mean > mode -> positive skew
        let mut vals = vec![1u32; 100];
        vals.extend([50, 60, 70]);
        let m = moments(&vals);
        assert!(m.pearson_skew > 0.1, "skew={}", m.pearson_skew);
        assert_eq!(m.mode, 1);
    }

    #[test]
    fn mode_tie_breaks_to_smallest() {
        let m = moments(&[5, 5, 9, 9, 7]);
        assert_eq!(m.mode, 5);
    }

    #[test]
    fn mode_sparse_range_fallback() {
        // Huge value range triggers the sort-based path.
        let mut vals = vec![1_000_000_000u32, 1, 1, 2];
        vals.push(u32::MAX - 1);
        let m = moments(&vals);
        assert_eq!(m.mode, 1);
    }

    #[test]
    fn degree_table_mean_degree_matches_formula() {
        let g = Graph::from_pairs([(0, 1), (1, 2), (2, 3), (3, 0)]);
        let t = DegreeTable::compute(&g);
        let expect = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!((t.mean_degree() - expect).abs() < 1e-12);
    }

    #[test]
    fn empty_values() {
        let m = moments(&[]);
        assert_eq!(m.mean, 0.0);
        assert_eq!(m.pearson_skew, 0.0);
    }

    #[test]
    fn sharded_source_table_matches_sequential_and_fingerprints_agree() {
        use crate::source::{fingerprint_source, FINGERPRINT_BLOCK};
        let mut edges = Vec::new();
        let mut x = 7u64;
        for _ in 0..(FINGERPRINT_BLOCK * 2 + 77) {
            x = x.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(0x9E37);
            edges.push(crate::types::Edge::new(((x >> 32) % 113) as u32, (x % 113) as u32));
        }
        let g = Graph::new(113, edges);
        let reference = DegreeTable::compute(&g);
        let fp_reference = fingerprint_source(&g);
        for shards in [1, 2, 4, 9] {
            let (table, fp) = DegreeTable::compute_source(&g, shards);
            assert_eq!(table.out, reference.out, "x{shards}");
            assert_eq!(table.into, reference.into, "x{shards}");
            assert_eq!(table.total, reference.total, "x{shards}");
            assert_eq!(table.total_moments, reference.total_moments, "x{shards}");
            assert_eq!(fp, fp_reference, "fused fingerprint x{shards}");
        }
    }

    #[test]
    fn empty_source_table_is_degenerate_but_safe() {
        let (table, fp) = DegreeTable::compute_source(&Graph::empty(0), 4);
        assert!(table.out.is_empty());
        assert_eq!(fp, crate::source::fingerprint_source(&Graph::empty(0)));
    }
}
