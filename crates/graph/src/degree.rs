//! Degree statistics and Pearson's first skewness coefficient.
//!
//! The paper (Sec. II-B.5) characterizes degree distributions with
//! `skew(values) = (mean(values) − mode(values)) / σ(values)` and feeds the
//! in-degree and out-degree skewness to the machine-learning models as
//! "basic" features.

use crate::edge_list::Graph;

/// Summary statistics of a per-vertex integer metric (degrees, triangle
/// counts, ...).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Moments {
    pub mean: f64,
    pub std_dev: f64,
    pub min: u32,
    pub max: u32,
    /// Most frequent value (smallest value wins ties, making the statistic
    /// deterministic).
    pub mode: u32,
    /// Pearson's first skewness coefficient `(mean - mode)/σ`; 0 when σ = 0.
    pub pearson_skew: f64,
}

/// Compute [`Moments`] of a value vector.
pub fn moments(values: &[u32]) -> Moments {
    if values.is_empty() {
        return Moments { mean: 0.0, std_dev: 0.0, min: 0, max: 0, mode: 0, pearson_skew: 0.0 };
    }
    let n = values.len() as f64;
    let mut sum = 0.0f64;
    let mut min = u32::MAX;
    let mut max = 0u32;
    for &v in values {
        sum += f64::from(v);
        min = min.min(v);
        max = max.max(v);
    }
    let mean = sum / n;
    let mut var = 0.0f64;
    for &v in values {
        let d = f64::from(v) - mean;
        var += d * d;
    }
    let std_dev = (var / n).sqrt();
    // Mode via a counting table over the (small) value range, falling back to
    // a sort-based scan when the range is huge relative to n.
    let mode = mode_of(values, min, max);
    let pearson_skew = if std_dev > 0.0 { (mean - f64::from(mode)) / std_dev } else { 0.0 };
    Moments { mean, std_dev, min, max, mode, pearson_skew }
}

fn mode_of(values: &[u32], min: u32, max: u32) -> u32 {
    let range = (max - min) as usize + 1;
    if range <= values.len() * 4 + 1024 {
        let mut counts = vec![0u32; range];
        for &v in values {
            counts[(v - min) as usize] += 1;
        }
        let mut best = (0u32, 0usize);
        for (i, &c) in counts.iter().enumerate() {
            if c > best.0 {
                best = (c, i);
            }
        }
        min + best.1 as u32
    } else {
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let (mut best_val, mut best_count) = (sorted[0], 0usize);
        let (mut cur_val, mut cur_count) = (sorted[0], 0usize);
        for &v in &sorted {
            if v == cur_val {
                cur_count += 1;
            } else {
                if cur_count > best_count {
                    best_val = cur_val;
                    best_count = cur_count;
                }
                cur_val = v;
                cur_count = 1;
            }
        }
        if cur_count > best_count {
            best_val = cur_val;
        }
        best_val
    }
}

/// Degree tables of a graph with cached statistics.
#[derive(Debug, Clone)]
pub struct DegreeTable {
    pub out: Vec<u32>,
    pub into: Vec<u32>,
    pub total: Vec<u32>,
    pub out_moments: Moments,
    pub in_moments: Moments,
    pub total_moments: Moments,
}

impl DegreeTable {
    pub fn compute(graph: &Graph) -> Self {
        let out = graph.out_degrees();
        let into = graph.in_degrees();
        let total = graph.total_degrees();
        let out_moments = moments(&out);
        let in_moments = moments(&into);
        let total_moments = moments(&total);
        DegreeTable { out, into, total, out_moments, in_moments, total_moments }
    }

    /// Mean total degree `2|E|/|V|` (paper Sec. II-B.2).
    pub fn mean_degree(&self) -> f64 {
        self.total_moments.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_of_uniform_values() {
        let m = moments(&[3, 3, 3, 3]);
        assert_eq!(m.mean, 3.0);
        assert_eq!(m.std_dev, 0.0);
        assert_eq!(m.mode, 3);
        assert_eq!(m.pearson_skew, 0.0);
    }

    #[test]
    fn moments_hand_computed() {
        // values 1,2,2,3: mean=2, var=(1+0+0+1)/4=0.5, mode=2
        let m = moments(&[1, 2, 2, 3]);
        assert!((m.mean - 2.0).abs() < 1e-12);
        assert!((m.std_dev - 0.5f64.sqrt()).abs() < 1e-12);
        assert_eq!(m.mode, 2);
        assert!(m.pearson_skew.abs() < 1e-12);
        assert_eq!((m.min, m.max), (1, 3));
    }

    #[test]
    fn right_skewed_distribution_has_positive_skew() {
        // many small values, few huge ones -> mean > mode -> positive skew
        let mut vals = vec![1u32; 100];
        vals.extend([50, 60, 70]);
        let m = moments(&vals);
        assert!(m.pearson_skew > 0.1, "skew={}", m.pearson_skew);
        assert_eq!(m.mode, 1);
    }

    #[test]
    fn mode_tie_breaks_to_smallest() {
        let m = moments(&[5, 5, 9, 9, 7]);
        assert_eq!(m.mode, 5);
    }

    #[test]
    fn mode_sparse_range_fallback() {
        // Huge value range triggers the sort-based path.
        let mut vals = vec![1_000_000_000u32, 1, 1, 2];
        vals.push(u32::MAX - 1);
        let m = moments(&vals);
        assert_eq!(m.mode, 1);
    }

    #[test]
    fn degree_table_mean_degree_matches_formula() {
        let g = Graph::from_pairs([(0, 1), (1, 2), (2, 3), (3, 0)]);
        let t = DegreeTable::compute(&g);
        let expect = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!((t.mean_degree() - expect).abs() < 1e-12);
    }

    #[test]
    fn empty_values() {
        let m = moments(&[]);
        assert_eq!(m.mean, 0.0);
        assert_eq!(m.pearson_skew, 0.0);
    }
}
