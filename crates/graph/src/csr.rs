//! Compressed sparse row adjacency.

use crate::edge_list::Graph;
use crate::types::VertexId;

/// Which adjacency direction a [`Csr`] encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `neighbors(v)` = out-neighbors (edge targets).
    Out,
    /// `neighbors(v)` = in-neighbors (edge sources).
    In,
    /// `neighbors(v)` = union of both directions (each directed edge
    /// contributes to both endpoints' lists).
    Undirected,
}

/// Compressed sparse row adjacency built from a [`Graph`].
///
/// `offsets` has `n+1` entries; the neighbors of `v` are
/// `targets[offsets[v]..offsets[v+1]]`. Built with a counting pass followed
/// by a placement pass — no per-vertex `Vec` allocations (perf-book:
/// preallocate, avoid allocation in hot loops).
#[derive(Debug, Clone)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
    direction: Direction,
}

impl Csr {
    /// Build adjacency in the requested direction.
    pub fn build(graph: &Graph, direction: Direction) -> Self {
        let n = graph.num_vertices();
        let mut counts = vec![0usize; n + 1];
        match direction {
            Direction::Out => {
                for e in graph.edges() {
                    counts[e.src as usize + 1] += 1;
                }
            }
            Direction::In => {
                for e in graph.edges() {
                    counts[e.dst as usize + 1] += 1;
                }
            }
            Direction::Undirected => {
                for e in graph.edges() {
                    counts[e.src as usize + 1] += 1;
                    counts[e.dst as usize + 1] += 1;
                }
            }
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts;
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as VertexId; offsets[n]];
        match direction {
            Direction::Out => {
                for e in graph.edges() {
                    let c = &mut cursor[e.src as usize];
                    targets[*c] = e.dst;
                    *c += 1;
                }
            }
            Direction::In => {
                for e in graph.edges() {
                    let c = &mut cursor[e.dst as usize];
                    targets[*c] = e.src;
                    *c += 1;
                }
            }
            Direction::Undirected => {
                for e in graph.edges() {
                    let c = &mut cursor[e.src as usize];
                    targets[*c] = e.dst;
                    *c += 1;
                    let c = &mut cursor[e.dst as usize];
                    targets[*c] = e.src;
                    *c += 1;
                }
            }
        }
        Csr { offsets, targets, direction }
    }

    /// Build undirected *simple* adjacency: reciprocal duplicates, parallel
    /// edges and self-loops removed, each list sorted. This is the input for
    /// triangle counting and neighborhood expansion.
    pub fn build_undirected_simple(graph: &Graph) -> Self {
        let mut csr = Csr::build(graph, Direction::Undirected);
        let n = csr.num_vertices();
        let mut new_targets: Vec<VertexId> = Vec::with_capacity(csr.targets.len());
        let mut new_offsets: Vec<usize> = Vec::with_capacity(n + 1);
        new_offsets.push(0);
        // Sort + dedup each list, dropping self-loops.
        for v in 0..n {
            let start = new_targets.len();
            let (lo, hi) = (csr.offsets[v], csr.offsets[v + 1]);
            let list = &mut csr.targets[lo..hi];
            list.sort_unstable();
            let mut prev = None;
            for &t in list.iter() {
                if t as usize == v || prev == Some(t) {
                    continue;
                }
                new_targets.push(t);
                prev = Some(t);
            }
            let _ = start;
            new_offsets.push(new_targets.len());
        }
        Csr { offsets: new_offsets, targets: new_targets, direction: Direction::Undirected }
    }

    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Neighbor slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Degree of `v` in this adjacency.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Total number of stored adjacency entries.
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.targets.len()
    }

    /// Iterate `(vertex, neighbors)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &[VertexId])> {
        (0..self.num_vertices() as VertexId).map(move |v| (v, self.neighbors(v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Graph {
        Graph::from_pairs([(0, 1), (0, 2), (1, 2), (2, 0), (1, 1)])
    }

    #[test]
    fn out_adjacency() {
        let csr = Csr::build(&toy(), Direction::Out);
        assert_eq!(csr.neighbors(0), &[1, 2]);
        assert_eq!(csr.neighbors(1), &[2, 1]);
        assert_eq!(csr.neighbors(2), &[0]);
        assert_eq!(csr.num_entries(), 5);
    }

    #[test]
    fn in_adjacency() {
        let csr = Csr::build(&toy(), Direction::In);
        assert_eq!(csr.neighbors(0), &[2]);
        assert_eq!(csr.degree(2), 2);
    }

    #[test]
    fn undirected_counts_both_sides() {
        let csr = Csr::build(&toy(), Direction::Undirected);
        assert_eq!(csr.num_entries(), 10);
        assert_eq!(csr.degree(1), 4); // (0,1), (1,2), (1,1) twice
    }

    #[test]
    fn undirected_simple_drops_loops_and_dupes() {
        let g = Graph::from_pairs([(0, 1), (1, 0), (0, 1), (1, 1), (1, 2)]);
        let csr = Csr::build_undirected_simple(&g);
        assert_eq!(csr.neighbors(0), &[1]);
        assert_eq!(csr.neighbors(1), &[0, 2]);
        assert_eq!(csr.neighbors(2), &[1]);
    }

    #[test]
    fn degrees_sum_to_entries() {
        let g = toy();
        let csr = Csr::build(&g, Direction::Out);
        let total: usize = (0..g.num_vertices() as u32).map(|v| csr.degree(v)).sum();
        assert_eq!(total, csr.num_entries());
    }

    #[test]
    fn empty_graph_csr() {
        let csr = Csr::build(&Graph::empty(3), Direction::Out);
        assert_eq!(csr.num_vertices(), 3);
        assert_eq!(csr.num_entries(), 0);
        assert_eq!(csr.neighbors(1), &[] as &[u32]);
    }
}
