//! Compressed sparse row adjacency.

use crate::edge_list::Graph;
use crate::source::{each_edge, each_edge_in, GraphSource};
use crate::spill::{LoadedCsr, MappedCsr, SpillWriter};
use crate::types::{Edge, VertexId};
use std::path::Path;
use std::sync::Arc;

/// Which adjacency direction a [`Csr`] encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `neighbors(v)` = out-neighbors (edge targets).
    Out,
    /// `neighbors(v)` = in-neighbors (edge sources).
    In,
    /// `neighbors(v)` = union of both directions (each directed edge
    /// contributes to both endpoints' lists).
    Undirected,
}

/// Where a [`Csr`]'s offsets/targets actually live (PR 8): the classic heap
/// vectors, or a read-only mapping of an unlinked `EASECSR1` spill file
/// (see [`crate::spill`]). Every accessor routes through this enum, so the
/// two shapes are indistinguishable — and bit-identical — to callers.
#[derive(Debug, Clone)]
enum Store {
    Heap { offsets: Vec<usize>, targets: Vec<VertexId> },
    Mapped(Arc<MappedCsr>),
}

/// Compressed sparse row adjacency built from a [`Graph`] or any
/// [`GraphSource`].
///
/// The neighbors of `v` are `targets[offsets[v]..offsets[v+1]]` with `n+1`
/// offsets. Built with a counting pass followed by a placement pass — no
/// per-vertex `Vec` allocations (perf-book: preallocate, avoid allocation
/// in hot loops). Storage is either in-heap or a mapped spill file; see
/// [`Csr::build_spilled`].
#[derive(Debug, Clone)]
pub struct Csr {
    store: Store,
    direction: Direction,
}

impl Csr {
    fn heap(offsets: Vec<usize>, targets: Vec<VertexId>, direction: Direction) -> Self {
        Csr { store: Store::Heap { offsets, targets }, direction }
    }

    /// Exact heap cost of an in-heap CSR over `n` vertices and `entries`
    /// adjacency entries — what a [`MemoryBudget`](crate::MemoryBudget)
    /// charge for this structure should be.
    pub fn heap_bytes(n: usize, entries: usize) -> usize {
        (n + 1) * std::mem::size_of::<usize>() + entries * std::mem::size_of::<VertexId>()
    }

    /// Build adjacency in the requested direction.
    pub fn build(graph: &Graph, direction: Direction) -> Self {
        let n = graph.num_vertices();
        let mut counts = vec![0usize; n + 1];
        match direction {
            Direction::Out => {
                for e in graph.edges() {
                    counts[e.src as usize + 1] += 1;
                }
            }
            Direction::In => {
                for e in graph.edges() {
                    counts[e.dst as usize + 1] += 1;
                }
            }
            Direction::Undirected => {
                for e in graph.edges() {
                    counts[e.src as usize + 1] += 1;
                    counts[e.dst as usize + 1] += 1;
                }
            }
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts;
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as VertexId; offsets[n]];
        match direction {
            Direction::Out => {
                for e in graph.edges() {
                    let c = &mut cursor[e.src as usize];
                    targets[*c] = e.dst;
                    *c += 1;
                }
            }
            Direction::In => {
                for e in graph.edges() {
                    let c = &mut cursor[e.dst as usize];
                    targets[*c] = e.src;
                    *c += 1;
                }
            }
            Direction::Undirected => {
                for e in graph.edges() {
                    let c = &mut cursor[e.src as usize];
                    targets[*c] = e.dst;
                    *c += 1;
                    let c = &mut cursor[e.dst as usize];
                    targets[*c] = e.src;
                    *c += 1;
                }
            }
        }
        Csr::heap(offsets, targets, direction)
    }

    /// Build adjacency from any [`GraphSource`] with the counting and
    /// placement passes sharded over `shards` contiguous edge ranges
    /// (scoped `std::thread` workers). One shard — or a source without
    /// random access — degrades to the sequential two-pass build.
    ///
    /// Bit-identical to [`Csr::build`] on the same stream for every shard
    /// count: per-shard counts merge by addition, and each shard places its
    /// edges at cursor positions offset by the counts of earlier shards, so
    /// every per-vertex neighbor list ends up in stream order.
    pub fn build_source(source: &dyn GraphSource, direction: Direction, shards: usize) -> Self {
        let n = source.num_vertices();
        let chunks = source.par_chunks(shards.max(1));
        if chunks.len() <= 1 {
            return Self::build_source_sequential(source, direction);
        }
        // ---- counting pass: one private count array per shard ----
        let per_shard: Vec<Vec<u32>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .cloned()
                .map(|range| {
                    scope.spawn(move || {
                        let mut counts = vec![0u32; n];
                        each_edge_in(source, range, |e| count_edge(&mut counts, direction, e));
                        counts
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("csr count shard")).collect()
        });
        // ---- merge into offsets; derive each shard's start cursors ----
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            let total: usize = per_shard.iter().map(|c| c[v] as usize).sum();
            offsets[v + 1] = offsets[v] + total;
        }
        let mut cursors: Vec<Vec<usize>> = Vec::with_capacity(per_shard.len());
        let mut running = offsets[..n].to_vec();
        for shard_counts in &per_shard {
            cursors.push(running.clone());
            for (r, &c) in running.iter_mut().zip(shard_counts) {
                *r += c as usize;
            }
        }
        drop(per_shard);
        // ---- placement pass: disjoint writes into one shared buffer ----
        let mut targets = vec![0 as VertexId; offsets[n]];
        let shared = SharedTargets { ptr: targets.as_mut_ptr(), len: targets.len() };
        std::thread::scope(|scope| {
            for (range, mut cursor) in chunks.into_iter().zip(cursors) {
                let shared = &shared;
                scope.spawn(move || {
                    each_edge_in(source, range, |e| {
                        place_edge(&mut cursor, shared, direction, e);
                    });
                });
            }
        });
        Csr::heap(offsets, targets, direction)
    }

    /// Sequential two-pass build over a source (the degrade path of
    /// [`Csr::build_source`]).
    fn build_source_sequential(source: &dyn GraphSource, direction: Direction) -> Self {
        let n = source.num_vertices();
        let mut counts = vec![0u32; n];
        each_edge(source, |e| count_edge(&mut counts, direction, e));
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + counts[v] as usize;
        }
        drop(counts);
        let mut cursor = offsets[..n].to_vec();
        let mut targets = vec![0 as VertexId; offsets[n]];
        let shared = SharedTargets { ptr: targets.as_mut_ptr(), len: targets.len() };
        each_edge(source, |e| place_edge(&mut cursor, &shared, direction, e));
        Csr::heap(offsets, targets, direction)
    }

    /// [`Csr::build_undirected_simple`] over any source, with both the
    /// underlying undirected build *and* the simplify pass sharded (see
    /// [`Csr::build_source`]).
    pub fn build_undirected_simple_source(source: &dyn GraphSource, shards: usize) -> Self {
        Self::build_source(source, Direction::Undirected, shards).into_undirected_simple(shards)
    }

    /// Build undirected *simple* adjacency: reciprocal duplicates, parallel
    /// edges and self-loops removed, each list sorted. This is the input for
    /// triangle counting and neighborhood expansion.
    pub fn build_undirected_simple(graph: &Graph) -> Self {
        Csr::build(graph, Direction::Undirected).into_undirected_simple(1)
    }

    /// Simplify an undirected adjacency **in place**: sort each list, drop
    /// self-loops and duplicates, and compact the surviving entries to the
    /// front of the existing targets buffer — no second full-size targets
    /// vector (PR 8: the old scratch copy doubled peak memory right at the
    /// largest transient of the whole pipeline). With `shards > 1` the
    /// sort/dedup runs on contiguous vertex ranges under scoped threads,
    /// mirroring how counting/placement already shard; results are
    /// bit-identical for every shard count because each vertex's list is
    /// simplified independently.
    fn into_undirected_simple(self, shards: usize) -> Self {
        let (mut offsets, mut targets) = match self.store {
            Store::Heap { offsets, targets } => (offsets, targets),
            // defensive: a mapped CSR is immutable, decode before editing
            Store::Mapped(m) => m.decode(),
        };
        simplify_in_place(&mut offsets, &mut targets, shards);
        Csr::heap(offsets, targets, Direction::Undirected)
    }

    /// Build adjacency **out of core**: stream vertex chunks of at most
    /// `chunk_bytes` of adjacency through a bounded scratch buffer into an
    /// `EASECSR1` spill file in `dir`, then map the file read-only (see
    /// [`crate::spill`]). With `simplify`, each per-vertex list is sorted
    /// and deduplicated (self-loops dropped) before it is written — the
    /// out-of-core twin of [`Csr::build_undirected_simple_source`], never
    /// holding more than one chunk plus the `O(|V|)` count table in heap.
    ///
    /// The counting pass shards exactly like [`Csr::build_source`]; each
    /// chunk then replays the edge stream once, placing its own incidences
    /// in stream order, so the result is bit-identical to the in-heap
    /// build for every shard count and chunk size.
    pub fn build_spilled(
        source: &dyn GraphSource,
        direction: Direction,
        shards: usize,
        simplify: bool,
        chunk_bytes: usize,
        dir: &Path,
    ) -> std::io::Result<Self> {
        let n = source.num_vertices();
        let counts = count_source(source, direction, shards);
        let mut writer = SpillWriter::create(dir, n)?;
        let cap_entries = (chunk_bytes / std::mem::size_of::<VertexId>()).max(1024);
        let mut buf: Vec<VertexId> = Vec::new();
        let mut local_off: Vec<usize> = Vec::new();
        let mut v0 = 0usize;
        while v0 < n {
            // grow the chunk until the raw entry count hits the cap; a
            // single vertex larger than the cap gets a chunk of its own
            // (one adjacency list must fit in memory to be sorted)
            let mut v1 = v0;
            let mut entries = 0usize;
            while v1 < n && entries < cap_entries {
                let c = counts[v1] as usize;
                if entries > 0 && entries + c > cap_entries {
                    break;
                }
                entries += c;
                v1 += 1;
            }
            local_off.clear();
            local_off.push(0);
            for v in v0..v1 {
                local_off.push(local_off[v - v0] + counts[v] as usize);
            }
            buf.clear();
            buf.resize(entries, 0);
            // one stream replay placing this chunk's incidences in edge
            // order — the same order the in-heap placement pass produces
            let mut cursor = local_off[..v1 - v0].to_vec();
            each_edge(source, |e| {
                let mut put = |v: usize, t: VertexId| {
                    if (v0..v1).contains(&v) {
                        let c = &mut cursor[v - v0];
                        buf[*c] = t;
                        *c += 1;
                    }
                };
                match direction {
                    Direction::Out => put(e.src as usize, e.dst),
                    Direction::In => put(e.dst as usize, e.src),
                    Direction::Undirected => {
                        put(e.src as usize, e.dst);
                        put(e.dst as usize, e.src);
                    }
                }
            });
            for v in v0..v1 {
                let (lo, hi) = (local_off[v - v0], local_off[v - v0 + 1]);
                let list = &mut buf[lo..hi];
                if simplify {
                    list.sort_unstable();
                    let kept = dedup_list(list, v);
                    writer.push_list(&list[..kept])?;
                } else {
                    writer.push_list(list)?;
                }
            }
            v0 = v1;
        }
        let direction = if simplify { Direction::Undirected } else { direction };
        Ok(match writer.finish()? {
            LoadedCsr::Mapped(m) => Csr { store: Store::Mapped(Arc::new(m)), direction },
            LoadedCsr::Heap { offsets, targets } => Csr::heap(offsets, targets, direction),
        })
    }

    /// Whether this CSR is served from a mapped spill file rather than heap.
    pub fn is_spilled(&self) -> bool {
        matches!(self.store, Store::Mapped(_))
    }

    /// Bytes held by the backing storage: heap vector bytes, or the mapped
    /// spill file size.
    pub fn storage_bytes(&self) -> usize {
        match &self.store {
            Store::Heap { offsets, targets } => {
                Self::heap_bytes(offsets.len().saturating_sub(1), targets.len())
            }
            Store::Mapped(m) => m.mapped_bytes(),
        }
    }

    #[inline]
    pub fn num_vertices(&self) -> usize {
        match &self.store {
            Store::Heap { offsets, .. } => offsets.len() - 1,
            Store::Mapped(m) => m.num_vertices(),
        }
    }

    #[inline]
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Neighbor slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        match &self.store {
            Store::Heap { offsets, targets } => {
                &targets[offsets[v as usize]..offsets[v as usize + 1]]
            }
            Store::Mapped(m) => m.neighbors(v),
        }
    }

    /// Degree of `v` in this adjacency.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        match &self.store {
            Store::Heap { offsets, .. } => offsets[v as usize + 1] - offsets[v as usize],
            Store::Mapped(m) => m.degree(v),
        }
    }

    /// Total number of stored adjacency entries.
    #[inline]
    pub fn num_entries(&self) -> usize {
        match &self.store {
            Store::Heap { targets, .. } => targets.len(),
            Store::Mapped(m) => m.num_entries(),
        }
    }

    /// Iterate `(vertex, neighbors)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &[VertexId])> {
        (0..self.num_vertices() as VertexId).map(move |v| (v, self.neighbors(v)))
    }
}

/// Sort `list`, then compact it to unique entries excluding vertex `v`
/// itself; returns how many entries survive at the front. The caller has
/// already sorted the slice.
#[inline]
fn dedup_list(list: &mut [VertexId], v: usize) -> usize {
    let mut kept = 0usize;
    let mut prev = None;
    for i in 0..list.len() {
        let t = list[i];
        if t as usize == v || prev == Some(t) {
            continue;
        }
        list[kept] = t;
        prev = Some(t);
        kept += 1;
    }
    kept
}

/// The in-place simplify pass behind
/// [`Csr::build_undirected_simple`]/[`build_undirected_simple_source`]:
/// sort + dedup every per-vertex list (dropping self-loops) and slide the
/// survivors to the front of `targets`, rewriting `offsets` as it goes.
/// Peak extra memory is `O(shards · |V|/shards)` for the per-shard degree
/// records — never a second targets buffer.
fn simplify_in_place(offsets: &mut [usize], targets: &mut Vec<VertexId>, shards: usize) {
    let n = offsets.len() - 1;
    let ranges = shard_vertex_ranges(offsets, shards);
    if ranges.len() <= 1 {
        // sequential: one forward write cursor; `w <= lo` always, so the
        // compaction never overtakes the unread region
        let mut w = 0usize;
        for v in 0..n {
            let (lo, hi) = (offsets[v], offsets[v + 1]);
            targets[lo..hi].sort_unstable();
            offsets[v] = w;
            let mut prev = None;
            for i in lo..hi {
                let t = targets[i];
                if t as usize == v || prev == Some(t) {
                    continue;
                }
                targets[w] = t;
                prev = Some(t);
                w += 1;
            }
        }
        offsets[n] = w;
        targets.truncate(w);
        return;
    }
    // ---- phase 1 (parallel): each shard owns a disjoint sub-slice of
    // targets (split at vertex-range boundaries) and compacts its own
    // vertices to the front of that span ----
    let mut spans: Vec<(usize, &mut [VertexId])> = Vec::with_capacity(ranges.len());
    let mut rest: &mut [VertexId] = targets.as_mut_slice();
    let mut consumed = 0usize;
    for range in &ranges {
        let span_end = offsets[range.end];
        let (head, tail) = rest.split_at_mut(span_end - consumed);
        spans.push((consumed, head));
        consumed = span_end;
        rest = tail;
    }
    let offsets_ro: &[usize] = offsets;
    let results: Vec<(usize, Vec<u32>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .cloned()
            .zip(spans)
            .map(|(range, (span_start, span))| {
                scope.spawn(move || {
                    let mut degrees = Vec::with_capacity(range.len());
                    let mut w = 0usize;
                    for v in range {
                        let (lo, hi) = (offsets_ro[v] - span_start, offsets_ro[v + 1] - span_start);
                        span[lo..hi].sort_unstable();
                        let start = w;
                        let mut prev = None;
                        for i in lo..hi {
                            let t = span[i];
                            if t as usize == v || prev == Some(t) {
                                continue;
                            }
                            span[w] = t;
                            prev = Some(t);
                            w += 1;
                        }
                        degrees.push((w - start) as u32);
                    }
                    (w, degrees)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("simplify shard")).collect()
    });
    // ---- phase 2 (sequential): slide each shard's compacted block left
    // to abut the previous one, and rewrite offsets from the new degrees.
    // `offsets[range.start]` is still the *old* span start when its shard
    // is processed: only offsets of strictly earlier vertices have been
    // rewritten by then ----
    let mut w = 0usize;
    for (range, (compacted, degrees)) in ranges.iter().cloned().zip(results) {
        let span_start = offsets[range.start];
        targets.copy_within(span_start..span_start + compacted, w);
        for (v, d) in range.zip(degrees) {
            offsets[v] = w;
            w += d as usize;
        }
    }
    offsets[n] = w;
    targets.truncate(w);
}

/// Carve `0..n` into at most `shards` contiguous vertex ranges balanced by
/// adjacency entries (hubs make per-vertex splits uneven; entry balancing
/// keeps shard wall-times comparable).
fn shard_vertex_ranges(offsets: &[usize], shards: usize) -> Vec<std::ops::Range<usize>> {
    let n = offsets.len() - 1;
    let total = offsets[n];
    let shards = shards.max(1).min(n.max(1));
    if shards <= 1 || total == 0 {
        return std::iter::once(0..n).collect();
    }
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0usize;
    for s in 0..shards {
        if start >= n {
            break;
        }
        let end = if s + 1 == shards {
            n
        } else {
            let goal = (total as u128 * (s as u128 + 1) / shards as u128) as usize;
            offsets.partition_point(|&o| o < goal).clamp(start + 1, n)
        };
        ranges.push(start..end);
        start = end;
    }
    ranges
}

/// Sharded counting pass shared by the heap and spilled builders: merged
/// per-vertex incidence counts for `direction` over the whole stream.
fn count_source(source: &dyn GraphSource, direction: Direction, shards: usize) -> Vec<u32> {
    let n = source.num_vertices();
    let chunks = source.par_chunks(shards.max(1));
    if chunks.len() <= 1 {
        let mut counts = vec![0u32; n];
        each_edge(source, |e| count_edge(&mut counts, direction, e));
        return counts;
    }
    let per_shard: Vec<Vec<u32>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|range| {
                scope.spawn(move || {
                    let mut counts = vec![0u32; n];
                    each_edge_in(source, range, |e| count_edge(&mut counts, direction, e));
                    counts
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("csr count shard")).collect()
    });
    let mut merged = vec![0u32; n];
    for counts in per_shard {
        for (m, c) in merged.iter_mut().zip(counts) {
            *m += c;
        }
    }
    merged
}

#[inline]
fn count_edge(counts: &mut [u32], direction: Direction, e: Edge) {
    match direction {
        Direction::Out => counts[e.src as usize] += 1,
        Direction::In => counts[e.dst as usize] += 1,
        Direction::Undirected => {
            counts[e.src as usize] += 1;
            counts[e.dst as usize] += 1;
        }
    }
}

#[inline]
fn place_edge(cursor: &mut [usize], targets: &SharedTargets, direction: Direction, e: Edge) {
    let mut put = |v: usize, t: VertexId| {
        let c = &mut cursor[v];
        // SAFETY: see `SharedTargets` — this cursor position belongs
        // exclusively to this shard.
        unsafe { targets.write(*c, t) };
        *c += 1;
    };
    match direction {
        Direction::Out => put(e.src as usize, e.dst),
        Direction::In => put(e.dst as usize, e.src),
        Direction::Undirected => {
            put(e.src as usize, e.dst);
            put(e.dst as usize, e.src);
        }
    }
}

/// Shared mutable view of the placement target buffer.
///
/// SAFETY invariant: every write index is unique across all shards. Shard
/// `s` writes vertex `v`'s entries at `offsets[v] + Σ_{t<s} counts_t[v] ..`,
/// a span sized exactly to its own count of `v`-incident edges — spans for
/// the same vertex from different shards are disjoint by construction, and
/// spans for different vertices live in disjoint `offsets` windows. Nobody
/// reads the buffer until every placement worker has joined.
struct SharedTargets {
    ptr: *mut VertexId,
    len: usize,
}

// SAFETY: concurrent writes go through `write` at provably disjoint indices
// (see the invariant above), so shared access never aliases a write.
unsafe impl Sync for SharedTargets {}
// SAFETY: the struct is just a pointer + length into a buffer the spawning
// thread owns and outlives; moving it across threads transfers no state.
unsafe impl Send for SharedTargets {}

impl SharedTargets {
    /// Write `val` at `idx`. Caller must uphold the disjoint-index
    /// invariant documented on the type.
    #[inline]
    unsafe fn write(&self, idx: usize, val: VertexId) {
        debug_assert!(idx < self.len);
        // SAFETY: caller guarantees `idx < len` and exclusive ownership of
        // this index (type invariant), so the write is in-bounds, aligned
        // (derived from a Vec allocation) and unaliased.
        unsafe { *self.ptr.add(idx) = val };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Graph {
        Graph::from_pairs([(0, 1), (0, 2), (1, 2), (2, 0), (1, 1)])
    }

    /// Storage-independent structural dump for exact comparisons.
    fn dump(csr: &Csr) -> (Vec<usize>, Vec<VertexId>) {
        let mut offsets = vec![0usize];
        let mut targets = Vec::new();
        for (_, list) in csr.iter() {
            targets.extend_from_slice(list);
            offsets.push(targets.len());
        }
        (offsets, targets)
    }

    fn spill_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("ease_csr_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).expect("mk spill dir");
        d
    }

    #[test]
    fn out_adjacency() {
        let csr = Csr::build(&toy(), Direction::Out);
        assert_eq!(csr.neighbors(0), &[1, 2]);
        assert_eq!(csr.neighbors(1), &[2, 1]);
        assert_eq!(csr.neighbors(2), &[0]);
        assert_eq!(csr.num_entries(), 5);
    }

    #[test]
    fn in_adjacency() {
        let csr = Csr::build(&toy(), Direction::In);
        assert_eq!(csr.neighbors(0), &[2]);
        assert_eq!(csr.degree(2), 2);
    }

    #[test]
    fn undirected_counts_both_sides() {
        let csr = Csr::build(&toy(), Direction::Undirected);
        assert_eq!(csr.num_entries(), 10);
        assert_eq!(csr.degree(1), 4); // (0,1), (1,2), (1,1) twice
    }

    #[test]
    fn undirected_simple_drops_loops_and_dupes() {
        let g = Graph::from_pairs([(0, 1), (1, 0), (0, 1), (1, 1), (1, 2)]);
        let csr = Csr::build_undirected_simple(&g);
        assert_eq!(csr.neighbors(0), &[1]);
        assert_eq!(csr.neighbors(1), &[0, 2]);
        assert_eq!(csr.neighbors(2), &[1]);
    }

    #[test]
    fn degrees_sum_to_entries() {
        let g = toy();
        let csr = Csr::build(&g, Direction::Out);
        let total: usize = (0..g.num_vertices() as u32).map(|v| csr.degree(v)).sum();
        assert_eq!(total, csr.num_entries());
    }

    #[test]
    fn empty_graph_csr() {
        let csr = Csr::build(&Graph::empty(3), Direction::Out);
        assert_eq!(csr.num_vertices(), 3);
        assert_eq!(csr.num_entries(), 0);
        assert_eq!(csr.neighbors(1), &[] as &[u32]);
    }

    /// A deterministic pseudo-random multigraph big enough to span several
    /// fingerprint blocks when `m` is large.
    fn scrambled(n: u32, m: usize) -> Graph {
        let mut edges = Vec::with_capacity(m);
        let mut x = 0x9E3779B97F4A7C15u64;
        for _ in 0..m {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let src = ((x >> 33) % u64::from(n)) as u32;
            let dst = ((x >> 11) % u64::from(n)) as u32;
            edges.push(crate::types::Edge::new(src, dst));
        }
        Graph::new(n as usize, edges)
    }

    #[test]
    fn sharded_build_is_bit_identical_to_sequential() {
        // > one fingerprint block so multi-chunk splits actually happen
        let g = scrambled(257, crate::source::FINGERPRINT_BLOCK * 3 + 101);
        for direction in [Direction::Out, Direction::In, Direction::Undirected] {
            let reference = Csr::build(&g, direction);
            for shards in [1, 2, 3, 5, 8] {
                let sharded = Csr::build_source(&g, direction, shards);
                assert_eq!(dump(&sharded), dump(&reference), "{direction:?} x{shards}");
            }
        }
    }

    /// The PR 8 simplify rework: every shard count (including the
    /// sequential in-place path) produces the same structure the old
    /// scratch-copy implementation did, reconstructed here from the raw
    /// undirected adjacency via public accessors.
    #[test]
    fn sharded_simplify_is_bit_identical_for_every_shard_count() {
        for (n, m) in [(257u32, 4_000usize), (64, 900), (5, 3), (1, 4)] {
            let g = scrambled(n, m);
            let raw = Csr::build(&g, Direction::Undirected);
            let mut want_offsets = vec![0usize];
            let mut want_targets: Vec<VertexId> = Vec::new();
            for v in 0..n {
                let mut list = raw.neighbors(v).to_vec();
                list.sort_unstable();
                list.dedup();
                list.retain(|&t| t != v);
                want_targets.extend_from_slice(&list);
                want_offsets.push(want_targets.len());
            }
            for shards in [1usize, 2, 3, 5, 8, 64] {
                let simple =
                    Csr::build_source(&g, Direction::Undirected, 1).into_undirected_simple(shards);
                assert_eq!(
                    dump(&simple),
                    (want_offsets.clone(), want_targets.clone()),
                    "n={n} m={m} x{shards}"
                );
                assert_eq!(simple.direction(), Direction::Undirected);
            }
        }
    }

    #[test]
    fn sharded_build_handles_degenerate_inputs() {
        let empty = Graph::empty(4);
        let csr = Csr::build_source(&empty, Direction::Out, 8);
        assert_eq!(csr.num_vertices(), 4);
        assert_eq!(csr.num_entries(), 0);
        let tiny = toy();
        let csr = Csr::build_source(&tiny, Direction::Undirected, 64);
        assert_eq!(dump(&csr), dump(&Csr::build(&tiny, Direction::Undirected)));
        // simplifying an empty adjacency is a no-op, at any shard count
        let simple = Csr::build_source(&empty, Direction::Out, 1).into_undirected_simple(4);
        assert_eq!(simple.num_entries(), 0);
    }

    /// Spilled builds — raw and simplified, across chunk sizes small enough
    /// to force many chunks — serve the exact same structure through
    /// `neighbors()`/`degree()` as the in-heap build.
    #[test]
    fn spilled_build_is_bit_identical_to_heap() {
        let dir = spill_dir("bitid");
        let g = scrambled(101, 2_500);
        for direction in [Direction::Out, Direction::In, Direction::Undirected] {
            let heap = Csr::build(&g, direction);
            // 64-byte chunks force one-vertex chunks; 1 MiB fits everything
            for chunk_bytes in [0usize, 4096, 1 << 20] {
                let spilled = Csr::build_spilled(&g, direction, 2, false, chunk_bytes, &dir)
                    .expect("spilled build");
                assert_eq!(dump(&spilled), dump(&heap), "{direction:?} chunk={chunk_bytes}");
                assert_eq!(spilled.direction(), direction);
                assert_eq!(spilled.num_vertices(), heap.num_vertices());
            }
        }
        let simple = Csr::build_undirected_simple(&g);
        for chunk_bytes in [0usize, 4096, 1 << 20] {
            let spilled = Csr::build_spilled(&g, Direction::Undirected, 2, true, chunk_bytes, &dir)
                .expect("spilled simplify");
            assert!(spilled.is_spilled() || cfg!(not(unix)));
            assert_eq!(dump(&spilled), dump(&simple), "simplify chunk={chunk_bytes}");
            assert_eq!(spilled.direction(), Direction::Undirected);
        }
        assert_eq!(
            std::fs::read_dir(&dir).expect("read spill dir").count(),
            0,
            "spill files must be unlinked after mapping"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spilled_empty_graph_is_degenerate_but_safe() {
        let dir = spill_dir("empty");
        let csr = Csr::build_spilled(&Graph::empty(3), Direction::Out, 1, false, 0, &dir)
            .expect("spill empty");
        assert_eq!(csr.num_vertices(), 3);
        assert_eq!(csr.num_entries(), 0);
        assert_eq!(csr.neighbors(1), &[] as &[u32]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
