//! Compressed sparse row adjacency.

use crate::edge_list::Graph;
use crate::source::{each_edge, each_edge_in, GraphSource};
use crate::types::{Edge, VertexId};

/// Which adjacency direction a [`Csr`] encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `neighbors(v)` = out-neighbors (edge targets).
    Out,
    /// `neighbors(v)` = in-neighbors (edge sources).
    In,
    /// `neighbors(v)` = union of both directions (each directed edge
    /// contributes to both endpoints' lists).
    Undirected,
}

/// Compressed sparse row adjacency built from a [`Graph`].
///
/// `offsets` has `n+1` entries; the neighbors of `v` are
/// `targets[offsets[v]..offsets[v+1]]`. Built with a counting pass followed
/// by a placement pass — no per-vertex `Vec` allocations (perf-book:
/// preallocate, avoid allocation in hot loops).
#[derive(Debug, Clone)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
    direction: Direction,
}

impl Csr {
    /// Build adjacency in the requested direction.
    pub fn build(graph: &Graph, direction: Direction) -> Self {
        let n = graph.num_vertices();
        let mut counts = vec![0usize; n + 1];
        match direction {
            Direction::Out => {
                for e in graph.edges() {
                    counts[e.src as usize + 1] += 1;
                }
            }
            Direction::In => {
                for e in graph.edges() {
                    counts[e.dst as usize + 1] += 1;
                }
            }
            Direction::Undirected => {
                for e in graph.edges() {
                    counts[e.src as usize + 1] += 1;
                    counts[e.dst as usize + 1] += 1;
                }
            }
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts;
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as VertexId; offsets[n]];
        match direction {
            Direction::Out => {
                for e in graph.edges() {
                    let c = &mut cursor[e.src as usize];
                    targets[*c] = e.dst;
                    *c += 1;
                }
            }
            Direction::In => {
                for e in graph.edges() {
                    let c = &mut cursor[e.dst as usize];
                    targets[*c] = e.src;
                    *c += 1;
                }
            }
            Direction::Undirected => {
                for e in graph.edges() {
                    let c = &mut cursor[e.src as usize];
                    targets[*c] = e.dst;
                    *c += 1;
                    let c = &mut cursor[e.dst as usize];
                    targets[*c] = e.src;
                    *c += 1;
                }
            }
        }
        Csr { offsets, targets, direction }
    }

    /// Build adjacency from any [`GraphSource`] with the counting and
    /// placement passes sharded over `shards` contiguous edge ranges
    /// (scoped `std::thread` workers). One shard — or a source without
    /// random access — degrades to the sequential two-pass build.
    ///
    /// Bit-identical to [`Csr::build`] on the same stream for every shard
    /// count: per-shard counts merge by addition, and each shard places its
    /// edges at cursor positions offset by the counts of earlier shards, so
    /// every per-vertex neighbor list ends up in stream order.
    pub fn build_source(source: &dyn GraphSource, direction: Direction, shards: usize) -> Self {
        let n = source.num_vertices();
        let chunks = source.par_chunks(shards.max(1));
        if chunks.len() <= 1 {
            return Self::build_source_sequential(source, direction);
        }
        // ---- counting pass: one private count array per shard ----
        let per_shard: Vec<Vec<u32>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .cloned()
                .map(|range| {
                    scope.spawn(move || {
                        let mut counts = vec![0u32; n];
                        each_edge_in(source, range, |e| count_edge(&mut counts, direction, e));
                        counts
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("csr count shard")).collect()
        });
        // ---- merge into offsets; derive each shard's start cursors ----
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            let total: usize = per_shard.iter().map(|c| c[v] as usize).sum();
            offsets[v + 1] = offsets[v] + total;
        }
        let mut cursors: Vec<Vec<usize>> = Vec::with_capacity(per_shard.len());
        let mut running = offsets[..n].to_vec();
        for shard_counts in &per_shard {
            cursors.push(running.clone());
            for (r, &c) in running.iter_mut().zip(shard_counts) {
                *r += c as usize;
            }
        }
        drop(per_shard);
        // ---- placement pass: disjoint writes into one shared buffer ----
        let mut targets = vec![0 as VertexId; offsets[n]];
        let shared = SharedTargets { ptr: targets.as_mut_ptr(), len: targets.len() };
        std::thread::scope(|scope| {
            for (range, mut cursor) in chunks.into_iter().zip(cursors) {
                let shared = &shared;
                scope.spawn(move || {
                    each_edge_in(source, range, |e| {
                        place_edge(&mut cursor, shared, direction, e);
                    });
                });
            }
        });
        Csr { offsets, targets, direction }
    }

    /// Sequential two-pass build over a source (the degrade path of
    /// [`Csr::build_source`]).
    fn build_source_sequential(source: &dyn GraphSource, direction: Direction) -> Self {
        let n = source.num_vertices();
        let mut counts = vec![0u32; n];
        each_edge(source, |e| count_edge(&mut counts, direction, e));
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + counts[v] as usize;
        }
        drop(counts);
        let mut cursor = offsets[..n].to_vec();
        let mut targets = vec![0 as VertexId; offsets[n]];
        let shared = SharedTargets { ptr: targets.as_mut_ptr(), len: targets.len() };
        each_edge(source, |e| place_edge(&mut cursor, &shared, direction, e));
        Csr { offsets, targets, direction }
    }

    /// [`Csr::build_undirected_simple`] over any source, with the
    /// underlying undirected build sharded (see [`Csr::build_source`]).
    pub fn build_undirected_simple_source(source: &dyn GraphSource, shards: usize) -> Self {
        Self::build_source(source, Direction::Undirected, shards).into_undirected_simple()
    }

    /// Build undirected *simple* adjacency: reciprocal duplicates, parallel
    /// edges and self-loops removed, each list sorted. This is the input for
    /// triangle counting and neighborhood expansion.
    pub fn build_undirected_simple(graph: &Graph) -> Self {
        Csr::build(graph, Direction::Undirected).into_undirected_simple()
    }

    /// Simplify an undirected adjacency in place: sort each list, drop
    /// self-loops and duplicates.
    fn into_undirected_simple(mut self) -> Self {
        let csr = &mut self;
        let n = csr.num_vertices();
        let mut new_targets: Vec<VertexId> = Vec::with_capacity(csr.targets.len());
        let mut new_offsets: Vec<usize> = Vec::with_capacity(n + 1);
        new_offsets.push(0);
        // Sort + dedup each list, dropping self-loops.
        for v in 0..n {
            let (lo, hi) = (csr.offsets[v], csr.offsets[v + 1]);
            let list = &mut csr.targets[lo..hi];
            list.sort_unstable();
            let mut prev = None;
            for &t in list.iter() {
                if t as usize == v || prev == Some(t) {
                    continue;
                }
                new_targets.push(t);
                prev = Some(t);
            }
            new_offsets.push(new_targets.len());
        }
        Csr { offsets: new_offsets, targets: new_targets, direction: Direction::Undirected }
    }

    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Neighbor slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Degree of `v` in this adjacency.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Total number of stored adjacency entries.
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.targets.len()
    }

    /// Iterate `(vertex, neighbors)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &[VertexId])> {
        (0..self.num_vertices() as VertexId).map(move |v| (v, self.neighbors(v)))
    }
}

#[inline]
fn count_edge(counts: &mut [u32], direction: Direction, e: Edge) {
    match direction {
        Direction::Out => counts[e.src as usize] += 1,
        Direction::In => counts[e.dst as usize] += 1,
        Direction::Undirected => {
            counts[e.src as usize] += 1;
            counts[e.dst as usize] += 1;
        }
    }
}

#[inline]
fn place_edge(cursor: &mut [usize], targets: &SharedTargets, direction: Direction, e: Edge) {
    let mut put = |v: usize, t: VertexId| {
        let c = &mut cursor[v];
        // SAFETY: see `SharedTargets` — this cursor position belongs
        // exclusively to this shard.
        unsafe { targets.write(*c, t) };
        *c += 1;
    };
    match direction {
        Direction::Out => put(e.src as usize, e.dst),
        Direction::In => put(e.dst as usize, e.src),
        Direction::Undirected => {
            put(e.src as usize, e.dst);
            put(e.dst as usize, e.src);
        }
    }
}

/// Shared mutable view of the placement target buffer.
///
/// SAFETY invariant: every write index is unique across all shards. Shard
/// `s` writes vertex `v`'s entries at `offsets[v] + Σ_{t<s} counts_t[v] ..`,
/// a span sized exactly to its own count of `v`-incident edges — spans for
/// the same vertex from different shards are disjoint by construction, and
/// spans for different vertices live in disjoint `offsets` windows. Nobody
/// reads the buffer until every placement worker has joined.
struct SharedTargets {
    ptr: *mut VertexId,
    len: usize,
}

// SAFETY: concurrent writes go through `write` at provably disjoint indices
// (see the invariant above), so shared access never aliases a write.
unsafe impl Sync for SharedTargets {}
// SAFETY: the struct is just a pointer + length into a buffer the spawning
// thread owns and outlives; moving it across threads transfers no state.
unsafe impl Send for SharedTargets {}

impl SharedTargets {
    /// Write `val` at `idx`. Caller must uphold the disjoint-index
    /// invariant documented on the type.
    #[inline]
    unsafe fn write(&self, idx: usize, val: VertexId) {
        debug_assert!(idx < self.len);
        // SAFETY: caller guarantees `idx < len` and exclusive ownership of
        // this index (type invariant), so the write is in-bounds, aligned
        // (derived from a Vec allocation) and unaliased.
        unsafe { *self.ptr.add(idx) = val };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Graph {
        Graph::from_pairs([(0, 1), (0, 2), (1, 2), (2, 0), (1, 1)])
    }

    #[test]
    fn out_adjacency() {
        let csr = Csr::build(&toy(), Direction::Out);
        assert_eq!(csr.neighbors(0), &[1, 2]);
        assert_eq!(csr.neighbors(1), &[2, 1]);
        assert_eq!(csr.neighbors(2), &[0]);
        assert_eq!(csr.num_entries(), 5);
    }

    #[test]
    fn in_adjacency() {
        let csr = Csr::build(&toy(), Direction::In);
        assert_eq!(csr.neighbors(0), &[2]);
        assert_eq!(csr.degree(2), 2);
    }

    #[test]
    fn undirected_counts_both_sides() {
        let csr = Csr::build(&toy(), Direction::Undirected);
        assert_eq!(csr.num_entries(), 10);
        assert_eq!(csr.degree(1), 4); // (0,1), (1,2), (1,1) twice
    }

    #[test]
    fn undirected_simple_drops_loops_and_dupes() {
        let g = Graph::from_pairs([(0, 1), (1, 0), (0, 1), (1, 1), (1, 2)]);
        let csr = Csr::build_undirected_simple(&g);
        assert_eq!(csr.neighbors(0), &[1]);
        assert_eq!(csr.neighbors(1), &[0, 2]);
        assert_eq!(csr.neighbors(2), &[1]);
    }

    #[test]
    fn degrees_sum_to_entries() {
        let g = toy();
        let csr = Csr::build(&g, Direction::Out);
        let total: usize = (0..g.num_vertices() as u32).map(|v| csr.degree(v)).sum();
        assert_eq!(total, csr.num_entries());
    }

    #[test]
    fn empty_graph_csr() {
        let csr = Csr::build(&Graph::empty(3), Direction::Out);
        assert_eq!(csr.num_vertices(), 3);
        assert_eq!(csr.num_entries(), 0);
        assert_eq!(csr.neighbors(1), &[] as &[u32]);
    }

    /// A deterministic pseudo-random multigraph big enough to span several
    /// fingerprint blocks when `m` is large.
    fn scrambled(n: u32, m: usize) -> Graph {
        let mut edges = Vec::with_capacity(m);
        let mut x = 0x9E3779B97F4A7C15u64;
        for _ in 0..m {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let src = ((x >> 33) % u64::from(n)) as u32;
            let dst = ((x >> 11) % u64::from(n)) as u32;
            edges.push(crate::types::Edge::new(src, dst));
        }
        Graph::new(n as usize, edges)
    }

    #[test]
    fn sharded_build_is_bit_identical_to_sequential() {
        // > one fingerprint block so multi-chunk splits actually happen
        let g = scrambled(257, crate::source::FINGERPRINT_BLOCK * 3 + 101);
        for direction in [Direction::Out, Direction::In, Direction::Undirected] {
            let reference = Csr::build(&g, direction);
            for shards in [1, 2, 3, 5, 8] {
                let sharded = Csr::build_source(&g, direction, shards);
                assert_eq!(sharded.offsets, reference.offsets, "{direction:?} x{shards}");
                assert_eq!(sharded.targets, reference.targets, "{direction:?} x{shards}");
            }
        }
        let simple_ref = Csr::build_undirected_simple(&g);
        let simple_sharded = Csr::build_undirected_simple_source(&g, 4);
        assert_eq!(simple_sharded.offsets, simple_ref.offsets);
        assert_eq!(simple_sharded.targets, simple_ref.targets);
    }

    #[test]
    fn sharded_build_handles_degenerate_inputs() {
        let empty = Graph::empty(4);
        let csr = Csr::build_source(&empty, Direction::Out, 8);
        assert_eq!(csr.num_vertices(), 4);
        assert_eq!(csr.num_entries(), 0);
        let tiny = toy();
        let csr = Csr::build_source(&tiny, Direction::Undirected, 64);
        assert_eq!(csr.targets, Csr::build(&tiny, Direction::Undirected).targets);
    }
}
