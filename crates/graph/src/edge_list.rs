//! The owned directed graph representation used throughout the workspace.

use crate::types::{Edge, VertexId};

/// A directed graph stored as an edge list with a known vertex universe
/// `0..num_vertices`.
///
/// The edge list is the natural input format for *streaming* partitioners
/// (the stream order is simply the vector order) and the source from which
/// [`crate::Csr`] adjacency is built for in-memory algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    num_vertices: usize,
    edges: Vec<Edge>,
}

impl Graph {
    /// Build a graph from raw edges. Panics if an endpoint is out of range.
    pub fn new(num_vertices: usize, edges: Vec<Edge>) -> Self {
        debug_assert!(
            edges
                .iter()
                .all(|e| (e.src as usize) < num_vertices && (e.dst as usize) < num_vertices),
            "edge endpoint out of range"
        );
        Graph { num_vertices, edges }
    }

    /// Build from `(src, dst)` tuples, inferring the vertex count as
    /// `max endpoint + 1`.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (VertexId, VertexId)>) -> Self {
        let edges: Vec<Edge> = pairs.into_iter().map(Edge::from).collect();
        let num_vertices = edges.iter().map(|e| e.src.max(e.dst) as usize + 1).max().unwrap_or(0);
        Graph { num_vertices, edges }
    }

    /// An empty graph over `n` isolated vertices.
    pub fn empty(num_vertices: usize) -> Self {
        Graph { num_vertices, edges: Vec::new() }
    }

    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Mutable access used by generators that post-process their output.
    pub fn edges_mut(&mut self) -> &mut Vec<Edge> {
        &mut self.edges
    }

    /// Push one edge (grows the vertex universe if needed).
    pub fn push_edge(&mut self, src: VertexId, dst: VertexId) {
        self.num_vertices = self.num_vertices.max(src.max(dst) as usize + 1);
        self.edges.push(Edge::new(src, dst));
    }

    /// Remove self-loops in place, preserving order.
    pub fn remove_self_loops(&mut self) {
        self.edges.retain(|e| !e.is_loop());
    }

    /// Remove duplicate directed edges (keeps first occurrence order is NOT
    /// preserved; edges are sorted). Generators call this when simple graphs
    /// are required.
    pub fn dedup_edges(&mut self) {
        self.edges.sort_unstable();
        self.edges.dedup();
    }

    /// Number of distinct undirected edges (canonical pairs), ignoring
    /// self-loops. Used by triangle/LCC computations.
    pub fn num_undirected_edges(&self) -> usize {
        let mut pairs: Vec<(VertexId, VertexId)> =
            self.edges.iter().filter(|e| !e.is_loop()).map(|e| e.canonical()).collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs.len()
    }

    /// Out-degree of every vertex.
    pub fn out_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_vertices];
        for e in &self.edges {
            deg[e.src as usize] += 1;
        }
        deg
    }

    /// In-degree of every vertex.
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_vertices];
        for e in &self.edges {
            deg[e.dst as usize] += 1;
        }
        deg
    }

    /// Total (in+out) degree of every vertex; self-loops count twice,
    /// matching the paper's `deg(G) = 2|E| / |V|` convention.
    pub fn total_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_vertices];
        for e in &self.edges {
            deg[e.src as usize] += 1;
            deg[e.dst as usize] += 1;
        }
        deg
    }

    /// Relabel vertices with a permutation; used by generators to destroy
    /// artificial id locality. `perm[v]` is the new id of old vertex `v`.
    pub fn relabel(&mut self, perm: &[VertexId]) {
        assert_eq!(perm.len(), self.num_vertices);
        for e in &mut self.edges {
            e.src = perm[e.src as usize];
            e.dst = perm[e.dst as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Graph {
        Graph::from_pairs([(0, 1), (1, 2), (2, 0), (2, 2), (0, 1)])
    }

    #[test]
    fn from_pairs_infers_vertex_count() {
        let g = toy();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    fn degree_computation() {
        let g = toy();
        assert_eq!(g.out_degrees(), vec![2, 1, 2]);
        assert_eq!(g.in_degrees(), vec![1, 2, 2]);
        assert_eq!(g.total_degrees(), vec![3, 3, 4]);
    }

    #[test]
    fn self_loop_removal() {
        let mut g = toy();
        g.remove_self_loops();
        assert_eq!(g.num_edges(), 4);
        assert!(g.edges().iter().all(|e| !e.is_loop()));
    }

    #[test]
    fn dedup_removes_parallel_edges() {
        let mut g = toy();
        g.dedup_edges();
        assert_eq!(g.num_edges(), 4); // (0,1) was duplicated
    }

    #[test]
    fn undirected_edge_count_merges_reciprocal() {
        let g = Graph::from_pairs([(0, 1), (1, 0), (1, 2)]);
        assert_eq!(g.num_undirected_edges(), 2);
    }

    #[test]
    fn relabel_applies_permutation() {
        let mut g = Graph::from_pairs([(0, 1), (1, 2)]);
        g.relabel(&[2, 0, 1]);
        assert_eq!(g.edges()[0], Edge::new(2, 0));
        assert_eq!(g.edges()[1], Edge::new(0, 1));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert!(g.is_empty());
        assert_eq!(g.out_degrees(), vec![0; 5]);
    }

    #[test]
    fn push_edge_grows_universe() {
        let mut g = Graph::empty(1);
        g.push_edge(0, 9);
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 1);
    }
}
