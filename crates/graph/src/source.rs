//! `GraphSource` — the ingestion seam every graph enters the system through.
//!
//! Before this abstraction, every path into [`crate::PreparedGraph`]
//! required an owned `Vec<Edge>` materialized up front, so the largest graph
//! the system could analyze was bounded by `8 bytes × |E|` of heap *before*
//! any analysis started — exactly the memory-constraint regime that
//! motivates HEP-style partitioners. A [`GraphSource`] is anything that can
//! replay its edge stream on demand:
//!
//! * [`crate::Graph`] — the in-memory edge list (exposes a zero-cost slice),
//! * [`crate::bel::BelSource`] — a zero-copy view over a memory-mapped
//!   binary edge-list (`.bel`) file,
//! * [`TextStreamSource`] — a buffered streaming reader over a text edge
//!   list that never holds the whole file.
//!
//! Consumers drive the source with whole-stream passes
//! ([`GraphSource::for_each_edge`]) or shard a pass over contiguous edge
//! ranges ([`GraphSource::par_chunks`] + [`GraphSource::for_each_edge_in`])
//! for parallel CSR/degree construction. Sources that cannot seek (the
//! streaming text reader) advertise a single chunk, and sharded builders
//! degrade to their sequential path.
//!
//! The module also defines the *block fingerprint*: a content hash chunked
//! into fixed [`FINGERPRINT_BLOCK`]-edge blocks so it can be computed
//! incrementally during any sharded pass (block hashes are independent;
//! the final combination is order-sensitive). The block decomposition is
//! fixed — never derived from the worker count — so the fingerprint is
//! bit-identical across backends, shard counts and machines.

use std::io::BufRead;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::edge_list::Graph;
use crate::hash::mix64;
use crate::io::{parse_edge_line, GraphIoError};
use crate::types::Edge;

/// Fixed block length (in edges) of the content fingerprint. Part of the
/// fingerprint definition: changing it changes every fingerprint.
pub const FINGERPRINT_BLOCK: usize = 1 << 16;

/// A replayable, shard-able stream of edges with a known vertex universe.
///
/// Implementations must replay the *same* edges in the *same* order on
/// every pass — all derived structure (CSRs, degrees, fingerprints,
/// partition assignments) is defined over the stream order.
pub trait GraphSource: Send + Sync {
    /// Size of the dense vertex universe `0..num_vertices`.
    fn num_vertices(&self) -> usize;

    /// Total number of edges in the stream.
    fn edge_count(&self) -> usize;

    /// Replay the whole edge stream in order.
    fn for_each_edge(&self, f: &mut dyn FnMut(Edge));

    /// Replay the edges with stream indices in `range` (in order).
    /// `range` must lie within `0..edge_count()`.
    fn for_each_edge_in(&self, range: Range<usize>, f: &mut dyn FnMut(Edge));

    /// Split `0..edge_count()` into at most `n` contiguous in-order ranges
    /// suitable for concurrent [`GraphSource::for_each_edge_in`] passes.
    /// Boundaries are aligned to [`FINGERPRINT_BLOCK`] so shard workers can
    /// fold whole fingerprint blocks. Sources without random access return
    /// a single range; callers must then use their sequential path.
    fn par_chunks(&self, n: usize) -> Vec<Range<usize>> {
        aligned_chunks(self.edge_count(), n)
    }

    /// The edges as a contiguous in-memory slice, when the backing store
    /// has them in `Edge` layout (the in-memory backend). Lets hot builders
    /// skip per-edge dynamic dispatch without copying.
    fn edge_slice(&self) -> Option<&[Edge]> {
        None
    }
}

/// Shared handles are sources too: the profiling spill cache hands the
/// same mapped `.bel` to many workers as `Arc<BelSource>`. Every method —
/// including the `par_chunks`/`edge_slice` defaults — forwards to the
/// inner source so sharding and fast paths survive the indirection.
impl<T: GraphSource + ?Sized> GraphSource for Arc<T> {
    #[inline]
    fn num_vertices(&self) -> usize {
        (**self).num_vertices()
    }

    #[inline]
    fn edge_count(&self) -> usize {
        (**self).edge_count()
    }

    fn for_each_edge(&self, f: &mut dyn FnMut(Edge)) {
        (**self).for_each_edge(f);
    }

    fn for_each_edge_in(&self, range: Range<usize>, f: &mut dyn FnMut(Edge)) {
        (**self).for_each_edge_in(range, f);
    }

    fn par_chunks(&self, n: usize) -> Vec<Range<usize>> {
        (**self).par_chunks(n)
    }

    fn edge_slice(&self) -> Option<&[Edge]> {
        (**self).edge_slice()
    }
}

/// Drive `f` over the whole stream with the in-memory fast path: when the
/// source exposes a slice the loop is fully monomorphized (no per-edge
/// dynamic dispatch); otherwise it falls back to the trait's replay.
#[inline]
pub fn each_edge<F: FnMut(Edge)>(source: &dyn GraphSource, mut f: F) {
    if let Some(edges) = source.edge_slice() {
        for &e in edges {
            f(e);
        }
    } else {
        source.for_each_edge(&mut f);
    }
}

/// Ranged [`each_edge`].
#[inline]
pub fn each_edge_in<F: FnMut(Edge)>(source: &dyn GraphSource, range: Range<usize>, mut f: F) {
    if let Some(edges) = source.edge_slice() {
        for &e in &edges[range] {
            f(e);
        }
    } else {
        source.for_each_edge_in(range, &mut f);
    }
}

/// True when `path` names a binary edge list by extension
/// (`.bel`, case-insensitive).
pub fn is_bel_path(path: &Path) -> bool {
    path.extension().is_some_and(|e| e.eq_ignore_ascii_case("bel"))
}

/// Open a graph file for analysis, format-dispatched by extension: `.bel`
/// files are memory-mapped zero-copy (no owned edge list, validation at
/// open); everything else is parsed as a whitespace-separated text edge
/// list into an owned [`Graph`] — analysis makes several passes, and
/// re-parsing text per pass would dominate every downstream timing.
///
/// The handle is `Send + Sync` ([`GraphSource`] supertraits), so one
/// opened graph can be analyzed from any thread — the `ease serve` daemon
/// opens request paths on its worker threads through exactly this seam.
pub fn open_path(path: &Path) -> Result<Box<dyn GraphSource>, GraphIoError> {
    if is_bel_path(path) {
        Ok(Box::new(crate::bel::BelSource::open(path)?))
    } else {
        Ok(Box::new(crate::io::read_edge_list(path)?))
    }
}

/// Split `0..m` into at most `n` contiguous ranges whose boundaries are
/// multiples of [`FINGERPRINT_BLOCK`] (except the final end).
pub fn aligned_chunks(m: usize, n: usize) -> Vec<Range<usize>> {
    if m == 0 {
        return Vec::new();
    }
    let n = n.max(1);
    let blocks = m.div_ceil(FINGERPRINT_BLOCK);
    let shards = n.min(blocks);
    let per_shard = blocks.div_ceil(shards);
    let mut out = Vec::with_capacity(shards);
    let mut start_block = 0usize;
    while start_block < blocks {
        let end_block = (start_block + per_shard).min(blocks);
        let lo = start_block * FINGERPRINT_BLOCK;
        let hi = (end_block * FINGERPRINT_BLOCK).min(m);
        out.push(lo..hi);
        start_block = end_block;
    }
    out
}

/// Per-block hash state for the block fingerprint. Feed edges in stream
/// order starting at a block boundary; collect one `u64` per finished block.
#[derive(Debug, Clone)]
pub struct BlockHasher {
    block_index: usize,
    in_block: usize,
    acc: u64,
    /// `(block index, hash)` of every finished block, in order.
    pub blocks: Vec<(usize, u64)>,
}

impl BlockHasher {
    /// Start hashing at edge stream index `start` (must be a multiple of
    /// [`FINGERPRINT_BLOCK`]).
    pub fn starting_at(start: usize) -> Self {
        debug_assert_eq!(start % FINGERPRINT_BLOCK, 0, "blocks start on block boundaries");
        let block_index = start / FINGERPRINT_BLOCK;
        BlockHasher { block_index, in_block: 0, acc: block_seed(block_index), blocks: Vec::new() }
    }

    #[inline]
    pub fn feed(&mut self, e: Edge) {
        self.acc = mix64(self.acc ^ ((u64::from(e.src) << 32) | u64::from(e.dst)));
        self.in_block += 1;
        if self.in_block == FINGERPRINT_BLOCK {
            self.flush();
        }
    }

    fn flush(&mut self) {
        self.blocks.push((self.block_index, self.acc));
        self.block_index += 1;
        self.in_block = 0;
        self.acc = block_seed(self.block_index);
    }

    /// Finish: flush the trailing partial block (if any) and return the
    /// collected `(block index, hash)` pairs.
    pub fn finish(mut self) -> Vec<(usize, u64)> {
        if self.in_block > 0 {
            self.flush();
        }
        self.blocks
    }
}

#[inline]
fn block_seed(block_index: usize) -> u64 {
    mix64(0xB10C_EA5E ^ block_index as u64)
}

/// Combine per-block hashes (sorted by block index) with the stream shape
/// into the final content fingerprint. Equal for identical
/// `(num_vertices, edge stream)` inputs regardless of backend or shard
/// layout; different (with overwhelming probability) when any edge, the
/// edge order, or the vertex universe changes.
pub fn combine_fingerprint(num_vertices: usize, edge_count: usize, blocks: &[(usize, u64)]) -> u64 {
    debug_assert!(blocks.windows(2).all(|w| w[0].0 < w[1].0), "blocks sorted by index");
    let mut h = mix64(0xEA5E_F16E ^ (num_vertices as u64));
    h = mix64(h ^ (edge_count as u64).rotate_left(32));
    for &(_, bh) in blocks {
        h = mix64(h ^ bh);
    }
    h
}

/// One sequential pass computing the fingerprint of a source. The fused
/// sharded equivalent lives in
/// [`crate::degree::DegreeTable::compute_source`], which folds the same
/// blocks during its counting pass; [`fingerprint_source_sharded`] shards a
/// standalone fingerprint pass. All three produce the same value.
pub fn fingerprint_source(source: &dyn GraphSource) -> u64 {
    let mut hasher = BlockHasher::starting_at(0);
    each_edge(source, |e| hasher.feed(e));
    combine_fingerprint(source.num_vertices(), source.edge_count(), &hasher.finish())
}

/// [`fingerprint_source`] with the pass sharded over `shards` edge ranges.
/// Block hashes are independent, so shards fold their own blocks and the
/// combination is assembled in block order — bit-identical to the
/// sequential pass for every shard count.
pub fn fingerprint_source_sharded(source: &dyn GraphSource, shards: usize) -> u64 {
    let chunks = source.par_chunks(shards.max(1));
    if chunks.len() <= 1 {
        return fingerprint_source(source);
    }
    let mut blocks: Vec<(usize, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|range| {
                scope.spawn(move || {
                    let mut hasher = BlockHasher::starting_at(range.start);
                    each_edge_in(source, range, |e| hasher.feed(e));
                    hasher.finish()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("fingerprint shard")).collect()
    });
    blocks.sort_unstable_by_key(|&(i, _)| i);
    combine_fingerprint(source.num_vertices(), source.edge_count(), &blocks)
}

// ---------------------------------------------------------------------
// Backend 1: the in-memory edge list
// ---------------------------------------------------------------------

impl GraphSource for Graph {
    #[inline]
    fn num_vertices(&self) -> usize {
        Graph::num_vertices(self)
    }

    #[inline]
    fn edge_count(&self) -> usize {
        self.num_edges()
    }

    fn for_each_edge(&self, f: &mut dyn FnMut(Edge)) {
        for &e in self.edges() {
            f(e);
        }
    }

    fn for_each_edge_in(&self, range: Range<usize>, f: &mut dyn FnMut(Edge)) {
        for &e in &self.edges()[range] {
            f(e);
        }
    }

    fn edge_slice(&self) -> Option<&[Edge]> {
        Some(self.edges())
    }
}

// ---------------------------------------------------------------------
// Backend 3: buffered streaming text reader
// ---------------------------------------------------------------------

/// A text edge list consumed as a stream: one buffered pass per replay,
/// one reusable line buffer, never the whole file in memory.
///
/// [`TextStreamSource::open`] runs a single validation pass (counting edges
/// and the max endpoint, type-checking every line) so later replays are
/// infallible; if the file changes between passes the replay panics rather
/// than returning silently wrong analysis.
#[derive(Debug, Clone)]
pub struct TextStreamSource {
    path: PathBuf,
    num_vertices: usize,
    edge_count: usize,
}

impl TextStreamSource {
    /// Open and validate `path` (one full buffered pass, constant memory).
    /// A `# vertices N` summary comment declares an explicit universe (see
    /// [`crate::io::parse_universe_comment`]); the source covers
    /// `max(declared, max endpoint + 1)`.
    pub fn open(path: &Path) -> Result<Self, GraphIoError> {
        let file = std::fs::File::open(path)?;
        let mut reader = std::io::BufReader::new(file);
        let mut line = String::new();
        let mut lineno = 0usize;
        let mut edge_count = 0usize;
        let mut max_v = 0u32;
        let mut declared = 0usize;
        let mut any = false;
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                break;
            }
            lineno += 1;
            if let Some(e) = parse_edge_line(&line, lineno)? {
                edge_count += 1;
                max_v = max_v.max(e.src).max(e.dst);
                any = true;
            } else if let Some(n) = crate::io::parse_universe_comment(&line) {
                crate::io::check_declared_universe(n)?;
                declared = declared.max(n);
            }
        }
        let inferred = if any { max_v as usize + 1 } else { 0 };
        Ok(TextStreamSource {
            path: path.to_path_buf(),
            num_vertices: inferred.max(declared),
            edge_count,
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Stream the file, calling `f` for edges with stream index in
    /// `range`. Edges before the range are parsed and skipped (text has no
    /// random access); iteration stops at the range end.
    fn stream(&self, range: Range<usize>, f: &mut dyn FnMut(Edge)) {
        if range.is_empty() {
            return;
        }
        let file = std::fs::File::open(&self.path).unwrap_or_else(|e| {
            panic!("edge list {} vanished mid-analysis: {e}", self.path.display())
        });
        let mut reader = std::io::BufReader::new(file);
        let mut line = String::new();
        let mut lineno = 0usize;
        let mut idx = 0usize;
        loop {
            line.clear();
            let n = reader.read_line(&mut line).unwrap_or_else(|e| {
                panic!("edge list {} unreadable mid-analysis: {e}", self.path.display())
            });
            if n == 0 {
                break;
            }
            lineno += 1;
            let parsed = parse_edge_line(&line, lineno).unwrap_or_else(|e| {
                panic!("edge list {} changed mid-analysis: {e}", self.path.display())
            });
            if let Some(e) = parsed {
                if idx >= range.end {
                    return;
                }
                if idx >= range.start {
                    f(e);
                }
                idx += 1;
            }
        }
        assert!(
            idx >= range.end,
            "edge list {} shrank mid-analysis: expected {} edges, saw {idx}",
            self.path.display(),
            self.edge_count,
        );
    }
}

impl GraphSource for TextStreamSource {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    #[inline]
    fn edge_count(&self) -> usize {
        self.edge_count
    }

    fn for_each_edge(&self, f: &mut dyn FnMut(Edge)) {
        self.stream(0..self.edge_count, f);
    }

    fn for_each_edge_in(&self, range: Range<usize>, f: &mut dyn FnMut(Edge)) {
        self.stream(range, f);
    }

    /// No random access: a sharded pass over a text stream would re-parse
    /// the file once per shard, so advertise a single chunk and let
    /// builders take their sequential path.
    // the single range IS the contract here: one chunk = "no random access"
    #[allow(clippy::single_range_in_vec_init)]
    fn par_chunks(&self, _n: usize) -> Vec<Range<usize>> {
        if self.edge_count == 0 {
            Vec::new()
        } else {
            vec![0..self.edge_count]
        }
    }
}

/// Materialize any source into an owned [`Graph`] (test/diagnostic helper —
/// production paths exist precisely to avoid this).
pub fn collect_source(source: &dyn GraphSource) -> Graph {
    let mut edges = Vec::with_capacity(source.edge_count());
    source.for_each_edge(&mut |e| edges.push(e));
    Graph::new(source.num_vertices(), edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Graph {
        Graph::from_pairs([(0, 1), (1, 2), (2, 0), (2, 3), (3, 0), (1, 3)])
    }

    #[test]
    fn graph_source_replays_the_slice() {
        let g = toy();
        let mut seen = Vec::new();
        GraphSource::for_each_edge(&g, &mut |e| seen.push(e));
        assert_eq!(seen, g.edges());
        assert_eq!(g.edge_count(), 6);
        assert_eq!(GraphSource::num_vertices(&g), 4);
        assert_eq!(g.edge_slice().unwrap(), g.edges());
        let mut ranged = Vec::new();
        g.for_each_edge_in(2..5, &mut |e| ranged.push(e));
        assert_eq!(ranged, &g.edges()[2..5]);
    }

    #[test]
    fn aligned_chunks_cover_and_align() {
        let m = 5 * FINGERPRINT_BLOCK + 123;
        for n in [1, 2, 3, 4, 7, 100] {
            let chunks = aligned_chunks(m, n);
            assert!(chunks.len() <= n.max(1));
            assert_eq!(chunks.first().unwrap().start, 0);
            assert_eq!(chunks.last().unwrap().end, m);
            for w in chunks.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous");
                assert_eq!(w[0].end % FINGERPRINT_BLOCK, 0, "aligned");
            }
        }
        assert!(aligned_chunks(0, 4).is_empty());
        // tiny stream: one chunk regardless of n
        assert_eq!(aligned_chunks(10, 8), vec![0..10]);
    }

    #[test]
    fn fingerprint_is_independent_of_block_partitioning() {
        // two blocks worth of edges, hashed whole vs. per aligned shard
        let m = FINGERPRINT_BLOCK + 17;
        let edges: Vec<Edge> = (0..m as u32).map(|i| Edge::new(i % 97, (i * 7) % 89)).collect();
        let g = Graph::new(97, edges);
        let whole = fingerprint_source(&g);
        // shard-by-shard with independent hashers
        let mut blocks = Vec::new();
        for r in aligned_chunks(m, 2) {
            let mut h = BlockHasher::starting_at(r.start);
            g.for_each_edge_in(r, &mut |e| h.feed(e));
            blocks.extend(h.finish());
        }
        blocks.sort_by_key(|&(i, _)| i);
        assert_eq!(whole, combine_fingerprint(97, m, &blocks));
    }

    #[test]
    fn fingerprint_is_content_and_order_sensitive() {
        let g = toy();
        let base = fingerprint_source(&g);
        let mut swapped = g.clone();
        swapped.edges_mut().swap(0, 1);
        assert_ne!(base, fingerprint_source(&swapped));
        let mut changed = g.clone();
        changed.edges_mut()[0] = Edge::new(0, 2);
        assert_ne!(base, fingerprint_source(&changed));
        let padded = Graph::new(5, g.edges().to_vec());
        assert_ne!(base, fingerprint_source(&padded));
        assert_eq!(base, fingerprint_source(&g.clone()));
    }

    #[test]
    fn text_stream_source_round_trips_without_materializing() {
        let g = toy();
        let path =
            std::env::temp_dir().join(format!("ease_text_stream_{}.txt", std::process::id()));
        crate::io::write_edge_list(&g, &path).unwrap();
        let src = TextStreamSource::open(&path).unwrap();
        assert_eq!(src.edge_count(), g.num_edges());
        assert_eq!(src.num_vertices(), g.num_vertices());
        assert_eq!(collect_source(&src), g);
        // ranged replay skips the prefix
        let mut mid = Vec::new();
        src.for_each_edge_in(2..4, &mut |e| mid.push(e));
        assert_eq!(mid, &g.edges()[2..4]);
        // a text stream advertises exactly one chunk
        assert_eq!(src.par_chunks(8), vec![0..6]);
        assert_eq!(fingerprint_source(&src), fingerprint_source(&g));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn text_stream_open_reports_parse_errors() {
        let path =
            std::env::temp_dir().join(format!("ease_text_stream_bad_{}.txt", std::process::id()));
        std::fs::write(&path, "0 1\nnot an edge\n").unwrap();
        let err = TextStreamSource::open(&path).unwrap_err();
        assert!(matches!(err, GraphIoError::Parse { line: 2, .. }), "{err:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn arc_sources_forward_every_method() {
        let g = toy();
        let arc: Arc<Graph> = Arc::new(g.clone());
        assert_eq!(GraphSource::num_vertices(&arc), GraphSource::num_vertices(&g));
        assert_eq!(arc.edge_count(), g.edge_count());
        assert_eq!(arc.edge_slice(), g.edge_slice(), "fast path survives the Arc");
        assert_eq!(arc.par_chunks(4), g.par_chunks(4));
        assert_eq!(collect_source(&arc), g);
        let mut mid = Vec::new();
        arc.for_each_edge_in(1..3, &mut |e| mid.push(e));
        assert_eq!(mid, &g.edges()[1..3]);
        // the unsized form (Arc<dyn GraphSource>) forwards too
        let dynamic: Arc<dyn GraphSource> = Arc::new(g.clone());
        assert_eq!(fingerprint_source(&dynamic), fingerprint_source(&g));
    }

    #[test]
    fn empty_text_stream_is_an_empty_source() {
        let path =
            std::env::temp_dir().join(format!("ease_text_stream_empty_{}.txt", std::process::id()));
        std::fs::write(&path, "# just a comment\n").unwrap();
        let src = TextStreamSource::open(&path).unwrap();
        assert_eq!((src.edge_count(), src.num_vertices()), (0, 0));
        assert!(src.par_chunks(4).is_empty());
        std::fs::remove_file(&path).ok();
    }
}
