//! Buffered edge-list text I/O.
//!
//! Format: one `src dst` pair per line, `#`-prefixed comment lines ignored —
//! the same whitespace-separated format used by SNAP/KONECT dumps, so users
//! can feed their own graphs to the examples. Reads and writes are buffered
//! (perf-book: Rust file I/O is unbuffered by default).

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::edge_list::Graph;
use crate::types::Edge;

/// Read a graph from a whitespace-separated edge-list file.
pub fn read_edge_list(path: &Path) -> io::Result<Graph> {
    let file = File::open(path)?;
    read_edge_list_from(BufReader::new(file))
}

/// Read a graph from any buffered reader (useful for tests / stdin).
pub fn read_edge_list_from<R: BufRead>(reader: R) -> io::Result<Graph> {
    let mut edges: Vec<Edge> = Vec::new();
    let mut max_v: u32 = 0;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> io::Result<u32> {
            tok.ok_or_else(|| bad_line(lineno))?.parse::<u32>().map_err(|_| bad_line(lineno))
        };
        let src = parse(it.next())?;
        let dst = parse(it.next())?;
        max_v = max_v.max(src).max(dst);
        edges.push(Edge::new(src, dst));
    }
    let n = if edges.is_empty() { 0 } else { max_v as usize + 1 };
    Ok(Graph::new(n, edges))
}

fn bad_line(lineno: usize) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("malformed edge-list line {}", lineno + 1))
}

/// Write a graph as a whitespace-separated edge list.
pub fn write_edge_list(graph: &Graph, path: &Path) -> io::Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "# vertices {} edges {}", graph.num_vertices(), graph.num_edges())?;
    for e in graph.edges() {
        writeln!(w, "{} {}", e.src, e.dst)?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parse_with_comments_and_blanks() {
        let input = "# header\n0 1\n\n% konect style\n1 2\n 2 0 \n";
        let g = read_edge_list_from(Cursor::new(input)).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_vertices(), 3);
    }

    #[test]
    fn malformed_line_reports_line_number() {
        let input = "0 1\nnot numbers\n";
        let err = read_edge_list_from(Cursor::new(input)).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn missing_second_column_is_an_error() {
        let err = read_edge_list_from(Cursor::new("42\n")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn round_trip_through_tempfile() {
        let g = Graph::from_pairs([(0, 1), (1, 2), (2, 0)]);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ease_graph_io_test_{}.txt", std::process::id()));
        write_edge_list(&g, &path).unwrap();
        let g2 = read_edge_list(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g.edges(), g2.edges());
        assert_eq!(g.num_vertices(), g2.num_vertices());
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list_from(Cursor::new("# nothing\n")).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
