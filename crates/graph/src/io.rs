//! Buffered edge-list text I/O.
//!
//! Format: one `src dst` pair per line, `#`-prefixed comment lines ignored —
//! the same whitespace-separated format used by SNAP/KONECT dumps, so users
//! can feed their own graphs to the examples. Reads and writes are buffered
//! (perf-book: Rust file I/O is unbuffered by default).
//!
//! Parsing failures are typed: [`GraphIoError::Parse`] carries the 1-based
//! line number and a description of the offending token, so callers (the
//! `ease` CLI, `EaseError::Parse`) can point users at the broken line
//! instead of panicking.

use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::edge_list::Graph;
use crate::types::Edge;

/// Typed edge-list I/O failure.
#[derive(Debug)]
pub enum GraphIoError {
    /// The underlying reader failed.
    Io(io::Error),
    /// A line could not be parsed; `line` is 1-based.
    Parse { line: usize, message: String },
}

impl fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphIoError::Io(e) => write!(f, "edge-list I/O error: {e}"),
            GraphIoError::Parse { line, message } => {
                write!(f, "malformed edge-list line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphIoError::Io(e) => Some(e),
            GraphIoError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for GraphIoError {
    fn from(e: io::Error) -> Self {
        GraphIoError::Io(e)
    }
}

/// Read a graph from a whitespace-separated edge-list file.
pub fn read_edge_list(path: &Path) -> Result<Graph, GraphIoError> {
    let file = File::open(path)?;
    read_edge_list_from(BufReader::new(file))
}

/// Read a graph from any buffered reader (useful for tests / stdin).
pub fn read_edge_list_from<R: BufRead>(reader: R) -> Result<Graph, GraphIoError> {
    let mut edges: Vec<Edge> = Vec::new();
    let mut max_v: u32 = 0;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let mut parse = |what: &str| -> Result<u32, GraphIoError> {
            let tok = it.next().ok_or_else(|| GraphIoError::Parse {
                line: lineno + 1,
                message: format!("missing {what} vertex id"),
            })?;
            tok.parse::<u32>().map_err(|_| GraphIoError::Parse {
                line: lineno + 1,
                message: format!("{what} vertex id `{tok}` is not a u32"),
            })
        };
        let src = parse("source")?;
        let dst = parse("destination")?;
        max_v = max_v.max(src).max(dst);
        edges.push(Edge::new(src, dst));
    }
    let n = if edges.is_empty() { 0 } else { max_v as usize + 1 };
    Ok(Graph::new(n, edges))
}

/// Write a graph as a whitespace-separated edge list.
pub fn write_edge_list(graph: &Graph, path: &Path) -> io::Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "# vertices {} edges {}", graph.num_vertices(), graph.num_edges())?;
    for e in graph.edges() {
        writeln!(w, "{} {}", e.src, e.dst)?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parse_with_comments_and_blanks() {
        let input = "# header\n0 1\n\n% konect style\n1 2\n 2 0 \n";
        let g = read_edge_list_from(Cursor::new(input)).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_vertices(), 3);
    }

    #[test]
    fn malformed_line_reports_line_number() {
        let input = "0 1\nnot numbers\n";
        let err = read_edge_list_from(Cursor::new(input)).unwrap_err();
        match err {
            GraphIoError::Parse { line, ref message } => {
                assert_eq!(line, 2);
                assert!(message.contains("`not`"), "{message}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn missing_second_column_is_an_error() {
        let err = read_edge_list_from(Cursor::new("42\n")).unwrap_err();
        match err {
            GraphIoError::Parse { line, ref message } => {
                assert_eq!(line, 1);
                assert!(message.contains("destination"), "{message}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn negative_ids_are_rejected_with_the_token() {
        let err = read_edge_list_from(Cursor::new("0 1\n2 -3\n")).unwrap_err();
        match err {
            GraphIoError::Parse { line, ref message } => {
                assert_eq!(line, 2);
                assert!(message.contains("`-3`"), "{message}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn ids_beyond_u32_are_rejected() {
        let input = format!("0 {}\n", u64::from(u32::MAX) + 1);
        let err = read_edge_list_from(Cursor::new(input)).unwrap_err();
        assert!(matches!(err, GraphIoError::Parse { line: 1, .. }), "{err:?}");
    }

    #[test]
    fn float_ids_are_rejected() {
        let err = read_edge_list_from(Cursor::new("1.5 2\n")).unwrap_err();
        assert!(matches!(err, GraphIoError::Parse { line: 1, .. }), "{err:?}");
    }

    #[test]
    fn parse_error_on_a_late_line_after_valid_prefix() {
        let input = "0 1\n1 2\n2 3\n3 4\nbroken line here\n";
        let err = read_edge_list_from(Cursor::new(input)).unwrap_err();
        assert!(matches!(err, GraphIoError::Parse { line: 5, .. }), "{err:?}");
    }

    #[test]
    fn round_trip_through_tempfile() {
        let g = Graph::from_pairs([(0, 1), (1, 2), (2, 0)]);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ease_graph_io_test_{}.txt", std::process::id()));
        write_edge_list(&g, &path).unwrap();
        let g2 = read_edge_list(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g.edges(), g2.edges());
        assert_eq!(g.num_vertices(), g2.num_vertices());
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = read_edge_list(Path::new("/definitely/not/a/file.txt")).unwrap_err();
        assert!(matches!(err, GraphIoError::Io(_)), "{err:?}");
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list_from(Cursor::new("# nothing\n")).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
