//! Buffered edge-list text I/O.
//!
//! Format: one `src dst` pair per line, `#`-prefixed comment lines ignored —
//! the same whitespace-separated format used by SNAP/KONECT dumps, so users
//! can feed their own graphs to the examples. Reads and writes are buffered
//! (perf-book: Rust file I/O is unbuffered by default).
//!
//! Parsing failures are typed: [`GraphIoError::Parse`] carries the 1-based
//! line number and a description of the offending token, so callers (the
//! `ease` CLI, `EaseError::Parse`) can point users at the broken line
//! instead of panicking.

use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::edge_list::Graph;
use crate::types::Edge;

/// Typed edge-list I/O failure.
#[derive(Debug)]
pub enum GraphIoError {
    /// The underlying reader failed.
    Io(io::Error),
    /// A line could not be parsed; `line` is 1-based.
    Parse { line: usize, message: String },
    /// The file is structurally invalid: bad magic / truncated payload /
    /// out-of-range endpoint in a `.bel`, or an out-of-bounds declared
    /// universe in a text summary comment.
    Format(String),
}

impl fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphIoError::Io(e) => write!(f, "edge-list I/O error: {e}"),
            GraphIoError::Parse { line, message } => {
                write!(f, "malformed edge-list line {line}: {message}")
            }
            GraphIoError::Format(message) => write!(f, "malformed graph file: {message}"),
        }
    }
}

impl std::error::Error for GraphIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphIoError::Io(e) => Some(e),
            GraphIoError::Parse { .. } | GraphIoError::Format(_) => None,
        }
    }
}

impl From<io::Error> for GraphIoError {
    fn from(e: io::Error) -> Self {
        GraphIoError::Io(e)
    }
}

/// Read a graph from a whitespace-separated edge-list file.
pub fn read_edge_list(path: &Path) -> Result<Graph, GraphIoError> {
    let file = File::open(path)?;
    read_edge_list_from(BufReader::new(file))
}

/// Parse a `# vertices N ...` summary comment (written by
/// [`write_edge_list`] and [`TextEdgeListWriter`]). Text has no binary
/// header, so this comment is how a text edge list carries an explicit
/// vertex universe — readers take `max(declared, max endpoint + 1)`,
/// preserving isolated trailing vertices across text round trips.
pub fn parse_universe_comment(line: &str) -> Option<usize> {
    let mut it = line.split_whitespace();
    if it.next() != Some("#") || it.next() != Some("vertices") {
        return None;
    }
    it.next()?.parse().ok()
}

/// Bound a declared universe to the `u32` id space — untrusted input must
/// not be able to drive `vec![0; n]` allocations into an OOM abort with a
/// one-line comment (the binary reader enforces the same bound).
pub(crate) fn check_declared_universe(declared: usize) -> Result<(), GraphIoError> {
    if declared as u64 > u32::MAX as u64 + 1 {
        return Err(GraphIoError::Format(format!(
            "declared vertex universe {declared} exceeds the u32 id space"
        )));
    }
    Ok(())
}

/// Parse one edge-list line. Returns `Ok(None)` for blank/comment lines;
/// `lineno` is 1-based and only used for error reporting. Shared by the
/// materializing reader below and the streaming
/// [`crate::source::TextStreamSource`].
pub fn parse_edge_line(line: &str, lineno: usize) -> Result<Option<Edge>, GraphIoError> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
        return Ok(None);
    }
    let mut it = trimmed.split_whitespace();
    let mut parse = |what: &str| -> Result<u32, GraphIoError> {
        let tok = it.next().ok_or_else(|| GraphIoError::Parse {
            line: lineno,
            message: format!("missing {what} vertex id"),
        })?;
        tok.parse::<u32>().map_err(|_| GraphIoError::Parse {
            line: lineno,
            message: format!("{what} vertex id `{tok}` is not a u32"),
        })
    };
    let src = parse("source")?;
    let dst = parse("destination")?;
    Ok(Some(Edge::new(src, dst)))
}

/// Read a graph from any buffered reader (useful for tests / stdin).
/// One reusable line buffer — no per-line `String` allocation. A
/// `# vertices N` summary comment (anywhere in the file) declares an
/// explicit universe; the result covers `max(declared, max endpoint + 1)`.
pub fn read_edge_list_from<R: BufRead>(mut reader: R) -> Result<Graph, GraphIoError> {
    let mut edges: Vec<Edge> = Vec::new();
    let mut max_v: u32 = 0;
    let mut declared: usize = 0;
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        if let Some(e) = parse_edge_line(&line, lineno)? {
            max_v = max_v.max(e.src).max(e.dst);
            edges.push(e);
        } else if let Some(n) = parse_universe_comment(&line) {
            check_declared_universe(n)?;
            declared = declared.max(n);
        }
    }
    let inferred = if edges.is_empty() { 0 } else { max_v as usize + 1 };
    Ok(Graph::new(inferred.max(declared), edges))
}

/// Write a graph as a whitespace-separated edge list.
pub fn write_edge_list(graph: &Graph, path: &Path) -> io::Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "# vertices {} edges {}", graph.num_vertices(), graph.num_edges())?;
    for e in graph.edges() {
        writeln!(w, "{} {}", e.src, e.dst)?;
    }
    w.flush()
}

/// Streaming text edge-list writer: edges go to the (buffered) file as
/// they are pushed, so generators can pipe straight to disk without
/// materializing an edge list. The summary comment goes at the *end* of
/// the file — text cannot seek-patch a variable-length header — and
/// readers skip comments wherever they appear.
#[derive(Debug)]
pub struct TextEdgeListWriter {
    w: BufWriter<File>,
    edge_count: usize,
    max_endpoint: u32,
    any_edge: bool,
}

impl TextEdgeListWriter {
    pub fn create(path: &Path) -> io::Result<TextEdgeListWriter> {
        let file = File::create(path)?;
        Ok(TextEdgeListWriter {
            w: BufWriter::new(file),
            edge_count: 0,
            max_endpoint: 0,
            any_edge: false,
        })
    }

    /// Append one edge.
    pub fn push(&mut self, e: Edge) -> io::Result<()> {
        writeln!(self.w, "{} {}", e.src, e.dst)?;
        self.edge_count += 1;
        self.max_endpoint = self.max_endpoint.max(e.src).max(e.dst);
        self.any_edge = true;
        Ok(())
    }

    /// Write the trailing summary comment (inferring the universe as
    /// `max endpoint + 1`) and flush.
    pub fn finish(self) -> io::Result<()> {
        let nv = if self.any_edge { self.max_endpoint as usize + 1 } else { 0 };
        self.finish_with_vertices(nv)
    }

    /// [`TextEdgeListWriter::finish`] with an explicit vertex universe —
    /// readers honour the summary comment, so isolated trailing vertices
    /// survive text round trips.
    pub fn finish_with_vertices(mut self, num_vertices: usize) -> io::Result<()> {
        assert!(
            !self.any_edge || num_vertices > self.max_endpoint as usize,
            "vertex universe {num_vertices} does not cover max endpoint {}",
            self.max_endpoint
        );
        writeln!(self.w, "# vertices {num_vertices} edges {}", self.edge_count)?;
        self.w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parse_with_comments_and_blanks() {
        let input = "# header\n0 1\n\n% konect style\n1 2\n 2 0 \n";
        let g = read_edge_list_from(Cursor::new(input)).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_vertices(), 3);
    }

    #[test]
    fn malformed_line_reports_line_number() {
        let input = "0 1\nnot numbers\n";
        let err = read_edge_list_from(Cursor::new(input)).unwrap_err();
        match err {
            GraphIoError::Parse { line, ref message } => {
                assert_eq!(line, 2);
                assert!(message.contains("`not`"), "{message}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn missing_second_column_is_an_error() {
        let err = read_edge_list_from(Cursor::new("42\n")).unwrap_err();
        match err {
            GraphIoError::Parse { line, ref message } => {
                assert_eq!(line, 1);
                assert!(message.contains("destination"), "{message}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn negative_ids_are_rejected_with_the_token() {
        let err = read_edge_list_from(Cursor::new("0 1\n2 -3\n")).unwrap_err();
        match err {
            GraphIoError::Parse { line, ref message } => {
                assert_eq!(line, 2);
                assert!(message.contains("`-3`"), "{message}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn ids_beyond_u32_are_rejected() {
        let input = format!("0 {}\n", u64::from(u32::MAX) + 1);
        let err = read_edge_list_from(Cursor::new(input)).unwrap_err();
        assert!(matches!(err, GraphIoError::Parse { line: 1, .. }), "{err:?}");
    }

    #[test]
    fn float_ids_are_rejected() {
        let err = read_edge_list_from(Cursor::new("1.5 2\n")).unwrap_err();
        assert!(matches!(err, GraphIoError::Parse { line: 1, .. }), "{err:?}");
    }

    #[test]
    fn parse_error_on_a_late_line_after_valid_prefix() {
        let input = "0 1\n1 2\n2 3\n3 4\nbroken line here\n";
        let err = read_edge_list_from(Cursor::new(input)).unwrap_err();
        assert!(matches!(err, GraphIoError::Parse { line: 5, .. }), "{err:?}");
    }

    #[test]
    fn round_trip_through_tempfile() {
        let g = Graph::from_pairs([(0, 1), (1, 2), (2, 0)]);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ease_graph_io_test_{}.txt", std::process::id()));
        write_edge_list(&g, &path).unwrap();
        let g2 = read_edge_list(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g.edges(), g2.edges());
        assert_eq!(g.num_vertices(), g2.num_vertices());
    }

    #[test]
    fn declared_universe_survives_text_round_trips() {
        // write_edge_list declares the universe in its header comment;
        // readers must honour it even when trailing vertices are isolated
        let g = Graph::new(10, vec![Edge::new(0, 1)]);
        let path =
            std::env::temp_dir().join(format!("ease_universe_rt_{}.txt", std::process::id()));
        write_edge_list(&g, &path).unwrap();
        let back = read_edge_list(&path).unwrap();
        assert_eq!(back.num_vertices(), 10);
        assert_eq!(back.num_edges(), 1);
        std::fs::remove_file(&path).ok();
        // the streaming writer's explicit-universe finish does the same
        let mut w = TextEdgeListWriter::create(&path).unwrap();
        w.push(Edge::new(0, 1)).unwrap();
        w.finish_with_vertices(10).unwrap();
        assert_eq!(read_edge_list(&path).unwrap().num_vertices(), 10);
        std::fs::remove_file(&path).ok();
        // a stale/smaller declaration never shrinks the inferred universe
        assert_eq!(
            read_edge_list_from(Cursor::new("# vertices 2 edges 1\n0 7\n")).unwrap().num_vertices(),
            8
        );
        // unrelated comments are not declarations
        assert!(parse_universe_comment("# vertices").is_none());
        assert!(parse_universe_comment("# verticesish 9").is_none());
        assert_eq!(parse_universe_comment("  # vertices 42 edges 7"), Some(42));
        // a declaration outside the u32 id space is a typed error, not an
        // invitation to allocate petabyte-scale degree tables
        let err = read_edge_list_from(Cursor::new("# vertices 99999999999999\n0 1\n")).unwrap_err();
        assert!(matches!(err, GraphIoError::Format(_)), "{err:?}");
    }

    #[test]
    fn streaming_text_writer_round_trips() {
        let path =
            std::env::temp_dir().join(format!("ease_text_writer_{}.txt", std::process::id()));
        let mut w = TextEdgeListWriter::create(&path).unwrap();
        for e in [Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 0)] {
            w.push(e).unwrap();
        }
        w.finish().unwrap();
        let g = read_edge_list(&path).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_vertices(), 3);
        // the summary comment is present (and trailing)
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.trim_end().ends_with("# vertices 3 edges 3"), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = read_edge_list(Path::new("/definitely/not/a/file.txt")).unwrap_err();
        assert!(matches!(err, GraphIoError::Io(_)), "{err:?}");
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list_from(Cursor::new("# nothing\n")).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
