//! Out-of-core CSR storage: the `EASECSR1` spill file format.
//!
//! When a [`MemoryBudget`](crate::MemoryBudget) refuses to admit a CSR into
//! the heap, [`Csr::build_spilled`](crate::Csr::build_spilled) streams it
//! into a temp file in this format, maps the file read-only, and serves
//! `neighbors()`/`degree()` straight out of the mapping.
//!
//! Layout (all integers little-endian, mirroring `.bel`):
//!
//! ```text
//! offset  0   "EASECSR1"                      8 bytes magic
//! offset  8   num_vertices                    u64
//! offset 16   num_entries                     u64 (patched on finish)
//! offset 24   offsets[0..=num_vertices]       (n+1) × u64
//! then        targets[0..num_entries]         num_entries × u32 (VertexId)
//! ```
//!
//! Offsets are u64 so a spilled CSR can exceed 4 G entries; targets are
//! stored at `VertexId` width (u32) so that on a little-endian host the
//! mapped region doubles as a `&[VertexId]` with **zero** decoding — the
//! header is 24 bytes and the offsets region is a multiple of 8, so the
//! targets region is always 4-aligned within a page-aligned mapping. On a
//! big-endian host (or the non-unix `Mmap` fallback, which cannot promise
//! alignment) the loader decodes into heap vectors instead; both shapes are
//! bit-identical to every reader.
//!
//! Hygiene: the writer unlinks the file immediately after mapping it
//! (`O_TMPFILE`-style), so even a SIGKILLed daemon cannot leak spill files
//! — the kernel reclaims the blocks when the mapping drops. Every error
//! path between create and finish is covered by a [`SpillGuard`] that
//! unlinks on drop.

use crate::mmap::Mmap;
use crate::types::VertexId;
use std::fs::File;
use std::io::{self, BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Magic bytes identifying a CSR spill file.
pub const SPILL_MAGIC: [u8; 8] = *b"EASECSR1";

/// Header length: magic + num_vertices + num_entries.
pub const SPILL_HEADER_LEN: usize = 24;

/// Distinguishes spill files from concurrent processes and builds.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

fn invalid(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Read a little-endian u64 at `off`. Callers stay inside bounds that
/// [`MappedCsr::load`] validated once at open time.
#[inline]
fn read_u64_at(bytes: &[u8], off: usize) -> u64 {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[off..off + 8]); // lint: panic-ok(bounds validated at open)
    u64::from_le_bytes(raw)
}

fn targets_start(num_vertices: usize) -> u64 {
    SPILL_HEADER_LEN as u64 + (num_vertices as u64 + 1) * 8
}

/// Deletes the spill file on drop — arms at create, covers every early
/// return, and doubles as the deliberate unlink-after-mmap in `finish`.
struct SpillGuard {
    path: Option<PathBuf>,
}

impl SpillGuard {
    fn unlink(&mut self) {
        if let Some(path) = self.path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for SpillGuard {
    fn drop(&mut self) {
        self.unlink();
    }
}

/// Streaming writer for a CSR spill file: push one finished (already
/// sorted/deduplicated, if desired) adjacency list per vertex, in vertex
/// order, then [`finish`](Self::finish) to map the result back.
///
/// Two independent file handles write the offsets region and the targets
/// region concurrently, so neither the offsets (`(n+1) × 8` bytes) nor the
/// targets ever exist in heap as a whole.
pub struct SpillWriter {
    offsets: BufWriter<File>,
    targets: BufWriter<File>,
    guard: SpillGuard,
    num_vertices: usize,
    vertices_done: usize,
    entries: u64,
}

impl SpillWriter {
    /// Create a spill file in `dir` (created if missing) for a CSR over
    /// `num_vertices` vertices.
    pub fn create(dir: &Path, num_vertices: usize) -> io::Result<SpillWriter> {
        std::fs::create_dir_all(dir)?;
        let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok(unique-name counter)
        let path = dir.join(format!("ease-spill-{}-{seq}.csr", std::process::id()));
        let mut head = File::options().read(true).write(true).create_new(true).open(&path)?;
        let guard = SpillGuard { path: Some(path.clone()) };
        head.write_all(&SPILL_MAGIC)?;
        head.write_all(&(num_vertices as u64).to_le_bytes())?;
        head.write_all(&0u64.to_le_bytes())?; // num_entries, patched in finish
        let mut offsets = BufWriter::new(head);
        offsets.write_all(&0u64.to_le_bytes())?; // offsets[0] is always 0
        let mut tail = File::options().write(true).open(&path)?;
        tail.seek(SeekFrom::Start(targets_start(num_vertices)))?;
        Ok(SpillWriter {
            offsets,
            targets: BufWriter::new(tail),
            guard,
            num_vertices,
            vertices_done: 0,
            entries: 0,
        })
    }

    /// Append the adjacency list of the next vertex (vertex
    /// `vertices_done`, in order).
    pub fn push_list(&mut self, list: &[VertexId]) -> io::Result<()> {
        if self.vertices_done >= self.num_vertices {
            return Err(invalid(format!(
                "spill writer: more vertex lists than the declared {} vertices",
                self.num_vertices
            )));
        }
        for &t in list {
            self.targets.write_all(&t.to_le_bytes())?;
        }
        self.entries += list.len() as u64;
        self.offsets.write_all(&self.entries.to_le_bytes())?;
        self.vertices_done += 1;
        Ok(())
    }

    /// Flush, patch the header, map the file read-only, and unlink it.
    pub fn finish(mut self) -> io::Result<LoadedCsr> {
        if self.vertices_done != self.num_vertices {
            return Err(invalid(format!(
                "spill writer: {} of {} vertex lists written",
                self.vertices_done, self.num_vertices
            )));
        }
        self.targets.flush()?;
        self.offsets.flush()?;
        let mut head = self.offsets.into_inner().map_err(|e| e.into_error())?;
        head.seek(SeekFrom::Start(16))?;
        head.write_all(&self.entries.to_le_bytes())?;
        drop(head);
        drop(self.targets);
        let file = match &self.guard.path {
            Some(path) => File::open(path)?,
            None => return Err(invalid("spill writer: file already unlinked".into())),
        };
        let map = Mmap::map(&file)?;
        // unlink-after-mmap: on unix the mapping stays valid and the kernel
        // reclaims the blocks when it drops; the non-unix Mmap fallback
        // copied the bytes, so removal is equally safe there. Either way a
        // crashed process cannot leak spill files that reached this point.
        self.guard.unlink();
        MappedCsr::load(map)
    }
}

/// A CSR served from a validated spill-file mapping.
///
/// All structural invariants — magic, exact file length, monotonic offsets
/// bounded by `num_entries` — are checked once in [`load`](Self::load);
/// the accessors then index without rechecking.
#[derive(Debug)]
pub struct MappedCsr {
    map: Mmap,
    num_vertices: usize,
    num_entries: usize,
    targets_off: usize,
    /// Whether `neighbors()` may hand out `&[VertexId]` straight into the
    /// mapping: little-endian host *and* 4-aligned targets region.
    zero_copy: bool,
}

/// What a finished spill loads as: the mmap-backed form, or — when the
/// platform cannot serve the mapping zero-copy (big-endian, or the
/// non-unix read-into-heap `Mmap` fallback landing misaligned) — plain
/// heap vectors decoded from the same bytes. Both are bit-identical to
/// every reader; `Csr` wraps whichever comes back.
#[derive(Debug)]
pub enum LoadedCsr {
    Mapped(MappedCsr),
    Heap { offsets: Vec<usize>, targets: Vec<VertexId> },
}

impl MappedCsr {
    /// Validate a mapping as a spill file; decode to heap when zero-copy
    /// access is impossible on this platform.
    pub fn load(map: Mmap) -> io::Result<LoadedCsr> {
        let bytes = map.as_slice();
        // lint: panic-ok(len >= SPILL_HEADER_LEN >= 8 short-circuits before the index)
        if bytes.len() < SPILL_HEADER_LEN || bytes[..8] != SPILL_MAGIC {
            return Err(invalid("not a CSR spill file (bad magic or truncated header)".into()));
        }
        let num_vertices = read_u64_at(bytes, 8);
        let num_entries = read_u64_at(bytes, 16);
        let expected =
            SPILL_HEADER_LEN as u128 + (num_vertices as u128 + 1) * 8 + num_entries as u128 * 4;
        if bytes.len() as u128 != expected {
            return Err(invalid(format!(
                "CSR spill file length {} does not match header (expected {expected})",
                bytes.len()
            )));
        }
        let num_vertices = usize::try_from(num_vertices)
            .map_err(|_| invalid("CSR spill vertex count overflows usize".into()))?;
        let num_entries = usize::try_from(num_entries)
            .map_err(|_| invalid("CSR spill entry count overflows usize".into()))?;
        let targets_off = SPILL_HEADER_LEN + (num_vertices + 1) * 8;
        if read_u64_at(bytes, SPILL_HEADER_LEN) != 0 {
            return Err(invalid("CSR spill offsets must start at 0".into()));
        }
        let mut prev = 0u64;
        for v in 0..=num_vertices {
            let off = read_u64_at(bytes, SPILL_HEADER_LEN + v * 8);
            if off < prev {
                return Err(invalid(format!("CSR spill offsets not monotonic at vertex {v}")));
            }
            prev = off;
        }
        if prev != num_entries as u64 {
            return Err(invalid(format!(
                "CSR spill final offset {prev} does not equal entry count {num_entries}"
            )));
        }
        let aligned = (bytes.as_ptr().wrapping_add(targets_off) as usize)
            .is_multiple_of(std::mem::align_of::<VertexId>());
        let zero_copy = cfg!(target_endian = "little") && aligned;
        let mapped = MappedCsr { map, num_vertices, num_entries, targets_off, zero_copy };
        if mapped.zero_copy {
            Ok(LoadedCsr::Mapped(mapped))
        } else {
            let (offsets, targets) = mapped.decode();
            Ok(LoadedCsr::Heap { offsets, targets })
        }
    }

    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    pub fn num_entries(&self) -> usize {
        self.num_entries
    }

    /// Bytes held by the backing mapping (the spill file size).
    pub fn mapped_bytes(&self) -> usize {
        self.map.as_slice().len()
    }

    #[inline]
    fn offset(&self, v: usize) -> usize {
        read_u64_at(self.map.as_slice(), SPILL_HEADER_LEN + v * 8) as usize
    }

    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offset(v as usize + 1) - self.offset(v as usize)
    }

    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offset(v as usize);
        let hi = self.offset(v as usize + 1);
        let bytes = self.map.as_slice();
        // SAFETY: `load` validated the exact file length, that every offset
        // is monotonic and bounded by `num_entries`, and that the targets
        // region is 4-aligned on this (little-endian) host — so
        // `targets_off + 4*lo .. targets_off + 4*hi` is an in-bounds,
        // aligned span of plain `u32` data, valid for the lifetime of the
        // mapping that `&self` borrows.
        unsafe {
            let base = bytes.as_ptr().add(self.targets_off) as *const VertexId;
            std::slice::from_raw_parts(base.add(lo), hi - lo)
        }
    }

    /// Decode the whole structure into heap vectors (endian/alignment
    /// fallback, and the escape hatch back to an owned CSR).
    pub fn decode(&self) -> (Vec<usize>, Vec<VertexId>) {
        let bytes = self.map.as_slice();
        let mut offsets = Vec::with_capacity(self.num_vertices + 1);
        for v in 0..=self.num_vertices {
            offsets.push(read_u64_at(bytes, SPILL_HEADER_LEN + v * 8) as usize);
        }
        let mut targets = Vec::with_capacity(self.num_entries);
        for i in 0..self.num_entries {
            let at = self.targets_off + i * 4;
            let mut raw = [0u8; 4];
            raw.copy_from_slice(&bytes[at..at + 4]); // lint: panic-ok(bounds validated at open)
            targets.push(VertexId::from_le_bytes(raw));
        }
        (offsets, targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> PathBuf {
        let d = std::env::temp_dir().join(format!("ease_spill_unit_{}", std::process::id()));
        std::fs::create_dir_all(&d).expect("mk spill dir");
        d
    }

    fn spill_files(d: &Path) -> usize {
        std::fs::read_dir(d).map(|rd| rd.count()).unwrap_or(0)
    }

    #[test]
    fn round_trips_lists_and_leaves_no_file_behind() {
        let d = dir();
        let lists: Vec<Vec<VertexId>> = vec![vec![1, 3, 7], vec![], vec![0, 2], vec![5]];
        let mut w = SpillWriter::create(&d, lists.len()).expect("create");
        assert_eq!(spill_files(&d), 1, "file exists while writing");
        for list in &lists {
            w.push_list(list).expect("push");
        }
        let loaded = w.finish().expect("finish");
        assert_eq!(spill_files(&d), 0, "unlinked after mmap");
        match loaded {
            LoadedCsr::Mapped(m) => {
                assert_eq!(m.num_vertices(), 4);
                assert_eq!(m.num_entries(), 6);
                for (v, list) in lists.iter().enumerate() {
                    assert_eq!(m.neighbors(v as VertexId), &list[..]);
                    assert_eq!(m.degree(v as VertexId), list.len());
                }
                let (offsets, targets) = m.decode();
                assert_eq!(offsets, [0, 3, 3, 5, 6]);
                assert_eq!(targets, [1, 3, 7, 0, 2, 5]);
            }
            LoadedCsr::Heap { offsets, targets } => {
                assert_eq!(offsets, [0, 3, 3, 5, 6]);
                assert_eq!(targets, [1, 3, 7, 0, 2, 5]);
            }
        }
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn empty_csr_spills_cleanly() {
        let d = dir();
        let w = SpillWriter::create(&d, 0).expect("create");
        match w.finish().expect("finish") {
            LoadedCsr::Mapped(m) => {
                assert_eq!(m.num_vertices(), 0);
                assert_eq!(m.num_entries(), 0);
            }
            LoadedCsr::Heap { offsets, targets } => {
                assert_eq!(offsets, [0]);
                assert!(targets.is_empty());
            }
        }
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn wrong_list_count_is_a_typed_error_and_the_guard_unlinks() {
        let d = std::env::temp_dir().join(format!("ease_spill_guard_{}", std::process::id()));
        std::fs::create_dir_all(&d).expect("mk");
        {
            let mut w = SpillWriter::create(&d, 2).expect("create");
            w.push_list(&[1]).expect("push");
            let err = w.finish().expect_err("short list count must fail");
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        }
        assert_eq!(spill_files(&d), 0, "guard removed the partial file");
        {
            let mut w = SpillWriter::create(&d, 1).expect("create");
            w.push_list(&[1]).expect("push");
            assert!(w.push_list(&[2]).is_err(), "extra list is refused");
        }
        assert_eq!(spill_files(&d), 0, "guard removed the abandoned file");
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn corrupt_files_are_rejected_with_typed_errors() {
        let d = dir();
        let path = d.join("corrupt.csr");
        // bad magic
        std::fs::write(&path, b"NOTACSR!........").expect("write");
        let map = Mmap::map(&File::open(&path).expect("open")).expect("map");
        assert!(MappedCsr::load(map).is_err());
        // good magic, impossible length
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&SPILL_MAGIC);
        bytes.extend_from_slice(&3u64.to_le_bytes());
        bytes.extend_from_slice(&9u64.to_le_bytes());
        std::fs::write(&path, &bytes).expect("write");
        let map = Mmap::map(&File::open(&path).expect("open")).expect("map");
        assert!(MappedCsr::load(map).is_err());
        // non-monotonic offsets: [0, 5, 1] on 2 vertices, 1 entry
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&SPILL_MAGIC);
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&5u64.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&7u32.to_le_bytes());
        std::fs::write(&path, &bytes).expect("write");
        let map = Mmap::map(&File::open(&path).expect("open")).expect("map");
        assert!(MappedCsr::load(map).is_err());
        std::fs::remove_dir_all(&d).ok();
    }
}
