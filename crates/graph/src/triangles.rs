//! Triangle counting and local clustering coefficients.
//!
//! Both are "advanced" features in the paper (Table III): the average number
//! of triangles `t(G)` and the average local clustering coefficient `C(G)`
//! (Sec. II-B.3/4). Triangles are counted on the undirected simple graph via
//! the *forward* algorithm: orient each edge from lower-rank to higher-rank
//! endpoint (rank = degree order) and intersect sorted forward-neighbor
//! lists. Runs in `O(E^{3/2})` and is cache-friendly on CSR.

use crate::csr::Csr;
use crate::edge_list::Graph;
use crate::types::VertexId;

/// Per-vertex triangle counts `t(v)` of the undirected simple graph.
pub fn triangle_counts(graph: &Graph) -> Vec<u64> {
    let adj = Csr::build_undirected_simple(graph);
    triangle_counts_from_simple(&adj)
}

/// Triangle counts from a prebuilt undirected simple adjacency
/// (sorted neighbor lists, no self-loops, no duplicates).
pub fn triangle_counts_from_simple(adj: &Csr) -> Vec<u64> {
    let n = adj.num_vertices();
    let mut counts = vec![0u64; n];
    if n == 0 {
        return counts;
    }
    // Rank vertices by (degree, id): orienting edges toward higher rank
    // bounds forward-degree by O(sqrt(E)).
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.sort_unstable_by_key(|&v| (adj.degree(v), v));
    let mut rank = vec![0u32; n];
    for (r, &v) in order.iter().enumerate() {
        rank[v as usize] = r as u32;
    }
    // Forward adjacency: neighbors with higher rank, sorted by rank.
    let mut fwd_offsets = vec![0usize; n + 1];
    for v in 0..n {
        let vr = rank[v];
        let cnt = adj.neighbors(v as VertexId).iter().filter(|&&u| rank[u as usize] > vr).count();
        fwd_offsets[v + 1] = fwd_offsets[v] + cnt;
    }
    let mut fwd = vec![0 as VertexId; fwd_offsets[n]];
    {
        let mut cursor = fwd_offsets.clone();
        for v in 0..n {
            let vr = rank[v];
            for &u in adj.neighbors(v as VertexId) {
                if rank[u as usize] > vr {
                    fwd[cursor[v]] = u;
                    cursor[v] += 1;
                }
            }
            fwd[fwd_offsets[v]..fwd_offsets[v + 1]].sort_unstable_by_key(|&u| rank[u as usize]);
        }
    }
    // For each edge (v, u) with rank[v] < rank[u], intersect fwd(v) ∩ fwd(u).
    let by_rank = |s: &[VertexId],
                   rank: &[u32],
                   target: &[VertexId],
                   counts: &mut [u64],
                   v: usize,
                   u: usize| {
        // merge-intersect two rank-sorted lists
        let (mut i, mut j) = (0usize, 0usize);
        while i < s.len() && j < target.len() {
            let ri = rank[s[i] as usize];
            let rj = rank[target[j] as usize];
            match ri.cmp(&rj) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    counts[v] += 1;
                    counts[u] += 1;
                    counts[s[i] as usize] += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
    };
    for v in 0..n {
        let fv = &fwd[fwd_offsets[v]..fwd_offsets[v + 1]];
        for &u in fv {
            let fu = &fwd[fwd_offsets[u as usize]..fwd_offsets[u as usize + 1]];
            by_rank(fv, &rank, fu, &mut counts, v, u as usize);
        }
    }
    counts
}

/// Average number of triangles per vertex, `t(G) = (1/|V|) Σ t(v)`.
pub fn avg_triangles(graph: &Graph) -> f64 {
    let counts = triangle_counts(graph);
    if counts.is_empty() {
        return 0.0;
    }
    counts.iter().map(|&c| c as f64).sum::<f64>() / counts.len() as f64
}

/// Local clustering coefficient per vertex:
/// `c(v) = t(v) / (0.5 · deg(v) · (deg(v)−1))`, 0 for deg < 2.
/// Degrees are taken in the undirected simple graph.
pub fn local_clustering(graph: &Graph) -> Vec<f64> {
    let adj = Csr::build_undirected_simple(graph);
    let t = triangle_counts_from_simple(&adj);
    (0..adj.num_vertices())
        .map(|v| {
            let d = adj.degree(v as VertexId) as f64;
            if d < 2.0 {
                0.0
            } else {
                t[v] as f64 / (0.5 * d * (d - 1.0))
            }
        })
        .collect()
}

/// Average local clustering coefficient `C(G)`.
pub fn avg_local_clustering(graph: &Graph) -> f64 {
    let c = local_clustering(graph);
    if c.is_empty() {
        return 0.0;
    }
    c.iter().sum::<f64>() / c.len() as f64
}

/// Triangle metrics computed in one pass (shared adjacency build).
pub struct TriangleStats {
    pub avg_triangles: f64,
    pub avg_lcc: f64,
}

/// Compute both averaged triangle statistics with a single adjacency build.
pub fn triangle_stats(graph: &Graph) -> TriangleStats {
    let adj = Csr::build_undirected_simple(graph);
    let t = triangle_counts_from_simple(&adj);
    stats_from_parts(&adj, &t)
}

/// Averaged triangle statistics from a prebuilt undirected simple adjacency
/// and its per-vertex triangle counts — the path
/// [`crate::PreparedGraph::triangle_stats`] takes so the adjacency is built
/// only once per graph.
pub fn stats_from_parts(adj: &Csr, t: &[u64]) -> TriangleStats {
    let n = adj.num_vertices();
    if n == 0 {
        return TriangleStats { avg_triangles: 0.0, avg_lcc: 0.0 };
    }
    let mut sum_t = 0.0;
    let mut sum_c = 0.0;
    for v in 0..n {
        sum_t += t[v] as f64;
        let d = adj.degree(v as VertexId) as f64;
        if d >= 2.0 {
            sum_c += t[v] as f64 / (0.5 * d * (d - 1.0));
        }
    }
    TriangleStats { avg_triangles: sum_t / n as f64, avg_lcc: sum_c / n as f64 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_in_k3() {
        let g = Graph::from_pairs([(0, 1), (1, 2), (2, 0)]);
        assert_eq!(triangle_counts(&g), vec![1, 1, 1]);
        assert!((avg_triangles(&g) - 1.0).abs() < 1e-12);
        assert!((avg_local_clustering(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_triangle_in_path() {
        let g = Graph::from_pairs([(0, 1), (1, 2)]);
        assert_eq!(triangle_counts(&g), vec![0, 0, 0]);
        assert_eq!(avg_local_clustering(&g), 0.0);
    }

    #[test]
    fn k4_has_four_triangles() {
        let g = Graph::from_pairs([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        // Each vertex of K4 participates in C(3,2) = 3 triangles.
        assert_eq!(triangle_counts(&g), vec![3, 3, 3, 3]);
        assert!((avg_local_clustering(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn direction_and_duplicates_ignored() {
        // Same triangle expressed with reversed/duplicated edges.
        let g = Graph::from_pairs([(1, 0), (0, 1), (1, 2), (0, 2), (2, 0)]);
        assert_eq!(triangle_counts(&g), vec![1, 1, 1]);
    }

    #[test]
    fn lcc_of_star_is_zero() {
        let g = Graph::from_pairs([(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(avg_local_clustering(&g), 0.0);
    }

    #[test]
    fn lcc_hand_computed_square_with_diagonal() {
        // Square 0-1-2-3 plus diagonal 0-2: triangles {0,1,2} and {0,2,3}.
        let g = Graph::from_pairs([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let t = triangle_counts(&g);
        assert_eq!(t, vec![2, 1, 2, 1]);
        let c = local_clustering(&g);
        // deg(0)=3 -> c= 2/3; deg(1)=2 -> 1/1 = 1
        assert!((c[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((c[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_consistent_with_individual_functions() {
        let g = Graph::from_pairs([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
        let s = triangle_stats(&g);
        assert!((s.avg_triangles - avg_triangles(&g)).abs() < 1e-12);
        assert!((s.avg_lcc - avg_local_clustering(&g)).abs() < 1e-12);
    }
}
