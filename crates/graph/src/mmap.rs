//! Minimal read-only memory mapping, dependency-free.
//!
//! The offline build environment has no `memmap2`/`libc` crates, so the two
//! syscalls this module needs (`mmap`/`munmap`) are declared directly
//! against the C runtime on unix targets. Non-unix targets fall back to
//! reading the whole file into an owned buffer — same API, no zero-copy.
//!
//! [`Mmap`] is an immutable byte view: `PROT_READ` + `MAP_PRIVATE`, unmapped
//! on drop. The mapping is `Send + Sync` (read-only shared memory), which
//! is what lets one mapped `.bel` file feed sharded CSR construction from
//! several worker threads at once.

use std::fs::File;
use std::io;

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 0x1;
    pub const MAP_PRIVATE: c_int = 0x02;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// A read-only memory-mapped file (or, off unix, an owned copy of one).
#[derive(Debug)]
pub struct Mmap {
    #[cfg(unix)]
    ptr: *const u8,
    #[cfg(unix)]
    len: usize,
    #[cfg(not(unix))]
    buf: Vec<u8>,
}

// SAFETY: the mapping is immutable (PROT_READ, private) for its whole
// lifetime, so shared references to its bytes are valid from any thread.
#[cfg(unix)]
unsafe impl Send for Mmap {}
// SAFETY: same argument as `Send` — the bytes behind `ptr` never change
// after `map` returns, so concurrent shared reads are race-free.
#[cfg(unix)]
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map `file` read-only. Empty files produce an empty (unmapped) view —
    /// `mmap(2)` rejects zero-length mappings.
    #[cfg(unix)]
    pub fn map(file: &File) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        if len == 0 {
            return Ok(Mmap { ptr: std::ptr::null(), len: 0 });
        }
        // SAFETY: fd is a valid open file descriptor for the length we just
        // read; we request a fresh private read-only mapping (addr = null).
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap { ptr: ptr as *const u8, len })
    }

    /// Portability fallback: no mapping support, read the file instead.
    #[cfg(not(unix))]
    pub fn map(file: &File) -> io::Result<Mmap> {
        use std::io::Read;
        let mut buf = Vec::new();
        let mut f = file.try_clone()?;
        f.read_to_end(&mut buf)?;
        Ok(Mmap { buf })
    }

    /// The mapped bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        #[cfg(unix)]
        {
            if self.len == 0 {
                return &[];
            }
            // SAFETY: ptr/len describe a live PROT_READ mapping owned by
            // self; it is unmapped only in Drop.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
        #[cfg(not(unix))]
        {
            &self.buf
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(unix)]
impl Drop for Mmap {
    fn drop(&mut self) {
        if !self.ptr.is_null() {
            // SAFETY: ptr/len came from a successful mmap call; after this
            // the struct is dropped so no view can outlive the unmap.
            unsafe {
                sys::munmap(self.ptr as *mut _, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ease_mmap_test_{tag}_{}", std::process::id()))
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_path("contents");
        let mut f = File::create(&path).unwrap();
        f.write_all(b"hello mapped world").unwrap();
        f.sync_all().unwrap();
        let m = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert_eq!(m.as_slice(), b"hello mapped world");
        assert_eq!(m.len(), 18);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_path("empty");
        File::create(&path).unwrap();
        let m = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.as_slice(), &[] as &[u8]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapping_is_shareable_across_threads() {
        let path = temp_path("threads");
        let mut f = File::create(&path).unwrap();
        let payload: Vec<u8> = (0..=255u8).cycle().take(1 << 16).collect();
        f.write_all(&payload).unwrap();
        f.sync_all().unwrap();
        let m = Mmap::map(&File::open(&path).unwrap()).unwrap();
        std::thread::scope(|s| {
            for chunk in 0..4usize {
                let m = &m;
                s.spawn(move || {
                    let part = &m.as_slice()[chunk * (1 << 14)..(chunk + 1) * (1 << 14)];
                    assert_eq!(part.len(), 1 << 14);
                    assert_eq!(part[0], ((chunk * (1 << 14)) % 256) as u8);
                });
            }
        });
        std::fs::remove_file(&path).ok();
    }
}
