//! Preprocessing: z-score standardization, one-hot encoding, and the
//! scaler+model pipeline (paper Sec. IV-C "the data was standardized with
//! z-score normalization; one-hot encoding is used for the partitioning
//! algorithms").

use crate::dataset::Matrix;
use crate::persist::{build_regressor, wrong_variant, ModelParams, PersistError};
use crate::Regressor;

/// Per-column z-score scaler.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StandardScaler {
    pub means: Vec<f64>,
    pub stds: Vec<f64>,
}

impl StandardScaler {
    pub fn fit(x: &Matrix) -> Self {
        let (rows, cols) = (x.rows, x.cols);
        let mut means = vec![0.0; cols];
        for i in 0..rows {
            for (j, v) in x.row(i).iter().enumerate() {
                means[j] += v;
            }
        }
        for m in &mut means {
            *m /= rows.max(1) as f64;
        }
        let mut stds = vec![0.0; cols];
        for i in 0..rows {
            for (j, v) in x.row(i).iter().enumerate() {
                let d = v - means[j];
                stds[j] += d * d;
            }
        }
        for s in &mut stds {
            *s = (*s / rows.max(1) as f64).sqrt();
            if *s < 1e-12 {
                *s = 1.0; // constant column: leave centred values at 0
            }
        }
        StandardScaler { means, stds }
    }

    pub fn transform_row(&self, row: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            row.iter().zip(self.means.iter().zip(&self.stds)).map(|(v, (m, s))| (v - m) / s),
        );
    }

    pub fn transform(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::with_cols(x.cols);
        let mut buf = Vec::with_capacity(x.cols);
        for i in 0..x.rows {
            self.transform_row(x.row(i), &mut buf);
            out.push_row(&buf);
        }
        out
    }
}

/// One-hot encoder over a fixed category universe.
#[derive(Debug, Clone)]
pub struct OneHotEncoder {
    pub categories: Vec<String>,
}

impl OneHotEncoder {
    pub fn new(categories: Vec<String>) -> Self {
        OneHotEncoder { categories }
    }

    pub fn width(&self) -> usize {
        self.categories.len()
    }

    /// Encode a category into `out` (appends `width()` values).
    pub fn encode_into(&self, category: &str, out: &mut Vec<f64>) {
        let idx = self
            .categories
            .iter()
            .position(|c| c == category)
            .unwrap_or_else(|| panic!("unknown category {category:?}"));
        for i in 0..self.categories.len() {
            out.push(if i == idx { 1.0 } else { 0.0 });
        }
    }
}

/// Pipeline: fit a [`StandardScaler`] on the training features, feed the
/// standardized matrix into the wrapped model, standardize rows at
/// prediction time.
pub struct ScaledModel {
    scaler: Option<StandardScaler>,
    inner: Box<dyn Regressor>,
}

impl ScaledModel {
    pub fn new(inner: Box<dyn Regressor>) -> Self {
        ScaledModel { scaler: None, inner }
    }

    /// Rebuild from [`ModelParams::Scaled`].
    pub fn from_params(params: ModelParams) -> Result<Self, PersistError> {
        match params {
            ModelParams::Scaled { scaler, inner } => {
                Ok(ScaledModel { scaler, inner: build_regressor(*inner)? })
            }
            other => Err(wrong_variant("scaled", &other)),
        }
    }
}

impl Regressor for ScaledModel {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        let scaler = StandardScaler::fit(x);
        let xs = scaler.transform(x);
        self.scaler = Some(scaler);
        self.inner.fit(&xs, y);
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        let scaler = self.scaler.as_ref().expect("fit before predict");
        let mut buf = Vec::with_capacity(row.len());
        scaler.transform_row(row, &mut buf);
        self.inner.predict_row(&buf)
    }

    fn feature_importances(&self) -> Option<Vec<f64>> {
        self.inner.feature_importances()
    }

    fn to_params(&self) -> ModelParams {
        ModelParams::Scaled { scaler: self.scaler.clone(), inner: Box::new(self.inner.to_params()) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaler_produces_zero_mean_unit_var() {
        let x = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 20.0], vec![5.0, 30.0]]);
        let s = StandardScaler::fit(&x);
        let t = s.transform(&x);
        for j in 0..2 {
            let mean: f64 = (0..3).map(|i| t.get(i, j)).sum::<f64>() / 3.0;
            let var: f64 = (0..3).map(|i| t.get(i, j).powi(2)).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_columns_become_zero() {
        let x = Matrix::from_rows(&[vec![7.0], vec![7.0]]);
        let s = StandardScaler::fit(&x);
        let t = s.transform(&x);
        assert_eq!(t.get(0, 0), 0.0);
        assert_eq!(t.get(1, 0), 0.0);
    }

    #[test]
    fn one_hot_encodes_each_category() {
        let enc = OneHotEncoder::new(vec!["a".into(), "b".into(), "c".into()]);
        let mut out = Vec::new();
        enc.encode_into("b", &mut out);
        assert_eq!(out, vec![0.0, 1.0, 0.0]);
        assert_eq!(enc.width(), 3);
    }

    #[test]
    #[should_panic(expected = "unknown category")]
    fn one_hot_rejects_unknown() {
        let enc = OneHotEncoder::new(vec!["a".into()]);
        let mut out = Vec::new();
        enc.encode_into("z", &mut out);
    }
}
