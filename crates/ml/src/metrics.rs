//! Regression evaluation metrics (paper Sec. V-A).

/// Root mean squared error: `sqrt(mean((y - ŷ)²))`.
pub fn rmse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    let mse = y_true.iter().zip(y_pred).map(|(t, p)| (t - p) * (t - p)).sum::<f64>()
        / y_true.len() as f64;
    mse.sqrt()
}

/// Mean absolute percentage error with the paper's ε guard:
/// `mean(|y − ŷ| / max(ε, |y|))`.
pub fn mape(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    const EPS: f64 = 1e-10;
    y_true.iter().zip(y_pred).map(|(t, p)| (t - p).abs() / t.abs().max(EPS)).sum::<f64>()
        / y_true.len() as f64
}

/// Mean absolute error.
pub fn mae(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    y_true.iter().zip(y_pred).map(|(t, p)| (t - p).abs()).sum::<f64>() / y_true.len() as f64
}

/// Coefficient of determination R².
pub fn r2(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    let mean = y_true.iter().sum::<f64>() / y_true.len() as f64;
    let ss_tot: f64 = y_true.iter().map(|t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = y_true.iter().zip(y_pred).map(|(t, p)| (t - p) * (t - p)).sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(rmse(&y, &y), 0.0);
        assert_eq!(mape(&y, &y), 0.0);
        assert_eq!(mae(&y, &y), 0.0);
        assert_eq!(r2(&y, &y), 1.0);
    }

    #[test]
    fn hand_computed_values() {
        let t = [2.0, 4.0];
        let p = [1.0, 6.0];
        // errors: 1, 2 -> rmse = sqrt((1+4)/2)
        assert!((rmse(&t, &p) - (2.5f64).sqrt()).abs() < 1e-12);
        // mape = (0.5 + 0.5)/2
        assert!((mape(&t, &p) - 0.5).abs() < 1e-12);
        assert!((mae(&t, &p) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn mape_guards_zero_targets() {
        let v = mape(&[0.0], &[1.0]);
        assert!(v.is_finite());
        assert!(v > 1e9); // enormous but finite
    }

    #[test]
    fn r2_of_mean_prediction_is_zero() {
        let t = [1.0, 2.0, 3.0];
        let p = [2.0, 2.0, 2.0];
        assert!(r2(&t, &p).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(rmse(&[], &[]), 0.0);
        assert_eq!(mape(&[], &[]), 0.0);
    }
}
