//! Fully-connected multi-layer perceptron regressor with ReLU activations,
//! trained with Adam on mini-batches — the paper's deep-learning
//! representative (Sec. IV-C).
//!
//! Targets are standardized internally (stored mean/std restore the scale
//! at prediction time), which keeps the default learning rate usable across
//! the very different target ranges EASE predicts (replication factors ~1–20
//! vs. run-times in seconds).

use crate::dataset::Matrix;
use crate::persist::{wrong_variant, LayerParams, ModelParams, PersistError};
use crate::Regressor;

#[derive(Debug, Clone, PartialEq)]
pub struct MlpParams {
    pub hidden: Vec<usize>,
    pub epochs: usize,
    pub batch_size: usize,
    pub learning_rate: f64,
    pub l2: f64,
    pub seed: u64,
}

impl Default for MlpParams {
    fn default() -> Self {
        MlpParams {
            hidden: vec![64, 32],
            epochs: 300,
            batch_size: 32,
            learning_rate: 1e-3,
            l2: 1e-5,
            seed: 0,
        }
    }
}

struct Layer {
    w: Vec<f64>, // out × in
    b: Vec<f64>,
    n_in: usize,
    n_out: usize,
    // Adam moments
    mw: Vec<f64>,
    vw: Vec<f64>,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Layer {
    fn new(n_in: usize, n_out: usize, rng: &mut u64) -> Self {
        // He initialization for ReLU nets
        let scale = (2.0 / n_in as f64).sqrt();
        let w = (0..n_in * n_out).map(|_| (next_gauss(rng)) * scale).collect();
        Layer {
            w,
            b: vec![0.0; n_out],
            n_in,
            n_out,
            mw: vec![0.0; n_in * n_out],
            vw: vec![0.0; n_in * n_out],
            mb: vec![0.0; n_out],
            vb: vec![0.0; n_out],
        }
    }

    fn forward(&self, input: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for o in 0..self.n_out {
            let row = &self.w[o * self.n_in..(o + 1) * self.n_in];
            let z: f64 = self.b[o] + row.iter().zip(input).map(|(w, x)| w * x).sum::<f64>();
            out.push(z);
        }
    }
}

fn next_u64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut x = *state;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn next_f64(state: &mut u64) -> f64 {
    (next_u64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Box–Muller standard normal.
fn next_gauss(state: &mut u64) -> f64 {
    let u1 = next_f64(state).max(1e-12);
    let u2 = next_f64(state);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

pub struct MlpRegressor {
    pub params: MlpParams,
    layers: Vec<Layer>,
    y_mean: f64,
    y_std: f64,
}

impl MlpRegressor {
    pub fn new(params: MlpParams) -> Self {
        MlpRegressor { params, layers: Vec::new(), y_mean: 0.0, y_std: 1.0 }
    }

    /// Rebuild from [`ModelParams::Mlp`]. Adam moments are training-only
    /// state and restart at zero; predictions depend only on weights and
    /// biases, so the reload predicts bit-identically.
    pub fn from_params(params: ModelParams) -> Result<Self, PersistError> {
        match params {
            ModelParams::Mlp { params, y_mean, y_std, layers } => {
                for (i, pair) in layers.windows(2).enumerate() {
                    if pair[0].n_out != pair[1].n_in {
                        return Err(PersistError::Corrupt(format!(
                            "mlp layer {i} emits {} values but layer {} expects {}",
                            pair[0].n_out,
                            i + 1,
                            pair[1].n_in
                        )));
                    }
                }
                let layers = layers
                    .into_iter()
                    .map(|l| Layer {
                        mw: vec![0.0; l.w.len()],
                        vw: vec![0.0; l.w.len()],
                        mb: vec![0.0; l.b.len()],
                        vb: vec![0.0; l.b.len()],
                        w: l.w,
                        b: l.b,
                        n_in: l.n_in,
                        n_out: l.n_out,
                    })
                    .collect();
                Ok(MlpRegressor { params, layers, y_mean, y_std })
            }
            other => Err(wrong_variant("mlp", &other)),
        }
    }

    fn forward_all(&self, row: &[f64], activations: &mut Vec<Vec<f64>>) -> f64 {
        activations.clear();
        activations.push(row.to_vec());
        let mut buf = Vec::new();
        for (li, layer) in self.layers.iter().enumerate() {
            layer.forward(activations.last().expect("input"), &mut buf);
            let is_last = li + 1 == self.layers.len();
            if !is_last {
                for v in &mut buf {
                    *v = v.max(0.0); // ReLU
                }
            }
            activations.push(buf.clone());
        }
        activations.last().expect("output")[0]
    }
}

impl Regressor for MlpRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        assert_eq!(x.rows, y.len());
        assert!(x.rows > 0, "empty training set");
        self.y_mean = y.iter().sum::<f64>() / y.len() as f64;
        let var = y.iter().map(|v| (v - self.y_mean).powi(2)).sum::<f64>() / y.len() as f64;
        self.y_std = var.sqrt().max(1e-9);
        let yt: Vec<f64> = y.iter().map(|v| (v - self.y_mean) / self.y_std).collect();

        let mut rng = self.params.seed ^ 0x11_17;
        let mut dims = vec![x.cols];
        dims.extend(&self.params.hidden);
        dims.push(1);
        self.layers =
            (0..dims.len() - 1).map(|i| Layer::new(dims[i], dims[i + 1], &mut rng)).collect();

        let (beta1, beta2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
        let mut t_step = 0usize;
        let mut order: Vec<usize> = (0..x.rows).collect();
        let mut activations: Vec<Vec<f64>> = Vec::new();
        // gradient buffers per layer
        let mut gw: Vec<Vec<f64>> = self.layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
        let mut gb: Vec<Vec<f64>> = self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
        for _epoch in 0..self.params.epochs {
            // Fisher–Yates shuffle
            for i in (1..order.len()).rev() {
                let j = (next_u64(&mut rng) % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            for batch in order.chunks(self.params.batch_size) {
                for g in gw.iter_mut() {
                    g.fill(0.0);
                }
                for g in gb.iter_mut() {
                    g.fill(0.0);
                }
                for &i in batch {
                    let pred = self.forward_all(x.row(i), &mut activations);
                    // dL/dpred for 0.5*(pred-y)^2
                    let mut delta = vec![pred - yt[i]];
                    // backprop
                    for li in (0..self.layers.len()).rev() {
                        let layer = &self.layers[li];
                        let input = &activations[li];
                        // accumulate grads
                        for o in 0..layer.n_out {
                            gb[li][o] += delta[o];
                            let grow = &mut gw[li][o * layer.n_in..(o + 1) * layer.n_in];
                            for (g, x_in) in grow.iter_mut().zip(input) {
                                *g += delta[o] * x_in;
                            }
                        }
                        if li == 0 {
                            break;
                        }
                        // delta for previous layer (through ReLU)
                        let mut prev = vec![0.0; layer.n_in];
                        for o in 0..layer.n_out {
                            let row = &layer.w[o * layer.n_in..(o + 1) * layer.n_in];
                            for (p, w) in prev.iter_mut().zip(row) {
                                *p += delta[o] * w;
                            }
                        }
                        for (p, a) in prev.iter_mut().zip(&activations[li]) {
                            if *a <= 0.0 {
                                *p = 0.0;
                            }
                        }
                        delta = prev;
                    }
                }
                // Adam update
                t_step += 1;
                let bias1 = 1.0 - beta1.powi(t_step as i32);
                let bias2 = 1.0 - beta2.powi(t_step as i32);
                let scale = 1.0 / batch.len() as f64;
                for (li, layer) in self.layers.iter_mut().enumerate() {
                    for (idx, w) in layer.w.iter_mut().enumerate() {
                        let g = gw[li][idx] * scale + self.params.l2 * *w;
                        layer.mw[idx] = beta1 * layer.mw[idx] + (1.0 - beta1) * g;
                        layer.vw[idx] = beta2 * layer.vw[idx] + (1.0 - beta2) * g * g;
                        let mhat = layer.mw[idx] / bias1;
                        let vhat = layer.vw[idx] / bias2;
                        *w -= self.params.learning_rate * mhat / (vhat.sqrt() + eps);
                    }
                    for (idx, b) in layer.b.iter_mut().enumerate() {
                        let g = gb[li][idx] * scale;
                        layer.mb[idx] = beta1 * layer.mb[idx] + (1.0 - beta1) * g;
                        layer.vb[idx] = beta2 * layer.vb[idx] + (1.0 - beta2) * g * g;
                        let mhat = layer.mb[idx] / bias1;
                        let vhat = layer.vb[idx] / bias2;
                        *b -= self.params.learning_rate * mhat / (vhat.sqrt() + eps);
                    }
                }
            }
        }
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        assert!(!self.layers.is_empty(), "fit before predict");
        let mut activations = Vec::new();
        let z = self.forward_all(row, &mut activations);
        z * self.y_std + self.y_mean
    }

    fn to_params(&self) -> ModelParams {
        ModelParams::Mlp {
            params: self.params.clone(),
            y_mean: self.y_mean,
            y_std: self.y_std,
            layers: self
                .layers
                .iter()
                .map(|l| LayerParams {
                    n_in: l.n_in,
                    n_out: l.n_out,
                    w: l.w.clone(),
                    b: l.b.clone(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2;

    #[test]
    fn learns_a_linear_map() {
        let rows: Vec<Vec<f64>> =
            (0..100).map(|i| vec![f64::from(i % 10) / 10.0, f64::from(i / 10) / 10.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] - 2.0 * r[1] + 1.0).collect();
        let x = Matrix::from_rows(&rows);
        let mut m = MlpRegressor::new(MlpParams { epochs: 200, ..Default::default() });
        m.fit(&x, &y);
        let score = r2(&y, &m.predict(&x));
        assert!(score > 0.97, "r2={score}");
    }

    #[test]
    fn learns_a_nonlinear_function() {
        let rows: Vec<Vec<f64>> = (0..200).map(|i| vec![f64::from(i) / 200.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| (r[0] * 6.0).sin()).collect();
        let x = Matrix::from_rows(&rows);
        let mut m = MlpRegressor::new(MlpParams { epochs: 400, ..Default::default() });
        m.fit(&x, &y);
        let score = r2(&y, &m.predict(&x));
        assert!(score > 0.9, "r2={score}");
    }

    #[test]
    fn deterministic_per_seed() {
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![f64::from(i) / 40.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * 2.0).collect();
        let x = Matrix::from_rows(&rows);
        let mut a = MlpRegressor::new(MlpParams { epochs: 30, ..Default::default() });
        let mut b = MlpRegressor::new(MlpParams { epochs: 30, ..Default::default() });
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict_row(&[0.3]), b.predict_row(&[0.3]));
    }

    #[test]
    fn output_restored_to_target_scale() {
        // targets far from 0 with tiny variance: standardization must undo
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![f64::from(i)]).collect();
        let y: Vec<f64> = (0..30).map(|i| 5_000.0 + f64::from(i)).collect();
        let x = Matrix::from_rows(&rows);
        let mut m = MlpRegressor::new(MlpParams { epochs: 150, ..Default::default() });
        m.fit(&x, &y);
        let p = m.predict_row(&[15.0]);
        assert!((p - 5_015.0).abs() < 30.0, "p={p}");
    }
}
