//! The model zoo: one configuration enum covering all six families the
//! paper compares, plus the default hyper-parameter grid for model
//! selection.

use crate::forest::{ForestParams, RandomForest};
use crate::gbt::{GbtParams, GradientBoosting};
use crate::knn::{KnnRegressor, KnnWeights};
use crate::mlp::{MlpParams, MlpRegressor};
use crate::poly::PolynomialRegression;
use crate::preprocess::ScaledModel;
use crate::svr::{SvrParams, SvrRegressor};
use crate::Regressor;

/// The six model families of paper Sec. IV-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    Poly,
    Svr,
    RandomForest,
    Xgb,
    Knn,
    Mlp,
}

impl ModelKind {
    pub const ALL: [ModelKind; 6] = [
        ModelKind::Poly,
        ModelKind::Svr,
        ModelKind::RandomForest,
        ModelKind::Xgb,
        ModelKind::Knn,
        ModelKind::Mlp,
    ];

    /// Name as the paper prints it in Tables V/VI.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Poly => "PolyRegression",
            ModelKind::Svr => "SVR",
            ModelKind::RandomForest => "RFR",
            ModelKind::Xgb => "XGB",
            ModelKind::Knn => "KNN",
            ModelKind::Mlp => "MLP",
        }
    }
}

/// A buildable model configuration (hyper-parameter point).
#[derive(Debug, Clone, PartialEq)]
pub enum ModelConfig {
    Poly { degree: usize, alpha: f64 },
    Svr { c: f64, epsilon: f64, gamma: f64 },
    Forest { n_trees: usize, max_depth: usize, feature_fraction: f64 },
    Xgb { n_estimators: usize, learning_rate: f64, max_depth: usize, lambda: f64 },
    Knn { k: usize, distance_weighted: bool },
    Mlp { hidden: Vec<usize>, epochs: usize, learning_rate: f64 },
}

impl ModelConfig {
    pub fn kind(&self) -> ModelKind {
        match self {
            ModelConfig::Poly { .. } => ModelKind::Poly,
            ModelConfig::Svr { .. } => ModelKind::Svr,
            ModelConfig::Forest { .. } => ModelKind::RandomForest,
            ModelConfig::Xgb { .. } => ModelKind::Xgb,
            ModelConfig::Knn { .. } => ModelKind::Knn,
            ModelConfig::Mlp { .. } => ModelKind::Mlp,
        }
    }

    /// Instantiate the model. Scale-sensitive families (SVR, KNN, MLP, and
    /// polynomial ridge) are wrapped in a z-score pipeline, matching the
    /// paper's preprocessing.
    pub fn build(&self) -> Box<dyn Regressor> {
        match self {
            ModelConfig::Poly { degree, alpha } => {
                Box::new(ScaledModel::new(Box::new(PolynomialRegression::new(*degree, *alpha))))
            }
            ModelConfig::Svr { c, epsilon, gamma } => {
                Box::new(ScaledModel::new(Box::new(SvrRegressor::new(SvrParams {
                    c: *c,
                    epsilon: *epsilon,
                    gamma: *gamma,
                    ..Default::default()
                }))))
            }
            ModelConfig::Forest { n_trees, max_depth, feature_fraction } => {
                Box::new(RandomForest::new(ForestParams {
                    n_trees: *n_trees,
                    max_depth: *max_depth,
                    feature_fraction: *feature_fraction,
                    ..Default::default()
                }))
            }
            ModelConfig::Xgb { n_estimators, learning_rate, max_depth, lambda } => {
                Box::new(GradientBoosting::new(GbtParams {
                    n_estimators: *n_estimators,
                    learning_rate: *learning_rate,
                    max_depth: *max_depth,
                    lambda: *lambda,
                    ..Default::default()
                }))
            }
            ModelConfig::Knn { k, distance_weighted } => {
                let weights =
                    if *distance_weighted { KnnWeights::Distance } else { KnnWeights::Uniform };
                Box::new(ScaledModel::new(Box::new(KnnRegressor::new(*k, weights))))
            }
            ModelConfig::Mlp { hidden, epochs, learning_rate } => {
                Box::new(ScaledModel::new(Box::new(MlpRegressor::new(MlpParams {
                    hidden: hidden.clone(),
                    epochs: *epochs,
                    learning_rate: *learning_rate,
                    ..Default::default()
                }))))
            }
        }
    }

    /// Short description for reports.
    pub fn describe(&self) -> String {
        match self {
            ModelConfig::Poly { degree, alpha } => format!("poly(d={degree},a={alpha})"),
            ModelConfig::Svr { c, epsilon, gamma } => format!("svr(C={c},e={epsilon},g={gamma})"),
            ModelConfig::Forest { n_trees, max_depth, feature_fraction } => {
                format!("rfr(t={n_trees},d={max_depth},f={feature_fraction})")
            }
            ModelConfig::Xgb { n_estimators, learning_rate, max_depth, lambda } => {
                format!("xgb(n={n_estimators},lr={learning_rate},d={max_depth},l={lambda})")
            }
            ModelConfig::Knn { k, distance_weighted } => {
                format!("knn(k={k},dw={distance_weighted})")
            }
            ModelConfig::Mlp { hidden, epochs, learning_rate } => {
                format!("mlp(h={hidden:?},e={epochs},lr={learning_rate})")
            }
        }
    }
}

/// The default hyper-parameter grid across all six families — a compact
/// version of the paper repository's grid, sized for laptop-scale training.
pub fn default_grid() -> Vec<ModelConfig> {
    vec![
        ModelConfig::Poly { degree: 1, alpha: 1e-4 },
        ModelConfig::Poly { degree: 2, alpha: 1e-3 },
        ModelConfig::Svr { c: 10.0, epsilon: 0.01, gamma: 0.5 },
        ModelConfig::Svr { c: 100.0, epsilon: 0.05, gamma: 0.1 },
        ModelConfig::Forest { n_trees: 60, max_depth: 14, feature_fraction: 0.6 },
        ModelConfig::Forest { n_trees: 100, max_depth: 18, feature_fraction: 0.8 },
        ModelConfig::Xgb { n_estimators: 150, learning_rate: 0.1, max_depth: 5, lambda: 1.0 },
        ModelConfig::Xgb { n_estimators: 250, learning_rate: 0.05, max_depth: 7, lambda: 1.0 },
        ModelConfig::Knn { k: 5, distance_weighted: true },
        ModelConfig::Knn { k: 9, distance_weighted: false },
        ModelConfig::Mlp { hidden: vec![32, 16], epochs: 60, learning_rate: 1e-3 },
    ]
}

/// A reduced grid for fast pipelines and tests (one configuration per
/// cheap family).
pub fn quick_grid() -> Vec<ModelConfig> {
    vec![
        ModelConfig::Poly { degree: 2, alpha: 1e-3 },
        ModelConfig::Forest { n_trees: 30, max_depth: 12, feature_fraction: 0.7 },
        ModelConfig::Xgb { n_estimators: 80, learning_rate: 0.1, max_depth: 5, lambda: 1.0 },
        ModelConfig::Knn { k: 5, distance_weighted: true },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Matrix;

    #[test]
    fn all_configs_build_and_fit() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![f64::from(i), f64::from(i % 5)]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] + r[1]).collect();
        let x = Matrix::from_rows(&rows);
        for cfg in default_grid() {
            let mut m = match cfg {
                // shrink the expensive ones for the test
                ModelConfig::Mlp { ref hidden, .. } => {
                    ModelConfig::Mlp { hidden: hidden.clone(), epochs: 10, learning_rate: 1e-3 }
                        .build()
                }
                _ => cfg.build(),
            };
            m.fit(&x, &y);
            let p = m.predict_row(&[3.0, 2.0]);
            assert!(p.is_finite(), "{}", cfg.describe());
        }
    }

    #[test]
    fn grid_covers_all_six_families() {
        let kinds: std::collections::HashSet<_> = default_grid().iter().map(|c| c.kind()).collect();
        assert_eq!(kinds.len(), 6);
    }

    #[test]
    fn kind_names_match_paper() {
        assert_eq!(ModelKind::Xgb.name(), "XGB");
        assert_eq!(ModelKind::RandomForest.name(), "RFR");
        assert_eq!(ModelKind::Poly.name(), "PolyRegression");
    }

    #[test]
    fn forest_importances_available_through_config() {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![f64::from(i), 1.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0]).collect();
        let x = Matrix::from_rows(&rows);
        let mut m =
            ModelConfig::Forest { n_trees: 10, max_depth: 8, feature_fraction: 1.0 }.build();
        m.fit(&x, &y);
        let imp = m.feature_importances().expect("forest importances");
        assert_eq!(imp.len(), 2);
        assert!(imp[0] > imp[1]);
    }
}
