//! Polynomial regression: degree-d feature expansion feeding a ridge solve.

use crate::dataset::Matrix;
use crate::linear::Ridge;
use crate::persist::{wrong_variant, ModelParams, PersistError};
use crate::Regressor;

/// Polynomial regression of degree 1–3.
///
/// Degree 2 expands to all pairwise products `x_i·x_j (i ≤ j)`; degree 3
/// additionally adds univariate cubes (the full cubic basis would explode
/// combinatorially on one-hot-heavy feature vectors).
#[derive(Debug, Clone)]
pub struct PolynomialRegression {
    pub degree: usize,
    pub alpha: f64,
    inner: Ridge,
}

impl PolynomialRegression {
    pub fn new(degree: usize, alpha: f64) -> Self {
        assert!((1..=3).contains(&degree), "degree must be 1..=3");
        PolynomialRegression { degree, alpha, inner: Ridge::new(alpha) }
    }

    /// Rebuild from [`ModelParams::Poly`].
    pub fn from_params(params: ModelParams) -> Result<Self, PersistError> {
        match params {
            ModelParams::Poly { degree, alpha, inner } => {
                if !(1..=3).contains(&degree) {
                    return Err(PersistError::Corrupt(format!(
                        "poly degree {degree} out of 1..=3"
                    )));
                }
                Ok(PolynomialRegression { degree, alpha, inner: Ridge::from_params(*inner)? })
            }
            other => Err(wrong_variant("poly", &other)),
        }
    }

    fn expand(&self, row: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(row);
        if self.degree >= 2 {
            for i in 0..row.len() {
                for j in i..row.len() {
                    out.push(row[i] * row[j]);
                }
            }
        }
        if self.degree >= 3 {
            for &v in row {
                out.push(v * v * v);
            }
        }
    }

    fn expand_matrix(&self, x: &Matrix) -> Matrix {
        let mut buf = Vec::new();
        self.expand(x.row(0), &mut buf);
        let mut out = Matrix::with_cols(buf.len());
        out.push_row(&buf);
        for i in 1..x.rows {
            self.expand(x.row(i), &mut buf);
            out.push_row(&buf);
        }
        out
    }
}

impl Regressor for PolynomialRegression {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        assert!(x.rows > 0);
        let expanded = self.expand_matrix(x);
        self.inner = Ridge::new(self.alpha);
        self.inner.fit(&expanded, y);
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        let mut buf = Vec::new();
        self.expand(row, &mut buf);
        self.inner.predict_row(&buf)
    }

    fn to_params(&self) -> ModelParams {
        ModelParams::Poly {
            degree: self.degree,
            alpha: self.alpha,
            inner: Box::new(self.inner.to_params()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_a_quadratic_exactly() {
        // y = x² - 2x + 1
        let xs: Vec<f64> = (-5..=5).map(f64::from).collect();
        let x = Matrix::from_rows(&xs.iter().map(|&v| vec![v]).collect::<Vec<_>>());
        let y: Vec<f64> = xs.iter().map(|v| v * v - 2.0 * v + 1.0).collect();
        let mut m = PolynomialRegression::new(2, 1e-8);
        m.fit(&x, &y);
        for v in [-3.0, 0.5, 7.0] {
            let expect = v * v - 2.0 * v + 1.0;
            assert!((m.predict_row(&[v]) - expect).abs() < 1e-4, "v={v}");
        }
    }

    #[test]
    fn degree_one_is_linear() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let y = vec![1.0, 3.0, 5.0];
        let mut m = PolynomialRegression::new(1, 1e-8);
        m.fit(&x, &y);
        assert!((m.predict_row(&[3.0]) - 7.0).abs() < 1e-6);
    }

    #[test]
    fn interaction_terms_present_for_degree_two() {
        // y = x0 * x1 is only learnable with interactions
        let rows: Vec<Vec<f64>> =
            (0..16).map(|i| vec![f64::from(i % 4), f64::from(i / 4)]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * r[1]).collect();
        let x = Matrix::from_rows(&rows);
        let mut m = PolynomialRegression::new(2, 1e-8);
        m.fit(&x, &y);
        assert!((m.predict_row(&[2.0, 3.0]) - 6.0).abs() < 1e-4);
    }

    #[test]
    fn cubic_term_improves_cubic_fit() {
        let xs: Vec<f64> = (-6..=6).map(f64::from).collect();
        let x = Matrix::from_rows(&xs.iter().map(|&v| vec![v]).collect::<Vec<_>>());
        let y: Vec<f64> = xs.iter().map(|v| v * v * v).collect();
        let mut quad = PolynomialRegression::new(2, 1e-8);
        let mut cube = PolynomialRegression::new(3, 1e-8);
        quad.fit(&x, &y);
        cube.fit(&x, &y);
        let err = |m: &PolynomialRegression| (m.predict_row(&[4.0]) - 64.0).abs();
        assert!(err(&cube) < 1e-3);
        assert!(err(&quad) > 1.0);
    }

    #[test]
    #[should_panic(expected = "degree must be")]
    fn rejects_degree_zero() {
        let _ = PolynomialRegression::new(0, 1.0);
    }
}
