//! Row-major feature matrices and labelled datasets.

use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    pub rows: usize,
    pub cols: usize,
}

impl Matrix {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { data: vec![0.0; rows * cols], rows, cols }
    }

    pub fn with_cols(cols: usize) -> Self {
        Matrix { data: Vec::new(), rows: 0, cols }
    }

    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let cols = rows.first().map_or(0, Vec::len);
        let mut m = Matrix::with_cols(cols);
        for r in rows {
            m.push_row(r);
        }
        m
    }

    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "row width mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// The row-major backing storage (persistence codec).
    pub fn values(&self) -> &[f64] {
        &self.data
    }

    /// Rebuild a matrix from row-major storage (persistence codec).
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "flat data size mismatch");
        Matrix { data, rows, cols }
    }

    /// Select a subset of rows by index.
    pub fn select(&self, indices: &[usize]) -> Matrix {
        let mut m = Matrix::with_cols(self.cols);
        for &i in indices {
            m.push_row(self.row(i));
        }
        m
    }

    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }
}

/// A labelled dataset with named feature columns.
#[derive(Debug, Clone)]
pub struct Dataset {
    pub feature_names: Vec<String>,
    pub x: Matrix,
    pub y: Vec<f64>,
}

impl Dataset {
    pub fn new(feature_names: Vec<String>) -> Self {
        let cols = feature_names.len();
        Dataset { feature_names, x: Matrix::with_cols(cols), y: Vec::new() }
    }

    pub fn push(&mut self, row: &[f64], target: f64) {
        self.x.push_row(row);
        self.y.push(target);
    }

    pub fn len(&self) -> usize {
        self.y.len()
    }

    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Subset by row indices.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        Dataset {
            feature_names: self.feature_names.clone(),
            x: self.x.select(indices),
            y: indices.iter().map(|&i| self.y[i]).collect(),
        }
    }

    /// Append all rows of another dataset (same schema) — the enrichment
    /// operation of paper Sec. V-D.
    pub fn extend_from(&mut self, other: &Dataset) {
        assert_eq!(self.feature_names, other.feature_names, "schema mismatch");
        for i in 0..other.len() {
            self.push(other.x.row(i), other.y[i]);
        }
    }

    /// Write as CSV (features then `target` column).
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        let f = std::fs::File::create(path)?;
        let mut w = BufWriter::new(f);
        writeln!(w, "{},target", self.feature_names.join(","))?;
        for i in 0..self.len() {
            let row: Vec<String> = self.x.row(i).iter().map(|v| format!("{v}")).collect();
            writeln!(w, "{},{}", row.join(","), self.y[i])?;
        }
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_row_access() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.rows, 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.get(0, 1), 2.0);
    }

    #[test]
    fn matrix_select() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let s = m.select(&[2, 0]);
        assert_eq!(s.row(0), &[3.0]);
        assert_eq!(s.row(1), &[1.0]);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn push_row_checks_width() {
        let mut m = Matrix::with_cols(2);
        m.push_row(&[1.0]);
    }

    #[test]
    fn dataset_push_and_select() {
        let mut ds = Dataset::new(vec!["a".into(), "b".into()]);
        ds.push(&[1.0, 2.0], 10.0);
        ds.push(&[3.0, 4.0], 20.0);
        let s = ds.select(&[1]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.y, vec![20.0]);
    }

    #[test]
    fn dataset_extend() {
        let mut a = Dataset::new(vec!["f".into()]);
        a.push(&[1.0], 1.0);
        let mut b = Dataset::new(vec!["f".into()]);
        b.push(&[2.0], 2.0);
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.y, vec![1.0, 2.0]);
    }

    #[test]
    fn csv_round_shape() {
        let mut ds = Dataset::new(vec!["a".into()]);
        ds.push(&[1.5], 3.0);
        let path = std::env::temp_dir().join(format!("ease_ml_ds_{}.csv", std::process::id()));
        ds.write_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("a,target"));
    }
}
