//! K-fold cross-validation and grid search (paper Sec. IV-C: 5-fold CV on
//! the training set selects model family + hyper-parameters, the winner is
//! retrained on the full training set).

use crate::dataset::Dataset;
use crate::metrics::mape;
use crate::zoo::ModelConfig;

/// Deterministically shuffled K-fold index sets.
pub fn kfold_indices(n: usize, folds: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(folds >= 2, "need at least 2 folds");
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = seed ^ 0xF01D;
    for i in (1..n).rev() {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = state;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        order.swap(i, (x % (i as u64 + 1)) as usize);
    }
    let mut out = vec![Vec::new(); folds];
    for (i, &idx) in order.iter().enumerate() {
        out[i % folds].push(idx);
    }
    out
}

/// Mean cross-validated MAPE of a model configuration on a dataset.
pub fn cross_val_mape(config: &ModelConfig, ds: &Dataset, folds: usize, seed: u64) -> f64 {
    let fold_sets = kfold_indices(ds.len(), folds, seed);
    let mut total = 0.0;
    let mut counted = 0usize;
    for f in 0..folds {
        let test_idx = &fold_sets[f];
        if test_idx.is_empty() {
            continue;
        }
        let train_idx: Vec<usize> = fold_sets
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != f)
            .flat_map(|(_, v)| v.iter().copied())
            .collect();
        if train_idx.is_empty() {
            continue;
        }
        let train = ds.select(&train_idx);
        let test = ds.select(test_idx);
        let mut model = config.build();
        model.fit(&train.x, &train.y);
        let pred = model.predict(&test.x);
        total += mape(&test.y, &pred);
        counted += 1;
    }
    if counted == 0 {
        f64::INFINITY
    } else {
        total / counted as f64
    }
}

/// Outcome of a grid search: best configuration and its CV score.
#[derive(Debug, Clone)]
pub struct GridSearchResult {
    pub best: ModelConfig,
    pub best_score: f64,
    /// `(config, score)` for every candidate, in evaluation order.
    pub all_scores: Vec<(ModelConfig, f64)>,
}

/// Evaluate every candidate with K-fold CV, pick the lowest MAPE.
/// Candidates are scored on scoped threads — model training dominates the
/// EASE pipeline, and the grid members are independent.
pub fn grid_search(
    candidates: &[ModelConfig],
    ds: &Dataset,
    folds: usize,
    seed: u64,
) -> GridSearchResult {
    assert!(!candidates.is_empty());
    let workers =
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(candidates.len());
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<f64>> = vec![None; candidates.len()];
    {
        let slot_cells: Vec<std::sync::Mutex<&mut Option<f64>>> =
            slots.iter_mut().map(std::sync::Mutex::new).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // lint: relaxed-ok(work ticket counter; slot writes publish via the scope join)
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= candidates.len() {
                        break;
                    }
                    let score = cross_val_mape(&candidates[i], ds, folds, seed);
                    **slot_cells[i].lock().expect("poisoned slot") = Some(score);
                });
            }
        });
    }
    let all_scores: Vec<(ModelConfig, f64)> =
        candidates.iter().cloned().zip(slots.into_iter().map(|s| s.expect("scored"))).collect();
    let (best, best_score) = all_scores
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite scores"))
        .map(|(c, s)| (c.clone(), *s))
        .expect("non-empty grid");
    GridSearchResult { best, best_score, all_scores }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::ModelConfig;

    fn linear_dataset(n: usize) -> Dataset {
        let mut ds = Dataset::new(vec!["x".into()]);
        for i in 0..n {
            let x = i as f64 / n as f64;
            ds.push(&[x], 2.0 * x + 1.0);
        }
        ds
    }

    #[test]
    fn kfold_partitions_everything_once() {
        let folds = kfold_indices(103, 5, 1);
        assert_eq!(folds.len(), 5);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
        // balanced sizes
        for f in &folds {
            assert!(f.len() == 20 || f.len() == 21);
        }
    }

    #[test]
    fn kfold_is_deterministic_and_seed_sensitive() {
        assert_eq!(kfold_indices(50, 5, 7), kfold_indices(50, 5, 7));
        assert_ne!(kfold_indices(50, 5, 7), kfold_indices(50, 5, 8));
    }

    #[test]
    fn cv_score_near_zero_for_learnable_function() {
        let ds = linear_dataset(60);
        let cfg = ModelConfig::Poly { degree: 1, alpha: 1e-8 };
        let score = cross_val_mape(&cfg, &ds, 5, 1);
        assert!(score < 0.01, "score {score}");
    }

    #[test]
    fn grid_search_prefers_correct_degree() {
        // quadratic data: degree-2 poly must beat degree-1
        let mut ds = Dataset::new(vec!["x".into()]);
        for i in 0..80 {
            let x = i as f64 / 20.0 - 2.0;
            ds.push(&[x], x * x + 1.0);
        }
        let grid = vec![
            ModelConfig::Poly { degree: 1, alpha: 1e-8 },
            ModelConfig::Poly { degree: 2, alpha: 1e-8 },
        ];
        let result = grid_search(&grid, &ds, 5, 3);
        assert!(matches!(result.best, ModelConfig::Poly { degree: 2, .. }));
        assert_eq!(result.all_scores.len(), 2);
        assert!(result.best_score <= result.all_scores[0].1);
    }
}
