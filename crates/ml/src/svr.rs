//! ε-Support Vector Regression with an RBF kernel, trained by exact
//! coordinate descent on the (bias-free) dual:
//!
//! ```text
//! min_β  ½ βᵀKβ − βᵀy + ε‖β‖₁   s.t. |β_i| ≤ C
//! ```
//!
//! The coordinate update has the closed form
//! `β_i ← clip(soft(y_i − f_i + β_i·K_ii, ε) / K_ii, ±C)`; with an RBF
//! kernel `K_ii = 1`. The bias is handled by centering the targets.
//!
//! Kernel SVR is inherently O(n²) in memory and time, so training sets
//! larger than [`SvrParams::max_train`] rows are deterministically
//! subsampled — the standard mitigation (the paper's SVR also never wins a
//! component, it is one of the compared families).

use crate::dataset::Matrix;
use crate::persist::{wrong_variant, ModelParams, PersistError};
use crate::Regressor;

#[derive(Debug, Clone, PartialEq)]
pub struct SvrParams {
    pub c: f64,
    pub epsilon: f64,
    /// RBF width: `K(a,b) = exp(−γ‖a−b‖²)`.
    pub gamma: f64,
    pub max_passes: usize,
    pub tol: f64,
    /// Cap on training rows (uniform deterministic subsample beyond it).
    pub max_train: usize,
}

impl Default for SvrParams {
    fn default() -> Self {
        SvrParams {
            c: 10.0,
            epsilon: 0.01,
            gamma: 0.5,
            max_passes: 60,
            tol: 1e-5,
            max_train: 1_500,
        }
    }
}

pub struct SvrRegressor {
    pub params: SvrParams,
    support: Matrix,
    beta: Vec<f64>,
    bias: f64,
}

impl SvrRegressor {
    pub fn new(params: SvrParams) -> Self {
        SvrRegressor { params, support: Matrix::with_cols(0), beta: Vec::new(), bias: 0.0 }
    }

    fn kernel(&self, a: &[f64], b: &[f64]) -> f64 {
        let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        (-self.params.gamma * d2).exp()
    }

    /// Number of support vectors (non-zero duals) after fitting.
    pub fn num_support_vectors(&self) -> usize {
        self.beta.iter().filter(|b| b.abs() > 1e-12).count()
    }

    /// Rebuild from [`ModelParams::Svr`]. The decoder already validated
    /// that `beta` and `support` agree in length.
    pub fn from_params(params: ModelParams) -> Result<Self, PersistError> {
        match params {
            ModelParams::Svr { params, support, beta, bias } => {
                Ok(SvrRegressor { params, support, beta, bias })
            }
            other => Err(wrong_variant("svr", &other)),
        }
    }
}

fn soft_threshold(u: f64, eps: f64) -> f64 {
    if u > eps {
        u - eps
    } else if u < -eps {
        u + eps
    } else {
        0.0
    }
}

impl Regressor for SvrRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        assert_eq!(x.rows, y.len());
        assert!(x.rows > 0, "empty training set");
        // deterministic stride subsample if oversized
        let (x, y): (Matrix, Vec<f64>) = if x.rows > self.params.max_train {
            let stride = x.rows as f64 / self.params.max_train as f64;
            let idx: Vec<usize> =
                (0..self.params.max_train).map(|i| (i as f64 * stride) as usize).collect();
            (x.select(&idx), idx.iter().map(|&i| y[i]).collect())
        } else {
            (x.clone(), y.to_vec())
        };
        let n = x.rows;
        self.bias = y.iter().sum::<f64>() / n as f64;
        let yc: Vec<f64> = y.iter().map(|v| v - self.bias).collect();
        // kernel matrix
        let mut kmat = vec![0.0f64; n * n];
        for i in 0..n {
            for j in i..n {
                let k = self.kernel(x.row(i), x.row(j));
                kmat[i * n + j] = k;
                kmat[j * n + i] = k;
            }
        }
        let mut beta = vec![0.0f64; n];
        let mut f = vec![0.0f64; n]; // f_i = Σ_j β_j K_ij
        for _ in 0..self.params.max_passes {
            let mut max_delta = 0.0f64;
            for i in 0..n {
                let kii = kmat[i * n + i].max(1e-12);
                let u = yc[i] - (f[i] - beta[i] * kii);
                let new = (soft_threshold(u, self.params.epsilon) / kii)
                    .clamp(-self.params.c, self.params.c);
                let delta = new - beta[i];
                if delta != 0.0 {
                    beta[i] = new;
                    let row = &kmat[i * n..(i + 1) * n];
                    for (fj, kij) in f.iter_mut().zip(row) {
                        *fj += delta * kij;
                    }
                }
                max_delta = max_delta.max(delta.abs());
            }
            if max_delta < self.params.tol {
                break;
            }
        }
        // keep only support vectors for prediction
        let keep: Vec<usize> = (0..n).filter(|&i| beta[i].abs() > 1e-12).collect();
        self.support = x.select(&keep);
        self.beta = keep.iter().map(|&i| beta[i]).collect();
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        let mut sum = self.bias;
        for (i, b) in self.beta.iter().enumerate() {
            sum += b * self.kernel(self.support.row(i), row);
        }
        sum
    }

    fn to_params(&self) -> ModelParams {
        ModelParams::Svr {
            params: self.params.clone(),
            support: self.support.clone(),
            beta: self.beta.clone(),
            bias: self.bias,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::rmse;

    fn sine_data(n: usize) -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> =
            (0..n).map(|i| vec![i as f64 / n as f64 * std::f64::consts::TAU]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0].sin()).collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn fits_a_smooth_function() {
        let (x, y) = sine_data(80);
        let mut m = SvrRegressor::new(SvrParams::default());
        m.fit(&x, &y);
        let pred = m.predict(&x);
        let err = rmse(&y, &pred);
        assert!(err < 0.08, "rmse {err}");
    }

    #[test]
    fn epsilon_tube_sparsifies() {
        let (x, y) = sine_data(60);
        let mut tight = SvrRegressor::new(SvrParams { epsilon: 0.001, ..Default::default() });
        let mut loose = SvrRegressor::new(SvrParams { epsilon: 0.3, ..Default::default() });
        tight.fit(&x, &y);
        loose.fit(&x, &y);
        assert!(
            loose.num_support_vectors() < tight.num_support_vectors(),
            "loose {} tight {}",
            loose.num_support_vectors(),
            tight.num_support_vectors()
        );
    }

    #[test]
    fn subsampling_cap_applies() {
        let (x, y) = sine_data(300);
        let mut m = SvrRegressor::new(SvrParams { max_train: 50, ..Default::default() });
        m.fit(&x, &y);
        assert!(m.support.rows <= 50);
        // still a decent fit
        assert!(rmse(&y, &m.predict(&x)) < 0.2);
    }

    #[test]
    fn constant_targets_predict_bias() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let y = vec![5.0, 5.0, 5.0];
        let mut m = SvrRegressor::new(SvrParams::default());
        m.fit(&x, &y);
        assert!((m.predict_row(&[0.7]) - 5.0).abs() < 0.05);
        assert_eq!(m.num_support_vectors(), 0);
    }
}
