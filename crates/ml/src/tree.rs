//! CART regression trees with histogram-based split search.
//!
//! Features are quantile-binned (≤ 64 bins) once per fit; each node then
//! scans its samples once per candidate feature, accumulating per-bin sums —
//! `O(samples × features)` per tree level instead of sort-based
//! `O(samples log samples × features)`. This is what makes training the
//! forest/boosting ensembles on the ~20 k-row EASE profiling datasets
//! interactive.
//!
//! Supports the knobs the ensembles need: feature subsampling per split
//! (random forest), L2 leaf shrinkage and minimum split gain
//! (XGBoost-style boosting), and MSE-purity feature importances
//! (paper Sec. V-E).

use crate::dataset::Matrix;
use crate::persist::{wrong_variant, ModelParams, PersistError, TreeNode};
use crate::Regressor;
use ease_rng::SplitMix64;

/// Minimal local reimport to avoid a circular dev-dependency: the graph
/// crate's SplitMix64 is tiny, so the tree carries its own copy.
mod ease_rng {
    #[derive(Debug, Clone)]
    pub struct SplitMix64 {
        state: u64,
    }

    impl SplitMix64 {
        pub fn new(seed: u64) -> Self {
            SplitMix64 { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = self.state;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        }

        pub fn next_below(&mut self, n: usize) -> usize {
            ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
        }
    }
}

pub const MAX_BINS: usize = 64;

/// Tree hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeParams {
    pub max_depth: usize,
    pub min_samples_split: usize,
    pub min_samples_leaf: usize,
    /// Number of features sampled per split; `None` = all features.
    pub max_features: Option<usize>,
    /// L2 shrinkage on leaf values: `leaf = Σy / (n + leaf_l2)`.
    pub leaf_l2: f64,
    /// Minimum SSE reduction to accept a split (XGB γ).
    pub min_gain: f64,
    pub seed: u64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 12,
            min_samples_split: 4,
            min_samples_leaf: 2,
            max_features: None,
            leaf_l2: 0.0,
            min_gain: 1e-12,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf { value: f64 },
    Split { feature: u32, threshold: f64, left: u32, right: u32 },
}

/// A fitted regression tree.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    pub params: TreeParams,
    nodes: Vec<Node>,
    importances: Vec<f64>,
}

/// Quantile binning of a feature matrix, shared across ensemble members.
pub struct Binner {
    /// Per feature: sorted upper-edge values of each bin (≤ MAX_BINS−1 cuts).
    cuts: Vec<Vec<f64>>,
}

impl Binner {
    pub fn fit(x: &Matrix) -> Self {
        let mut cuts = Vec::with_capacity(x.cols);
        let mut column = Vec::with_capacity(x.rows);
        for j in 0..x.cols {
            column.clear();
            column.extend((0..x.rows).map(|i| x.get(i, j)));
            column.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite features"));
            column.dedup();
            let mut feature_cuts = Vec::new();
            if column.len() > 1 {
                let step = (column.len() as f64 / MAX_BINS as f64).max(1.0);
                let mut pos = step;
                while (pos as usize) < column.len() && feature_cuts.len() < MAX_BINS - 1 {
                    let lo = column[pos as usize - 1];
                    let hi = column[pos as usize];
                    feature_cuts.push(0.5 * (lo + hi));
                    pos += step;
                }
            }
            cuts.push(feature_cuts);
        }
        Binner { cuts }
    }

    /// Bin index of a value (0..=cuts.len()).
    #[inline]
    pub fn bin(&self, feature: usize, value: f64) -> u8 {
        self.cuts[feature].partition_point(|&c| c < value) as u8
    }

    /// The split threshold represented by "bin ≤ b".
    #[inline]
    fn threshold(&self, feature: usize, bin: usize) -> f64 {
        self.cuts[feature][bin]
    }

    pub fn num_features(&self) -> usize {
        self.cuts.len()
    }

    /// Bin the whole matrix (row-major `u8`s).
    pub fn transform(&self, x: &Matrix) -> Vec<u8> {
        let mut out = vec![0u8; x.rows * x.cols];
        for i in 0..x.rows {
            let row = x.row(i);
            for (j, &v) in row.iter().enumerate() {
                out[i * x.cols + j] = self.bin(j, v);
            }
        }
        out
    }
}

struct BuildCtx<'a> {
    binned: &'a [u8],
    y: &'a [f64],
    cols: usize,
    binner: &'a Binner,
    rng: SplitMix64,
    feature_pool: Vec<u32>,
}

impl RegressionTree {
    pub fn new(params: TreeParams) -> Self {
        RegressionTree { params, nodes: Vec::new(), importances: Vec::new() }
    }

    /// Fit against pre-binned data (ensemble path; `indices` may contain
    /// duplicates for bootstrap sampling).
    pub fn fit_binned(&mut self, binned: &[u8], binner: &Binner, y: &[f64], indices: &mut [u32]) {
        let cols = binner.num_features();
        self.nodes.clear();
        self.importances = vec![0.0; cols];
        let mut ctx = BuildCtx {
            binned,
            y,
            cols,
            binner,
            rng: SplitMix64::new(self.params.seed ^ 0x7EE5),
            feature_pool: (0..cols as u32).collect(),
        };
        if indices.is_empty() {
            self.nodes.push(Node::Leaf { value: 0.0 });
            return;
        }
        self.build(&mut ctx, indices, 0);
    }

    fn build(&mut self, ctx: &mut BuildCtx, indices: &mut [u32], depth: usize) -> u32 {
        let n = indices.len();
        let (sum, sq) = indices.iter().fold((0.0, 0.0), |(s, q), &i| {
            let v = ctx.y[i as usize];
            (s + v, q + v * v)
        });
        let node_id = self.nodes.len() as u32;
        let leaf_value = sum / (n as f64 + self.params.leaf_l2);
        let parent_sse = sq - sum * sum / n as f64;
        if depth >= self.params.max_depth
            || n < self.params.min_samples_split
            || parent_sse <= 1e-12
        {
            self.nodes.push(Node::Leaf { value: leaf_value });
            return node_id;
        }
        // sample candidate features without replacement (partial shuffle)
        let n_candidates = self.params.max_features.unwrap_or(ctx.cols).clamp(1, ctx.cols);
        for i in 0..n_candidates {
            let j = i + ctx.rng.next_below(ctx.cols - i);
            ctx.feature_pool.swap(i, j);
        }
        let mut best: Option<(usize, usize, f64)> = None; // (feature, bin, gain)
        let mut bin_count = [0u32; MAX_BINS];
        let mut bin_sum = [0.0f64; MAX_BINS];
        let mut bin_sq = [0.0f64; MAX_BINS];
        for &feature in &ctx.feature_pool[..n_candidates] {
            let f = feature as usize;
            let n_cuts = ctx.binner.cuts[f].len();
            if n_cuts == 0 {
                continue;
            }
            let n_bins = n_cuts + 1;
            bin_count[..n_bins].fill(0);
            bin_sum[..n_bins].fill(0.0);
            bin_sq[..n_bins].fill(0.0);
            for &i in indices.iter() {
                let b = ctx.binned[i as usize * ctx.cols + f] as usize;
                let v = ctx.y[i as usize];
                bin_count[b] += 1;
                bin_sum[b] += v;
                bin_sq[b] += v * v;
            }
            let (mut lc, mut ls, mut lq) = (0u32, 0.0f64, 0.0f64);
            for b in 0..n_cuts {
                lc += bin_count[b];
                ls += bin_sum[b];
                lq += bin_sq[b];
                let rc = n as u32 - lc;
                if (lc as usize) < self.params.min_samples_leaf
                    || (rc as usize) < self.params.min_samples_leaf
                {
                    continue;
                }
                if lc == 0 || rc == 0 {
                    continue;
                }
                let rs = sum - ls;
                let rq = sq - lq;
                let left_sse = lq - ls * ls / f64::from(lc);
                let right_sse = rq - rs * rs / f64::from(rc);
                let gain = parent_sse - left_sse - right_sse;
                if gain > best.map_or(self.params.min_gain, |(_, _, g)| g) {
                    best = Some((f, b, gain));
                }
            }
        }
        let Some((feature, bin, gain)) = best else {
            self.nodes.push(Node::Leaf { value: leaf_value });
            return node_id;
        };
        self.importances[feature] += gain;
        // in-place partition: left = bin ≤ split bin
        let mut lo = 0usize;
        let mut hi = indices.len();
        while lo < hi {
            if ctx.binned[indices[lo] as usize * ctx.cols + feature] as usize <= bin {
                lo += 1;
            } else {
                hi -= 1;
                indices.swap(lo, hi);
            }
        }
        let threshold = ctx.binner.threshold(feature, bin);
        self.nodes.push(Node::Split { feature: feature as u32, threshold, left: 0, right: 0 });
        let (left_slice, right_slice) = indices.split_at_mut(lo);
        let left = self.build(ctx, left_slice, depth + 1);
        let right = self.build(ctx, right_slice, depth + 1);
        if let Node::Split { left: l, right: r, .. } = &mut self.nodes[node_id as usize] {
            *l = left;
            *r = right;
        }
        node_id
    }

    /// Raw (unnormalized) SSE-reduction importances.
    pub fn raw_importances(&self) -> &[f64] {
        &self.importances
    }

    /// Rebuild from [`ModelParams::Tree`]. Split links were already
    /// validated against the node count by the decoder.
    pub fn from_params(params: ModelParams) -> Result<Self, PersistError> {
        match params {
            ModelParams::Tree { params, nodes, importances } => {
                let nodes = nodes
                    .into_iter()
                    .map(|n| match n {
                        TreeNode::Leaf { value } => Node::Leaf { value },
                        TreeNode::Split { feature, threshold, left, right } => {
                            Node::Split { feature, threshold, left, right }
                        }
                    })
                    .collect();
                Ok(RegressionTree { params, nodes, importances })
            }
            other => Err(wrong_variant("tree", &other)),
        }
    }
}

impl Regressor for RegressionTree {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        assert_eq!(x.rows, y.len());
        assert!(x.rows > 0, "empty training set");
        let binner = Binner::fit(x);
        let binned = binner.transform(x);
        let mut indices: Vec<u32> = (0..x.rows as u32).collect();
        self.fit_binned(&binned, &binner, y, &mut indices);
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split { feature, threshold, left, right } => {
                    node = if row[*feature as usize] <= *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    fn feature_importances(&self) -> Option<Vec<f64>> {
        let total: f64 = self.importances.iter().sum();
        if total <= 0.0 {
            return Some(vec![0.0; self.importances.len()]);
        }
        Some(self.importances.iter().map(|v| v / total).collect())
    }

    fn to_params(&self) -> ModelParams {
        ModelParams::Tree {
            params: self.params.clone(),
            nodes: self
                .nodes
                .iter()
                .map(|n| match *n {
                    Node::Leaf { value } => TreeNode::Leaf { value },
                    Node::Split { feature, threshold, left, right } => {
                        TreeNode::Split { feature, threshold, left, right }
                    }
                })
                .collect(),
            importances: self.importances.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Matrix, Vec<f64>) {
        // y = 1 if x < 5 else 9
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![f64::from(i)]).collect();
        let y: Vec<f64> = (0..20).map(|i| if i < 5 { 1.0 } else { 9.0 }).collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn learns_a_step_function() {
        let (x, y) = step_data();
        let mut t = RegressionTree::new(TreeParams::default());
        t.fit(&x, &y);
        assert!((t.predict_row(&[2.0]) - 1.0).abs() < 1e-9);
        assert!((t.predict_row(&[10.0]) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn depth_zero_returns_mean() {
        let (x, y) = step_data();
        let mut t = RegressionTree::new(TreeParams { max_depth: 0, ..Default::default() });
        t.fit(&x, &y);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        assert!((t.predict_row(&[3.0]) - mean).abs() < 1e-9);
    }

    #[test]
    fn importance_lands_on_informative_feature() {
        // feature 1 is pure noise, feature 0 carries the signal
        let rows: Vec<Vec<f64>> =
            (0..40).map(|i| vec![f64::from(i % 10), f64::from((i * 7919) % 13)]).collect();
        let y: Vec<f64> = rows.iter().map(|r| if r[0] < 5.0 { 0.0 } else { 10.0 }).collect();
        let x = Matrix::from_rows(&rows);
        let mut t = RegressionTree::new(TreeParams::default());
        t.fit(&x, &y);
        let imp = t.feature_importances().unwrap();
        assert!(imp[0] > 0.9, "importances {imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn leaf_l2_shrinks_leaves_toward_zero() {
        let (x, y) = step_data();
        let mut plain = RegressionTree::new(TreeParams::default());
        let mut shrunk = RegressionTree::new(TreeParams { leaf_l2: 20.0, ..Default::default() });
        plain.fit(&x, &y);
        shrunk.fit(&x, &y);
        assert!(shrunk.predict_row(&[10.0]).abs() < plain.predict_row(&[10.0]).abs());
    }

    #[test]
    fn min_gain_prunes_noise_splits() {
        let (x, y) = step_data();
        let mut t = RegressionTree::new(TreeParams { min_gain: 1e9, ..Default::default() });
        t.fit(&x, &y);
        // impossible gain bar -> a single leaf
        assert_eq!(t.nodes.len(), 1);
    }

    #[test]
    fn binner_handles_constant_and_binary_features() {
        let x = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 0.0]]);
        let b = Binner::fit(&x);
        // constant feature: no cuts
        assert_eq!(b.cuts[0].len(), 0);
        // binary feature: one cut between 0 and 1
        assert_eq!(b.cuts[1].len(), 1);
        assert_eq!(b.bin(1, 0.0), 0);
        assert_eq!(b.bin(1, 1.0), 1);
    }

    #[test]
    fn handles_duplicate_bootstrap_indices() {
        let (x, y) = step_data();
        let binner = Binner::fit(&x);
        let binned = binner.transform(&x);
        let mut idx: Vec<u32> = vec![0, 0, 1, 19, 19, 19, 10];
        let mut t = RegressionTree::new(TreeParams::default());
        t.fit_binned(&binned, &binner, &y, &mut idx);
        assert!(t.predict_row(&[19.0]) > 5.0);
    }
}
