//! From-scratch regression model zoo for the EASE reproduction.
//!
//! The paper compares six supervised learning families (Sec. IV-C):
//! Polynomial Regression, Support Vector Regression, Random Forest
//! Regression, Extreme Gradient Boosting, K-Nearest Neighbors and a
//! fully-connected MLP. No ML crates exist in the allowed dependency set,
//! so this crate implements all of them, plus the supporting machinery the
//! paper uses: z-score standardization, one-hot encoding, K-fold
//! cross-validation, grid search, and the RMSE/MAPE evaluation metrics.
//!
//! All models implement [`Regressor`]; [`zoo::default_grid`] exposes the
//! hyper-parameter grid used for model selection.

pub mod cv;
pub mod dataset;
pub mod forest;
pub mod gbt;
pub mod knn;
pub mod linear;
pub mod metrics;
pub mod mlp;
pub mod persist;
pub mod poly;
pub mod preprocess;
pub mod svr;
pub mod tree;
pub mod zoo;

pub use dataset::{Dataset, Matrix};
pub use metrics::{mae, mape, r2, rmse};
pub use persist::{ModelParams, PersistError, Reader, Writer};
pub use preprocess::{OneHotEncoder, ScaledModel, StandardScaler};
pub use zoo::{ModelConfig, ModelKind};

/// A regression model: fit on a feature matrix + targets, predict rows.
///
/// `Send + Sync` so trained models can serve concurrent queries behind a
/// shared reference (the `EaseService::recommend_batch` fan-out).
pub trait Regressor: Send + Sync {
    fn fit(&mut self, x: &Matrix, y: &[f64]);

    fn predict_row(&self, row: &[f64]) -> f64;

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows).map(|i| self.predict_row(x.row(i))).collect()
    }

    /// Per-feature importance scores summing to 1, if the model supports
    /// them (tree ensembles — used for the paper's Table VII).
    fn feature_importances(&self) -> Option<Vec<f64>> {
        None
    }

    /// Snapshot the *fitted* state as plain data. Together with
    /// [`persist::build_regressor`] this lets a trained model round-trip
    /// through the on-disk codec bit-exactly.
    fn to_params(&self) -> ModelParams;
}
