//! Random Forest regression (Breiman 2001): bootstrap-sampled trees with
//! per-split feature subsampling, averaged predictions, and MSE-purity
//! feature importances.
//!
//! The paper selects RFR for the balancing metrics and leans on its
//! interpretability for the feature-importance analysis of Table VII.

use crate::dataset::Matrix;
use crate::persist::{wrong_variant, ModelParams, PersistError};
use crate::tree::{Binner, RegressionTree, TreeParams};
use crate::Regressor;

#[derive(Debug, Clone, PartialEq)]
pub struct ForestParams {
    pub n_trees: usize,
    pub max_depth: usize,
    pub min_samples_leaf: usize,
    /// Fraction of features considered per split (sqrt-like default 0.6).
    pub feature_fraction: f64,
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 60,
            max_depth: 14,
            min_samples_leaf: 2,
            feature_fraction: 0.6,
            seed: 0,
        }
    }
}

pub struct RandomForest {
    pub params: ForestParams,
    trees: Vec<RegressionTree>,
    n_features: usize,
}

impl RandomForest {
    pub fn new(params: ForestParams) -> Self {
        RandomForest { params, trees: Vec::new(), n_features: 0 }
    }

    /// Rebuild from [`ModelParams::Forest`].
    pub fn from_params(params: ModelParams) -> Result<Self, PersistError> {
        match params {
            ModelParams::Forest { params, trees, n_features } => Ok(RandomForest {
                params,
                trees: trees
                    .into_iter()
                    .map(RegressionTree::from_params)
                    .collect::<Result<_, _>>()?,
                n_features,
            }),
            other => Err(wrong_variant("forest", &other)),
        }
    }
}

impl Regressor for RandomForest {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        assert_eq!(x.rows, y.len());
        assert!(x.rows > 0, "empty training set");
        self.n_features = x.cols;
        let binner = Binner::fit(x);
        let binned = binner.transform(x);
        let max_features =
            ((x.cols as f64 * self.params.feature_fraction).ceil() as usize).clamp(1, x.cols);
        self.trees.clear();
        let mut rng = ease_graph_free_rng(self.params.seed);
        let mut indices = vec![0u32; x.rows];
        for t in 0..self.params.n_trees {
            // bootstrap sample with replacement
            for slot in indices.iter_mut() {
                *slot = (rng_next(&mut rng) % x.rows as u64) as u32;
            }
            let mut tree = RegressionTree::new(TreeParams {
                max_depth: self.params.max_depth,
                min_samples_split: self.params.min_samples_leaf * 2,
                min_samples_leaf: self.params.min_samples_leaf,
                max_features: Some(max_features),
                leaf_l2: 0.0,
                min_gain: 1e-12,
                seed: self.params.seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            });
            tree.fit_binned(&binned, &binner, y, &mut indices);
            self.trees.push(tree);
        }
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        assert!(!self.trees.is_empty(), "fit before predict");
        self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>() / self.trees.len() as f64
    }

    fn feature_importances(&self) -> Option<Vec<f64>> {
        let mut total = vec![0.0; self.n_features];
        for t in &self.trees {
            for (acc, v) in total.iter_mut().zip(t.raw_importances()) {
                *acc += v;
            }
        }
        let sum: f64 = total.iter().sum();
        if sum > 0.0 {
            for v in &mut total {
                *v /= sum;
            }
        }
        Some(total)
    }

    fn to_params(&self) -> ModelParams {
        ModelParams::Forest {
            params: self.params.clone(),
            trees: self.trees.iter().map(Regressor::to_params).collect(),
            n_features: self.n_features,
        }
    }
}

// tiny local splitmix to avoid pulling the graph crate into ml
fn ease_graph_free_rng(seed: u64) -> u64 {
    seed ^ 0xF0E5_7A11
}

fn rng_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut x = *state;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2;

    fn friedman_like(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        // nonlinear target over 4 features
        let mut state = seed;
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let f: Vec<f64> =
                (0..4).map(|_| (rng_next(&mut state) >> 11) as f64 / (1u64 << 53) as f64).collect();
            y.push(10.0 * (f[0] * f[1]).sin() + 5.0 * f[2] + 2.0 * f[3] * f[3]);
            rows.push(f);
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn fits_nonlinear_function_well() {
        let (x, y) = friedman_like(600, 1);
        let (xt, yt) = friedman_like(200, 2);
        let mut f = RandomForest::new(ForestParams::default());
        f.fit(&x, &y);
        let pred = f.predict(&xt);
        let score = r2(&yt, &pred);
        assert!(score > 0.8, "r2={score}");
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = friedman_like(100, 3);
        let mut a = RandomForest::new(ForestParams { n_trees: 10, ..Default::default() });
        let mut b = RandomForest::new(ForestParams { n_trees: 10, ..Default::default() });
        a.fit(&x, &y);
        b.fit(&x, &y);
        for i in 0..x.rows {
            assert_eq!(a.predict_row(x.row(i)), b.predict_row(x.row(i)));
        }
    }

    #[test]
    fn importances_normalized_and_informative() {
        // feature 0 determines y; features 1,2 are noise
        let mut state = 5u64;
        let rows: Vec<Vec<f64>> = (0..300)
            .map(|i| {
                vec![
                    f64::from(i % 30),
                    (rng_next(&mut state) % 100) as f64,
                    (rng_next(&mut state) % 100) as f64,
                ]
            })
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * 2.0).collect();
        let x = Matrix::from_rows(&rows);
        let mut f = RandomForest::new(ForestParams { n_trees: 20, ..Default::default() });
        f.fit(&x, &y);
        let imp = f.feature_importances().unwrap();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > 0.8, "importances {imp:?}");
    }

    #[test]
    fn more_trees_do_not_hurt() {
        let (x, y) = friedman_like(300, 7);
        let (xt, yt) = friedman_like(150, 8);
        let mut small = RandomForest::new(ForestParams { n_trees: 3, ..Default::default() });
        let mut large = RandomForest::new(ForestParams { n_trees: 60, ..Default::default() });
        small.fit(&x, &y);
        large.fit(&x, &y);
        let r_small = r2(&yt, &small.predict(&xt));
        let r_large = r2(&yt, &large.predict(&xt));
        assert!(r_large >= r_small - 0.05, "small {r_small} large {r_large}");
    }
}
