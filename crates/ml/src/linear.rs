//! Ridge-regularized linear least squares via the normal equations and a
//! Cholesky solve. The building block for polynomial regression.

use crate::dataset::Matrix;
use crate::persist::{wrong_variant, ModelParams, PersistError};
use crate::Regressor;

/// Ridge regression `min ‖Xw − y‖² + α‖w‖²` (intercept un-penalized,
/// handled by centering).
#[derive(Debug, Clone)]
pub struct Ridge {
    pub alpha: f64,
    weights: Vec<f64>,
    intercept: f64,
}

impl Ridge {
    pub fn new(alpha: f64) -> Self {
        assert!(alpha >= 0.0);
        Ridge { alpha, weights: Vec::new(), intercept: 0.0 }
    }

    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Rebuild from [`ModelParams::Ridge`].
    pub fn from_params(params: ModelParams) -> Result<Self, PersistError> {
        match params {
            ModelParams::Ridge { alpha, weights, intercept } => {
                Ok(Ridge { alpha, weights, intercept })
            }
            other => Err(wrong_variant("ridge", &other)),
        }
    }
}

/// Cholesky factorization of a symmetric positive-definite matrix stored
/// row-major; returns the lower factor L with A = L·Lᵀ, or `None` if the
/// matrix is not positive definite.
fn cholesky(a: &[f64], n: usize) -> Option<Vec<f64>> {
    let mut l = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    Some(l)
}

/// Solve A·x = b given the Cholesky factor L (forward + back substitution).
fn cholesky_solve(l: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * y[k];
        }
        y[i] = sum / l[i * n + i];
    }
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in (i + 1)..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    x
}

impl Regressor for Ridge {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        assert_eq!(x.rows, y.len());
        assert!(x.rows > 0, "empty training set");
        let d = x.cols;
        // center features and target so the intercept needs no penalty
        let mut x_mean = vec![0.0; d];
        for i in 0..x.rows {
            for (j, v) in x.row(i).iter().enumerate() {
                x_mean[j] += v;
            }
        }
        for m in &mut x_mean {
            *m /= x.rows as f64;
        }
        let y_mean = y.iter().sum::<f64>() / y.len() as f64;
        // gram = XcᵀXc + αI ; rhs = Xcᵀ yc
        let mut gram = vec![0.0; d * d];
        let mut rhs = vec![0.0; d];
        for i in 0..x.rows {
            let row = x.row(i);
            let yc = y[i] - y_mean;
            for a in 0..d {
                let va = row[a] - x_mean[a];
                rhs[a] += va * yc;
                for b in a..d {
                    gram[a * d + b] += va * (row[b] - x_mean[b]);
                }
            }
        }
        for a in 0..d {
            for b in 0..a {
                gram[a * d + b] = gram[b * d + a];
            }
            gram[a * d + a] += self.alpha.max(1e-10);
        }
        // escalate regularization until the Gram matrix factorizes
        let mut boost = 1.0;
        let l = loop {
            if let Some(l) = cholesky(&gram, d) {
                break l;
            }
            for a in 0..d {
                gram[a * d + a] += boost;
            }
            boost *= 10.0;
            assert!(boost < 1e12, "Gram matrix hopelessly singular");
        };
        self.weights = cholesky_solve(&l, &rhs, d);
        self.intercept = y_mean - self.weights.iter().zip(&x_mean).map(|(w, m)| w * m).sum::<f64>();
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        self.intercept + self.weights.iter().zip(row).map(|(w, v)| w * v).sum::<f64>()
    }

    fn to_params(&self) -> ModelParams {
        ModelParams::Ridge {
            alpha: self.alpha,
            weights: self.weights.clone(),
            intercept: self.intercept,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_function() {
        // y = 2a - 3b + 5
        let x = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![2.0, 1.0],
            vec![3.0, -1.0],
            vec![-1.0, 2.0],
        ]);
        let y: Vec<f64> = (0..5).map(|i| 2.0 * x.get(i, 0) - 3.0 * x.get(i, 1) + 5.0).collect();
        let mut m = Ridge::new(1e-8);
        m.fit(&x, &y);
        assert!((m.weights()[0] - 2.0).abs() < 1e-5);
        assert!((m.weights()[1] + 3.0).abs() < 1e-5);
        assert!((m.predict_row(&[10.0, 10.0]) - (20.0 - 30.0 + 5.0)).abs() < 1e-4);
    }

    #[test]
    fn heavy_regularization_shrinks_weights() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let y = vec![2.0, 4.0, 6.0];
        let mut loose = Ridge::new(1e-8);
        let mut tight = Ridge::new(1e6);
        loose.fit(&x, &y);
        tight.fit(&x, &y);
        assert!(tight.weights()[0].abs() < 0.1 * loose.weights()[0].abs());
    }

    #[test]
    fn collinear_features_still_solvable() {
        // second column is an exact copy of the first
        let x = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        let y = vec![1.0, 2.0, 3.0];
        let mut m = Ridge::new(1e-6);
        m.fit(&x, &y);
        let p = m.predict_row(&[4.0, 4.0]);
        assert!((p - 4.0).abs() < 1e-3, "p={p}");
    }

    #[test]
    fn cholesky_identity() {
        let a = vec![4.0, 2.0, 2.0, 3.0];
        let l = cholesky(&a, 2).unwrap();
        let x = cholesky_solve(&l, &[8.0, 7.0], 2);
        // solve [[4,2],[2,3]] x = [8,7] -> x = [1.25, 1.5]
        assert!((x[0] - 1.25).abs() < 1e-12);
        assert!((x[1] - 1.5).abs() < 1e-12);
    }
}
