//! K-nearest-neighbors regression — the paper's simple baseline.

use crate::dataset::Matrix;
use crate::persist::{wrong_variant, ModelParams, PersistError};
use crate::Regressor;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Neighbor weighting scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnnWeights {
    Uniform,
    /// Inverse-distance weighting.
    Distance,
}

#[derive(Debug, Clone)]
pub struct KnnRegressor {
    pub k: usize,
    pub weights: KnnWeights,
    x: Matrix,
    y: Vec<f64>,
}

impl KnnRegressor {
    pub fn new(k: usize, weights: KnnWeights) -> Self {
        assert!(k >= 1);
        KnnRegressor { k, weights, x: Matrix::with_cols(0), y: Vec::new() }
    }

    /// Rebuild from [`ModelParams::Knn`].
    pub fn from_params(params: ModelParams) -> Result<Self, PersistError> {
        match params {
            ModelParams::Knn { k, distance_weighted, x, y } => {
                if k == 0 {
                    return Err(PersistError::Corrupt("knn k must be >= 1".into()));
                }
                if x.rows != y.len() {
                    return Err(PersistError::Corrupt(format!(
                        "knn: {} training rows vs {} targets",
                        x.rows,
                        y.len()
                    )));
                }
                let weights =
                    if distance_weighted { KnnWeights::Distance } else { KnnWeights::Uniform };
                Ok(KnnRegressor { k, weights, x, y })
            }
            other => Err(wrong_variant("knn", &other)),
        }
    }
}

/// Max-heap entry ordered by distance (so the worst neighbor pops first).
struct Candidate {
    dist2: f64,
    index: usize,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.dist2 == other.dist2
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist2.partial_cmp(&other.dist2).unwrap_or(Ordering::Equal)
    }
}

impl Regressor for KnnRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        assert_eq!(x.rows, y.len());
        assert!(x.rows > 0, "empty training set");
        self.x = x.clone();
        self.y = y.to_vec();
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        assert!(!self.y.is_empty(), "fit before predict");
        let k = self.k.min(self.y.len());
        let mut heap: BinaryHeap<Candidate> = BinaryHeap::with_capacity(k + 1);
        for i in 0..self.x.rows {
            let dist2: f64 = self.x.row(i).iter().zip(row).map(|(a, b)| (a - b) * (a - b)).sum();
            if heap.len() < k {
                heap.push(Candidate { dist2, index: i });
            } else if heap.peek().is_some_and(|w| dist2 < w.dist2) {
                heap.pop();
                heap.push(Candidate { dist2, index: i });
            }
        }
        match self.weights {
            KnnWeights::Uniform => {
                heap.iter().map(|c| self.y[c.index]).sum::<f64>() / heap.len() as f64
            }
            KnnWeights::Distance => {
                let mut num = 0.0;
                let mut den = 0.0;
                for c in heap.iter() {
                    let w = 1.0 / (c.dist2.sqrt() + 1e-9);
                    num += w * self.y[c.index];
                    den += w;
                }
                num / den
            }
        }
    }

    fn to_params(&self) -> ModelParams {
        ModelParams::Knn {
            k: self.k,
            distance_weighted: self.weights == KnnWeights::Distance,
            x: self.x.clone(),
            y: self.y.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_nn_memorizes() {
        let x = Matrix::from_rows(&[vec![0.0], vec![10.0], vec![20.0]]);
        let y = vec![1.0, 2.0, 3.0];
        let mut m = KnnRegressor::new(1, KnnWeights::Uniform);
        m.fit(&x, &y);
        assert_eq!(m.predict_row(&[9.0]), 2.0);
        assert_eq!(m.predict_row(&[0.4]), 1.0);
    }

    #[test]
    fn uniform_averages_k_neighbors() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![100.0]]);
        let y = vec![2.0, 4.0, 1000.0];
        let mut m = KnnRegressor::new(2, KnnWeights::Uniform);
        m.fit(&x, &y);
        assert_eq!(m.predict_row(&[0.5]), 3.0);
    }

    #[test]
    fn distance_weighting_prefers_closer_points() {
        let x = Matrix::from_rows(&[vec![0.0], vec![10.0]]);
        let y = vec![0.0, 10.0];
        let mut m = KnnRegressor::new(2, KnnWeights::Distance);
        m.fit(&x, &y);
        let near_zero = m.predict_row(&[1.0]);
        assert!(near_zero < 5.0, "prediction {near_zero}");
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let x = Matrix::from_rows(&[vec![0.0], vec![2.0]]);
        let y = vec![1.0, 3.0];
        let mut m = KnnRegressor::new(10, KnnWeights::Uniform);
        m.fit(&x, &y);
        assert_eq!(m.predict_row(&[1.0]), 2.0);
    }
}
