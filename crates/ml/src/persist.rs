//! Versioned, hand-rolled binary model codec.
//!
//! EASE's value proposition is *train once, query cheaply*: a trained
//! selector amortizes its profiling cost over many future queries, which
//! requires the fitted models to survive the training process. No serde is
//! available in the offline dependency set, so this module implements a
//! small self-describing binary format:
//!
//! * [`Writer`]/[`Reader`] — little-endian primitive codec over a byte
//!   buffer, with every read bounds-checked into a typed [`PersistError`].
//! * [`ModelParams`] — the fitted state of every regressor in the zoo as
//!   plain data. Models convert via [`crate::Regressor::to_params`] and
//!   their inherent `from_params` constructors; [`build_regressor`] is the
//!   tag-dispatched factory for trait objects.
//! * A `MAGIC` + format-version header ([`write_header`]/[`read_header`])
//!   so future layouts can evolve without silently misreading old files.
//!
//! The codec stores `f64`s as raw IEEE-754 bits, so a saved model predicts
//! **bit-identically** after reload — locked by the round-trip tests in
//! `tests/persistence_roundtrip.rs`.

use crate::dataset::Matrix;
use crate::forest::{ForestParams, RandomForest};
use crate::gbt::{GbtParams, GradientBoosting};
use crate::knn::KnnRegressor;
use crate::mlp::{MlpParams, MlpRegressor};
use crate::poly::PolynomialRegression;
use crate::preprocess::{ScaledModel, StandardScaler};
use crate::svr::{SvrParams, SvrRegressor};
use crate::tree::{RegressionTree, TreeParams};
use crate::zoo::ModelConfig;
use crate::Regressor;
use std::fmt;

/// File magic for every EASE model artifact.
pub const MAGIC: [u8; 8] = *b"EASEMODL";

/// Current format version. Readers reject anything newer.
///
/// History: v1 = models + provenance; v2 adds the fingerprint-keyed
/// graph-property cache trailer to service artifacts (warm restarts).
pub const FORMAT_VERSION: u32 = 2;

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Typed decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The buffer ended before a field could be read.
    Truncated { offset: usize, needed: usize },
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file declares a format version newer than this build understands.
    UnsupportedVersion(u32),
    /// Structurally invalid content (unknown tag, size mismatch, ...).
    Corrupt(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Truncated { offset, needed } => {
                write!(f, "truncated model data: needed {needed} bytes at offset {offset}")
            }
            PersistError::BadMagic => write!(f, "not an EASE model file (bad magic)"),
            PersistError::UnsupportedVersion(v) => {
                write!(f, "model format version {v} is newer than supported ({FORMAT_VERSION})")
            }
            PersistError::Corrupt(msg) => write!(f, "corrupt model data: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

// ---------------------------------------------------------------------
// Writer / Reader
// ---------------------------------------------------------------------

/// Append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Raw IEEE-754 bits — NaNs and signed zeros round-trip exactly.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub fn put_opt_usize(&mut self, v: Option<usize>) {
        match v {
            None => self.put_u8(0),
            Some(x) => {
                self.put_u8(1);
                self.put_usize(x);
            }
        }
    }

    pub fn put_f64s(&mut self, vs: &[f64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_f64(v);
        }
    }

    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.put_bytes(s.as_bytes());
    }
}

/// Bounds-checked little-endian byte source.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub fn offset(&self) -> usize {
        self.pos
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated { offset: self.pos, needed: n });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn take_u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take_bytes(1)?[0])
    }

    pub fn take_bool(&mut self) -> Result<bool, PersistError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(PersistError::Corrupt(format!("invalid bool byte {other}"))),
        }
    }

    pub fn take_u32(&mut self) -> Result<u32, PersistError> {
        let b = self.take_bytes(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    pub fn take_u64(&mut self) -> Result<u64, PersistError> {
        let b = self.take_bytes(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    pub fn take_usize(&mut self) -> Result<usize, PersistError> {
        let v = self.take_u64()?;
        usize::try_from(v).map_err(|_| PersistError::Corrupt(format!("size {v} overflows usize")))
    }

    /// A length that will immediately drive an allocation: bounded by what
    /// the remaining buffer could possibly hold, so a corrupted length
    /// cannot trigger a multi-gigabyte `Vec` reservation.
    fn take_len(&mut self, elem_bytes: usize) -> Result<usize, PersistError> {
        let n = self.take_usize()?;
        if n.saturating_mul(elem_bytes) > self.remaining() {
            return Err(PersistError::Corrupt(format!(
                "declared length {n} exceeds remaining {} bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    pub fn take_f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    pub fn take_opt_usize(&mut self) -> Result<Option<usize>, PersistError> {
        match self.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.take_usize()?)),
            other => Err(PersistError::Corrupt(format!("invalid option byte {other}"))),
        }
    }

    pub fn take_f64s(&mut self) -> Result<Vec<f64>, PersistError> {
        let n = self.take_len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.take_f64()?);
        }
        Ok(out)
    }

    pub fn take_str(&mut self) -> Result<String, PersistError> {
        let n = self.take_len(1)?;
        let bytes = self.take_bytes(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PersistError::Corrupt("invalid utf-8 string".into()))
    }
}

/// Write the shared `MAGIC` + version header.
pub fn write_header(w: &mut Writer) {
    w.put_bytes(&MAGIC);
    w.put_u32(FORMAT_VERSION);
}

/// Validate the header; returns the file's format version.
pub fn read_header(r: &mut Reader) -> Result<u32, PersistError> {
    let magic = r.take_bytes(MAGIC.len()).map_err(|_| PersistError::BadMagic)?;
    if magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = r.take_u32()?;
    if version == 0 || version > FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    Ok(version)
}

// ---------------------------------------------------------------------
// ModelParams — fitted state as plain data
// ---------------------------------------------------------------------

/// One node of a serialized [`RegressionTree`].
#[derive(Debug, Clone, PartialEq)]
pub enum TreeNode {
    Leaf { value: f64 },
    Split { feature: u32, threshold: f64, left: u32, right: u32 },
}

/// One dense layer of a serialized [`MlpRegressor`] (weights + biases; the
/// Adam moments are training-only state and are not persisted).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerParams {
    pub n_in: usize,
    pub n_out: usize,
    pub w: Vec<f64>,
    pub b: Vec<f64>,
}

/// The fitted state of every regressor in the zoo, as plain data.
///
/// Produced by [`Regressor::to_params`], consumed by the per-model
/// `from_params` constructors (or [`build_regressor`] for trait objects),
/// and serialized by [`encode_model`]/[`decode_model`].
#[derive(Debug, Clone, PartialEq)]
pub enum ModelParams {
    Ridge { alpha: f64, weights: Vec<f64>, intercept: f64 },
    Poly { degree: usize, alpha: f64, inner: Box<ModelParams> },
    Tree { params: TreeParams, nodes: Vec<TreeNode>, importances: Vec<f64> },
    Forest { params: ForestParams, trees: Vec<ModelParams>, n_features: usize },
    Gbt { params: GbtParams, base: f64, trees: Vec<ModelParams>, n_features: usize },
    Knn { k: usize, distance_weighted: bool, x: Matrix, y: Vec<f64> },
    Mlp { params: MlpParams, y_mean: f64, y_std: f64, layers: Vec<LayerParams> },
    Svr { params: SvrParams, support: Matrix, beta: Vec<f64>, bias: f64 },
    Scaled { scaler: Option<StandardScaler>, inner: Box<ModelParams> },
}

impl ModelParams {
    /// Short tag name for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            ModelParams::Ridge { .. } => "ridge",
            ModelParams::Poly { .. } => "poly",
            ModelParams::Tree { .. } => "tree",
            ModelParams::Forest { .. } => "forest",
            ModelParams::Gbt { .. } => "gbt",
            ModelParams::Knn { .. } => "knn",
            ModelParams::Mlp { .. } => "mlp",
            ModelParams::Svr { .. } => "svr",
            ModelParams::Scaled { .. } => "scaled",
        }
    }
}

/// Error helper: `from_params` received the wrong variant.
pub fn wrong_variant(expected: &str, got: &ModelParams) -> PersistError {
    PersistError::Corrupt(format!("expected {expected} params, got {}", got.kind_name()))
}

/// Rebuild a boxed [`Regressor`] from its serialized parameters
/// (tag-dispatched factory over the whole zoo).
pub fn build_regressor(params: ModelParams) -> Result<Box<dyn Regressor>, PersistError> {
    Ok(match params {
        p @ ModelParams::Ridge { .. } => Box::new(crate::linear::Ridge::from_params(p)?),
        p @ ModelParams::Poly { .. } => Box::new(PolynomialRegression::from_params(p)?),
        p @ ModelParams::Tree { .. } => Box::new(RegressionTree::from_params(p)?),
        p @ ModelParams::Forest { .. } => Box::new(RandomForest::from_params(p)?),
        p @ ModelParams::Gbt { .. } => Box::new(GradientBoosting::from_params(p)?),
        p @ ModelParams::Knn { .. } => Box::new(KnnRegressor::from_params(p)?),
        p @ ModelParams::Mlp { .. } => Box::new(MlpRegressor::from_params(p)?),
        p @ ModelParams::Svr { .. } => Box::new(SvrRegressor::from_params(p)?),
        p @ ModelParams::Scaled { .. } => Box::new(ScaledModel::from_params(p)?),
    })
}

// ---------------------------------------------------------------------
// ModelParams codec
// ---------------------------------------------------------------------

const TAG_RIDGE: u8 = 1;
const TAG_POLY: u8 = 2;
const TAG_TREE: u8 = 3;
const TAG_FOREST: u8 = 4;
const TAG_GBT: u8 = 5;
const TAG_KNN: u8 = 6;
const TAG_MLP: u8 = 7;
const TAG_SVR: u8 = 8;
const TAG_SCALED: u8 = 9;

fn put_matrix(w: &mut Writer, m: &Matrix) {
    w.put_usize(m.rows);
    w.put_usize(m.cols);
    w.put_f64s(m.values());
}

fn take_matrix(r: &mut Reader) -> Result<Matrix, PersistError> {
    let rows = r.take_usize()?;
    let cols = r.take_usize()?;
    let data = r.take_f64s()?;
    if data.len() != rows * cols {
        return Err(PersistError::Corrupt(format!(
            "matrix {rows}x{cols} carries {} values",
            data.len()
        )));
    }
    Ok(Matrix::from_flat(rows, cols, data))
}

fn put_tree_params(w: &mut Writer, p: &TreeParams) {
    w.put_usize(p.max_depth);
    w.put_usize(p.min_samples_split);
    w.put_usize(p.min_samples_leaf);
    w.put_opt_usize(p.max_features);
    w.put_f64(p.leaf_l2);
    w.put_f64(p.min_gain);
    w.put_u64(p.seed);
}

fn take_tree_params(r: &mut Reader) -> Result<TreeParams, PersistError> {
    Ok(TreeParams {
        max_depth: r.take_usize()?,
        min_samples_split: r.take_usize()?,
        min_samples_leaf: r.take_usize()?,
        max_features: r.take_opt_usize()?,
        leaf_l2: r.take_f64()?,
        min_gain: r.take_f64()?,
        seed: r.take_u64()?,
    })
}

/// Serialize fitted model parameters (recursing into nested models).
pub fn encode_model(w: &mut Writer, params: &ModelParams) {
    match params {
        ModelParams::Ridge { alpha, weights, intercept } => {
            w.put_u8(TAG_RIDGE);
            w.put_f64(*alpha);
            w.put_f64s(weights);
            w.put_f64(*intercept);
        }
        ModelParams::Poly { degree, alpha, inner } => {
            w.put_u8(TAG_POLY);
            w.put_usize(*degree);
            w.put_f64(*alpha);
            encode_model(w, inner);
        }
        ModelParams::Tree { params, nodes, importances } => {
            w.put_u8(TAG_TREE);
            put_tree_params(w, params);
            w.put_usize(nodes.len());
            for n in nodes {
                match n {
                    TreeNode::Leaf { value } => {
                        w.put_u8(0);
                        w.put_f64(*value);
                    }
                    TreeNode::Split { feature, threshold, left, right } => {
                        w.put_u8(1);
                        w.put_u32(*feature);
                        w.put_f64(*threshold);
                        w.put_u32(*left);
                        w.put_u32(*right);
                    }
                }
            }
            w.put_f64s(importances);
        }
        ModelParams::Forest { params, trees, n_features } => {
            w.put_u8(TAG_FOREST);
            w.put_usize(params.n_trees);
            w.put_usize(params.max_depth);
            w.put_usize(params.min_samples_leaf);
            w.put_f64(params.feature_fraction);
            w.put_u64(params.seed);
            w.put_usize(*n_features);
            w.put_usize(trees.len());
            for t in trees {
                encode_model(w, t);
            }
        }
        ModelParams::Gbt { params, base, trees, n_features } => {
            w.put_u8(TAG_GBT);
            w.put_usize(params.n_estimators);
            w.put_f64(params.learning_rate);
            w.put_usize(params.max_depth);
            w.put_f64(params.lambda);
            w.put_f64(params.gamma);
            w.put_f64(params.subsample);
            w.put_usize(params.min_samples_leaf);
            w.put_u64(params.seed);
            w.put_f64(*base);
            w.put_usize(*n_features);
            w.put_usize(trees.len());
            for t in trees {
                encode_model(w, t);
            }
        }
        ModelParams::Knn { k, distance_weighted, x, y } => {
            w.put_u8(TAG_KNN);
            w.put_usize(*k);
            w.put_bool(*distance_weighted);
            put_matrix(w, x);
            w.put_f64s(y);
        }
        ModelParams::Mlp { params, y_mean, y_std, layers } => {
            w.put_u8(TAG_MLP);
            w.put_usize(params.hidden.len());
            for &h in &params.hidden {
                w.put_usize(h);
            }
            w.put_usize(params.epochs);
            w.put_usize(params.batch_size);
            w.put_f64(params.learning_rate);
            w.put_f64(params.l2);
            w.put_u64(params.seed);
            w.put_f64(*y_mean);
            w.put_f64(*y_std);
            w.put_usize(layers.len());
            for l in layers {
                w.put_usize(l.n_in);
                w.put_usize(l.n_out);
                w.put_f64s(&l.w);
                w.put_f64s(&l.b);
            }
        }
        ModelParams::Svr { params, support, beta, bias } => {
            w.put_u8(TAG_SVR);
            w.put_f64(params.c);
            w.put_f64(params.epsilon);
            w.put_f64(params.gamma);
            w.put_usize(params.max_passes);
            w.put_f64(params.tol);
            w.put_usize(params.max_train);
            put_matrix(w, support);
            w.put_f64s(beta);
            w.put_f64(*bias);
        }
        ModelParams::Scaled { scaler, inner } => {
            w.put_u8(TAG_SCALED);
            match scaler {
                None => w.put_bool(false),
                Some(s) => {
                    w.put_bool(true);
                    w.put_f64s(&s.means);
                    w.put_f64s(&s.stds);
                }
            }
            encode_model(w, inner);
        }
    }
}

/// Decode fitted model parameters (inverse of [`encode_model`]).
pub fn decode_model(r: &mut Reader) -> Result<ModelParams, PersistError> {
    let tag = r.take_u8()?;
    Ok(match tag {
        TAG_RIDGE => ModelParams::Ridge {
            alpha: r.take_f64()?,
            weights: r.take_f64s()?,
            intercept: r.take_f64()?,
        },
        TAG_POLY => ModelParams::Poly {
            degree: r.take_usize()?,
            alpha: r.take_f64()?,
            inner: Box::new(decode_model(r)?),
        },
        TAG_TREE => {
            let params = take_tree_params(r)?;
            let n_nodes = r.take_len(9)?;
            let mut nodes = Vec::with_capacity(n_nodes);
            for _ in 0..n_nodes {
                nodes.push(match r.take_u8()? {
                    0 => TreeNode::Leaf { value: r.take_f64()? },
                    1 => TreeNode::Split {
                        feature: r.take_u32()?,
                        threshold: r.take_f64()?,
                        left: r.take_u32()?,
                        right: r.take_u32()?,
                    },
                    other => {
                        return Err(PersistError::Corrupt(format!("unknown tree node tag {other}")))
                    }
                });
            }
            for (i, n) in nodes.iter().enumerate() {
                if let TreeNode::Split { left, right, .. } = n {
                    if *left as usize >= nodes.len() || *right as usize >= nodes.len() {
                        return Err(PersistError::Corrupt(format!(
                            "tree node {i} links outside the {} stored nodes",
                            nodes.len()
                        )));
                    }
                }
            }
            ModelParams::Tree { params, nodes, importances: r.take_f64s()? }
        }
        TAG_FOREST => {
            let params = ForestParams {
                n_trees: r.take_usize()?,
                max_depth: r.take_usize()?,
                min_samples_leaf: r.take_usize()?,
                feature_fraction: r.take_f64()?,
                seed: r.take_u64()?,
            };
            let n_features = r.take_usize()?;
            let n_trees = r.take_len(1)?;
            let mut trees = Vec::with_capacity(n_trees);
            for _ in 0..n_trees {
                trees.push(decode_model(r)?);
            }
            ModelParams::Forest { params, trees, n_features }
        }
        TAG_GBT => {
            let params = GbtParams {
                n_estimators: r.take_usize()?,
                learning_rate: r.take_f64()?,
                max_depth: r.take_usize()?,
                lambda: r.take_f64()?,
                gamma: r.take_f64()?,
                subsample: r.take_f64()?,
                min_samples_leaf: r.take_usize()?,
                seed: r.take_u64()?,
            };
            let base = r.take_f64()?;
            let n_features = r.take_usize()?;
            let n_trees = r.take_len(1)?;
            let mut trees = Vec::with_capacity(n_trees);
            for _ in 0..n_trees {
                trees.push(decode_model(r)?);
            }
            ModelParams::Gbt { params, base, trees, n_features }
        }
        TAG_KNN => ModelParams::Knn {
            k: r.take_usize()?,
            distance_weighted: r.take_bool()?,
            x: take_matrix(r)?,
            y: r.take_f64s()?,
        },
        TAG_MLP => {
            let n_hidden = r.take_len(8)?;
            let mut hidden = Vec::with_capacity(n_hidden);
            for _ in 0..n_hidden {
                hidden.push(r.take_usize()?);
            }
            let params = MlpParams {
                hidden,
                epochs: r.take_usize()?,
                batch_size: r.take_usize()?,
                learning_rate: r.take_f64()?,
                l2: r.take_f64()?,
                seed: r.take_u64()?,
            };
            let y_mean = r.take_f64()?;
            let y_std = r.take_f64()?;
            let n_layers = r.take_len(1)?;
            let mut layers = Vec::with_capacity(n_layers);
            for _ in 0..n_layers {
                let n_in = r.take_usize()?;
                let n_out = r.take_usize()?;
                let w = r.take_f64s()?;
                let b = r.take_f64s()?;
                if w.len() != n_in * n_out || b.len() != n_out {
                    return Err(PersistError::Corrupt(format!(
                        "mlp layer {n_in}x{n_out} carries {} weights / {} biases",
                        w.len(),
                        b.len()
                    )));
                }
                layers.push(LayerParams { n_in, n_out, w, b });
            }
            ModelParams::Mlp { params, y_mean, y_std, layers }
        }
        TAG_SVR => {
            let params = SvrParams {
                c: r.take_f64()?,
                epsilon: r.take_f64()?,
                gamma: r.take_f64()?,
                max_passes: r.take_usize()?,
                tol: r.take_f64()?,
                max_train: r.take_usize()?,
            };
            let support = take_matrix(r)?;
            let beta = r.take_f64s()?;
            if beta.len() != support.rows {
                return Err(PersistError::Corrupt(format!(
                    "svr: {} duals for {} support vectors",
                    beta.len(),
                    support.rows
                )));
            }
            ModelParams::Svr { params, support, beta, bias: r.take_f64()? }
        }
        TAG_SCALED => {
            let scaler = if r.take_bool()? {
                let means = r.take_f64s()?;
                let stds = r.take_f64s()?;
                if means.len() != stds.len() {
                    return Err(PersistError::Corrupt(format!(
                        "scaler: {} means vs {} stds",
                        means.len(),
                        stds.len()
                    )));
                }
                Some(StandardScaler { means, stds })
            } else {
                None
            };
            ModelParams::Scaled { scaler, inner: Box::new(decode_model(r)?) }
        }
        other => return Err(PersistError::Corrupt(format!("unknown model tag {other}"))),
    })
}

// ---------------------------------------------------------------------
// ModelConfig codec (for persisted grid-search provenance)
// ---------------------------------------------------------------------

/// Serialize a hyper-parameter point (the provenance half of a persisted
/// predictor: which configuration won the grid search).
pub fn encode_config(w: &mut Writer, cfg: &ModelConfig) {
    match cfg {
        ModelConfig::Poly { degree, alpha } => {
            w.put_u8(1);
            w.put_usize(*degree);
            w.put_f64(*alpha);
        }
        ModelConfig::Svr { c, epsilon, gamma } => {
            w.put_u8(2);
            w.put_f64(*c);
            w.put_f64(*epsilon);
            w.put_f64(*gamma);
        }
        ModelConfig::Forest { n_trees, max_depth, feature_fraction } => {
            w.put_u8(3);
            w.put_usize(*n_trees);
            w.put_usize(*max_depth);
            w.put_f64(*feature_fraction);
        }
        ModelConfig::Xgb { n_estimators, learning_rate, max_depth, lambda } => {
            w.put_u8(4);
            w.put_usize(*n_estimators);
            w.put_f64(*learning_rate);
            w.put_usize(*max_depth);
            w.put_f64(*lambda);
        }
        ModelConfig::Knn { k, distance_weighted } => {
            w.put_u8(5);
            w.put_usize(*k);
            w.put_bool(*distance_weighted);
        }
        ModelConfig::Mlp { hidden, epochs, learning_rate } => {
            w.put_u8(6);
            w.put_usize(hidden.len());
            for &h in hidden {
                w.put_usize(h);
            }
            w.put_usize(*epochs);
            w.put_f64(*learning_rate);
        }
    }
}

/// Decode a hyper-parameter point (inverse of [`encode_config`]).
pub fn decode_config(r: &mut Reader) -> Result<ModelConfig, PersistError> {
    Ok(match r.take_u8()? {
        1 => ModelConfig::Poly { degree: r.take_usize()?, alpha: r.take_f64()? },
        2 => ModelConfig::Svr { c: r.take_f64()?, epsilon: r.take_f64()?, gamma: r.take_f64()? },
        3 => ModelConfig::Forest {
            n_trees: r.take_usize()?,
            max_depth: r.take_usize()?,
            feature_fraction: r.take_f64()?,
        },
        4 => ModelConfig::Xgb {
            n_estimators: r.take_usize()?,
            learning_rate: r.take_f64()?,
            max_depth: r.take_usize()?,
            lambda: r.take_f64()?,
        },
        5 => ModelConfig::Knn { k: r.take_usize()?, distance_weighted: r.take_bool()? },
        6 => {
            let n = r.take_len(8)?;
            let mut hidden = Vec::with_capacity(n);
            for _ in 0..n {
                hidden.push(r.take_usize()?);
            }
            ModelConfig::Mlp { hidden, epochs: r.take_usize()?, learning_rate: r.take_f64()? }
        }
        other => return Err(PersistError::Corrupt(format!("unknown config tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    fn training_data(n: usize) -> (Matrix, Vec<f64>) {
        let mut state = 0xDEADu64;
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                (0..3)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        (state >> 40) as f64 / 1e5
                    })
                    .collect()
            })
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * 2.0 + (r[1] * 3.0).sin() + r[2]).collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_usize(123_456);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_opt_usize(None);
        w.put_opt_usize(Some(9));
        w.put_f64s(&[1.5, -2.5]);
        w.put_str("ease");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 7);
        assert!(r.take_bool().unwrap());
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), u64::MAX);
        assert_eq!(r.take_usize().unwrap(), 123_456);
        assert_eq!(r.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.take_f64().unwrap().is_nan());
        assert_eq!(r.take_opt_usize().unwrap(), None);
        assert_eq!(r.take_opt_usize().unwrap(), Some(9));
        assert_eq!(r.take_f64s().unwrap(), vec![1.5, -2.5]);
        assert_eq!(r.take_str().unwrap(), "ease");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let mut w = Writer::new();
        w.put_u32(5);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.take_u64(), Err(PersistError::Truncated { .. })));
    }

    #[test]
    fn oversized_length_is_rejected_without_allocation() {
        let mut w = Writer::new();
        w.put_usize(usize::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.take_f64s(), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn header_round_trip_and_rejection() {
        let mut w = Writer::new();
        write_header(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(read_header(&mut r).unwrap(), FORMAT_VERSION);

        let mut corrupt = bytes.clone();
        corrupt[0] ^= 0xFF;
        assert_eq!(read_header(&mut Reader::new(&corrupt)).unwrap_err(), PersistError::BadMagic);

        let mut future = bytes;
        future[MAGIC.len()] = 0xFE; // version 254
        assert!(matches!(
            read_header(&mut Reader::new(&future)).unwrap_err(),
            PersistError::UnsupportedVersion(_)
        ));
    }

    #[test]
    fn every_default_grid_model_round_trips_bit_exactly() {
        let (x, y) = training_data(40);
        let (xt, _) = training_data(15);
        for cfg in zoo::default_grid() {
            let mut m = match cfg {
                ModelConfig::Mlp { ref hidden, .. } => {
                    ModelConfig::Mlp { hidden: hidden.clone(), epochs: 8, learning_rate: 1e-3 }
                        .build()
                }
                _ => cfg.build(),
            };
            m.fit(&x, &y);
            let mut w = Writer::new();
            encode_model(&mut w, &m.to_params());
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            let restored = build_regressor(decode_model(&mut r).unwrap()).unwrap();
            assert_eq!(r.remaining(), 0, "{}", cfg.describe());
            for i in 0..xt.rows {
                let a = m.predict_row(xt.row(i));
                let b = restored.predict_row(xt.row(i));
                assert_eq!(a.to_bits(), b.to_bits(), "{} row {i}", cfg.describe());
            }
        }
    }

    #[test]
    fn restored_importances_match() {
        let (x, y) = training_data(60);
        let mut m =
            ModelConfig::Forest { n_trees: 12, max_depth: 8, feature_fraction: 1.0 }.build();
        m.fit(&x, &y);
        let mut w = Writer::new();
        encode_model(&mut w, &m.to_params());
        let bytes = w.into_bytes();
        let restored = build_regressor(decode_model(&mut Reader::new(&bytes)).unwrap()).unwrap();
        assert_eq!(m.feature_importances(), restored.feature_importances());
    }

    #[test]
    fn config_codec_round_trips_the_whole_grid() {
        for cfg in zoo::default_grid().into_iter().chain(zoo::quick_grid()) {
            let mut w = Writer::new();
            encode_config(&mut w, &cfg);
            let bytes = w.into_bytes();
            let back = decode_config(&mut Reader::new(&bytes)).unwrap();
            assert_eq!(cfg, back);
        }
    }

    #[test]
    fn wrong_variant_is_a_corrupt_error() {
        let p = ModelParams::Ridge { alpha: 1.0, weights: vec![], intercept: 0.0 };
        let err = crate::knn::KnnRegressor::from_params(p).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)));
    }

    #[test]
    fn split_links_are_validated() {
        let bad = ModelParams::Tree {
            params: TreeParams::default(),
            nodes: vec![TreeNode::Split { feature: 0, threshold: 0.0, left: 5, right: 6 }],
            importances: vec![0.0],
        };
        let mut w = Writer::new();
        encode_model(&mut w, &bad);
        let bytes = w.into_bytes();
        assert!(matches!(decode_model(&mut Reader::new(&bytes)), Err(PersistError::Corrupt(_))));
    }
}
