//! Gradient-boosted regression trees, XGBoost-flavoured (Chen & Guestrin,
//! KDD 2016): squared loss, shrinkage, L2 leaf regularization, minimum
//! split gain, and row subsampling.
//!
//! For squared loss the boosting step reduces to fitting each tree on the
//! current residuals with leaf values `Σr / (n + λ)` — exactly the
//! second-order XGB leaf weight with hessian 1.

use crate::dataset::Matrix;
use crate::persist::{wrong_variant, ModelParams, PersistError};
use crate::tree::{Binner, RegressionTree, TreeParams};
use crate::Regressor;

#[derive(Debug, Clone, PartialEq)]
pub struct GbtParams {
    pub n_estimators: usize,
    pub learning_rate: f64,
    pub max_depth: usize,
    /// L2 regularization λ on leaf weights.
    pub lambda: f64,
    /// Minimum split gain γ.
    pub gamma: f64,
    /// Row subsampling fraction per boosting round.
    pub subsample: f64,
    pub min_samples_leaf: usize,
    pub seed: u64,
}

impl Default for GbtParams {
    fn default() -> Self {
        GbtParams {
            n_estimators: 120,
            learning_rate: 0.1,
            max_depth: 5,
            lambda: 1.0,
            gamma: 1e-9,
            subsample: 0.9,
            min_samples_leaf: 2,
            seed: 0,
        }
    }
}

pub struct GradientBoosting {
    pub params: GbtParams,
    base: f64,
    trees: Vec<RegressionTree>,
    n_features: usize,
}

impl GradientBoosting {
    pub fn new(params: GbtParams) -> Self {
        GradientBoosting { params, base: 0.0, trees: Vec::new(), n_features: 0 }
    }

    /// Rebuild from [`ModelParams::Gbt`].
    pub fn from_params(params: ModelParams) -> Result<Self, PersistError> {
        match params {
            ModelParams::Gbt { params, base, trees, n_features } => Ok(GradientBoosting {
                params,
                base,
                trees: trees
                    .into_iter()
                    .map(RegressionTree::from_params)
                    .collect::<Result<_, _>>()?,
                n_features,
            }),
            other => Err(wrong_variant("gbt", &other)),
        }
    }
}

fn rng_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut x = *state;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Regressor for GradientBoosting {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        assert_eq!(x.rows, y.len());
        assert!(x.rows > 0, "empty training set");
        self.n_features = x.cols;
        self.base = y.iter().sum::<f64>() / y.len() as f64;
        self.trees.clear();
        let binner = Binner::fit(x);
        let binned = binner.transform(x);
        let mut pred = vec![self.base; x.rows];
        let mut residual = vec![0.0; x.rows];
        let mut rng = self.params.seed ^ 0x6B7;
        let sample_size =
            ((x.rows as f64 * self.params.subsample).round() as usize).clamp(1, x.rows);
        let mut indices: Vec<u32> = Vec::with_capacity(sample_size);
        for round in 0..self.params.n_estimators {
            for i in 0..x.rows {
                residual[i] = y[i] - pred[i];
            }
            indices.clear();
            if sample_size == x.rows {
                indices.extend(0..x.rows as u32);
            } else {
                for _ in 0..sample_size {
                    indices.push((rng_next(&mut rng) % x.rows as u64) as u32);
                }
            }
            let mut tree = RegressionTree::new(TreeParams {
                max_depth: self.params.max_depth,
                min_samples_split: self.params.min_samples_leaf * 2,
                min_samples_leaf: self.params.min_samples_leaf,
                max_features: None,
                leaf_l2: self.params.lambda,
                min_gain: self.params.gamma,
                seed: self.params.seed ^ (round as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
            });
            tree.fit_binned(&binned, &binner, &residual, &mut indices);
            for i in 0..x.rows {
                pred[i] += self.params.learning_rate * tree.predict_row(x.row(i));
            }
            self.trees.push(tree);
        }
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        self.base
            + self.params.learning_rate * self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>()
    }

    fn feature_importances(&self) -> Option<Vec<f64>> {
        let mut total = vec![0.0; self.n_features];
        for t in &self.trees {
            for (acc, v) in total.iter_mut().zip(t.raw_importances()) {
                *acc += v;
            }
        }
        let sum: f64 = total.iter().sum();
        if sum > 0.0 {
            for v in &mut total {
                *v /= sum;
            }
        }
        Some(total)
    }

    fn to_params(&self) -> ModelParams {
        ModelParams::Gbt {
            params: self.params.clone(),
            base: self.base,
            trees: self.trees.iter().map(Regressor::to_params).collect(),
            n_features: self.n_features,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{r2, rmse};

    fn wave(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut state = seed;
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a = (rng_next(&mut state) >> 11) as f64 / (1u64 << 53) as f64 * 6.0;
            let b = (rng_next(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
            y.push(a.sin() * 3.0 + b * b);
            rows.push(vec![a, b]);
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn outperforms_single_tree() {
        let (x, y) = wave(500, 1);
        let (xt, yt) = wave(200, 2);
        let mut gbt = GradientBoosting::new(GbtParams::default());
        gbt.fit(&x, &y);
        let mut tree = RegressionTree::new(TreeParams { max_depth: 3, ..Default::default() });
        crate::Regressor::fit(&mut tree, &x, &y);
        let e_gbt = rmse(&yt, &gbt.predict(&xt));
        let e_tree = rmse(&yt, &tree.predict(&xt));
        assert!(e_gbt < e_tree, "gbt {e_gbt} vs tree {e_tree}");
        assert!(r2(&yt, &gbt.predict(&xt)) > 0.9);
    }

    #[test]
    fn zero_rounds_predicts_the_mean() {
        let (x, y) = wave(50, 3);
        let mut gbt = GradientBoosting::new(GbtParams { n_estimators: 0, ..Default::default() });
        gbt.fit(&x, &y);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        assert!((gbt.predict_row(x.row(0)) - mean).abs() < 1e-12);
    }

    #[test]
    fn shrinkage_regularizes() {
        // with huge lambda, every leaf shrinks toward zero: predictions stay
        // near the base value
        let (x, y) = wave(100, 4);
        let mut tight = GradientBoosting::new(GbtParams {
            lambda: 1e9,
            n_estimators: 20,
            ..Default::default()
        });
        tight.fit(&x, &y);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        for i in 0..5 {
            assert!((tight.predict_row(x.row(i)) - mean).abs() < 0.05);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = wave(120, 9);
        let mut a = GradientBoosting::new(GbtParams { n_estimators: 15, ..Default::default() });
        let mut b = GradientBoosting::new(GbtParams { n_estimators: 15, ..Default::default() });
        a.fit(&x, &y);
        b.fit(&x, &y);
        for i in 0..10 {
            assert_eq!(a.predict_row(x.row(i)), b.predict_row(x.row(i)));
        }
    }
}
