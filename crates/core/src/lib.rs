//! EASE — **E**dge p**A**rtitioner **SE**lection (Merkel et al., ICDE 2023).
//!
//! The paper's primary contribution: a machine-learning system that, for a
//! given graph, graph-processing algorithm and optimization goal, predicts
//!
//! 1. the five partitioning quality metrics ([`QualityPredictor`]),
//! 2. the partitioning run-time ([`PartitioningTimePredictor`]),
//! 3. the processing run-time ([`ProcessingTimePredictor`]),
//!
//! for each of the 11 supported edge partitioners, and automatically picks
//! the partitioner minimizing either the processing time or the end-to-end
//! time ([`Ease::select`]).
//!
//! The training pipeline (paper Fig. 5) lives in [`profiling`] (steps 1–3:
//! generate graphs, partition + measure, process + measure) and
//! [`pipeline`] (step 4: model selection via 5-fold cross-validation and
//! training). [`enrich`] implements the Sec. V-D refinement of the
//! synthetic training set with real-world graphs, and [`evaluation`]
//! regenerates the paper's accuracy matrices and strategy comparisons.
//!
//! The primary entry point is the [`service`] module — *train once, query
//! cheaply*: [`EaseServiceBuilder`] trains a persistable [`EaseService`]
//! whose `recommend`/`recommend_batch` answer selection queries with typed
//! [`EaseError`]s, and whose `save`/`load` round-trip the trained models
//! bit-exactly through a versioned binary codec. The [`serve`] module
//! turns a persisted service into a long-running daemon behind a
//! unix-domain socket — one warm model + property cache answering
//! concurrent clients, bit-identically to the one-shot CLI.
//!
//! ```no_run
//! use ease::{EaseServiceBuilder, OptGoal};
//! use ease_graphgen::Scale;
//! use ease_procsim::Workload;
//!
//! let service = EaseServiceBuilder::at_scale(Scale::Tiny).train()?;
//! let graph = ease_graphgen::realworld::socfb_analogue(Scale::Tiny, 42).graph;
//! let props = ease_graph::GraphProperties::compute_advanced(&graph);
//! let pick = service.recommend(&props, Workload::PageRank { iterations: 10 }, OptGoal::EndToEnd)?;
//! println!("EASE picks {}", pick.best.name());
//! # Ok::<(), ease::EaseError>(())
//! ```

pub mod enrich;
pub mod error;
pub mod evaluation;
pub mod features;
pub mod pipeline;
pub mod predictors;
pub mod profiling;
pub mod report;
pub mod selector;
pub mod serve;
pub mod service;

pub use error::{EaseError, ServeError};
pub use predictors::{PartitioningTimePredictor, ProcessingTimePredictor, QualityPredictor};
pub use selector::{Ease, OptGoal, Selection};
pub use service::{
    EaseService, EaseServiceBuilder, PropertyCacheStats, Query, RecommendQuery, ServiceInfo,
    ServiceMeta,
};
