//! EASE — **E**dge p**A**rtitioner **SE**lection (Merkel et al., ICDE 2023).
//!
//! The paper's primary contribution: a machine-learning system that, for a
//! given graph, graph-processing algorithm and optimization goal, predicts
//!
//! 1. the five partitioning quality metrics ([`QualityPredictor`]),
//! 2. the partitioning run-time ([`PartitioningTimePredictor`]),
//! 3. the processing run-time ([`ProcessingTimePredictor`]),
//!
//! for each of the 11 supported edge partitioners, and automatically picks
//! the partitioner minimizing either the processing time or the end-to-end
//! time ([`Ease::select`]).
//!
//! The training pipeline (paper Fig. 5) lives in [`profiling`] (steps 1–3:
//! generate graphs, partition + measure, process + measure) and
//! [`pipeline`] (step 4: model selection via 5-fold cross-validation and
//! training). [`enrich`] implements the Sec. V-D refinement of the
//! synthetic training set with real-world graphs, and [`evaluation`]
//! regenerates the paper's accuracy matrices and strategy comparisons.
//!
//! ```no_run
//! use ease::pipeline::{train_ease, EaseConfig};
//! use ease::selector::OptGoal;
//! use ease_graphgen::Scale;
//! use ease_procsim::Workload;
//!
//! let (system, _artifacts) = train_ease(&EaseConfig::at_scale(Scale::Tiny));
//! let graph = ease_graphgen::realworld::socfb_analogue(Scale::Tiny, 42).graph;
//! let props = ease_graph::GraphProperties::compute_advanced(&graph);
//! let pick = system.select(&props, Workload::PageRank { iterations: 10 }, 4, OptGoal::EndToEnd);
//! println!("EASE picks {}", pick.best.name());
//! ```

pub mod enrich;
pub mod evaluation;
pub mod features;
pub mod pipeline;
pub mod predictors;
pub mod profiling;
pub mod report;
pub mod selector;

pub use predictors::{PartitioningTimePredictor, ProcessingTimePredictor, QualityPredictor};
pub use selector::{Ease, OptGoal, Selection};
