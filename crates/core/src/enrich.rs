//! Training-data enrichment (paper Sec. V-D): when the synthetically
//! trained quality predictor shows weak spots for a graph type, profile a
//! few real graphs of that type and add them to the training set.
//!
//! The paper enriches with 96 wiki graphs at levels {19, 38, 57, 76, 96},
//! repeats each random selection three times, pins the model family to RFR
//! (XGB is marginally better but ~140× slower to retrain), and reports the
//! per-type MAPE curves (Fig. 8) and the enriched heatmap (Fig. 7b).

use crate::evaluation::mape_by_type;
use crate::predictors::QualityPredictor;
use crate::profiling::QualityRecord;
use ease_graph::hash::SplitMix64;
use ease_graph::PropertyTier;
use ease_graphgen::realworld::GraphType;
use ease_ml::ModelConfig;
use ease_partition::QualityTarget;

/// One measured point of the enrichment sweep.
#[derive(Debug, Clone)]
pub struct EnrichmentPoint {
    /// Number of enrichment graphs added.
    pub n_graphs: usize,
    /// Repetition index (random subset draw).
    pub rep: usize,
    /// MAPE per graph type on the test set.
    pub mape_by_type: Vec<(GraphType, f64)>,
    /// MAPE across all test records.
    pub mape_all: f64,
}

impl EnrichmentPoint {
    pub fn mape_of(&self, t: GraphType) -> Option<f64> {
        self.mape_by_type.iter().find(|(g, _)| *g == t).map(|(_, m)| *m)
    }
}

/// Select a random subset of `n` distinct pool graphs (by name) and return
/// their records.
pub fn draw_enrichment_subset(
    pool: &[QualityRecord],
    n_graphs: usize,
    seed: u64,
) -> Vec<QualityRecord> {
    let mut names: Vec<&str> = Vec::new();
    for r in pool {
        if !names.iter().any(|n| *n == r.graph_name) {
            names.push(&r.graph_name);
        }
    }
    let mut rng = SplitMix64::new(seed ^ 0xE021);
    // partial Fisher–Yates for the first n picks
    let n = n_graphs.min(names.len());
    for i in 0..n {
        let j = i + rng.next_below(names.len() - i);
        names.swap(i, j);
    }
    let chosen: std::collections::HashSet<&str> = names[..n].iter().copied().collect();
    pool.iter().filter(|r| chosen.contains(r.graph_name.as_str())).cloned().collect()
}

/// Train a fixed-model quality predictor on base ∪ enrichment records.
pub fn train_enriched(
    base: &[QualityRecord],
    enrichment: &[QualityRecord],
    tier: PropertyTier,
    config: &ModelConfig,
) -> QualityPredictor {
    let mut combined: Vec<QualityRecord> = Vec::with_capacity(base.len() + enrichment.len());
    combined.extend_from_slice(base);
    combined.extend_from_slice(enrichment);
    QualityPredictor::train_fixed(&combined, tier, config)
}

/// The full Fig. 8 sweep: for each enrichment size and repetition, retrain
/// and measure per-type MAPE on the test records.
#[allow(clippy::too_many_arguments)]
pub fn enrichment_sweep(
    base: &[QualityRecord],
    pool: &[QualityRecord],
    test: &[QualityRecord],
    sizes: &[usize],
    repetitions: usize,
    tier: PropertyTier,
    config: &ModelConfig,
    target: QualityTarget,
    seed: u64,
) -> Vec<EnrichmentPoint> {
    let mut points = Vec::new();
    for &size in sizes {
        let reps = if size == 0 { 1 } else { repetitions };
        for rep in 0..reps {
            let subset = if size == 0 {
                Vec::new()
            } else {
                draw_enrichment_subset(pool, size, seed ^ (size as u64) << 8 ^ rep as u64)
            };
            let qp = train_enriched(base, &subset, tier, config);
            let by_type = mape_by_type(&qp, test, target);
            let mut y_true = Vec::with_capacity(test.len());
            let mut y_pred = Vec::with_capacity(test.len());
            for r in test {
                y_true.push(r.metrics.get(target));
                y_pred.push(qp.predict_target(target, &r.props, r.partitioner, r.k));
            }
            points.push(EnrichmentPoint {
                n_graphs: size,
                rep,
                mape_by_type: by_type,
                mape_all: ease_ml::metrics::mape(&y_true, &y_pred),
            });
        }
    }
    points
}

/// Mean and standard deviation of MAPE across repetitions for a given size
/// and graph type (`None` type = the "all" curve).
pub fn aggregate_point(
    points: &[EnrichmentPoint],
    size: usize,
    graph_type: Option<GraphType>,
) -> Option<(f64, f64)> {
    let values: Vec<f64> = points
        .iter()
        .filter(|p| p.n_graphs == size)
        .filter_map(|p| match graph_type {
            Some(t) => p.mape_of(t),
            None => Some(p.mape_all),
        })
        .collect();
    if values.is_empty() {
        return None;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
    Some((mean, var.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiling::{profile_quality, GraphInput};
    use ease_graphgen::realworld::{generate_typed, GraphType};
    use ease_graphgen::Scale;
    use ease_partition::PartitionerId;

    fn records_for(graph_type: GraphType, count: usize, seed: u64) -> Vec<QualityRecord> {
        let inputs: Vec<GraphInput> = (0..count)
            .map(|i| GraphInput::Materialized(generate_typed(graph_type, i, Scale::Tiny, seed)))
            .collect();
        profile_quality(&inputs, &[PartitionerId::Dbh, PartitionerId::TwoPs], &[4], seed)
    }

    #[test]
    fn subset_draw_selects_distinct_graphs() {
        let pool = records_for(GraphType::Wiki, 6, 1);
        let subset = draw_enrichment_subset(&pool, 3, 42);
        let names: std::collections::HashSet<_> =
            subset.iter().map(|r| r.graph_name.clone()).collect();
        assert_eq!(names.len(), 3);
        // all records of a chosen graph come along
        assert_eq!(subset.len(), 3 * 2);
        // deterministic
        let again = draw_enrichment_subset(&pool, 3, 42);
        assert_eq!(subset.len(), again.len());
    }

    #[test]
    fn enrichment_reduces_error_on_target_type() {
        // Base training on SOCIAL graphs only; test on WIKI graphs. Adding
        // wiki graphs to training must cut the wiki MAPE.
        let base = records_for(GraphType::Social, 8, 2);
        let pool = records_for(GraphType::Wiki, 8, 3);
        let test = records_for(GraphType::Wiki, 5, 4);
        let cfg = ModelConfig::Forest { n_trees: 30, max_depth: 12, feature_fraction: 0.8 };
        let points = enrichment_sweep(
            &base,
            &pool,
            &test,
            &[0, 8],
            1,
            PropertyTier::Basic,
            &cfg,
            QualityTarget::ReplicationFactor,
            7,
        );
        let before = points.iter().find(|p| p.n_graphs == 0).unwrap().mape_all;
        let after = points.iter().find(|p| p.n_graphs == 8).unwrap().mape_all;
        assert!(
            after < before,
            "enrichment should reduce wiki MAPE: before {before:.3} after {after:.3}"
        );
    }

    #[test]
    fn aggregate_computes_mean_and_std() {
        let points = vec![
            EnrichmentPoint { n_graphs: 5, rep: 0, mape_by_type: vec![], mape_all: 0.2 },
            EnrichmentPoint { n_graphs: 5, rep: 1, mape_by_type: vec![], mape_all: 0.4 },
        ];
        let (mean, std) = aggregate_point(&points, 5, None).unwrap();
        assert!((mean - 0.3).abs() < 1e-12);
        assert!((std - 0.1).abs() < 1e-12);
        assert!(aggregate_point(&points, 9, None).is_none());
    }
}
