//! Feature assembly — the exact feature/task matrix of the paper's
//! Table III.
//!
//! | task               | graph properties      | other features               |
//! |--------------------|-----------------------|------------------------------|
//! | partitioning quality | basic or advanced   | k, one-hot partitioner       |
//! | partitioning time  | advanced (all tiers)  | one-hot partitioner          |
//! | processing time    | simple (|E|, |V|)     | 5 quality metrics, iterations|

use ease_graph::{GraphProperties, PropertyTier};
use ease_ml::OneHotEncoder;
use ease_partition::{PartitionerId, QualityMetrics};

/// One-hot encoder over the 11 partitioner names (stable order). Built
/// once — this sits on the per-prediction hot path of every predictor, and
/// rebuilding 11 heap strings per feature row measurably slows batched
/// query serving.
pub fn partitioner_encoder() -> &'static OneHotEncoder {
    static ENCODER: std::sync::OnceLock<OneHotEncoder> = std::sync::OnceLock::new();
    ENCODER.get_or_init(|| {
        OneHotEncoder::new(PartitionerId::ALL.iter().map(|p| p.name().to_string()).collect())
    })
}

/// Feature names for the PartitioningQualityPredictor at a property tier.
pub fn quality_feature_names(tier: PropertyTier) -> Vec<String> {
    let mut names: Vec<String> =
        GraphProperties::feature_names(tier).into_iter().map(String::from).collect();
    names.push("num_partitions".into());
    for p in PartitionerId::ALL {
        names.push(format!("partitioner_{}", p.name()));
    }
    names
}

/// Feature row for the PartitioningQualityPredictor.
pub fn quality_row(
    props: &GraphProperties,
    tier: PropertyTier,
    k: usize,
    partitioner: PartitionerId,
) -> Vec<f64> {
    let mut row = props.feature_vector(tier);
    row.push(k as f64);
    let enc = partitioner_encoder();
    enc.encode_into(partitioner.name(), &mut row);
    row
}

/// Feature names for the PartitioningTimePredictor (all property tiers +
/// partitioner, per Table III).
pub fn partitioning_time_feature_names() -> Vec<String> {
    let mut names: Vec<String> = GraphProperties::feature_names(PropertyTier::Advanced)
        .into_iter()
        .map(String::from)
        .collect();
    for p in PartitionerId::ALL {
        names.push(format!("partitioner_{}", p.name()));
    }
    names
}

/// Feature row for the PartitioningTimePredictor.
pub fn partitioning_time_row(props: &GraphProperties, partitioner: PartitionerId) -> Vec<f64> {
    let mut row = props.feature_vector(PropertyTier::Advanced);
    let enc = partitioner_encoder();
    enc.encode_into(partitioner.name(), &mut row);
    row
}

/// Feature names for the ProcessingTimePredictor: simple graph properties +
/// the five quality metrics + the iteration count.
pub fn processing_time_feature_names() -> Vec<String> {
    let mut names: Vec<String> = GraphProperties::feature_names(PropertyTier::Simple)
        .into_iter()
        .map(String::from)
        .collect();
    names.extend(ease_partition::QualityTarget::ALL.iter().map(|t| t.name().to_string()));
    names.push("iterations".into());
    names
}

/// Feature row for the ProcessingTimePredictor. `iterations` is 0 for
/// run-to-convergence workloads (paper: only fixed-iteration algorithms
/// take I as an input).
pub fn processing_time_row(
    props: &GraphProperties,
    metrics: &QualityMetrics,
    iterations: usize,
) -> Vec<f64> {
    let mut row = props.feature_vector(PropertyTier::Simple);
    row.extend(metrics.as_vector());
    row.push(iterations as f64);
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use ease_graph::Graph;

    fn props() -> GraphProperties {
        GraphProperties::compute_advanced(&Graph::from_pairs([(0, 1), (1, 2), (2, 0)]))
    }

    fn metrics() -> QualityMetrics {
        QualityMetrics {
            replication_factor: 1.5,
            edge_balance: 1.1,
            vertex_balance: 1.2,
            source_balance: 1.3,
            dest_balance: 1.4,
        }
    }

    #[test]
    fn quality_row_width_matches_names() {
        for tier in PropertyTier::ALL {
            let row = quality_row(&props(), tier, 8, PartitionerId::Hdrf);
            assert_eq!(row.len(), quality_feature_names(tier).len(), "{tier:?}");
        }
    }

    #[test]
    fn quality_row_one_hot_is_exclusive() {
        let row = quality_row(&props(), PropertyTier::Basic, 8, PartitionerId::Ne);
        let hot: Vec<f64> = row[row.len() - 11..].to_vec();
        assert_eq!(hot.iter().filter(|&&v| v == 1.0).count(), 1);
        assert_eq!(hot.iter().filter(|&&v| v == 0.0).count(), 10);
        // NE is the last partitioner in ALL order
        assert_eq!(hot[PartitionerId::Ne.index()], 1.0);
    }

    #[test]
    fn k_lands_right_after_properties() {
        let row = quality_row(&props(), PropertyTier::Simple, 64, PartitionerId::OneDD);
        assert_eq!(row[2], 64.0); // [|E|, |V|, k, ...one-hot]
    }

    #[test]
    fn partitioning_time_row_width() {
        let row = partitioning_time_row(&props(), PartitionerId::TwoPs);
        assert_eq!(row.len(), partitioning_time_feature_names().len());
        // 8 advanced props + 11 one-hot
        assert_eq!(row.len(), 19);
    }

    #[test]
    fn processing_time_row_layout() {
        let row = processing_time_row(&props(), &metrics(), 10);
        assert_eq!(row.len(), processing_time_feature_names().len());
        // [|E|, |V|, rf, eb, vb, sb, db, iters]
        assert_eq!(row[2], 1.5);
        assert_eq!(row[7], 10.0);
    }
}
